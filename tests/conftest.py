"""Shared fixtures: small chains and platforms that keep tests fast."""

from __future__ import annotations

import pytest

from repro.core import Chain, LayerProfile, Platform
from repro.models import random_chain, uniform_chain

MB = float(2**20)


@pytest.fixture
def tiny_chain() -> Chain:
    """Four heterogeneous layers with hand-checkable numbers."""
    return Chain(
        layers=[
            LayerProfile("a", u_f=1.0, u_b=2.0, weights=10 * MB, activation=40 * MB),
            LayerProfile("b", u_f=2.0, u_b=3.0, weights=20 * MB, activation=30 * MB),
            LayerProfile("c", u_f=1.5, u_b=2.5, weights=30 * MB, activation=20 * MB),
            LayerProfile("d", u_f=0.5, u_b=1.0, weights=40 * MB, activation=10 * MB),
        ],
        input_activation=50 * MB,
        name="tiny",
    )


@pytest.fixture
def uniform8() -> Chain:
    """Eight identical layers — trivial load balancing."""
    return uniform_chain(8, u_f=1.0, u_b=2.0, weights=4 * MB, activation=8 * MB)


@pytest.fixture
def cnnlike16() -> Chain:
    """Sixteen random layers with CNN-like decaying activations."""
    return random_chain(16, seed=7, decay=0.15, name="cnnlike16")


@pytest.fixture
def plat2() -> Platform:
    return Platform.of(2, 1.0, 12)


@pytest.fixture
def plat4() -> Platform:
    return Platform.of(4, 1.0, 12)


@pytest.fixture
def roomy4() -> Platform:
    """Four GPUs with memory far beyond any test chain's needs."""
    return Platform.of(4, 1024.0, 12)
