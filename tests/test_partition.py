"""Unit tests for stages, partitionings and allocations."""

import pytest

from repro.core import Allocation, Partitioning, Stage


class TestStage:
    def test_len(self):
        assert len(Stage(2, 5)) == 4

    @pytest.mark.parametrize("start,end", [(0, 1), (3, 2), (-1, 4)])
    def test_invalid(self, start, end):
        with pytest.raises(ValueError):
            Stage(start, end)

    def test_costs(self, tiny_chain):
        s = Stage(2, 3)
        assert s.compute(tiny_chain) == pytest.approx(tiny_chain.U(2, 3))
        assert s.forward(tiny_chain) == pytest.approx(tiny_chain.U_f(2, 3))
        assert s.backward(tiny_chain) == pytest.approx(tiny_chain.U_b(2, 3))
        assert s.stored_activations(tiny_chain) == pytest.approx(
            tiny_chain.stored_activations(2, 3)
        )


class TestPartitioning:
    def test_from_cuts(self):
        p = Partitioning.from_cuts(10, [3, 7])
        assert p.n_stages == 3
        assert p.stages == (Stage(1, 3), Stage(4, 7), Stage(8, 10))
        assert p.cut_layers() == [3, 7]

    def test_no_cuts(self):
        p = Partitioning.from_cuts(5, [])
        assert p.n_stages == 1 and p.L == 5

    @pytest.mark.parametrize("cuts", [[7, 3], [3, 3], [0], [10]])
    def test_bad_cuts(self, cuts):
        with pytest.raises(ValueError):
            Partitioning.from_cuts(10, cuts)

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            Partitioning((Stage(1, 3), Stage(5, 7)))

    def test_must_start_at_one(self):
        with pytest.raises(ValueError):
            Partitioning((Stage(2, 4),))

    def test_cover_validation(self, tiny_chain):
        Partitioning.from_cuts(4, [2]).validate_cover(tiny_chain)
        with pytest.raises(ValueError):
            Partitioning.from_cuts(5, [2]).validate_cover(tiny_chain)

    def test_iteration_and_indexing(self):
        p = Partitioning.from_cuts(6, [2, 4])
        assert list(p) == [Stage(1, 2), Stage(3, 4), Stage(5, 6)]
        assert p[1] == Stage(3, 4)
        assert len(p) == 3


class TestAllocation:
    def test_contiguous(self):
        p = Partitioning.from_cuts(6, [2, 4])
        a = Allocation.contiguous(p)
        assert a.procs == (0, 1, 2)
        assert a.is_contiguous()
        assert a.special_procs() == []

    def test_special_detection(self):
        p = Partitioning.from_cuts(6, [2, 4])
        a = Allocation(p, (2, 0, 2))
        assert not a.is_contiguous()
        assert a.special_procs() == [2]
        assert a.stages_on_proc(2) == [0, 2]

    def test_stage_proc_count_mismatch(self):
        p = Partitioning.from_cuts(6, [2, 4])
        with pytest.raises(ValueError):
            Allocation(p, (0, 1))

    def test_proc_loads(self, tiny_chain):
        p = Partitioning.from_cuts(4, [1, 3])
        a = Allocation(p, (1, 0, 1))
        loads = a.proc_loads(tiny_chain)
        assert loads[0] == pytest.approx(tiny_chain.U(2, 3))
        assert loads[1] == pytest.approx(tiny_chain.U(1, 1) + tiny_chain.U(4, 4))

    def test_link_loads(self, tiny_chain, plat4):
        p = Partitioning.from_cuts(4, [1, 3])
        a = Allocation(p, (1, 0, 1))
        links = a.link_loads(tiny_chain, plat4.bandwidth)
        # both cuts connect procs 0 and 1 -> single link accumulates
        assert set(links) == {(0, 1)}
        expected = tiny_chain.comm_time(1, plat4.bandwidth) + tiny_chain.comm_time(
            3, plat4.bandwidth
        )
        assert links[(0, 1)] == pytest.approx(expected)

    def test_same_proc_adjacent_no_comm(self, tiny_chain, plat4):
        p = Partitioning.from_cuts(4, [2])
        a = Allocation(p, (0, 0))
        assert a.link_loads(tiny_chain, plat4.bandwidth) == {}

    def test_period_lower_bound(self, tiny_chain, plat2):
        p = Partitioning.from_cuts(4, [2])
        a = Allocation.contiguous(p)
        lb = a.period_lower_bound(tiny_chain, plat2)
        assert lb == pytest.approx(
            max(
                tiny_chain.U(1, 2),
                tiny_chain.U(3, 4),
                tiny_chain.comm_time(2, plat2.bandwidth),
            )
        )

    def test_validate_platform_size(self, tiny_chain, plat2):
        p = Partitioning.from_cuts(4, [1, 2])
        a = Allocation(p, (0, 1, 2))
        with pytest.raises(ValueError):
            a.validate(tiny_chain, plat2)
