"""Tests for MadPipe phase 1: the DP and the T̂ binary search (§4.2)."""

import pytest

from repro.algorithms.madpipe_dp import Discretization, algorithm1, madpipe_dp
from repro.core import Platform
from repro.models import random_chain

MB = float(2**20)
COARSE = Discretization.coarse()


class TestDiscretization:
    def test_presets(self):
        assert Discretization.paper() == Discretization(101, 11, 51)
        assert Discretization.coarse().n_t < Discretization.default().n_t

    def test_minimum_sizes(self):
        with pytest.raises(ValueError):
            Discretization(1, 5, 5)


class TestMadPipeDP:
    def test_returns_cover(self, cnnlike16, roomy4):
        res = madpipe_dp(cnnlike16, roomy4, cnnlike16.total_compute() / 4, grid=COARSE)
        assert res.feasible
        stages = res.allocation.stages
        assert stages[0].start == 1
        assert stages[-1].end == 16
        for a, b in zip(stages, stages[1:]):
            assert b.start == a.end + 1

    def test_period_at_least_load_bound(self, cnnlike16, roomy4):
        res = madpipe_dp(cnnlike16, roomy4, cnnlike16.total_compute() / 4, grid=COARSE)
        assert res.dp_period >= cnnlike16.total_compute() / 4 - 1e-9

    def test_materialized_allocation_valid(self, cnnlike16, roomy4):
        res = madpipe_dp(cnnlike16, roomy4, cnnlike16.total_compute() / 4, grid=COARSE)
        alloc = res.allocation.to_allocation(roomy4)
        alloc.validate(cnnlike16, roomy4)
        assert len(alloc.special_procs()) <= 1

    def test_contiguous_mode(self, cnnlike16, roomy4):
        res = madpipe_dp(
            cnnlike16,
            roomy4,
            cnnlike16.total_compute() / 4,
            grid=COARSE,
            allow_special=False,
        )
        assert res.feasible
        assert not any(res.allocation.special)
        alloc = res.allocation.to_allocation(roomy4)
        assert alloc.is_contiguous()

    def test_higher_target_relaxes_memory(self, cnnlike16):
        """MadPipe-DP(T̂) is non-increasing in T̂ (§4.2.3)."""
        plat = Platform.of(4, 1.0, 12)
        u = cnnlike16.total_compute()
        periods = []
        for target in (u / 4, u / 2, u):
            res = madpipe_dp(cnnlike16, plat, target, grid=COARSE)
            periods.append(res.dp_period if res.feasible else float("inf"))
        assert periods[0] >= periods[-1] - 1e-9

    def test_infeasible_when_memory_tiny(self, uniform8):
        tiny = Platform.of(2, 1 * MB / 2**30, 12)
        res = madpipe_dp(uniform8, tiny, uniform8.total_compute(), grid=COARSE)
        assert not res.feasible

    def test_invalid_target(self, uniform8, plat2):
        with pytest.raises(ValueError):
            madpipe_dp(uniform8, plat2, 0.0)

    def test_effective_period(self, cnnlike16, roomy4):
        u = cnnlike16.total_compute()
        res = madpipe_dp(cnnlike16, roomy4, u, grid=COARSE)
        assert res.effective_period == max(res.dp_period, u)

    def test_period_cap_prunes_but_preserves_good_solutions(self, cnnlike16, roomy4):
        target = cnnlike16.total_compute() / 4
        free = madpipe_dp(cnnlike16, roomy4, target, grid=COARSE)
        capped = madpipe_dp(
            cnnlike16, roomy4, target, grid=COARSE, period_cap=free.dp_period * 1.5
        )
        assert capped.feasible
        assert capped.dp_period <= free.dp_period * 1.5 + 1e-9


class TestAlgorithm1:
    def test_beats_or_matches_naive_target(self, cnnlike16, roomy4):
        res = algorithm1(cnnlike16, roomy4, iterations=6, grid=COARSE)
        assert res.feasible
        # never worse than the trivial single-GPU period
        assert res.period <= cnnlike16.total_compute() + 1e-9
        # never better than the perfect-balance bound
        assert res.period >= cnnlike16.total_compute() / 4 - 1e-9

    def test_history_recorded(self, cnnlike16, roomy4):
        res = algorithm1(cnnlike16, roomy4, iterations=5, grid=COARSE)
        assert len(res.history) == 5

    def test_special_used_under_pressure(self):
        """With heterogeneous layers and tight memory, the special
        processor should eventually pick up more than one stage."""
        used_special = False
        for seed in (0, 1, 2, 3, 4):
            chain = random_chain(16, seed=seed, decay=0.25)
            for mem in (2.0, 1.0, 0.6):
                res = algorithm1(
                    chain, Platform.of(4, mem, 12), iterations=6, grid=COARSE
                )
                if res.feasible and sum(res.allocation.special) > 1:
                    used_special = True
                    break
            if used_special:
                break
        assert used_special

    def test_more_memory_never_catastrophically_worse(self, cnnlike16):
        """The DP estimate is non-increasing in M on average; we assert the
        weak form: the roomiest platform is at least as good as the
        tightest feasible one."""
        periods = {}
        for mem in (0.8, 2.0, 8.0):
            res = algorithm1(cnnlike16, Platform.of(4, mem, 12), iterations=6, grid=COARSE)
            periods[mem] = res.period if res.feasible else float("inf")
        assert periods[8.0] <= periods[0.8] + 1e-9

    def test_feasibility_flag(self, uniform8):
        tiny = Platform.of(2, 1 * MB / 2**30, 12)
        res = algorithm1(uniform8, tiny, iterations=4, grid=COARSE)
        assert not res.feasible
