"""Tests for the 1F1B* optimal contiguous scheduler (paper §4.1)."""

import pytest

from repro.algorithms.onef1b import (
    Item,
    assign_groups,
    build_pattern,
    extended_items,
    min_feasible_period,
)
from repro.core import Allocation, Partitioning, Platform
from repro.models import random_chain
from repro.sim import verify_pattern

MB = float(2**20)


class TestExtendedItems:
    def test_stage_and_comm_items(self, uniform8, plat2):
        alloc = Allocation.contiguous(Partitioning.from_cuts(8, [4]))
        items = extended_items(uniform8, plat2, alloc)
        kinds = [it.kind for it in items]
        assert kinds == ["stage", "comm", "stage"]
        assert items[0].u_f == pytest.approx(4.0)
        assert items[1].u_f == pytest.approx(items[1].u_b)
        assert items[1].load == pytest.approx(
            uniform8.comm_time(4, plat2.bandwidth)
        )

    def test_no_comm_between_same_proc(self, uniform8, plat2):
        alloc = Allocation(Partitioning.from_cuts(8, [4]), (0, 0))
        items = extended_items(uniform8, plat2, alloc)
        assert [it.kind for it in items] == ["stage", "stage"]


class TestAssignGroups:
    def test_single_group_when_period_large(self):
        items = [Item("stage", i, 1.0, 2.0) for i in range(3)]
        assert assign_groups(items, 100.0) == [1, 1, 1]

    def test_one_group_per_item_when_tight(self):
        items = [Item("stage", i, 1.0, 2.0) for i in range(3)]
        assert assign_groups(items, 3.0) == [3, 2, 1]

    def test_greedy_from_the_back(self):
        items = [
            Item("stage", 0, 1.0, 1.0),  # load 2
            Item("stage", 1, 2.0, 2.0),  # load 4
            Item("stage", 2, 0.5, 0.5),  # load 1
        ]
        # period 5: group 1 takes items 2 and 1 (1+4=5), item 0 starts group 2
        assert assign_groups(items, 5.0) == [2, 1, 1]

    def test_infeasible_period_raises(self):
        items = [Item("stage", 0, 3.0, 3.0)]
        with pytest.raises(ValueError):
            assign_groups(items, 5.0)

    def test_boundary_exact_fit(self):
        items = [Item("stage", 0, 1.0, 1.0), Item("stage", 1, 1.0, 1.0)]
        assert assign_groups(items, 4.0) == [1, 1]


class TestBuildPattern:
    def test_valid_at_many_periods(self, cnnlike16, roomy4):
        part = Partitioning.from_cuts(16, [4, 8, 12])
        alloc = Allocation.contiguous(part)
        lb = alloc.period_lower_bound(cnnlike16, roomy4)
        for factor in (1.0, 1.3, 2.0, 5.0):
            pat = build_pattern(cnnlike16, roomy4, alloc, lb * factor)
            pat.validate(cnnlike16, roomy4)

    def test_requires_contiguous(self, uniform8, roomy4):
        alloc = Allocation(Partitioning.from_cuts(8, [2, 4]), (0, 1, 0))
        with pytest.raises(ValueError, match="contiguous"):
            build_pattern(uniform8, roomy4, alloc, 100.0)

    def test_group_memory_matches_pattern(self, uniform8, roomy4):
        """Stages in group g hold exactly g active batches (paper claim)."""
        part = Partitioning.from_cuts(8, [2, 4, 6])
        alloc = Allocation.contiguous(part)
        items = extended_items(uniform8, roomy4, alloc)
        # tight period: per-stage load is 6, comm tiny
        T = 6.5
        groups = assign_groups(items, T)
        pat = build_pattern(uniform8, roomy4, alloc, T)
        pat.validate(uniform8, roomy4)
        for it, g in zip(items, groups):
            if it.kind != "stage":
                continue
            f = pat.ops[("F", it.index)]
            peak = max(
                pat.active_batches(it.index, f.start),
                pat.active_batches(it.index, f.start + 1e-9),
            )
            assert peak == g

    def test_single_stage(self, uniform8):
        plat = Platform.of(1, 1024, 12)
        alloc = Allocation.contiguous(Partitioning.from_cuts(8, []))
        pat = build_pattern(uniform8, plat, alloc, uniform8.total_compute())
        pat.validate(uniform8, plat)


class TestMinFeasiblePeriod:
    def test_unconstrained_hits_lower_bound(self, cnnlike16, roomy4):
        part = Partitioning.from_cuts(16, [4, 8, 12])
        res = min_feasible_period(cnnlike16, roomy4, part)
        alloc = Allocation.contiguous(part)
        assert res is not None
        assert res.period == pytest.approx(
            alloc.period_lower_bound(cnnlike16, roomy4)
        )
        verify_pattern(cnnlike16, roomy4, res.pattern)

    def test_memory_pressure_increases_period(self, cnnlike16):
        part = Partitioning.from_cuts(16, [4, 8, 12])
        roomy = Platform.of(4, 1024.0, 12)
        t_roomy = min_feasible_period(cnnlike16, roomy, part).period
        # shrink memory until the period must grow
        tight = None
        for mem_gb in (2.0, 1.0, 0.5, 0.25):
            plat = Platform.of(4, mem_gb, 12)
            res = min_feasible_period(cnnlike16, plat, part)
            if res is not None and res.period > t_roomy * 1.01:
                tight = res
                break
        assert tight is not None, "expected memory pressure to bite"
        verify_pattern(cnnlike16, Platform.of(4, mem_gb, 12), tight.pattern)

    def test_infeasible_returns_none(self, uniform8):
        tiny = Platform.of(2, 10 * MB / 2**30, 12)
        part = Partitioning.from_cuts(8, [4])
        assert min_feasible_period(uniform8, tiny, part) is None

    def test_memory_monotone_in_period(self, cnnlike16, roomy4):
        """Raising the period never raises 1F1B* memory (groups merge)."""
        part = Partitioning.from_cuts(16, [4, 8, 12])
        alloc = Allocation.contiguous(part)
        items = extended_items(cnnlike16, roomy4, alloc)
        lb = alloc.period_lower_bound(cnnlike16, roomy4)
        prev = None
        for factor in (1.0, 1.2, 1.5, 2.0, 3.0, 10.0):
            groups = assign_groups(items, lb * factor)
            total = sum(groups)
            if prev is not None:
                assert total <= prev
            prev = total

    def test_too_many_stages_rejected(self, uniform8, plat2):
        with pytest.raises(ValueError):
            min_feasible_period(uniform8, plat2, Partitioning.from_cuts(8, [2, 4]))

    def test_pattern_optimal_memory_vs_validity(self, roomy4):
        """Every 1F1B* pattern must execute cleanly in the simulator."""
        for seed in range(5):
            chain = random_chain(12, seed=seed, decay=0.1)
            part = Partitioning.from_cuts(12, [3, 6, 9])
            res = min_feasible_period(chain, roomy4, part)
            assert res is not None
            verify_pattern(chain, roomy4, res.pattern)
