"""Model-zoo builders: parameter counts vs published values, structure."""

import pytest

from repro.models import densenet121, inception, resnet50, resnet101, vgg16
from repro.models.resnet import resnet
from repro.models.densenet import densenet


class TestResNet:
    def test_resnet50_params(self):
        g = resnet50(image_size=224)
        g.propagate_shapes()
        # torchvision resnet50: 25.557M parameters
        assert g.total_params() == pytest.approx(25.557e6, rel=0.01)

    def test_resnet101_params(self):
        g = resnet101(image_size=224)
        g.propagate_shapes()
        # torchvision resnet101: 44.549M parameters
        assert g.total_params() == pytest.approx(44.549e6, rel=0.01)

    def test_output_shape(self):
        g = resnet50(image_size=224, num_classes=10)
        g.propagate_shapes()
        assert g.shape(g.sink) == (10,)

    def test_custom_config(self):
        g = resnet((1, 1, 1, 1), image_size=64)
        g.propagate_shapes()
        assert g.shape(g.sink) == (1000,)

    def test_stage_downsampling(self):
        g = resnet50(image_size=224)
        g.propagate_shapes()
        # final spatial size before pooling: 224/32 = 7
        gap_pred = g.predecessors_in_order([n for n in g.g if "gap" in n][0])[0]
        assert g.shape(gap_pred) == (2048, 7, 7)


class TestInception:
    def test_params_order_of_magnitude(self):
        g = inception(image_size=224)
        g.propagate_shapes()
        # GoogLeNet ~6.6M conv/fc params (BN adds a little)
        assert 5.5e6 < g.total_params() < 8.5e6

    def test_output(self):
        g = inception(image_size=224, num_classes=42)
        g.propagate_shapes()
        assert g.shape(g.sink) == (42,)

    def test_concat_channels(self):
        g = inception(image_size=224)
        g.propagate_shapes()
        inc3a = [n for n in g.g if "inc3a.concat" in n][0]
        # 64 + 128 + 32 + 32 = 256
        assert g.shape(inc3a)[0] == 256


class TestDenseNet:
    def test_params(self):
        g = densenet121(image_size=224)
        g.propagate_shapes()
        # torchvision densenet121: 7.979M parameters
        assert g.total_params() == pytest.approx(7.979e6, rel=0.02)

    def test_channel_growth(self):
        g = densenet((2, 2), growth=4, image_size=64)
        g.propagate_shapes()
        assert g.shape(g.sink) == (1000,)

    def test_output(self):
        g = densenet121(image_size=224, num_classes=5)
        g.propagate_shapes()
        assert g.shape(g.sink) == (5,)


class TestVGG:
    def test_params(self):
        g = vgg16(image_size=224)
        g.propagate_shapes()
        # torchvision vgg16: 138.358M parameters
        assert g.total_params() == pytest.approx(138.358e6, rel=0.01)

    def test_output(self):
        g = vgg16(image_size=224, num_classes=7)
        g.propagate_shapes()
        assert g.shape(g.sink) == (7,)
