"""Resilience tests: fault-injected sweeps, solver guardrails, deadlines.

Everything here drives real failure paths through
:mod:`repro.testing.faults` — worker crashes, hard pool deaths, HiGHS
time-limit hits, mid-run kills — and checks that the runtime degrades
the way the taxonomy promises instead of crashing or lying.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.algorithms import Discretization
from repro.algorithms.madpipe import madpipe
from repro.cli import main as cli_main
from repro.core.partition import Allocation, Partitioning
from repro.core.platform import Platform
from repro.experiments import (
    ResultCache,
    SweepInstanceError,
    run_grid,
    verify_cache,
)
from repro.ilp.solver import schedule_allocation
from repro.models import random_chain, uniform_chain
from repro.profiling import save_chain
from repro.testing import Fault, FaultInjected, faults

INF = float("inf")
MB = float(2**20)
COARSE = Discretization.coarse()

#: A small sweep: 1 toy network x 1 P x 3 M x 1 beta x 2 algorithms.
TOY_GRID = dict(
    networks=("toy5",),
    procs=(2,),
    memories_gb=(0.25, 0.5, 1.0),
    bandwidths_gbps=(12.0,),
)
N_TOY = 6

#: madpipe instance whose phase 1 picks a *non-contiguous* allocation,
#: so phase 2 goes through the scheduling MILP (found empirically; the
#: contiguous restriction stays feasible, so the 1F1B* fallback exists).
ILP_SEED, ILP_PLAT = 7, Platform.of(4, 0.8, 12)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def toy_sweep(**kw):
    defaults = dict(grid=COARSE, iterations=4, ilp_time_limit=10.0)
    defaults.update(kw)
    return run_grid(
        TOY_GRID["networks"],
        TOY_GRID["procs"],
        TOY_GRID["memories_gb"],
        TOY_GRID["bandwidths_gbps"],
        **defaults,
    )


def result_map(results):
    return {
        r.key: (r.dp_period, r.valid_period, r.status) for r in results
    }


class TestFaultPlumbing:
    def test_inert_without_plan(self):
        assert faults.fire("worker", key="anything") is None
        assert not faults.active()

    def test_raise_action_counts_across_calls(self, tmp_path):
        faults.install([Fault(site="worker", action="raise", after=1, times=1)], tmp_path)
        assert faults.fire("worker") is None  # skipped by after=1
        with pytest.raises(FaultInjected):
            faults.fire("worker")
        assert faults.fire("worker") is None  # times=1 exhausted

    def test_key_filtering(self, tmp_path):
        faults.install([Fault(site="worker", action="raise", key="toy5|2")], tmp_path)
        assert faults.fire("worker", key="resnet50|4|8.0") is None
        with pytest.raises(FaultInjected):
            faults.fire("worker", key="toy5|2|0.5|12.0|madpipe")

    def test_bad_fault_rejected(self):
        with pytest.raises(ValueError):
            Fault(site="worker", action="explode")
        with pytest.raises(ValueError):
            Fault(site="worker", action="raise", times=0)


class TestRetries:
    @pytest.mark.faultinject
    def test_transient_crash_is_retried(self, tmp_path):
        # first madpipe instance crashes once, then succeeds on retry
        faults.install(
            [Fault(site="worker", action="raise", key="madpipe", times=1)], tmp_path
        )
        results = toy_sweep(max_retries=1, retry_backoff_s=0.01)
        assert len(results) == N_TOY
        assert all(r.status in ("ok", "infeasible") for r in results)

    @pytest.mark.faultinject
    def test_exhausted_retries_raise_naming_the_spec(self, tmp_path):
        faults.install(
            [Fault(site="worker", action="raise", key="madpipe", times=-1)], tmp_path
        )
        with pytest.raises(SweepInstanceError) as exc_info:
            toy_sweep(max_retries=1, retry_backoff_s=0.01)
        err = exc_info.value
        assert err.spec[0] == "toy5" and err.spec[4] == "madpipe"
        assert err.attempts == 2
        assert "toy5" in str(err)

    @pytest.mark.faultinject
    def test_exhausted_retries_recorded(self, tmp_path):
        faults.install(
            [Fault(site="worker", action="raise", key="madpipe", times=-1)], tmp_path
        )
        results = toy_sweep(
            max_retries=0, retry_backoff_s=0.01, on_exhausted="record"
        )
        errors = [r for r in results if r.status == "error"]
        assert len(errors) == 3  # every madpipe instance
        assert all("FaultInjected" in r.failure for r in errors)
        assert all(r.status in ("ok", "infeasible") for r in results if r.algorithm == "pipedream")

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            toy_sweep(max_retries=-1)
        with pytest.raises(ValueError):
            toy_sweep(on_exhausted="explode")

    @pytest.mark.faultinject
    def test_hard_worker_death_restarts_pool(self, tmp_path):
        # one worker dies with os._exit (≈ SIGKILL): BrokenProcessPool;
        # the pool restarts and the next round completes the sweep
        faults.install(
            [Fault(site="worker", action="exit", key="madpipe", times=1, param=86)],
            tmp_path,
        )
        results = toy_sweep(n_workers=2, max_retries=2, retry_backoff_s=0.01)
        assert len(results) == N_TOY
        assert all(r.status in ("ok", "infeasible") for r in results)


class TestInstanceDeadline:
    @pytest.mark.faultinject
    @pytest.mark.skipif(os.name != "posix", reason="SIGALRM deadline is POSIX-only")
    def test_hung_instance_times_out_and_is_typed(self, tmp_path):
        faults.install(
            [Fault(site="worker", action="sleep", key="madpipe", times=-1, param=5.0)],
            tmp_path,
        )
        results = toy_sweep(
            instance_timeout=0.3,
            max_retries=0,
            retry_backoff_s=0.01,
            on_exhausted="record",
        )
        hung = [r for r in results if r.algorithm == "madpipe"]
        assert all(r.status == "solver_timeout" for r in hung)
        assert all("deadline" in r.failure for r in hung)


class TestSolverGuardrails:
    @pytest.fixture
    def noncontig(self):
        chain = uniform_chain(8, u_f=1.0, u_b=2.0, weights=1 * MB, activation=64 * MB)
        alloc = Allocation(Partitioning.from_cuts(8, [2, 6]), (0, 1, 0))
        return chain, Platform.of(2, 4, 12), alloc

    @pytest.mark.faultinject
    def test_all_probes_timeout_is_not_infeasible(self, tmp_path, noncontig):
        chain, plat, alloc = noncontig
        faults.install([Fault(site="milp_solve", action="timeout", times=-1)], tmp_path)
        res = schedule_allocation(chain, plat, alloc, time_limit=10)
        assert res.status == "timeout"  # never a silent "infeasible"
        assert not res.feasible
        assert res.timings["milp_timeouts"] > 0

    @pytest.mark.faultinject
    def test_partial_timeout_degrades(self, tmp_path, noncontig):
        chain, plat, alloc = noncontig
        # only the first (lower-bound) probe times out; the search still
        # finds a schedule but must flag the budget hit
        faults.install([Fault(site="milp_solve", action="timeout", times=1)], tmp_path)
        res = schedule_allocation(chain, plat, alloc, time_limit=10)
        assert res.feasible
        assert res.status == "degraded"

    def test_clean_search_is_ok(self, noncontig):
        chain, plat, alloc = noncontig
        res = schedule_allocation(chain, plat, alloc, time_limit=10)
        assert res.feasible and res.status == "ok"
        assert res.timings["milp_timeouts"] == 0

    @pytest.mark.faultinject
    def test_madpipe_degrades_to_certified_fallback(self, tmp_path):
        chain = random_chain(12, seed=ILP_SEED, decay=0.2)
        clean = madpipe(chain, ILP_PLAT, grid=COARSE, iterations=6, ilp_time_limit=15)
        assert clean.ilp is not None and clean.status == "ok"
        faults.install([Fault(site="milp_solve", action="timeout", times=-1)], tmp_path)
        res = madpipe(chain, ILP_PLAT, grid=COARSE, iterations=6, ilp_time_limit=15)
        faults.clear()
        assert res.status == "degraded"
        assert res.feasible and res.period < INF
        assert res.allocation.is_contiguous()  # the 1F1B* fallback
        assert any("timeout" in n for n in res.notes)

    @pytest.mark.faultinject
    def test_madpipe_timeout_without_fallback_is_solver_timeout(self, tmp_path):
        # tighter memory: the contiguous restriction is infeasible, so no
        # fallback exists — the status must still not claim "infeasible"
        chain = random_chain(12, seed=1, decay=0.2)
        plat = Platform.of(4, 0.6, 12)
        faults.install([Fault(site="milp_solve", action="timeout", times=-1)], tmp_path)
        res = madpipe(chain, plat, grid=COARSE, iterations=6, ilp_time_limit=15)
        faults.clear()
        assert not res.feasible
        assert res.status == "solver_timeout"


class TestKillAndResume:
    @pytest.mark.faultinject
    def test_killed_sweep_resumes_identically(self, tmp_path):
        """Acceptance: kill a sweep mid-run, resume, get the exact result
        set of an uninterrupted run — no losses, no duplicates."""
        cache_path = tmp_path / "grid.jsonl"
        faults.install(
            # hard-kill the process right after the 4th record is flushed
            [Fault(site="sweep_record", action="exit", after=3, times=1, param=86)],
            tmp_path / "state",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "sweep",
                "--networks", "toy5", "--procs", "2",
                "--memories", "0.25", "0.5", "1.0", "--bandwidths", "12",
                "--out", str(cache_path), "--flush-every", "1",
                "--grid", "coarse", "--iterations", "4",
                "--ilp-time-limit", "10", "--quiet",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        faults.clear()
        assert proc.returncode == 86, proc.stderr
        killed = ResultCache(cache_path)
        assert 0 < len(killed) < N_TOY  # died mid-run with a partial cache

        # resume against the same cache, then compare with a fresh run
        resumed = toy_sweep(cache=ResultCache(cache_path))
        fresh = toy_sweep(cache=ResultCache(tmp_path / "fresh.jsonl"))
        assert result_map(resumed) == result_map(fresh)

        report = verify_cache(cache_path)
        assert report["clean"]
        assert report["records"] == N_TOY
        assert report["duplicate_keys"] == 0

    def test_resume_skips_completed_instances(self, tmp_path, monkeypatch):
        cache_path = tmp_path / "grid.jsonl"
        toy_sweep(cache=ResultCache(cache_path))

        calls = []
        import repro.experiments.harness as harness

        def counting_run_spec(spec, *a, **kw):
            calls.append(spec)
            raise AssertionError("cached instance re-ran")

        monkeypatch.setattr(harness, "_run_spec", counting_run_spec)
        again = toy_sweep(cache=ResultCache(cache_path))
        assert calls == []
        assert len(again) == N_TOY

    @pytest.mark.faultinject
    def test_retry_failed_reruns_only_failures(self, tmp_path):
        cache_path = tmp_path / "grid.jsonl"
        faults.install(
            [Fault(site="worker", action="raise", key="madpipe", times=-1)], tmp_path
        )
        with_errors = toy_sweep(
            cache=ResultCache(cache_path),
            max_retries=0,
            retry_backoff_s=0.01,
            on_exhausted="record",
        )
        assert sum(1 for r in with_errors if r.status == "error") == 3
        faults.clear()

        # without retry_failed the error records are treated as cached
        kept = toy_sweep(cache=ResultCache(cache_path))
        assert sum(1 for r in kept if r.status == "error") == 3
        # with retry_failed (--resume) they are re-run and now succeed
        healed = toy_sweep(cache=ResultCache(cache_path), retry_failed=True)
        assert all(r.status in ("ok", "infeasible") for r in healed)
        assert verify_cache(cache_path)["duplicate_keys"] == 0


class TestCLIStats:
    @pytest.mark.faultinject
    def test_schedule_stats_surfaces_degradation(self, tmp_path, capsys):
        """Acceptance: a forced HiGHS time limit shows up in
        ``repro schedule --stats`` as a degraded result with the failure
        reason, and the reported period is the certified fallback."""
        profile = tmp_path / "chain.json"
        save_chain(random_chain(12, seed=ILP_SEED, decay=0.2), profile)
        faults.install([Fault(site="milp_solve", action="timeout", times=-1)], tmp_path)
        rc = cli_main(
            [
                "schedule", str(profile), "-p", "4", "-m", "0.8", "-b", "12",
                "--grid", "coarse", "--iterations", "6",
                "--ilp-time-limit", "15", "--stats",
            ]
        )
        faults.clear()
        out = capsys.readouterr().out
        assert rc == 0  # the fallback schedule is valid
        assert "result status: degraded" in out
        assert "timeout" in out
        assert "milp probes" in out.lower() or "MILP probes" in out

    def test_schedule_stats_reports_infeasible_reason(self, tmp_path, capsys):
        profile = tmp_path / "chain.json"
        save_chain(uniform_chain(4, u_f=1.0, u_b=2.0, weights=512 * MB,
                                 activation=64 * MB), profile)
        rc = cli_main(
            [
                "schedule", str(profile), "-p", "2", "-m", "0.1", "-b", "12",
                "--grid", "coarse", "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "[infeasible]" in out
        assert "result status: infeasible" in out
