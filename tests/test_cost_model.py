"""Cost model and profile persistence tests."""

import pytest

from repro.models import vgg16, linearize, random_chain
from repro.models.graph import ModelGraph
from repro.models.layers import Conv2d, ReLU
from repro.profiling import (
    RTX8000,
    V100,
    DeviceSpec,
    dumps_chain,
    load_chain,
    loads_chain,
    profile_model,
    save_chain,
)


class TestDeviceSpec:
    def test_duration_roofline(self):
        dev = DeviceSpec("toy", peak_flops=1e12, mem_bandwidth=1e11, kernel_overhead=0.0)
        # compute-bound conv: 1e12 flops at 50% eff -> 2s; traffic negligible
        assert dev.duration("Conv2d", 1e12, 1e3) == pytest.approx(
            1e12 / (1e12 * dev.eff("Conv2d"))
        )
        # memory-bound relu: 1e10 bytes / 1e11 B/s = 0.1 s
        assert dev.duration("ReLU", 1e3, 1e10) == pytest.approx(0.1)

    def test_overhead_added(self):
        dev = DeviceSpec("toy", peak_flops=1e12, mem_bandwidth=1e11, kernel_overhead=1e-5)
        assert dev.duration("ReLU", 0.0, 0.0) == pytest.approx(1e-5)

    def test_unknown_type_default_eff(self):
        assert V100.eff("SomethingNew") == 0.10

    def test_invalid_device(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", peak_flops=0, mem_bandwidth=1)
        with pytest.raises(ValueError):
            DeviceSpec("bad", peak_flops=1, mem_bandwidth=1, kernel_overhead=-1)

    def test_builtin_devices_differ(self):
        assert V100.peak_flops != RTX8000.peak_flops


class TestProfileModel:
    def small_graph(self) -> ModelGraph:
        g = ModelGraph("t")
        x = g.input((3, 32, 32))
        x = g.add_layer(Conv2d(8, 3, padding=1), x, name="conv")
        g.add_layer(ReLU(), x, name="relu")
        return g

    def test_annotations_present(self):
        g = self.small_graph()
        profile_model(g, V100, 4)
        for n in g.g:
            data = g.g.nodes[n]
            assert "u_f" in data and "u_b" in data
            assert data["u_f"] >= 0 and data["u_b"] >= 0
            assert "act_bytes" in data and "weight_bytes" in data

    def test_input_node_free(self):
        g = self.small_graph()
        profile_model(g, V100, 4)
        assert g.g.nodes[g.source]["u_f"] == 0.0

    def test_durations_scale_with_batch(self):
        g1, g2 = self.small_graph(), self.small_graph()
        profile_model(g1, V100, 1)
        profile_model(g2, V100, 64)
        conv1 = [n for n in g1.g if "conv" in n][0]
        assert g2.g.nodes[conv1]["u_f"] > g1.g.nodes[conv1]["u_f"]
        assert g2.g.nodes[conv1]["act_bytes"] == 64 * g1.g.nodes[conv1]["act_bytes"]

    def test_backward_at_least_forward_for_conv(self):
        g = vgg16(image_size=64)
        profile_model(g, V100, 2)
        for n in g.g:
            if "conv" in n:
                assert g.g.nodes[n]["u_b"] >= g.g.nodes[n]["u_f"]

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            profile_model(self.small_graph(), V100, 0)


class TestProfileIO:
    def test_json_roundtrip_string(self):
        chain = random_chain(6, seed=3)
        clone = loads_chain(dumps_chain(chain))
        assert clone.L == chain.L
        assert clone.total_compute() == pytest.approx(chain.total_compute())

    def test_file_roundtrip(self, tmp_path):
        g = vgg16(image_size=64)
        profile_model(g, V100, 2)
        chain = linearize(g)
        path = tmp_path / "vgg.json"
        save_chain(chain, path)
        clone = load_chain(path)
        assert clone.L == chain.L
        assert clone.name == chain.name
        for l in range(chain.L + 1):
            assert clone.activation(l) == chain.activation(l)
