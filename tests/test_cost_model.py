"""Cost model and profile persistence tests."""

import json

import numpy as np
import pytest

from repro.models import vgg16, linearize, random_chain
from repro.models.graph import ModelGraph
from repro.models.layers import Conv2d, ReLU
from repro.profiling import (
    RTX8000,
    V100,
    DeviceSpec,
    LayerNoiseModel,
    NoiseModel,
    ProfileError,
    dumps_chain,
    load_chain,
    loads_chain,
    profile_model,
    save_chain,
)


class TestDeviceSpec:
    def test_duration_roofline(self):
        dev = DeviceSpec("toy", peak_flops=1e12, mem_bandwidth=1e11, kernel_overhead=0.0)
        # compute-bound conv: 1e12 flops at 50% eff -> 2s; traffic negligible
        assert dev.duration("Conv2d", 1e12, 1e3) == pytest.approx(
            1e12 / (1e12 * dev.eff("Conv2d"))
        )
        # memory-bound relu: 1e10 bytes / 1e11 B/s = 0.1 s
        assert dev.duration("ReLU", 1e3, 1e10) == pytest.approx(0.1)

    def test_overhead_added(self):
        dev = DeviceSpec("toy", peak_flops=1e12, mem_bandwidth=1e11, kernel_overhead=1e-5)
        assert dev.duration("ReLU", 0.0, 0.0) == pytest.approx(1e-5)

    def test_unknown_type_default_eff(self):
        assert V100.eff("SomethingNew") == 0.10

    def test_invalid_device(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", peak_flops=0, mem_bandwidth=1)
        with pytest.raises(ValueError):
            DeviceSpec("bad", peak_flops=1, mem_bandwidth=1, kernel_overhead=-1)

    def test_builtin_devices_differ(self):
        assert V100.peak_flops != RTX8000.peak_flops


class TestProfileModel:
    def small_graph(self) -> ModelGraph:
        g = ModelGraph("t")
        x = g.input((3, 32, 32))
        x = g.add_layer(Conv2d(8, 3, padding=1), x, name="conv")
        g.add_layer(ReLU(), x, name="relu")
        return g

    def test_annotations_present(self):
        g = self.small_graph()
        profile_model(g, V100, 4)
        for n in g.g:
            data = g.g.nodes[n]
            assert "u_f" in data and "u_b" in data
            assert data["u_f"] >= 0 and data["u_b"] >= 0
            assert "act_bytes" in data and "weight_bytes" in data

    def test_input_node_free(self):
        g = self.small_graph()
        profile_model(g, V100, 4)
        assert g.g.nodes[g.source]["u_f"] == 0.0

    def test_durations_scale_with_batch(self):
        g1, g2 = self.small_graph(), self.small_graph()
        profile_model(g1, V100, 1)
        profile_model(g2, V100, 64)
        conv1 = [n for n in g1.g if "conv" in n][0]
        assert g2.g.nodes[conv1]["u_f"] > g1.g.nodes[conv1]["u_f"]
        assert g2.g.nodes[conv1]["act_bytes"] == 64 * g1.g.nodes[conv1]["act_bytes"]

    def test_backward_at_least_forward_for_conv(self):
        g = vgg16(image_size=64)
        profile_model(g, V100, 2)
        for n in g.g:
            if "conv" in n:
                assert g.g.nodes[n]["u_b"] >= g.g.nodes[n]["u_f"]

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            profile_model(self.small_graph(), V100, 0)


class TestProfileIO:
    def test_json_roundtrip_string(self):
        chain = random_chain(6, seed=3)
        clone = loads_chain(dumps_chain(chain))
        assert clone.L == chain.L
        assert clone.total_compute() == pytest.approx(chain.total_compute())

    def test_file_roundtrip(self, tmp_path):
        g = vgg16(image_size=64)
        profile_model(g, V100, 2)
        chain = linearize(g)
        path = tmp_path / "vgg.json"
        save_chain(chain, path)
        clone = load_chain(path)
        assert clone.L == chain.L
        assert clone.name == chain.name
        for l in range(chain.L + 1):
            assert clone.activation(l) == chain.activation(l)


class TestProfileErrors:
    """Every load failure surfaces as one typed ProfileError naming the
    source and field — never a raw KeyError/JSONDecodeError traceback."""

    def good(self) -> dict:
        return json.loads(dumps_chain(random_chain(3, seed=0)))

    def test_malformed_json_names_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"layers": [')
        with pytest.raises(ProfileError, match="broken.json.*invalid JSON"):
            load_chain(path)

    def test_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_chain(tmp_path / "absent.json")

    def test_missing_top_level_field(self):
        data = self.good()
        del data["input_activation"]
        with pytest.raises(ProfileError, match="'input_activation'") as exc:
            loads_chain(json.dumps(data))
        assert exc.value.field == "input_activation"

    def test_missing_layer_key(self):
        data = self.good()
        del data["layers"][1]["u_b"]
        with pytest.raises(ProfileError, match=r"layers\[1\].*u_b"):
            loads_chain(json.dumps(data))

    def test_unknown_layer_key_rejected(self):
        data = self.good()
        data["layers"][0]["extra"] = 1
        with pytest.raises(ProfileError, match=r"layers\[0\].*extra"):
            loads_chain(json.dumps(data))

    def test_nan_constant_rejected(self):
        data = self.good()
        data["layers"][0]["u_f"] = float("nan")
        text = json.dumps(data)  # emits a bare NaN token
        with pytest.raises(ProfileError, match="NaN"):
            loads_chain(text)

    def test_negative_duration_names_layer(self):
        data = self.good()
        data["layers"][2]["u_f"] = -0.5
        with pytest.raises(ProfileError, match=r"layers\[2\].*negative"):
            loads_chain(text := json.dumps(data))
        # the same failure through a file names the file
        with pytest.raises(ProfileError, match="bad.json"):
            loads_chain(text, source="bad.json")

    def test_empty_layers_rejected(self):
        with pytest.raises(ProfileError, match="layers"):
            loads_chain('{"layers": [], "input_activation": 1.0}')

    def test_non_object_rejected(self):
        with pytest.raises(ProfileError, match="object"):
            loads_chain("[1, 2, 3]")

    def test_profile_error_is_value_error(self):
        # existing `except ValueError` call sites must keep working
        assert issubclass(ProfileError, ValueError)


class TestNoiseModelEdgeCases:
    def test_zero_sigma_exactly_deterministic(self):
        chain = random_chain(5, seed=1)
        noise = NoiseModel(sigma_compute=0.0, sigma_activation=0.0, sigma_weight=0.0)
        draws = noise.draw(np.random.default_rng(0), 1, chain.L)
        out = noise.apply(chain, draws[0])
        for a, b in zip(out.layers, chain.layers):
            assert (a.u_f, a.u_b, a.weights, a.activation) == (
                b.u_f, b.u_b, b.weights, b.activation
            )
        assert out.input_activation == chain.input_activation

    def test_scalar_sigma_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma_compute=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(sigma_compute=float("nan"))
        with pytest.raises(ValueError):
            NoiseModel(distribution="gaussian")


class TestLayerNoiseModel:
    def model(self, L=4) -> LayerNoiseModel:
        return LayerNoiseModel(
            sigma_compute=tuple(0.01 * (i + 1) for i in range(L)),
            sigma_activation=tuple(0.02 * (i + 1) for i in range(L + 1)),
            sigma_weight=(0.0,) * L,
        )

    def test_length_mismatches_rejected(self):
        with pytest.raises(ValueError, match="sigma_weight"):
            LayerNoiseModel(
                sigma_compute=(0.1, 0.1),
                sigma_activation=(0.1, 0.1, 0.1),
                sigma_weight=(0.1,),
            )
        with pytest.raises(ValueError, match="sigma_activation"):
            LayerNoiseModel(
                sigma_compute=(0.1, 0.1),
                sigma_activation=(0.1, 0.1),
                sigma_weight=(0.1, 0.1),
            )
        with pytest.raises(ValueError, match="per-layer"):
            LayerNoiseModel(
                sigma_compute=0.1, sigma_activation=0.1, sigma_weight=0.1
            )
        with pytest.raises(ValueError, match="at least one layer"):
            LayerNoiseModel(
                sigma_compute=(), sigma_activation=(0.1,), sigma_weight=()
            )

    def test_wrong_chain_length_rejected(self):
        chain = random_chain(6, seed=0)
        noise = self.model(L=4)
        draws = noise.draw(np.random.default_rng(0), 1, chain.L)
        with pytest.raises(ValueError, match="calibrated for 4"):
            noise.apply(chain, draws[0])

    def test_same_seed_bit_reproducible(self):
        chain = random_chain(4, seed=2)
        noise = self.model(L=4)

        def one():
            rng = np.random.default_rng(42)
            return noise.apply(chain, noise.draw(rng, 3, chain.L)[2])

        a, b = one(), one()
        for la, lb in zip(a.layers, b.layers):
            assert (la.u_f, la.u_b, la.weights, la.activation) == (
                lb.u_f, lb.u_b, lb.weights, lb.activation
            )
        assert a.input_activation == b.input_activation

    def test_uniform_matches_scalar_bit_for_bit(self):
        chain = random_chain(5, seed=3)
        base = NoiseModel(sigma_compute=0.07, sigma_activation=0.03, sigma_weight=0.01)
        per_layer = LayerNoiseModel.uniform(base, chain.L)
        draws = base.draw(np.random.default_rng(7), 4, chain.L)
        for i in range(4):
            a = base.apply(chain, draws[i])
            b = per_layer.apply(chain, draws[i])
            for la, lb in zip(a.layers, b.layers):
                assert (la.u_f, la.u_b, la.weights, la.activation) == (
                    lb.u_f, lb.u_b, lb.weights, lb.activation
                )
            assert a.input_activation == b.input_activation

    def test_to_from_dict_roundtrip(self):
        noise = self.model()
        clone = LayerNoiseModel.from_dict(noise.to_dict())
        assert clone == noise
        assert clone.to_dict()["per_layer"] is True
        with pytest.raises(ValueError):
            LayerNoiseModel.from_dict({"sigma_compute": [0.1]})
