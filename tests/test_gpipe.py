"""Tests for the GPipe fill-drain baseline."""

import pytest

from repro.algorithms import gpipe
from repro.algorithms.gpipe import gpipe_period
from repro.core import Partitioning, Platform


MB = float(2**20)


class TestGPipePeriod:
    def test_bubble_formula(self, uniform8, roomy4):
        part = Partitioning.from_cuts(8, [2, 4, 6])
        # uniform: bottleneck stage load 6/m, bubble factor (m + n - 1)
        for m in (1, 2, 4, 8):
            expected = (6.0 / m) * (m + 3)
            got = gpipe_period(uniform8, roomy4, part, m)
            assert got == pytest.approx(expected, rel=0.05)

    def test_more_microbatches_less_bubble(self, uniform8, roomy4):
        part = Partitioning.from_cuts(8, [2, 4, 6])
        p2 = gpipe_period(uniform8, roomy4, part, 2)
        p8 = gpipe_period(uniform8, roomy4, part, 8)
        assert p8 < p2

    def test_single_stage_no_bubble(self, uniform8, roomy4):
        part = Partitioning.from_cuts(8, [])
        assert gpipe_period(uniform8, roomy4, part, 4) == pytest.approx(24.0)


class TestGPipe:
    def test_feasible_roomy(self, uniform8, roomy4):
        res = gpipe(uniform8, roomy4, micro_batches=4)
        assert res.feasible
        assert res.period > 0

    def test_infeasible_tiny_memory(self, uniform8):
        tiny = Platform.of(2, 1 * MB / 2**30, 12)
        res = gpipe(uniform8, tiny)
        assert not res.feasible

    def test_worse_than_pipedream_steady_state(self, cnnlike16, roomy4):
        """GPipe's bubble makes its per-batch period worse than the
        bubble-free 1F1B* pipeline at the same partitioning."""
        from repro.algorithms import pipedream

        pd = pipedream(cnnlike16, roomy4)
        gp = gpipe(cnnlike16, roomy4, micro_batches=4)
        assert gp.period > pd.period
