"""Tests for the discrete-event simulator and validator."""

import pytest

from repro.algorithms import min_feasible_period
from repro.core import Partitioning, PatternError, Platform

from repro.sim import simulate, verify_pattern

MB = float(2**20)


@pytest.fixture
def schedule(cnnlike16, roomy4):
    part = Partitioning.from_cuts(16, [4, 8, 12])
    res = min_feasible_period(cnnlike16, roomy4, part)
    assert res is not None
    return res


class TestSimulate:
    def test_clean_run(self, cnnlike16, roomy4, schedule):
        rep = simulate(cnnlike16, roomy4, schedule.pattern, periods=10)
        assert rep.ok
        assert rep.completed_batches > 0

    def test_steady_throughput_matches_period(self, cnnlike16, roomy4, schedule):
        rep = simulate(cnnlike16, roomy4, schedule.pattern, periods=20)
        assert rep.steady_throughput == pytest.approx(
            1.0 / schedule.period, rel=0.15
        )

    def test_warmup_skips_negative_batches(self, cnnlike16, roomy4, schedule):
        rep = simulate(cnnlike16, roomy4, schedule.pattern, periods=4)
        assert all(e.batch >= 0 for e in rep.executions)

    def test_sim_peak_matches_analytic(self, cnnlike16, roomy4, schedule):
        rep = simulate(cnnlike16, roomy4, schedule.pattern, periods=15)
        analytic = schedule.pattern.memory_peaks(cnnlike16)
        for p, m in rep.peak_memory.items():
            assert m == pytest.approx(analytic[p], rel=1e-9)

    def test_detects_dependency_violation(self, cnnlike16, roomy4, schedule):
        pat = schedule.pattern
        pat.ops[("B", 3)].shift -= 1  # backward now runs before its forward
        rep = simulate(cnnlike16, roomy4, pat, periods=8)
        assert not rep.ok
        assert any("dependency" in v or "producer" in v for v in rep.violations)

    def test_detects_overlap(self, cnnlike16, roomy4, schedule):
        pat = schedule.pattern
        f = pat.ops[("F", 0)]
        pat.ops[("B", 0)].start = f.start + f.duration / 2
        rep = simulate(cnnlike16, roomy4, pat, periods=6)
        assert not rep.ok
        assert any("overlaps" in v for v in rep.violations)

    def test_detects_memory_overflow(self, cnnlike16, schedule):
        # re-check the same pattern against a platform with less memory
        needed = max(schedule.memory.values())
        tight = Platform.of(4, needed * 0.9 / 2**30, 12)
        rep = simulate(cnnlike16, tight, schedule.pattern, periods=10)
        assert any("memory" in v for v in rep.violations)

    def test_memory_timeline_monotone_events(self, cnnlike16, roomy4, schedule):
        rep = simulate(cnnlike16, roomy4, schedule.pattern, periods=6)
        for steps in rep.memory_timeline.values():
            times = [t for t, _ in steps]
            assert times == sorted(times)


class TestVerifyPattern:
    def test_accepts_valid(self, cnnlike16, roomy4, schedule):
        rep = verify_pattern(cnnlike16, roomy4, schedule.pattern)
        assert rep.ok

    def test_rejects_corrupted(self, cnnlike16, roomy4, schedule):
        pat = schedule.pattern
        pat.ops[("F", 2)].start += pat.period / 3  # breaks exclusivity or deps
        with pytest.raises(PatternError):
            verify_pattern(cnnlike16, roomy4, pat)

    def test_default_period_count_covers_pipeline(self, uniform8, roomy4):
        part = Partitioning.from_cuts(8, [2, 4, 6])
        res = min_feasible_period(uniform8, roomy4, part)
        rep = verify_pattern(uniform8, roomy4, res.pattern)
        max_shift = max(op.shift for op in res.pattern.ops.values())
        assert rep.horizon == pytest.approx((max_shift + 5) * res.period)
