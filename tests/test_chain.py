"""Unit tests for the chain model (paper §3 notation)."""

import math

import pytest

from repro.core import Chain, LayerProfile

MB = float(2**20)


class TestLayerProfile:
    def test_valid(self):
        l = LayerProfile("x", 1.0, 2.0, 3.0, 4.0)
        assert l.u_f == 1.0 and l.u_b == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(u_f=-1.0, u_b=1.0, weights=1.0, activation=1.0),
            dict(u_f=1.0, u_b=-1.0, weights=1.0, activation=1.0),
            dict(u_f=1.0, u_b=1.0, weights=-1.0, activation=1.0),
            dict(u_f=1.0, u_b=1.0, weights=1.0, activation=-1.0),
        ],
    )
    def test_negative_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LayerProfile("x", **kwargs)


class TestChainBasics:
    def test_length(self, tiny_chain):
        assert len(tiny_chain) == 4
        assert tiny_chain.L == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Chain(layers=[], input_activation=1.0)

    def test_negative_input_activation_rejected(self):
        with pytest.raises(ValueError):
            Chain(
                layers=[LayerProfile("a", 1, 1, 1, 1)],
                input_activation=-1.0,
            )

    def test_layer_accessors(self, tiny_chain):
        assert tiny_chain.u_f(1) == 1.0
        assert tiny_chain.u_b(2) == 3.0
        assert tiny_chain.weight(3) == 30 * MB
        assert tiny_chain.layer(4).name == "d"

    def test_activation_indices(self, tiny_chain):
        assert tiny_chain.activation(0) == 50 * MB  # input
        assert tiny_chain.activation(4) == 10 * MB
        with pytest.raises(IndexError):
            tiny_chain.activation(5)
        with pytest.raises(IndexError):
            tiny_chain.activation(-1)

    @pytest.mark.parametrize("l", [0, 5, -1])
    def test_layer_bounds(self, tiny_chain, l):
        with pytest.raises(IndexError):
            tiny_chain.u_f(l)


class TestRangeQueries:
    def test_U_matches_naive(self, tiny_chain):
        for k in range(1, 5):
            for l in range(k, 5):
                naive = sum(
                    tiny_chain.u_f(i) + tiny_chain.u_b(i) for i in range(k, l + 1)
                )
                assert tiny_chain.U(k, l) == pytest.approx(naive)

    def test_U_empty_range(self, tiny_chain):
        assert tiny_chain.U(3, 2) == 0.0

    def test_forward_backward_split(self, tiny_chain):
        assert tiny_chain.U(1, 4) == pytest.approx(
            tiny_chain.U_f(1, 4) + tiny_chain.U_b(1, 4)
        )
        assert tiny_chain.U_f(2, 3) == pytest.approx(3.5)
        assert tiny_chain.U_b(2, 3) == pytest.approx(5.5)

    def test_weights_range(self, tiny_chain):
        assert tiny_chain.weights(1, 4) == 100 * MB
        assert tiny_chain.weights(2, 3) == 50 * MB

    def test_stored_activations_is_input_sum(self, tiny_chain):
        # layers 2..3 store a1 + a2 = 40 + 30 MB
        assert tiny_chain.stored_activations(2, 3) == 70 * MB
        # layer 1 stores the network input a0
        assert tiny_chain.stored_activations(1, 1) == 50 * MB

    def test_total_compute(self, tiny_chain):
        assert tiny_chain.total_compute() == pytest.approx(13.5)


class TestComm:
    def test_comm_time_formula(self, tiny_chain):
        beta = 12 * 2**30
        assert tiny_chain.comm_time(1, beta) == pytest.approx(2 * 40 * MB / beta)

    def test_chain_ends_have_no_comm(self, tiny_chain):
        assert tiny_chain.comm_time(0, 1.0) == 0.0
        assert tiny_chain.comm_time(4, 1.0) == 0.0

    def test_total_comm(self, tiny_chain):
        beta = 1e9
        expected = sum(tiny_chain.comm_time(l, beta) for l in (1, 2, 3))
        assert tiny_chain.total_comm(beta) == pytest.approx(expected)

    def test_bad_bandwidth(self, tiny_chain):
        with pytest.raises(ValueError):
            tiny_chain.comm_time(1, 0.0)


class TestSubchainAndSerialization:
    def test_subchain(self, tiny_chain):
        sub = tiny_chain.subchain(2, 3)
        assert sub.L == 2
        assert sub.activation(0) == tiny_chain.activation(1)
        assert sub.total_compute() == pytest.approx(tiny_chain.U(2, 3))

    def test_subchain_empty_rejected(self, tiny_chain):
        with pytest.raises(ValueError):
            tiny_chain.subchain(3, 2)

    def test_dict_roundtrip(self, tiny_chain):
        clone = Chain.from_dict(tiny_chain.to_dict())
        assert clone.L == tiny_chain.L
        assert clone.total_compute() == pytest.approx(tiny_chain.total_compute())
        assert clone.activation(0) == tiny_chain.activation(0)
        assert [l.name for l in clone.layers] == [l.name for l in tiny_chain.layers]

    def test_prefix_sums_finite(self, cnnlike16):
        assert math.isfinite(cnnlike16.total_compute())
        assert cnnlike16.total_compute() > 0


class TestNonFiniteRejection:
    @pytest.mark.parametrize("field", ["u_f", "u_b", "weights", "activation"])
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_layer_rejects_non_finite(self, field, bad):
        kwargs = dict(u_f=1.0, u_b=2.0, weights=3.0, activation=4.0)
        kwargs[field] = bad
        with pytest.raises(ValueError, match="non-finite"):
            LayerProfile("x", **kwargs)

    def test_layer_rejects_non_numbers(self):
        with pytest.raises(ValueError, match="must be a number"):
            LayerProfile("x", u_f="fast", u_b=1.0, weights=1.0, activation=1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "big", None])
    def test_chain_rejects_bad_input_activation(self, bad):
        layers = [LayerProfile("a", 1.0, 2.0, 1.0, 1.0)]
        with pytest.raises(ValueError):
            Chain(layers=layers, input_activation=bad)
