"""Tests for the batch-size capacity advisor."""

import pytest

from repro.algorithms import Discretization, max_feasible_batch
from repro.core import Chain, LayerProfile, Platform

MB = float(2**20)
COARSE = Discretization.coarse()


def chain_for_batch(b: int) -> Chain:
    """Synthetic profile whose compute and activations scale with b."""
    layers = [
        LayerProfile(
            f"l{i}",
            u_f=0.01 * b,
            u_b=0.02 * b,
            weights=4 * MB,
            activation=16 * MB * b,
        )
        for i in range(8)
    ]
    return Chain(layers, input_activation=16 * MB * b, name=f"b{b}")


class TestMaxFeasibleBatch:
    def test_finds_boundary(self):
        plat = Platform.of(2, 1.0, 12)
        advice = max_feasible_batch(
            chain_for_batch, plat, max_batch=64, grid=COARSE, iterations=4
        )
        assert advice.feasible
        b = advice.batch_size
        assert 1 <= b < 64
        # one more sample must not fit (bisection boundary)
        from repro.algorithms import madpipe

        beyond = madpipe(
            chain_for_batch(b + 1), plat, grid=COARSE, iterations=4
        )
        assert not beyond.feasible

    def test_roomy_platform_hits_cap(self):
        plat = Platform.of(2, 1024.0, 12)
        advice = max_feasible_batch(
            chain_for_batch, plat, max_batch=16, grid=COARSE, iterations=4
        )
        assert advice.batch_size == 16

    def test_hopeless_platform(self):
        plat = Platform.of(2, 0.001, 12)
        advice = max_feasible_batch(
            chain_for_batch, plat, max_batch=8, grid=COARSE, iterations=4
        )
        assert not advice.feasible
        assert advice.batch_size == 0

    def test_samples_per_second(self):
        plat = Platform.of(2, 1024.0, 12)
        advice = max_feasible_batch(
            chain_for_batch, plat, max_batch=4, grid=COARSE, iterations=4
        )
        assert advice.samples_per_second == pytest.approx(
            4 / advice.result.period
        )

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            max_feasible_batch(chain_for_batch, Platform.of(2, 1, 12), max_batch=0)

    def test_probe_trace(self):
        plat = Platform.of(2, 1.0, 12)
        advice = max_feasible_batch(
            chain_for_batch, plat, max_batch=32, grid=COARSE, iterations=4
        )
        probed = [b for b, _ in advice.probes]
        assert probed[0] == 1 and probed[1] == 32
        assert len(probed) >= 3
