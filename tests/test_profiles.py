"""Measured-profile ingestion and calibration tests.

Covers the robustness contract of :mod:`repro.profiles`: strict schema
validation, corrupt-line quarantine with sidecars and counters,
MAD-based outlier rejection, min-sample fallback with loud ``degraded``
marking, byte-identical reruns, and the CLI front ends (``repro
ingest`` / ``repro certify --traces``).
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.models import generate_traces, random_chain, uniform_chain
from repro.profiles import (
    SCHEMA_VERSION,
    CalibrationResult,
    TraceRecord,
    calibrate,
    fit_lognormal_sigma,
    ingest_traces,
    mad_filter,
    parse_record,
    record_from_csv_row,
)
from repro.profiling import LayerNoiseModel, NoiseModel, ProfileError
from repro.testing import faults
from repro.testing.faults import Fault


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def record(run=0, layer="l1", u_f=0.1, u_b=0.2, **extra) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "run": run,
        "layer": layer,
        "u_f": u_f,
        "u_b": u_b,
        **extra,
    }


# -------------------------------------------------------------- schema


class TestSchema:
    def test_minimal_record(self):
        r = parse_record(record())
        assert r == TraceRecord(run=0, layer="l1", u_f=0.1, u_b=0.2)
        assert r.weights is None and r.activation is None

    def test_unit_normalization(self):
        r = parse_record(record(u_f=3.0, u_b=5.0, time_unit="ms"))
        assert r.u_f == pytest.approx(3e-3)
        assert r.u_b == pytest.approx(5e-3)
        with pytest.raises(ProfileError, match="time unit"):
            parse_record(record(time_unit="minutes"))

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"schema": 2}, "schema version"),
            ({"schema": True}, "schema version"),
            ({"run": -1}, "run"),
            ({"run": 1.5}, "run"),
            ({"layer": ""}, "layer"),
            ({"u_f": float("nan")}, "non-finite"),
            ({"u_b": float("inf")}, "non-finite"),
            ({"u_f": -0.1}, "negative"),
            ({"u_f": "fast"}, "number"),
            ({"weights": -1.0}, "negative"),
            ({"surprise": 1}, "unknown fields"),
        ],
    )
    def test_rejections(self, mutation, match):
        with pytest.raises(ProfileError, match=match):
            parse_record({**record(), **mutation})

    def test_missing_fields_listed(self):
        with pytest.raises(ProfileError, match=r"\['u_f', 'u_b'\]"):
            parse_record({"schema": SCHEMA_VERSION, "run": 0, "layer": "l1"})

    def test_non_object_rejected(self):
        with pytest.raises(ProfileError, match="object"):
            parse_record([1, 2])

    def test_error_names_source(self):
        with pytest.raises(ProfileError, match="run7.jsonl"):
            parse_record({**record(), "u_f": -1}, source="run7.jsonl")

    def test_csv_row_parsing(self):
        row = {
            "schema": str(SCHEMA_VERSION), "run": "2", "layer": "l3",
            "u_f": "0.25", "u_b": "0.5", "weights": "", "activation": "1e6",
            "time_unit": "",
        }
        r = record_from_csv_row(row)
        assert r.run == 2 and r.layer == "l3"
        assert r.weights is None and r.activation == 1e6

    def test_csv_bad_number(self):
        row = {
            "schema": str(SCHEMA_VERSION), "run": "0", "layer": "l1",
            "u_f": "fast", "u_b": "0.5",
        }
        with pytest.raises(ProfileError, match="u_f"):
            record_from_csv_row(row)

    def test_csv_extra_cells_rejected(self):
        with pytest.raises(ProfileError, match="extra cell"):
            record_from_csv_row({**{k: "" for k in ("u_f",)}, None: ["x"]})


# ------------------------------------------------------------ robust stats


class TestRobustStats:
    def test_mad_filter_drops_spike(self):
        xs = [1.0, 1.01, 0.99, 1.02, 25.0]
        kept, rejected = mad_filter(xs, mad_k=5.0)
        assert rejected == 1 and 25.0 not in kept

    def test_mad_filter_zero_spread_keeps_all(self):
        xs = [1.0, 1.0, 1.0, 1.0, 2.0]
        kept, rejected = mad_filter(xs, mad_k=5.0)
        assert rejected == 0 and len(kept) == 5

    def test_sigma_fit_zero_spread(self):
        assert fit_lognormal_sigma([2.0, 2.0, 2.0]) == 0.0
        assert fit_lognormal_sigma([2.0]) is None
        assert fit_lognormal_sigma([0.0, 0.0]) is None


# ------------------------------------------------------------- ingestion


class TestIngestion:
    def traces(self, tmp_path, chain=None, **kw):
        chain = chain or random_chain(5, seed=1, name="t5")
        out = tmp_path / "traces"
        generate_traces(chain, out, runs=5, seed=11, **kw)
        return chain, out

    def test_clean_ingest(self, tmp_path):
        chain, d = self.traces(tmp_path)
        ts = ingest_traces(d)
        assert ts.n_records == 5 * chain.L
        assert ts.n_quarantined == 0
        assert ts.runs == (0, 1, 2, 3, 4)

    def test_corruption_quarantined_not_fatal(self, tmp_path):
        chain, d = self.traces(
            tmp_path, corrupt_lines=2, nan_records=2, csv_runs=1
        )
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            ts = ingest_traces(d)
        assert ts.n_quarantined == 4
        assert ts.n_records == 5 * chain.L - 2  # NaN records dropped
        assert registry.get("ingest.quarantined") == 4
        assert registry.get("ingest.records") == ts.n_records
        # every quarantined line landed in a sidecar next to its file
        sidecars = sorted(d.glob("*.quarantine"))
        assert sidecars
        text = "".join(p.read_text() for p in sidecars)
        assert text.count("# line") == 4

    def test_trace_files_never_rewritten(self, tmp_path):
        _, d = self.traces(tmp_path, corrupt_lines=3)

        def snapshot():
            return {
                p.name: p.read_bytes()
                for ext in ("*.jsonl", "*.csv")
                for p in sorted(d.glob(ext))
            }

        before = snapshot()
        ingest_traces(d)
        assert snapshot() == before

    def test_rerun_byte_identical(self, tmp_path):
        chain, d = self.traces(
            tmp_path, corrupt_lines=2, nan_records=1, outlier_records=2,
            csv_runs=2,
        )
        a = calibrate(chain, ingest_traces(d)).to_dict()
        b = calibrate(chain, ingest_traces(d)).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_generator_seed_determinism(self, tmp_path):
        chain = random_chain(4, seed=2)
        generate_traces(chain, tmp_path / "a", runs=3, seed=5, corrupt_lines=1)
        generate_traces(chain, tmp_path / "b", runs=3, seed=5, corrupt_lines=1)
        for pa, pb in zip(
            sorted((tmp_path / "a").iterdir()), sorted((tmp_path / "b").iterdir())
        ):
            assert pa.read_bytes() == pb.read_bytes()

    def test_csv_and_jsonl_agree(self, tmp_path):
        chain = uniform_chain(3, u_f=0.1, u_b=0.2, weights=1e6, activation=2e6)
        generate_traces(
            chain, tmp_path / "j", runs=4, seed=9,
            noise=NoiseModel(0.0, 0.0, 0.0), csv_runs=0,
        )
        generate_traces(
            chain, tmp_path / "c", runs=4, seed=9,
            noise=NoiseModel(0.0, 0.0, 0.0), csv_runs=4,
        )
        tj = ingest_traces(tmp_path / "j")
        tc = ingest_traces(tmp_path / "c")
        assert sorted(map(repr, tj.records)) == sorted(map(repr, tc.records))

    def test_missing_dir_and_empty_dir(self, tmp_path):
        with pytest.raises(ProfileError, match="does not exist"):
            ingest_traces(tmp_path / "nope")
        (tmp_path / "empty").mkdir()
        with pytest.raises(ProfileError, match="no .* trace files"):
            ingest_traces(tmp_path / "empty")

    @pytest.mark.faultinject
    def test_injected_record_fault_quarantines(self, tmp_path):
        chain, d = self.traces(tmp_path)
        faults.install(
            [Fault(site="ingest_record", action="fail", times=3)],
            tmp_path / "state",
        )
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            ts = ingest_traces(d)
        assert ts.n_quarantined == 3
        assert ts.n_records == 5 * chain.L - 3
        assert registry.get("ingest.quarantined") == 3
        assert any("injected ingest fault" in reason for _, _, reason in ts.quarantined)

    @pytest.mark.faultinject
    def test_injected_file_fault_raises(self, tmp_path):
        _, d = self.traces(tmp_path)
        faults.install(
            [Fault(site="ingest_file", action="raise", times=1)],
            tmp_path / "state",
        )
        with pytest.raises(faults.FaultInjected):
            ingest_traces(d)


# ------------------------------------------------------------ calibration


class TestCalibration:
    def test_medians_recover_truth_under_outliers(self, tmp_path):
        chain = uniform_chain(4, u_f=0.1, u_b=0.2, weights=1e6, activation=2e6)
        generate_traces(
            chain, tmp_path / "t", runs=15, seed=3,
            noise=NoiseModel(sigma_compute=0.01, sigma_activation=0.01),
            outlier_records=3, outlier_scale=40.0,
        )
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            cal = calibrate(chain, ingest_traces(tmp_path / "t"))
        assert not cal.degraded
        assert registry.get("ingest.rejected") > 0
        # 40x outliers survive in no column: medians stay near truth
        for layer, ref in zip(cal.chain.layers, chain.layers):
            assert layer.u_f == pytest.approx(ref.u_f, rel=0.05)
            assert layer.u_b == pytest.approx(ref.u_b, rel=0.05)

    def test_fitted_noise_tracks_injected_noise(self, tmp_path):
        chain = uniform_chain(3, u_f=0.1, u_b=0.2, weights=1e6, activation=2e6)
        generate_traces(
            chain, tmp_path / "t", runs=64, seed=4,
            noise=NoiseModel(sigma_compute=0.1, sigma_activation=0.05),
        )
        cal = calibrate(chain, ingest_traces(tmp_path / "t"))
        assert isinstance(cal.noise, LayerNoiseModel)
        assert cal.noise.n_layers == chain.L
        for s in cal.noise.sigma_compute:
            assert 0.05 < s < 0.2  # rough consistency, 64 samples
        for s in cal.noise.sigma_activation[1:]:
            assert 0.02 < s < 0.1

    def test_missing_layer_falls_back_degraded(self, tmp_path):
        chain = random_chain(5, seed=6, name="t5")
        generate_traces(
            chain, tmp_path / "t", runs=5, seed=7, missing_layers=("l3",)
        )
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            cal = calibrate(chain, ingest_traces(tmp_path / "t"))
        assert cal.degraded
        assert cal.fallback_layers == ("l3",)
        assert registry.get("ingest.fallback_layers") == 1
        cov = {c.layer: c for c in cal.coverage}
        assert cov["l3"].samples == 0
        assert set(cov["l3"].fallback) == {"u_f", "u_b", "weights", "activation"}
        # the under-covered layer keeps the baseline value and the
        # default sigma — never a blend
        l3 = next(la for la in cal.chain.layers if la.name == "l3")
        ref = next(la for la in chain.layers if la.name == "l3")
        assert l3.u_f == ref.u_f and l3.activation == ref.activation
        assert cal.noise.sigma_compute[2] == NoiseModel().sigma_compute

    def test_unknown_trace_layers_reported_degraded(self, tmp_path):
        chain = random_chain(3, seed=8, name="t3")
        generate_traces(chain, tmp_path / "t", runs=4, seed=9)
        other = random_chain(3, seed=8, name="other")
        renamed = [
            {**json.loads(line), "layer": "ghost"}
            for line in (tmp_path / "t" / "run00.jsonl").read_text().splitlines()
        ]
        (tmp_path / "t" / "run00.jsonl").write_text(
            "\n".join(json.dumps(r) for r in renamed) + "\n"
        )
        cal = calibrate(other, ingest_traces(tmp_path / "t"))
        assert cal.unknown_layers == ("ghost",)
        assert cal.degraded

    def test_min_samples_floor(self, tmp_path):
        chain = random_chain(3, seed=1)
        generate_traces(chain, tmp_path / "t", runs=2, seed=2)
        cal = calibrate(chain, ingest_traces(tmp_path / "t"), min_samples=3)
        assert cal.degraded
        assert len(cal.fallback_layers) == chain.L
        ok = calibrate(chain, ingest_traces(tmp_path / "t"), min_samples=2)
        assert not ok.degraded

    def test_timing_only_traces_keep_baseline_memory(self, tmp_path):
        chain = uniform_chain(2, u_f=0.1, u_b=0.2, weights=3e6, activation=4e6)
        lines = [
            json.dumps(
                {"schema": SCHEMA_VERSION, "run": r, "layer": f"l{i + 1}",
                 "u_f": 0.11, "u_b": 0.19}
            )
            for r in range(4)
            for i in range(2)
        ]
        d = tmp_path / "t"
        d.mkdir()
        (d / "run00.jsonl").write_text("\n".join(lines) + "\n")
        cal = calibrate(chain, ingest_traces(d))
        assert cal.degraded  # memory fields fell back
        for c in cal.coverage:
            assert set(c.fallback) == {"weights", "activation"}
        for layer in cal.chain.layers:
            assert layer.weights == 3e6 and layer.activation == 4e6
            assert layer.u_f == pytest.approx(0.11)

    def test_result_roundtrip(self, tmp_path):
        chain = random_chain(4, seed=5)
        generate_traces(chain, tmp_path / "t", runs=4, seed=6)
        cal = calibrate(chain, ingest_traces(tmp_path / "t"))
        clone = CalibrationResult.from_dict(
            json.loads(json.dumps(cal.to_dict()))
        )
        assert clone.to_dict() == cal.to_dict()
        with pytest.raises(ValueError):
            CalibrationResult.from_dict({"chain": {}})

    def test_parameter_validation(self, tmp_path):
        chain = random_chain(2, seed=0)
        generate_traces(chain, tmp_path / "t", runs=3, seed=0)
        ts = ingest_traces(tmp_path / "t")
        with pytest.raises(ValueError):
            calibrate(chain, ts, min_samples=0)
        with pytest.raises(ValueError):
            calibrate(chain, ts, mad_k=0.0)


# ------------------------------------------------------ certify integration


class TestObservedNoiseCertify:
    def test_calibrated_noise_changes_report(self, tmp_path):
        from repro.api import certify, plan
        from repro.core.platform import Platform

        chain = random_chain(6, seed=3, name="t6")
        generate_traces(
            chain, tmp_path / "t", runs=16, seed=1,
            noise=NoiseModel(sigma_compute=0.15, sigma_activation=0.1),
        )
        cal = calibrate(chain, ingest_traces(tmp_path / "t"))
        platform = Platform.of(2, 64.0, 12.0)
        result = plan(chain, platform, algorithm="pipedream")
        assert result.pattern is not None
        synthetic = certify(
            chain, platform, result.pattern, samples=8, seed=0
        ).robustness
        observed = certify(
            chain, platform, result.pattern, samples=8, seed=0, noise=cal.noise
        ).robustness
        assert observed.noise.get("per_layer") is True
        assert observed.to_dict() != synthetic.to_dict()
        # same seed + same calibrated noise → bit-identical report
        again = certify(
            chain, platform, result.pattern, samples=8, seed=0, noise=cal.noise
        ).robustness
        assert again.to_dict() == observed.to_dict()

    def test_wrong_length_noise_rejected_early(self):
        from repro.robust import robustness_report
        from repro.core.platform import Platform
        from repro.api import plan

        chain = random_chain(4, seed=0)
        platform = Platform.of(2, 64.0, 12.0)
        result = plan(chain, platform, algorithm="pipedream")
        noise = LayerNoiseModel.uniform(NoiseModel(), 7)
        with pytest.raises(ValueError, match="calibrated for 7"):
            robustness_report(chain, platform, result.pattern, noise=noise)


# ------------------------------------------------------------------ CLI


class TestIngestCli:
    def setup_inputs(self, tmp_path, **kw):
        from repro.profiling import save_chain

        chain = random_chain(5, seed=3, name="t5")
        save_chain(chain, tmp_path / "base.json")
        generate_traces(chain, tmp_path / "traces", runs=5, seed=11, **kw)
        return chain

    def test_ingest_writes_deterministic_json(self, tmp_path, capsys):
        self.setup_inputs(tmp_path, corrupt_lines=2, nan_records=1)
        argv = [
            "ingest", str(tmp_path / "traces"), str(tmp_path / "base.json"),
            "--quiet",
        ]
        assert cli_main([*argv, "-o", str(tmp_path / "a.json")]) == 0
        assert cli_main([*argv, "-o", str(tmp_path / "b.json")]) == 0
        assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()
        payload = json.loads((tmp_path / "a.json").read_text())
        assert payload["n_quarantined"] == 3
        assert payload["noise"]["per_layer"] is True
        capsys.readouterr()

    def test_ingest_reports_degraded(self, tmp_path, capsys):
        self.setup_inputs(tmp_path, missing_layers=("l2",))
        rc = cli_main(
            ["ingest", str(tmp_path / "traces"), str(tmp_path / "base.json")]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "DEGRADED" in captured.err
        assert json.loads(captured.out)["degraded"] is True

    def test_ingest_missing_dir_exits_2(self, tmp_path, capsys):
        self.setup_inputs(tmp_path)
        rc = cli_main(
            ["ingest", str(tmp_path / "nope"), str(tmp_path / "base.json")]
        )
        assert rc == 2
        assert "ingestion failed" in capsys.readouterr().err

    def test_certify_traces_deterministic_and_distinct(self, tmp_path, capsys):
        self.setup_inputs(tmp_path, nan_records=1, outlier_records=2)
        base = [
            "certify", str(tmp_path / "base.json"), "-p", "2", "-m", "64",
            "-a", "pipedream", "--samples", "8", "--seed", "0",
        ]
        traced = [*base, "--traces", str(tmp_path / "traces")]
        assert cli_main([*traced, "-o", str(tmp_path / "c1.json")]) == 0
        assert cli_main([*traced, "-o", str(tmp_path / "c2.json")]) == 0
        assert cli_main([*base, "-o", str(tmp_path / "cs.json")]) == 0
        capsys.readouterr()
        c1 = (tmp_path / "c1.json").read_bytes()
        assert c1 == (tmp_path / "c2.json").read_bytes()
        assert c1 != (tmp_path / "cs.json").read_bytes()
        payload = json.loads(c1)
        assert payload["calibration"]["noise"]["per_layer"] is True
        assert "robustness" in payload["certificate"]

    def test_certify_traces_degraded_status(self, tmp_path, capsys):
        self.setup_inputs(tmp_path, missing_layers=("l4",))
        rc = cli_main(
            [
                "certify", str(tmp_path / "base.json"), "-p", "2", "-m", "64",
                "-a", "pipedream", "--samples", "4",
                "--traces", str(tmp_path / "traces"),
                "-o", str(tmp_path / "cert.json"),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        payload = json.loads((tmp_path / "cert.json").read_text())
        assert payload["status"] == "degraded"
        assert payload["calibration"]["degraded"] is True
