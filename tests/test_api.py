"""The stable ``repro.api`` facade and the top-level deprecation shims."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import api
from repro.algorithms.gpipe import gpipe
from repro.algorithms.madpipe import madpipe
from repro.algorithms.madpipe_dp import Discretization
from repro.algorithms.pipedream import pipedream
from repro.core.platform import Platform
from repro.experiments import run_grid

COARSE = Discretization.coarse()


def _ops(pattern):
    """Hashable view of a pattern's operations for bit-identity checks."""
    if pattern is None:
        return None
    return sorted((k, tuple(v) if isinstance(v, (list, tuple)) else v)
                  for k, v in pattern.ops.items())


class TestPlan:
    def test_madpipe_bit_identical(self, cnnlike16, plat4):
        legacy = madpipe(cnnlike16, plat4, grid=COARSE, iterations=4)
        res = api.plan(cnnlike16, plat4, algorithm="madpipe",
                       grid=COARSE, iterations=4)
        assert res.period == legacy.period
        assert res.dp_period == legacy.dp_period
        assert res.status == legacy.status
        assert _ops(res.pattern) == _ops(legacy.pattern)
        assert res.raw.notes == legacy.notes

    def test_pipedream_bit_identical(self, cnnlike16, plat4):
        legacy = pipedream(cnnlike16, plat4)
        res = api.plan(cnnlike16, plat4, algorithm="pipedream")
        assert res.period == legacy.period
        assert res.dp_period == legacy.dp_period
        assert _ops(res.pattern) == _ops(
            legacy.schedule.pattern if legacy.schedule else None
        )

    def test_gpipe_bit_identical(self, cnnlike16, roomy4):
        legacy = gpipe(cnnlike16, roomy4, micro_batches=4)
        res = api.plan(cnnlike16, roomy4, algorithm="gpipe", micro_batches=4)
        assert res.period == legacy.period
        assert res.feasible == legacy.feasible

    def test_unknown_algorithm(self, uniform8, plat2):
        with pytest.raises(ValueError, match="unknown algorithm"):
            api.plan(uniform8, plat2, algorithm="magic")

    def test_trace_true_records_spans(self, uniform8, plat4):
        res = api.plan(uniform8, plat4, grid=COARSE, iterations=3, trace=True)
        assert res.trace is not None
        assert res.trace.find("madpipe.phase1")
        assert res.metrics.get("madpipe.runs") == 1

    def test_trace_object_appended(self, uniform8, plat4):
        from repro import obs

        tr = obs.Trace("mine")
        api.plan(uniform8, plat4, grid=COARSE, iterations=3, trace=tr)
        api.plan(uniform8, plat4, grid=COARSE, iterations=3, trace=tr)
        assert len(tr.find("madpipe")) == 2

    def test_no_trace_by_default(self, uniform8, plat4):
        res = api.plan(uniform8, plat4, grid=COARSE, iterations=3)
        assert res.trace is None
        assert res.metrics  # metrics are always collected

    def test_outer_registry_sees_plan_counters(self, uniform8, plat4):
        from repro import obs

        reg = obs.MetricsRegistry()
        with obs.use_metrics(reg):
            api.plan(uniform8, plat4, grid=COARSE, iterations=3)
        assert reg.get("madpipe.runs") == 1


class TestSweep:
    def test_matches_run_grid(self, tmp_path):
        direct = run_grid(("toy6",), (2,), (8.0,), (12.0,),
                          iterations=2, grid=COARSE)
        res = api.sweep(("toy6", 2, 8.0, 12.0), iterations=2, grid=COARSE)
        assert len(res) == len(direct) == 2
        for a, b in zip(res.results, direct):
            assert a.key == b.key
            assert a.valid_period == b.valid_period
        assert res.statuses == {"ok": 2}
        assert res.metrics.get("sweep.instances") == 2

    def test_spec_forms(self):
        tup = api.SweepSpec("toy6", 2, 8.0, 12.0, "madpipe")
        assert tup.networks == ("toy6",) and tup.algorithms == ("madpipe",)
        mapped = api.sweep(
            {"networks": "toy6", "procs": 2, "memories_gb": 8.0,
             "bandwidths_gbps": 12.0, "algorithms": "madpipe"},
            iterations=2, grid=COARSE,
        )
        assert len(mapped) == 1
        multi = api.sweep([tup, tup], iterations=2, grid=COARSE)
        assert len(multi) == 2 and len(multi.specs) == 2

    def test_bad_spec(self):
        with pytest.raises(TypeError, match="sweep spec"):
            api.sweep(object())

    def test_cache_path_coercion(self, tmp_path):
        cache_file = tmp_path / "c.jsonl"
        api.sweep(("toy6", 2, 8.0, 12.0, "madpipe"),
                  cache=cache_file, iterations=2, grid=COARSE)
        assert cache_file.exists()
        again = api.sweep(("toy6", 2, 8.0, 12.0, "madpipe"),
                          cache=str(cache_file), iterations=2, grid=COARSE)
        assert again.metrics.get("sweep.cache_hits") == 1

    def test_load_chain_reexport(self):
        from repro.profiling import load_chain

        assert api.load_chain is load_chain


class TestDeprecationShims:
    def _reset(self, name):
        repro._DEPRECATION_WARNED.discard(name)
        repro.__dict__.pop(name, None)  # drop the cached resolution

    def test_warns_exactly_once(self):
        self._reset("madpipe")
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            f = repro.madpipe
            g = repro.madpipe
        deprecations = [x for x in w if issubclass(x.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.madpipe" in str(deprecations[0].message)
        assert f is g is madpipe

    def test_schedule_allocation_shim(self):
        from repro.ilp.solver import schedule_allocation

        self._reset("schedule_allocation")
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            shim = repro.schedule_allocation
        assert shim is schedule_allocation
        assert any(issubclass(x.category, DeprecationWarning) for x in w)

    def test_star_import_still_exports_them(self):
        assert "madpipe" in repro.__all__
        assert "schedule_allocation" in repro.__all__

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_internal_imports_do_not_warn(self):
        """The instrumented modules import from submodules, so merely
        planning must not emit DeprecationWarning."""
        import repro.models as models

        chain = models.uniform_chain(6)
        plat = Platform.of(2, 8.0, 12.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.plan(chain, plat, iterations=2, grid=COARSE)


class TestTopLevelFacade:
    def test_plan_and_sweep_reexported(self):
        assert repro.plan is api.plan
        assert repro.sweep is api.sweep
        assert repro.PlanResult is api.PlanResult
        assert {"api", "obs", "plan", "sweep"} <= set(repro.__all__)

    def test_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
