"""Overload-safety tests for the plan service: admission control and
backpressure, circuit breakers, degraded-mode planning, deadline
budgets, the inline (non-main-thread) deadline watchdog and the seeded
chaos schedule.

The resilience contract extends the service's bit-identity promise:
under overload or correlated failure the service keeps answering —
full-quality answers stay bit-identical to a cold
:func:`repro.api.plan`, everything else is either *shed* with a typed
:class:`OverloadedError` or served *explicitly degraded* with a real
certificate.  Nothing here is timing-dependent: admission decisions
follow arrival order, breakers run on an injected fake clock, and the
degraded answer is a certified contiguous 1F1B* plan.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time

import pytest

from repro import api, warmstart
from repro.algorithms import Discretization
from repro.core.platform import Platform
from repro.experiments.harness import InstanceTimeoutError, _deadline
from repro.models import uniform_chain
from repro.serve import (
    PRIORITIES,
    AdmissionQueue,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    PlanService,
    ResilienceConfig,
    priority_rank,
)
from repro.serve.resilience import degraded_opts
from repro.testing import ChaosSchedule, Fault, faults

MB = float(2**20)
PLAN_OPTS = dict(grid=Discretization.coarse(), iterations=4)


def toy(L: int = 4, **kw):
    defaults = dict(u_f=0.001, u_b=0.002, weights=4 * MB, activation=8 * MB,
                    name=f"toy{L}")
    defaults.update(kw)
    return uniform_chain(L, **defaults)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def plat() -> Platform:
    return Platform.of(2, 8.0, 12.0)


class FakeClock:
    """Injectable monotonic clock: advances only when told to."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def make_service(tmp_path=None, *, clock=None, **kw) -> PlanService:
    kw.setdefault("max_workers", 0)
    if tmp_path is not None:
        kw.setdefault("store", tmp_path / "plans.jsonl")
    if clock is not None:
        kw["clock"] = clock.now
    return PlanService(**kw)


# ----------------------------------------------------------- priorities


class TestPriorities:
    def test_interactive_outranks_batch(self):
        assert priority_rank("interactive") < priority_rank("batch")
        assert set(PRIORITIES) == {"interactive", "batch"}

    def test_int_rank_passthrough(self):
        assert priority_rank(7) == 7

    @pytest.mark.parametrize("bad", [True, False, "urgent", None, 1.5])
    def test_invalid_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            priority_rank(bad)


class TestResilienceConfig:
    def test_defaults_disable_everything(self):
        cfg = ResilienceConfig()
        assert not cfg.admission_enabled
        assert not cfg.breaker_enabled
        assert not cfg.degraded_fallback
        assert cfg.deadline_budget_s is None

    @pytest.mark.parametrize(
        "kw",
        [dict(max_concurrency=0), dict(max_pending=-1),
         dict(breaker_threshold=0), dict(breaker_cooldown_s=0.0),
         dict(retry_after_s=0.0)],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            ResilienceConfig(**kw)


# ------------------------------------------------------- admission queue


class TestAdmissionQueue:
    def test_fast_path_under_concurrency(self):
        async def scenario():
            q = AdmissionQueue(2, 4)
            await q.acquire()
            await q.acquire()
            assert q.active == 2 and q.depth == 0
            q.release()
            q.release()
            assert q.active == 0

        run(scenario())

    def test_release_hands_slot_to_waiter(self):
        async def scenario():
            q = AdmissionQueue(1, 4)
            await q.acquire()
            waiter = asyncio.ensure_future(q.acquire())
            await asyncio.sleep(0)
            assert q.depth == 1
            q.release()  # slot transfers to the waiter, active stays 1
            await waiter
            assert q.active == 1 and q.depth == 0
            q.release()
            assert q.active == 0

        run(scenario())

    def test_shed_beyond_pending(self):
        async def scenario():
            q = AdmissionQueue(1, 1, retry_after_s=2.5)
            await q.acquire()
            waiter = asyncio.ensure_future(q.acquire())
            await asyncio.sleep(0)
            with pytest.raises(OverloadedError) as err:
                await q.acquire()  # same rank as the queued waiter: shed
            assert err.value.retry_after_s == 2.5
            q.release()
            await waiter

        run(scenario())

    def test_priority_evicts_worst_waiter(self):
        async def scenario():
            q = AdmissionQueue(1, 1)
            await q.acquire()
            batch = asyncio.ensure_future(q.acquire(priority_rank("batch")))
            await asyncio.sleep(0)
            # the queue is full, but the interactive arrival outranks the
            # queued batch waiter: the batch waiter is shed in its place
            interactive = asyncio.ensure_future(
                q.acquire(priority_rank("interactive"))
            )
            await asyncio.sleep(0)
            with pytest.raises(OverloadedError):
                await batch
            q.release()
            await interactive

        run(scenario())

    def test_best_priority_served_first(self):
        async def scenario():
            q = AdmissionQueue(1, 4)
            await q.acquire()
            order = []

            async def wait(name, rank):
                await q.acquire(rank)
                order.append(name)

            tasks = [
                asyncio.ensure_future(wait("b1", 1)),
                asyncio.ensure_future(wait("i1", 0)),
                asyncio.ensure_future(wait("b2", 1)),
            ]
            await asyncio.sleep(0)
            for _ in range(3):
                q.release()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            # interactive first, then batch in FIFO order
            assert order == ["i1", "b1", "b2"]

        run(scenario())

    def test_cancelled_waiter_leaves_queue(self):
        async def scenario():
            q = AdmissionQueue(1, 4)
            await q.acquire()
            waiter = asyncio.ensure_future(q.acquire())
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert q.depth == 0
            q.release()
            assert q.active == 0

        run(scenario())


# ------------------------------------------------------- circuit breaker


def make_breaker(threshold=2, cooldown=10.0, seed=0, clock=None):
    clock = clock or FakeClock()
    return clock, CircuitBreaker(
        threshold, cooldown, rng=random.Random(seed), clock=clock.now
    )


class TestCircuitBreaker:
    KEY = ("madpipe", "1f1b")

    def test_trips_after_threshold_consecutive_failures(self):
        _, b = make_breaker(threshold=3)
        for _ in range(2):
            b.record_failure(self.KEY)
        assert b.allow(self.KEY) == "closed"
        b.record_success(self.KEY)  # success resets the streak
        for _ in range(2):
            b.record_failure(self.KEY)
        assert b.allow(self.KEY) == "closed"
        b.record_failure(self.KEY)
        assert b.state(self.KEY) == "open"
        assert b.allow(self.KEY) == "open"  # short-circuit while cooling

    def test_probe_after_cooldown_then_close(self):
        clock, b = make_breaker(threshold=1, cooldown=10.0)
        b.record_failure(self.KEY)
        # the jittered cooldown is uniform in [0.5, 1.5) x cooldown: at
        # 0.49 x it can never be due, at 1.5 x it always is
        clock.t += 4.9
        assert b.allow(self.KEY) == "open"
        clock.t += 11.0
        assert b.allow(self.KEY) == "probe"
        assert b.allow(self.KEY) == "open"  # exactly one concurrent probe
        b.record_success(self.KEY)
        assert b.state(self.KEY) == "closed"
        assert b.allow(self.KEY) == "closed"

    def test_failed_probe_reopens(self):
        clock, b = make_breaker(threshold=1, cooldown=10.0)
        b.record_failure(self.KEY)
        clock.t += 15.0
        assert b.allow(self.KEY) == "probe"
        b.record_failure(self.KEY)
        assert b.state(self.KEY) == "open"
        assert b.allow(self.KEY) == "open"

    def test_same_seed_same_probe_schedule(self):
        schedules = []
        for _ in range(2):
            clock, b = make_breaker(threshold=1, cooldown=10.0, seed=7)
            b.record_failure(self.KEY)
            due = next(
                t for t in range(1, 20) if (setattr(clock, "t", float(t)) or
                                            b.allow(self.KEY) == "probe")
            )
            schedules.append(due)
        assert schedules[0] == schedules[1]

    def test_keys_are_independent(self):
        _, b = make_breaker(threshold=1)
        b.record_failure(("madpipe", "1f1b"))
        assert b.allow(("madpipe", "1f1b")) == "open"
        assert b.allow(("madpipe", "zero_bubble")) == "closed"
        assert b.snapshot() == {
            "madpipe:1f1b": "open", "madpipe:zero_bubble": "closed",
        }


# ---------------------------------------------- service: admission path


class TestServiceAdmission:
    RES = ResilienceConfig(max_concurrency=1, max_pending=1, retry_after_s=3.0)

    def test_burst_sheds_deterministically(self, plat):
        chains = [toy(L) for L in (3, 4, 5, 6)]

        async def scenario():
            async with make_service(resilience=self.RES) as service:
                outcomes = await asyncio.gather(
                    *(service.handle(service.request(c, plat, **PLAN_OPTS))
                      for c in chains),
                    return_exceptions=True,
                )
                return outcomes, service.stats()

        outcomes, stats = run(scenario())
        # arrival order decides: the first solves, the second queues, the
        # rest shed with the configured retry-after hint
        assert outcomes[0].served_from == "solve"
        assert outcomes[1].served_from == "solve"
        for shed in outcomes[2:]:
            assert isinstance(shed, OverloadedError)
            assert shed.retry_after_s == 3.0
        counters = stats["counters"]
        assert counters["serve.shed"] == 2
        assert counters["serve.queued"] == 1
        assert counters["serve.queue_hwm"] == 1
        assert counters["serve.solves"] == 2

    def test_cache_hits_bypass_admission(self, plat):
        chain = toy()

        async def scenario():
            async with make_service(resilience=self.RES) as service:
                first = await service.handle(
                    service.request(chain, plat, **PLAN_OPTS)
                )
                # a burst of repeats: all served from cache, none shed
                repeats = await asyncio.gather(
                    *(service.handle(service.request(chain, plat, **PLAN_OPTS))
                      for _ in range(6))
                )
                return first, repeats, service.stats()

        first, repeats, stats = run(scenario())
        assert first.served_from == "solve"
        assert all(r.served_from == "memory" for r in repeats)
        assert "serve.shed" not in stats["counters"]

    def test_shed_reply_not_cached(self, plat):
        chains = [toy(L) for L in (3, 4, 5, 6)]

        async def scenario():
            async with make_service(resilience=self.RES) as service:
                outcomes = await asyncio.gather(
                    *(service.handle(service.request(c, plat, **PLAN_OPTS))
                      for c in chains),
                    return_exceptions=True,
                )
                shed_chains = [
                    c for c, o in zip(chains, outcomes)
                    if isinstance(o, OverloadedError)
                ]
                # a shed request retried later must solve normally
                retry = await service.handle(
                    service.request(shed_chains[0], plat, **PLAN_OPTS)
                )
                return retry

        assert run(scenario()).served_from == "solve"


# --------------------------------- service: breaker + degraded planning


STORM = [Fault(site="serve_solve", action="raise", key="madpipe:1f1b", times=-1)]


class TestServiceDegraded:
    RES = ResilienceConfig(
        degraded_fallback=True, breaker_threshold=2, breaker_cooldown_s=10.0
    )

    def storm_service(self, tmp_path, clock):
        return make_service(
            tmp_path, clock=clock, max_retries=0, seed=0, resilience=self.RES
        )

    def test_storm_degrades_with_certificates(self, tmp_path, plat):
        faults.install(STORM, tmp_path / "faults")
        chains = [toy(L) for L in (3, 4, 5)]
        clock = FakeClock()

        async def scenario():
            async with self.storm_service(tmp_path, clock) as service:
                replies = [
                    await service.handle(service.request(c, plat, **PLAN_OPTS))
                    for c in chains
                ]
                return replies, service.stats()

        replies, stats = run(scenario())
        for reply in replies:
            assert reply.served_from == "degraded" and reply.degraded
            assert reply.result.status == "degraded"
            assert reply.result.feasible
            assert reply.result.certificate is not None
            assert reply.result.certificate.ok
        counters = stats["counters"]
        # two terminal failures trip the breaker; the third request is
        # short-circuited without ever dispatching a doomed solve
        assert counters["serve.breaker_trips"] == 1
        assert counters["serve.breaker_short_circuits"] == 1
        assert counters["serve.degraded"] == 3
        assert stats["breakers"] == {"madpipe:1f1b": "open"}
        # degraded answers live in their own tier, never the primary cache
        assert stats["cached_plans"] == 0
        assert stats["degraded_plans"] == 3

    def test_degraded_never_persisted(self, tmp_path, plat):
        faults.install(STORM, tmp_path / "faults")
        chain = toy()
        clock = FakeClock()

        async def storm():
            async with self.storm_service(tmp_path, clock) as service:
                await service.handle(service.request(chain, plat, **PLAN_OPTS))

        run(storm())
        faults.clear()

        async def after():
            async with self.storm_service(tmp_path, clock) as service:
                return await service.handle(
                    service.request(chain, plat, **PLAN_OPTS)
                )

        # a fresh service sees no stored degraded payload: it re-solves
        # to full quality (the empty store also proves nothing persisted)
        reply = run(after())
        assert reply.served_from == "solve"
        assert reply.result.status == "ok"

    def test_degraded_lru_reused_within_instance(self, tmp_path, plat):
        faults.install(STORM, tmp_path / "faults")
        chain = toy()
        clock = FakeClock()

        async def scenario():
            async with self.storm_service(tmp_path, clock) as service:
                first = await service.handle(
                    service.request(chain, plat, **PLAN_OPTS)
                )
                second = await service.handle(
                    service.request(chain, plat, **PLAN_OPTS)
                )
                return first, second, service.stats()

        first, second, stats = run(scenario())
        assert first.served_from == second.served_from == "degraded"
        assert stats["counters"]["serve.degraded_solves"] == 1
        assert stats["counters"]["serve.degraded_hits"] == 1

    def test_recovery_closes_breaker_bit_identical(self, tmp_path, plat):
        chain = toy(6)
        with warmstart.activate(False):
            reference = api.plan(chain, plat, **PLAN_OPTS).to_json()
        faults.install(STORM, tmp_path / "faults")
        clock = FakeClock()

        async def scenario():
            async with self.storm_service(tmp_path, clock) as service:
                for c in (toy(3), toy(4)):  # trip the breaker
                    await service.handle(service.request(c, plat, **PLAN_OPTS))
                assert service.stats()["breakers"]["madpipe:1f1b"] == "open"
                faults.clear()
                # past the maximum jittered cooldown: the next request is
                # the half-open probe, and its success closes the breaker
                clock.t += 1.5 * self.RES.breaker_cooldown_s + 1.0
                reply = await service.handle(
                    service.request(chain, plat, **PLAN_OPTS)
                )
                return reply, service.stats()

        reply, stats = run(scenario())
        assert reply.served_from == "solve"
        assert reply.result.to_json() == reference
        assert stats["breakers"] == {"madpipe:1f1b": "closed"}
        assert stats["counters"]["serve.breaker_probes"] == 1
        assert stats["counters"]["serve.breaker_closes"] == 1

    def test_open_breaker_without_fallback_raises(self, tmp_path, plat):
        faults.install(STORM, tmp_path / "faults")
        res = ResilienceConfig(breaker_threshold=1, breaker_cooldown_s=10.0)

        async def scenario():
            async with make_service(
                max_retries=0, clock=FakeClock(), resilience=res
            ) as service:
                with pytest.raises(faults.FaultInjected):
                    await service.handle(service.request(toy(3), plat, **PLAN_OPTS))
                with pytest.raises(CircuitOpenError):
                    await service.handle(service.request(toy(4), plat, **PLAN_OPTS))

        run(scenario())

    def test_coalesced_waiters_see_degraded(self, tmp_path, plat):
        faults.install(STORM, tmp_path / "faults")
        chain = toy(5)

        async def scenario():
            async with self.storm_service(tmp_path, FakeClock()) as service:
                request = service.request(chain, plat, **PLAN_OPTS)
                replies = await asyncio.gather(
                    *(service.handle(request) for _ in range(3))
                )
                return replies, service.stats()

        replies, stats = run(scenario())
        assert all(r.served_from == "degraded" for r in replies)
        assert stats["counters"]["serve.degraded"] == 3
        assert stats["counters"]["serve.degraded_solves"] == 1


# --------------------------------------------- service: deadline budgets


class TickClock:
    """A clock that jumps a full step on every reading: any budget
    smaller than the step is exhausted by the time it is checked."""

    def __init__(self, step: float) -> None:
        self.t = 0.0
        self.step = step

    def now(self) -> float:
        self.t += self.step
        return self.t


class TestDeadlineBudgets:
    def test_exhausted_budget_raises_without_fallback(self, plat):
        async def scenario():
            async with make_service(clock=TickClock(1.0)) as service:
                request = service.request(
                    toy(), plat, deadline_s=0.5, **PLAN_OPTS
                )
                with pytest.raises(DeadlineExceededError):
                    await service.handle(request)
                return service.stats()

        stats = run(scenario())
        assert stats["counters"]["serve.deadline_exhausted"] == 1

    def test_exhausted_budget_degrades_with_fallback(self, plat):
        res = ResilienceConfig(degraded_fallback=True)

        async def scenario():
            async with make_service(
                clock=TickClock(1.0), resilience=res
            ) as service:
                request = service.request(
                    toy(), plat, deadline_s=0.5, **PLAN_OPTS
                )
                return await service.handle(request), service.stats()

        reply, stats = run(scenario())
        assert reply.served_from == "degraded"
        assert reply.result.status == "degraded"
        assert reply.result.certificate.ok
        assert stats["counters"]["serve.deadline_exhausted"] == 1

    def test_config_budget_is_the_default(self, plat):
        res = ResilienceConfig(deadline_budget_s=0.5)

        async def scenario():
            async with make_service(
                clock=TickClock(1.0), resilience=res
            ) as service:
                with pytest.raises(DeadlineExceededError):
                    await service.handle(service.request(toy(), plat, **PLAN_OPTS))

        run(scenario())

    def test_request_validation(self, plat):
        service = make_service()
        with pytest.raises(ValueError):
            service.request(toy(), plat, deadline_s=0.0, **PLAN_OPTS)
        with pytest.raises(ValueError):
            service.request(toy(), plat, priority="urgent", **PLAN_OPTS)
        run(service.close())


# ------------------------------------- inline (thread) deadline watchdog


class TestThreadDeadline:
    def test_fires_off_main_thread(self):
        """The watchdog bounds a pure-Python solve on a worker thread,
        where SIGALRM is unavailable (satellite: the old implementation
        silently no-opped there)."""
        caught: list = []

        def busy():
            try:
                with _deadline(0.1, ("spec",)):
                    deadline = time.monotonic() + 5.0
                    while time.monotonic() < deadline:
                        pass
                caught.append(None)
            except InstanceTimeoutError as exc:
                caught.append(exc)

        worker = threading.Thread(target=busy)
        worker.start()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert isinstance(caught[0], InstanceTimeoutError)
        assert "spec" in str(caught[0])

    def test_no_fire_when_block_finishes(self):
        result: list = []

        def quick():
            with _deadline(5.0, ("spec",)):
                result.append("done")
            # the pending watchdog must be cancelled, not detonate later
            time.sleep(0.02)
            result.append("after")

        worker = threading.Thread(target=quick)
        worker.start()
        worker.join(timeout=10.0)
        assert result == ["done", "after"]

    @pytest.mark.faultinject
    def test_service_inline_mode_times_out(self, tmp_path, plat):
        """End to end: ``max_workers=0`` solves on the event loop's
        thread pool, and a hung solve is still bounded."""
        faults.install(
            [Fault(site="serve_worker", action="sleep", times=-1, param=0.5)],
            tmp_path / "faults",
        )

        async def scenario():
            async with make_service(
                instance_timeout=0.1, max_retries=0
            ) as service:
                with pytest.raises(InstanceTimeoutError):
                    await service.handle(service.request(toy(), plat, **PLAN_OPTS))

        run(scenario())


# ------------------------------------------------------- degraded opts


class TestDegradedOpts:
    def test_keeps_context_forces_contiguous(self):
        opts = dict(
            iterations=8, grid=Discretization.coarse(), memory_headroom=0.9,
            schedule_family="zero_bubble", ilp_time_limit=60.0,
            allow_special=True, certify=False,
        )
        out = degraded_opts(opts)
        assert out["iterations"] == 8
        assert out["schedule_family"] == "zero_bubble"
        assert out["allow_special"] is False
        assert out["contiguous_fallback"] is False
        # budget/certification overrides of the original request must
        # not weaken the fallback's guarantees
        assert "ilp_time_limit" not in out
        assert "certify" not in out


# ------------------------------------------------------- chaos schedule


class TestChaosSchedule:
    def test_standard_shape(self):
        schedule = ChaosSchedule.standard(
            0, n_warm=4, scale=1, pool_kill=True, store_path="/tmp/p.jsonl"
        )
        names = [phase.name for phase in schedule]
        assert names == [
            "warmup", "burst", "pool_kill", "storm", "spike", "truncate",
            "recovery",
        ]
        assert schedule.total_requests == sum(
            len(p.requests) for p in schedule
        )
        assert schedule.pool_size > 4

    def test_same_seed_identical(self):
        a = ChaosSchedule.standard(3, n_warm=4, scale=2)
        b = ChaosSchedule.standard(3, n_warm=4, scale=2)
        assert a == b

    def test_optional_phases_omitted(self):
        schedule = ChaosSchedule.standard(0, n_warm=3)
        names = [phase.name for phase in schedule]
        assert "pool_kill" not in names
        assert "truncate" not in names
        assert schedule.phases[-1].restart_service is False

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosSchedule.standard(0, n_warm=2)
        with pytest.raises(ValueError):
            ChaosSchedule.standard(0, scale=0)
