"""Mutation tests for the discrete-event verifier.

The certification gate is only as strong as :func:`repro.sim.verify_pattern`;
these tests mutate a known-valid pattern in the four canonical ways a
buggy planner could break one — misplacing an op, dropping a dependency
edge (a communication op), inflating a duration, overfilling a GPU — and
require the verifier to reject every mutant while accepting the original.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.algorithms.pipedream import pipedream
from repro.core.pattern import PatternError, PeriodicPattern
from repro.core.platform import Platform
from repro.sim import verify_pattern

MB = float(2**20)


@pytest.fixture
def planned(uniform8, roomy4):
    """A certified-valid (chain, platform, pattern) triple with comm ops."""
    res = pipedream(uniform8, roomy4)
    assert res.feasible and res.schedule is not None
    pattern = res.schedule.pattern
    assert any(k[0] == "CF" for k in pattern.ops), "need cut boundaries"
    return uniform8, roomy4, pattern


def mutate(pattern: PeriodicPattern, changes: dict) -> PeriodicPattern:
    """Copy ``pattern`` with selected ops replaced (key -> field dict)."""
    ops = dict(pattern.ops)
    for key, fields in changes.items():
        ops[key] = dataclasses.replace(ops[key], **fields)
    return PeriodicPattern(
        allocation=pattern.allocation, period=pattern.period, ops=ops
    )


class TestVerifierMutations:
    def test_unmutated_pattern_passes(self, planned):
        chain, platform, pattern = planned
        report = verify_pattern(chain, platform, pattern)
        assert not report.violations

    def test_shifted_op_rejected(self, planned):
        """Moving a backward onto its own forward's start violates the
        F_i -> B_i dependency (and overlaps the GPU)."""
        chain, platform, pattern = planned
        f = pattern.ops[("F", 0)]
        mutant = mutate(pattern, {("B", 0): dict(start=f.start, shift=f.shift)})
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)

    def test_dropped_dependency_edge_rejected(self, planned):
        """Deleting the activation transfer of a cut boundary severs the
        F_i -> CF_i -> F_{i+1} dependency chain."""
        chain, platform, pattern = planned
        key = next(k for k in pattern.ops if k[0] == "CF")
        ops = {k: v for k, v in pattern.ops.items() if k != key}
        mutant = PeriodicPattern(
            allocation=pattern.allocation, period=pattern.period, ops=ops
        )
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)

    def test_inflated_duration_rejected(self, planned):
        """Tripling one op's duration makes it collide with its resource
        neighbours (the 1F1B* pattern is tightly packed)."""
        chain, platform, pattern = planned
        key = ("F", 0)
        mutant = mutate(pattern, {key: dict(duration=3.0 * pattern.ops[key].duration)})
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)

    def test_overfilled_gpu_rejected(self, planned):
        """The same pattern on a platform with a fraction of the memory
        must trip the capacity check."""
        chain, platform, pattern = planned
        peak = max(pattern.memory_peaks(chain).values())
        tight = Platform(
            n_procs=platform.n_procs,
            memory=0.5 * peak,
            bandwidth=platform.bandwidth,
        )
        with pytest.raises(PatternError):
            verify_pattern(chain, tight, pattern)

    def test_wrong_resource_rejected(self, planned):
        chain, platform, pattern = planned
        op = pattern.ops[("F", 0)]
        other = ("gpu", (op.resource[1] + 1) % platform.n_procs)
        mutant = mutate(pattern, {("F", 0): dict(resource=other)})
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)
