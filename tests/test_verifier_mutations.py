"""Mutation tests for the discrete-event verifier.

The certification gate is only as strong as :func:`repro.sim.verify_pattern`;
these tests mutate a known-valid pattern in the four canonical ways a
buggy planner could break one — misplacing an op, dropping a dependency
edge (a communication op), inflating a duration, overfilling a GPU — and
require the verifier to reject every mutant while accepting the original.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.algorithms.pipedream import pipedream
from repro.core.pattern import PatternError, PeriodicPattern
from repro.core.platform import Platform
from repro.sim import verify_pattern

MB = float(2**20)


@pytest.fixture
def planned(uniform8, roomy4):
    """A certified-valid (chain, platform, pattern) triple with comm ops."""
    res = pipedream(uniform8, roomy4)
    assert res.feasible and res.schedule is not None
    pattern = res.schedule.pattern
    assert any(k[0] == "CF" for k in pattern.ops), "need cut boundaries"
    return uniform8, roomy4, pattern


def mutate(pattern: PeriodicPattern, changes: dict) -> PeriodicPattern:
    """Copy ``pattern`` with selected ops replaced (key -> field dict)."""
    ops = dict(pattern.ops)
    for key, fields in changes.items():
        ops[key] = dataclasses.replace(ops[key], **fields)
    return PeriodicPattern(
        allocation=pattern.allocation, period=pattern.period, ops=ops
    )


class TestVerifierMutations:
    def test_unmutated_pattern_passes(self, planned):
        chain, platform, pattern = planned
        report = verify_pattern(chain, platform, pattern)
        assert not report.violations

    def test_shifted_op_rejected(self, planned):
        """Moving a backward onto its own forward's start violates the
        F_i -> B_i dependency (and overlaps the GPU)."""
        chain, platform, pattern = planned
        f = pattern.ops[("F", 0)]
        mutant = mutate(pattern, {("B", 0): dict(start=f.start, shift=f.shift)})
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)

    def test_dropped_dependency_edge_rejected(self, planned):
        """Deleting the activation transfer of a cut boundary severs the
        F_i -> CF_i -> F_{i+1} dependency chain."""
        chain, platform, pattern = planned
        key = next(k for k in pattern.ops if k[0] == "CF")
        ops = {k: v for k, v in pattern.ops.items() if k != key}
        mutant = PeriodicPattern(
            allocation=pattern.allocation, period=pattern.period, ops=ops
        )
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)

    def test_inflated_duration_rejected(self, planned):
        """Tripling one op's duration makes it collide with its resource
        neighbours (the 1F1B* pattern is tightly packed)."""
        chain, platform, pattern = planned
        key = ("F", 0)
        mutant = mutate(pattern, {key: dict(duration=3.0 * pattern.ops[key].duration)})
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)

    def test_overfilled_gpu_rejected(self, planned):
        """The same pattern on a platform with a fraction of the memory
        must trip the capacity check."""
        chain, platform, pattern = planned
        peak = max(pattern.memory_peaks(chain).values())
        tight = Platform(
            n_procs=platform.n_procs,
            memory=0.5 * peak,
            bandwidth=platform.bandwidth,
        )
        with pytest.raises(PatternError):
            verify_pattern(chain, tight, pattern)

    def test_wrong_resource_rejected(self, planned):
        chain, platform, pattern = planned
        op = pattern.ops[("F", 0)]
        other = ("gpu", (op.resource[1] + 1) % platform.n_procs)
        mutant = mutate(pattern, {("F", 0): dict(resource=other)})
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)


@pytest.fixture
def zb_planned(uniform8, roomy4):
    """A certified-valid zero-bubble (chain, platform, pattern) triple."""
    res = pipedream(uniform8, roomy4, schedule_family="zero_bubble")
    assert res.feasible and res.schedule is not None
    pattern = res.schedule.pattern
    assert any(k[0] == "W" for k in pattern.ops), "need split backwards"
    return uniform8, roomy4, pattern


class TestSplitBackwardMutations:
    """The verifier must police the W half of a split backward as strictly
    as the classic op kinds: W ops can't silently vanish, run before their
    grad-input half, or overfill a GPU through the grad-input buffer."""

    def test_unmutated_zb_pattern_passes(self, zb_planned):
        chain, platform, pattern = zb_planned
        report = verify_pattern(chain, platform, pattern)
        assert not report.violations

    def test_dropped_w_rejected(self, zb_planned):
        """Split backwards are all-or-nothing: a planner that loses one
        stage's grad-weight op never trains that stage's weights."""
        chain, platform, pattern = zb_planned
        key = next(k for k in pattern.ops if k[0] == "W")
        ops = {k: v for k, v in pattern.ops.items() if k != key}
        mutant = PeriodicPattern(
            allocation=pattern.allocation, period=pattern.period, ops=ops
        )
        with pytest.raises(PatternError, match="every stage"):
            verify_pattern(chain, platform, mutant)

    def test_w_before_b_rejected(self, zb_planned):
        """W consumes B's grad-input buffer; starting it at B's own start
        violates the B_i -> W_i dependency (and overlaps the GPU)."""
        chain, platform, pattern = zb_planned
        key = next(k for k in pattern.ops if k[0] == "W")
        b = pattern.ops[("B", key[1])]
        mutant = mutate(pattern, {key: dict(start=b.start, shift=b.shift)})
        with pytest.raises(PatternError):
            verify_pattern(chain, platform, mutant)

    def test_grad_buffer_overfill_rejected(self, zb_planned):
        """The capacity check must count the grad-input buffer held from
        B start to W completion: a budget that only fits the pattern when
        that buffer is ignored has to be rejected."""
        chain, platform, pattern = zb_planned
        peaks = pattern.memory_peaks(chain)
        proc, peak = max(peaks.items(), key=lambda kv: kv[1])
        ghat = min(
            pattern.allocation.stages[i].grad_buffer(chain)
            for i in pattern.allocation.stages_on_proc(proc)
            if ("W", i) in pattern.ops
        )
        assert ghat > 0

        # without grad-buffer accounting this budget would look feasible
        nograd = mutate(pattern, {})
        nograd.active_grad_batches = lambda stage_idx, tau: 0
        peak_nograd = max(nograd.memory_peaks(chain).values())
        capacity = peak - 0.5 * ghat
        assert peak_nograd <= capacity < peak

        tight = Platform(
            n_procs=platform.n_procs, memory=capacity, bandwidth=platform.bandwidth
        )
        with pytest.raises(PatternError, match="memory"):
            pattern.check_memory(chain, tight)

        # ...and just above the true peak the same pattern verifies clean
        roomy = Platform(
            n_procs=platform.n_procs, memory=1.001 * peak, bandwidth=platform.bandwidth
        )
        verify_pattern(chain, roomy, pattern)
