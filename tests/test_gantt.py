"""Tests for the ASCII Gantt renderer."""

from repro.algorithms import min_feasible_period
from repro.core import Partitioning
from repro.viz import render_gantt


class TestGantt:
    def test_contains_resources_and_ops(self, cnnlike16, roomy4):
        part = Partitioning.from_cuts(16, [4, 8, 12])
        res = min_feasible_period(cnnlike16, roomy4, part)
        text = render_gantt(res.pattern)
        for p in range(4):
            assert f"GPU {p}" in text
        assert "link" in text
        assert "F0[" in text and "B0[" in text

    def test_width_respected(self, uniform8, roomy4):
        part = Partitioning.from_cuts(8, [4])
        res = min_feasible_period(uniform8, roomy4, part)
        text = render_gantt(res.pattern, width=60)
        for line in text.splitlines():
            if "|" in line:
                inner = line.split("|")[1]
                assert len(inner) == 60

    def test_period_in_header(self, uniform8, roomy4):
        part = Partitioning.from_cuts(8, [4])
        res = min_feasible_period(uniform8, roomy4, part)
        assert f"{res.pattern.period:.6g}" in render_gantt(res.pattern)
