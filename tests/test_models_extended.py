"""Tests for the extended model zoo: MobileNet, Transformer, U-Net,
grouped convolutions."""

import pytest

from repro.models import linearize, mobilenet_v1, transformer_encoder, unet
from repro.models.layers import Conv2d, FeedForward, SelfAttention, TokenEmbedding, Upsample
from repro.profiling import V100, profile_model


class TestGroupedConv:
    def test_depthwise_params(self):
        # depthwise 3x3 over 32 channels: 9 * 1 * 32
        dw = Conv2d(32, 3, padding=1, groups=32)
        assert dw.param_count((32, 8, 8)) == 9 * 32

    def test_depthwise_flops_scale(self):
        full = Conv2d(32, 3, padding=1)
        dw = Conv2d(32, 3, padding=1, groups=32)
        assert full.fwd_flops((32, 8, 8)) == 32 * dw.fwd_flops((32, 8, 8))

    def test_group_divisibility(self):
        with pytest.raises(ValueError):
            Conv2d(32, 3, groups=5).out_shape((32, 8, 8))
        with pytest.raises(ValueError):
            Conv2d(30, 3, groups=4).out_shape((32, 8, 8))
        with pytest.raises(ValueError):
            Conv2d(32, 3, groups=0).out_shape((32, 8, 8))


class TestMobileNet:
    def test_params(self):
        g = mobilenet_v1(image_size=224)
        g.propagate_shapes()
        # torchvision/keras MobileNetV1: ~4.23M parameters
        assert g.total_params() == pytest.approx(4.23e6, rel=0.02)

    def test_width_multiplier(self):
        g_full = mobilenet_v1(image_size=224)
        g_half = mobilenet_v1(image_size=224, width=0.5)
        g_full.propagate_shapes()
        g_half.propagate_shapes()
        assert g_half.total_params() < g_full.total_params() / 2.5

    def test_linearizes_to_pure_chain(self):
        g = mobilenet_v1(image_size=224)
        profile_model(g, V100, 2)
        chain = linearize(g)
        assert chain.L == len(g) - 1  # sequential network


class TestTransformer:
    def test_bert_base_params(self):
        g = transformer_encoder()  # 12 x 768, vocab 32k
        g.propagate_shapes()
        # BERT-base without pooler: ~110M (vocab-dependent)
        assert g.total_params() == pytest.approx(110e6, rel=0.05)

    def test_blocks_group_into_chain_layers(self):
        g = transformer_encoder(n_layers=6, d_model=256, heads=8, seq_len=128)
        profile_model(g, V100, 4)
        chain = linearize(g)
        # embed + 2 nodes per block (attn-res and ffn-res) + final ln
        assert chain.L == 2 + 2 * 6
        # homogeneous middle: all attention-residual groups cost the same
        mids = [l for l in chain.layers if "res1" in l.name]
        assert len(mids) == 6
        assert len({round(m.u_f, 9) for m in mids}) == 1

    def test_heads_divisibility(self):
        g = transformer_encoder(n_layers=1, d_model=100, heads=8)
        with pytest.raises(ValueError):
            g.propagate_shapes()

    def test_attention_flops_quadratic_in_seq(self):
        att = SelfAttention(8)
        f1 = att.fwd_flops((128, 256))
        f2 = att.fwd_flops((256, 256))
        assert f2 > 2 * f1  # superlinear due to the s^2 term

    def test_embedding_params(self):
        emb = TokenEmbedding(1000, 64)
        assert emb.param_count((128,)) == 1000 * 64 + 128 * 64

    def test_ffn_params(self):
        ffn = FeedForward(1024)
        assert ffn.param_count((16, 256)) == 2 * 256 * 1024 + 1024 + 256


class TestUNet:
    def test_upsample_shape(self):
        assert Upsample(2).out_shape((64, 16, 16)) == (64, 32, 32)

    def test_builds_and_profiles(self):
        g = unet(image_size=128, depth=3)
        profile_model(g, V100, 1)
        chain = linearize(g)
        assert chain.L >= 3  # stem cuts + fused skip region + head
        assert chain.total_compute() > 0

    def test_output_channels(self):
        g = unet(image_size=64, depth=2, num_classes=5)
        g.propagate_shapes()
        assert g.shape(g.sink) == (5, 64, 64)

    def test_skips_fuse_into_one_region(self):
        """Long skips leave no serialization point inside the U: the
        bulk of the network must land in a single chain layer."""
        g = unet(image_size=64, depth=2)
        profile_model(g, V100, 1)
        chain = linearize(g)
        biggest = max(chain.layers, key=lambda l: l.u_f)
        assert biggest.u_f > 0.5 * chain.U_f(1, chain.L)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            unet(image_size=100, depth=4)
