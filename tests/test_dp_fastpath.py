"""Golden-equivalence tests for the vectorized MadPipe-DP fast path.

The vectorized solver (:func:`repro.algorithms.madpipe_dp.madpipe_dp`)
must return *identical* results — same ``dp_period``, same allocation,
same ``effective_period``, same reachable-state count — as the
kept-for-reference recursive implementation
(:func:`repro.algorithms.madpipe_dp_reference.madpipe_dp_reference`),
across randomized chains, platforms, targets and grids.  Likewise the
parallel experiment harness must reproduce the serial results, and the
JSONL result cache must round-trip and migrate the legacy format.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.madpipe_dp import Discretization, algorithm1, madpipe_dp
from repro.algorithms.madpipe_dp_reference import madpipe_dp_reference
from repro.core import Platform
from repro.experiments import ResultCache, load_results, run_grid, save_results
from repro.models import random_chain, uniform_chain

INF = float("inf")
COARSE = Discretization.coarse()


def assert_identical(fast, ref):
    assert fast.dp_period == ref.dp_period
    assert fast.effective_period == ref.effective_period
    assert fast.states == ref.states
    assert (fast.allocation is None) == (ref.allocation is None)
    if fast.allocation is not None:
        assert fast.allocation.stages == ref.allocation.stages
        assert fast.allocation.special == ref.allocation.special


class TestGoldenEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_chains(self, seed):
        chain = random_chain(8 + 3 * seed, seed=seed, decay=0.1 + 0.05 * seed)
        u = chain.total_compute()
        platform = Platform.of(2 + seed % 3, 0.5 * (1 + seed % 4), 12)
        for target in (u / platform.n_procs, u / 2, u):
            fast = madpipe_dp(chain, platform, target, grid=COARSE)
            ref = madpipe_dp_reference(chain, platform, target, grid=COARSE)
            assert_identical(fast, ref)

    @pytest.mark.parametrize("n_t,n_m,n_v", [(2, 2, 2), (9, 3, 5), (25, 7, 15)])
    def test_grid_shapes(self, n_t, n_m, n_v):
        chain = random_chain(10, seed=42, decay=0.2)
        platform = Platform.of(3, 1.0, 12)
        grid = Discretization(n_t, n_m, n_v)
        target = chain.total_compute() / 2
        assert_identical(
            madpipe_dp(chain, platform, target, grid=grid),
            madpipe_dp_reference(chain, platform, target, grid=grid),
        )

    def test_contiguous_mode(self):
        chain = random_chain(12, seed=3, decay=0.25)
        platform = Platform.of(4, 2.0, 12)
        target = chain.total_compute() / 4
        assert_identical(
            madpipe_dp(chain, platform, target, grid=COARSE, allow_special=False),
            madpipe_dp_reference(
                chain, platform, target, grid=COARSE, allow_special=False
            ),
        )

    def test_period_cap(self):
        chain = random_chain(12, seed=5, decay=0.15)
        platform = Platform.of(4, 2.0, 12)
        u = chain.total_compute()
        for cap in (u * 0.6, u * 0.9, INF):
            assert_identical(
                madpipe_dp(chain, platform, u / 3, grid=COARSE, period_cap=cap),
                madpipe_dp_reference(
                    chain, platform, u / 3, grid=COARSE, period_cap=cap
                ),
            )

    def test_infeasible_instances(self):
        chain = uniform_chain(8, u_f=1.0, u_b=2.0, weights=2**22, activation=2**23)
        tiny = Platform.of(2, 2**20 / 2**30, 12)
        fast = madpipe_dp(chain, tiny, chain.total_compute(), grid=COARSE)
        ref = madpipe_dp_reference(chain, tiny, chain.total_compute(), grid=COARSE)
        assert not fast.feasible
        assert_identical(fast, ref)

    def test_single_processor_roots(self):
        """P=1 with the special processor makes the root a p==0 state."""
        chain = random_chain(6, seed=9)
        platform = Platform.of(1, 8.0, 12)
        target = chain.total_compute()
        assert_identical(
            madpipe_dp(chain, platform, target, grid=COARSE),
            madpipe_dp_reference(chain, platform, target, grid=COARSE),
        )

    def test_algorithm1_binary_search(self):
        """The full T̂ search lands on the same optimum either way."""
        chain = random_chain(14, seed=11, decay=0.2)
        platform = Platform.of(4, 1.5, 12)
        fast = algorithm1(chain, platform, iterations=6, grid=COARSE)
        ref = algorithm1(
            chain, platform, iterations=6, grid=COARSE, dp=madpipe_dp_reference
        )
        assert fast.period == ref.period
        assert fast.target == ref.target
        assert fast.history == ref.history
        if fast.allocation is not None:
            assert fast.allocation.stages == ref.allocation.stages
            assert fast.allocation.special == ref.allocation.special

    def test_diagnostics_populated(self):
        chain = random_chain(10, seed=1)
        platform = Platform.of(3, 1.0, 12)
        res = madpipe_dp(
            chain,
            platform,
            chain.total_compute() / 2,
            grid=COARSE,
            period_cap=chain.total_compute(),
        )
        assert res.states > 0
        assert res.wall_time_s > 0
        assert res.pruned_mem >= 0 and res.pruned_cap >= 0
        a1 = algorithm1(chain, platform, iterations=3, grid=COARSE)
        assert a1.states > 0
        assert a1.wall_time_s > 0


class TestParallelHarness:
    GRID_ARGS = (("resnet50",), (2,), (6.0, 10.0), (12.0,))
    GRID_KW = dict(
        algorithms=("pipedream", "madpipe"),
        grid=COARSE,
        iterations=3,
        ilp_time_limit=10.0,
    )

    def test_parallel_matches_serial(self):
        serial = run_grid(*self.GRID_ARGS, **self.GRID_KW)
        parallel = run_grid(*self.GRID_ARGS, n_workers=2, **self.GRID_KW)
        assert [r.key for r in serial] == [r.key for r in parallel]
        for a, b in zip(serial, parallel):
            assert a.dp_period == b.dp_period
            assert a.valid_period == b.valid_period
            assert a.n_stages == b.n_stages

    def test_parallel_uses_and_fills_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c.jsonl", flush_every=3)
        first = run_grid(*self.GRID_ARGS, n_workers=2, cache=cache, **self.GRID_KW)
        assert len(cache) == len(first)
        # a fresh cache over the same file replays without recomputing
        replay_cache = ResultCache(tmp_path / "c.jsonl")
        replayed = run_grid(
            *self.GRID_ARGS, n_workers=2, cache=replay_cache, **self.GRID_KW
        )
        assert [r.key for r in replayed] == [r.key for r in first]
        assert all(r.runtime_s == s.runtime_s for r, s in zip(replayed, first))


def mk(network, p, m, b, algo, dp, valid):
    from repro.experiments import RunResult

    return RunResult(
        network=network,
        n_procs=p,
        memory_gb=m,
        bandwidth_gbps=b,
        algorithm=algo,
        dp_period=dp,
        valid_period=valid,
        n_stages=p,
        runtime_s=0.1,
        sequential=1.0,
    )


class TestJSONLCache:
    def test_append_only_io(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        for i in range(5):
            cache.put(mk("net", 2, float(i), 12.0, "madpipe", 0.5, 0.6))
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert all(json.loads(line)["network"] == "net" for line in lines)

    def test_batched_flush(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path, flush_every=10)
        for i in range(4):
            cache.put(mk("net", 2, float(i), 12.0, "madpipe", 0.5, 0.6))
        assert not path.exists() or not path.read_text().strip()
        cache.flush()
        assert len(path.read_text().splitlines()) == 4

    def test_legacy_migration(self, tmp_path):
        path = tmp_path / "legacy.json"
        old = [mk("net", 2, float(i), 12.0, "madpipe", 0.5, INF) for i in range(3)]
        save_results(old, path)
        assert path.read_text().lstrip().startswith("[")
        cache = ResultCache(path)
        assert len(cache) == 3
        assert cache.get(old[0].key).valid_period == INF
        cache.put(mk("net", 4, 1.0, 12.0, "madpipe", 0.4, 0.5))
        assert not path.read_text().lstrip().startswith("[")
        assert len(load_results(path)) == 4
        # read-only opens never rewrite the legacy file
        save_results(old, path)
        ResultCache(path).flush()
        assert path.read_text().lstrip().startswith("[")

    def test_duplicate_keys_keep_latest(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put(mk("net", 2, 4.0, 12.0, "madpipe", 0.5, 0.6))
        cache.put(mk("net", 2, 4.0, 12.0, "madpipe", 0.4, 0.45))
        reopened = ResultCache(path)
        assert len(reopened) == 1
        assert reopened.get(("net", 2, 4.0, 12.0, "madpipe")).valid_period == 0.45

    def test_load_results_sniffs_both_formats(self, tmp_path):
        rows = [mk("n", 2, 1.0, 12.0, "madpipe", 0.5, 0.6)]
        legacy, jsonl = tmp_path / "a.json", tmp_path / "b.jsonl"
        save_results(rows, legacy)
        ResultCache(jsonl).put(rows[0])
        assert load_results(legacy)[0].key == load_results(jsonl)[0].key
