"""Unit tests for the memory model M(k, l, g) (paper §4.2.1)."""

import pytest

from repro.core import stage_memory, stage_memory_breakdown

MB = float(2**20)


class TestStageMemory:
    def test_middle_stage_formula(self, tiny_chain):
        # stage = layers 2..3, g = 2:
        #   weights: 3*(20+30) MB, activations: 2*(a1+a2) = 2*(40+30) MB
        #   buffers: 2*(a1 + a3) = 2*(40+20) MB
        expected = (3 * 50 + 2 * 70 + 2 * 60) * MB
        assert stage_memory(tiny_chain, 2, 3, 2) == pytest.approx(expected)

    def test_first_stage_drops_input_buffer(self, tiny_chain):
        # stage 1..1, g=1: 3*10 + 1*50 (a0) + out buffer 2*40
        expected = (30 + 50 + 80) * MB
        assert stage_memory(tiny_chain, 1, 1, 1) == pytest.approx(expected)

    def test_last_stage_drops_output_buffer(self, tiny_chain):
        # stage 4..4, g=3: 3*40 + 3*a3(20) + in buffer 2*20
        expected = (120 + 60 + 40) * MB
        assert stage_memory(tiny_chain, 4, 4, 3) == pytest.approx(expected)

    def test_whole_chain_has_no_buffers(self, tiny_chain):
        bd = stage_memory_breakdown(tiny_chain, 1, 4, 1)
        assert bd.buffers == 0.0

    def test_buffer_override(self, tiny_chain):
        with_buf = stage_memory(tiny_chain, 1, 2, 1, in_buffer=True)
        without = stage_memory(tiny_chain, 1, 2, 1)
        assert with_buf - without == pytest.approx(2 * tiny_chain.activation(0))

    def test_g_zero_keeps_static_parts(self, tiny_chain):
        bd = stage_memory_breakdown(tiny_chain, 2, 3, 0)
        assert bd.activations == 0.0
        assert bd.weights > 0 and bd.buffers > 0

    def test_monotone_in_g(self, tiny_chain):
        values = [stage_memory(tiny_chain, 1, 3, g) for g in range(5)]
        assert values == sorted(values)
        # slope is exactly the stored-activation size
        assert values[2] - values[1] == pytest.approx(
            tiny_chain.stored_activations(1, 3)
        )

    def test_breakdown_total(self, tiny_chain):
        bd = stage_memory_breakdown(tiny_chain, 2, 4, 3)
        assert bd.total == pytest.approx(bd.weights + bd.activations + bd.buffers)
        assert bd.total == pytest.approx(stage_memory(tiny_chain, 2, 4, 3))

    def test_empty_stage_rejected(self, tiny_chain):
        with pytest.raises(ValueError):
            stage_memory(tiny_chain, 3, 2, 1)

    def test_negative_g_rejected(self, tiny_chain):
        with pytest.raises(ValueError):
            stage_memory(tiny_chain, 1, 2, -1)
