"""Unit tests for the platform model."""

import pytest

from repro.core import GB, GBPS, Platform


class TestPlatform:
    def test_of_uses_paper_units(self):
        p = Platform.of(4, 8, 12)
        assert p.n_procs == 4
        assert p.memory == 8 * GB
        assert p.bandwidth == 12 * GBPS

    def test_alias(self):
        assert Platform.of(3, 1, 1).P == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_procs=0, memory=1.0, bandwidth=1.0),
            dict(n_procs=1, memory=0.0, bandwidth=1.0),
            dict(n_procs=1, memory=1.0, bandwidth=0.0),
            dict(n_procs=-2, memory=1.0, bandwidth=1.0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Platform(**kwargs)

    def test_frozen(self):
        p = Platform.of(2, 4, 12)
        with pytest.raises(AttributeError):
            p.n_procs = 3


class TestNonFiniteRejection:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_procs=2, memory=float("nan"), bandwidth=1.0),
            dict(n_procs=2, memory=float("inf"), bandwidth=1.0),
            dict(n_procs=2, memory=1.0, bandwidth=float("nan")),
            dict(n_procs=2, memory=1.0, bandwidth=float("-inf")),
            dict(n_procs=2, memory="lots", bandwidth=1.0),
            dict(n_procs=None, memory=1.0, bandwidth=1.0),
        ],
    )
    def test_non_finite_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Platform(**kwargs)
