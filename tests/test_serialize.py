"""Tests for allocation/pattern JSON serialization."""

import pytest

from repro.algorithms import min_feasible_period
from repro.core import (
    Allocation,
    Partitioning,
    allocation_from_dict,
    allocation_to_dict,
    load_pattern,
    pattern_from_dict,
    pattern_to_dict,
    save_pattern,
)


class TestAllocationRoundtrip:
    def test_contiguous(self):
        a = Allocation.contiguous(Partitioning.from_cuts(10, [3, 7]))
        b = allocation_from_dict(allocation_to_dict(a))
        assert b == a

    def test_special(self):
        a = Allocation(Partitioning.from_cuts(10, [2, 5, 7]), (3, 0, 1, 3))
        b = allocation_from_dict(allocation_to_dict(a))
        assert b.stages == a.stages
        assert b.procs == a.procs
        assert b.special_procs() == [3]


class TestPatternRoundtrip:
    @pytest.fixture
    def pattern(self, cnnlike16, roomy4):
        part = Partitioning.from_cuts(16, [4, 8, 12])
        return min_feasible_period(cnnlike16, roomy4, part).pattern

    def test_dict_roundtrip(self, pattern, cnnlike16, roomy4):
        clone = pattern_from_dict(pattern_to_dict(pattern))
        assert clone.period == pattern.period
        assert set(clone.ops) == set(pattern.ops)
        for key, op in pattern.ops.items():
            c = clone.ops[key]
            assert c.start == op.start
            assert c.duration == op.duration
            assert c.shift == op.shift
            assert c.resource == op.resource
        clone.validate(cnnlike16, roomy4)

    def test_file_roundtrip(self, pattern, tmp_path, cnnlike16, roomy4):
        path = tmp_path / "sched.json"
        save_pattern(pattern, path)
        clone = load_pattern(path)
        clone.validate(cnnlike16, roomy4)
        assert clone.memory_peaks(cnnlike16) == pattern.memory_peaks(cnnlike16)

    def test_resources_are_tuples(self, pattern):
        clone = pattern_from_dict(pattern_to_dict(pattern))
        for op in clone.ops.values():
            assert isinstance(op.resource, tuple)
