"""Validate the dynamic programs against exhaustive-search oracles."""

import pytest

from repro.algorithms import Discretization, madpipe, pipedream
from repro.algorithms.bruteforce import best_contiguous, best_special
from repro.core import Platform
from repro.models import random_chain

FINE = Discretization(101, 21, 101)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("mem_gb", [0.6, 1.2, 8.0])
def test_contiguous_dp_matches_oracle(seed, mem_gb):
    """MadPipe's contiguous restriction (accurate memory model) must land
    within discretization error of the exhaustive contiguous optimum."""
    chain = random_chain(8, seed=seed, decay=0.2)
    plat = Platform.of(3, mem_gb, 12)
    oracle = best_contiguous(chain, plat)
    res = madpipe(
        chain, plat, grid=FINE, iterations=12, allow_special=False,
        contiguous_fallback=False,
    )
    if not oracle.feasible:
        assert not res.feasible
        return
    assert res.feasible
    assert res.period >= oracle.period * (1 - 1e-9)  # oracle is a true bound
    assert res.period <= oracle.period * 1.06  # within grid slack


@pytest.mark.parametrize("seed", [0, 3])
def test_pipedream_never_beats_oracle(seed):
    chain = random_chain(8, seed=seed, decay=0.2)
    plat = Platform.of(3, 1.0, 12)
    oracle = best_contiguous(chain, plat)
    pd = pipedream(chain, plat)
    if pd.feasible:
        assert pd.period >= oracle.period * (1 - 1e-9)


def test_special_oracle_bounds_madpipe():
    """Full MadPipe explores a subset of the special-processor space, so
    the exhaustive optimum bounds it from below; and MadPipe must come
    reasonably close on a tiny instance."""
    chain = random_chain(6, seed=4, decay=0.2)
    plat = Platform.of(3, 1.0, 12)
    oracle = best_special(chain, plat, ilp_time_limit=5)
    res = madpipe(chain, plat, grid=FINE, iterations=12, ilp_time_limit=10)
    assert oracle.feasible
    assert res.feasible
    assert res.period >= oracle.period * (1 - 1e-6)
    assert res.period <= oracle.period * 1.35

    contiguous = best_contiguous(chain, plat)
    # the wider space can only help
    assert oracle.period <= contiguous.period * (1 + 1e-9)


def test_refuses_large_instances():
    chain = random_chain(20, seed=0)
    plat = Platform.of(3, 8.0, 12)
    with pytest.raises(ValueError, match="exponential"):
        best_contiguous(chain, plat)
    with pytest.raises(ValueError, match="exponential"):
        best_special(chain, plat)
