"""Tests for the experiment harness and figure generators."""

import pytest

from repro.algorithms import Discretization
from repro.core import Platform
from repro.experiments import (
    PAPER_NETWORKS,
    ResultCache,
    RunResult,
    fig6_data,
    fig7_data,
    fig8_data,
    load_results,
    paper_chain,
    paper_platforms,
    render_fig6,
    render_fig7,
    render_fig8,
    run_instance,
    save_results,
)

INF = float("inf")


def mk(network, p, m, b, algo, dp, valid, seq=1.0):
    return RunResult(
        network=network,
        n_procs=p,
        memory_gb=m,
        bandwidth_gbps=b,
        algorithm=algo,
        dp_period=dp,
        valid_period=valid,
        n_stages=p,
        runtime_s=0.0,
        sequential=seq,
    )


@pytest.fixture
def toy_results():
    out = []
    for m, (pd, mp) in {4.0: (0.5, 0.4), 8.0: (0.3, 0.25)}.items():
        out.append(mk("netA", 2, m, 12.0, "pipedream", pd * 0.9, pd))
        out.append(mk("netA", 2, m, 12.0, "madpipe", mp * 0.95, mp))
    # an infeasible PipeDream point
    out.append(mk("netA", 4, 4.0, 12.0, "pipedream", INF, INF))
    out.append(mk("netA", 4, 4.0, 12.0, "madpipe", 0.2, 0.22))
    return out


class TestScenarios:
    def test_networks_list(self):
        assert set(PAPER_NETWORKS) == {
            "resnet50",
            "resnet101",
            "inception",
            "densenet121",
        }

    def test_unknown_network(self):
        with pytest.raises(ValueError):
            paper_chain("alexnet")

    def test_platform_grid_size(self):
        plats = paper_platforms(
            procs=(2, 4), memories_gb=(4, 8), bandwidths_gbps=(12,)
        )
        assert len(plats) == 4
        assert all(isinstance(p, Platform) for p in plats)

    def test_paper_chain_cached(self):
        a = paper_chain("resnet50", image_size=128, batch_size=1)
        b = paper_chain("resnet50", image_size=128, batch_size=1)
        assert a is b


class TestHarness:
    def test_run_instance_both_algorithms(self):
        chain = paper_chain("resnet50", image_size=128, batch_size=1)
        plat = Platform.of(2, 8, 12)
        for algo in ("pipedream", "madpipe"):
            r = run_instance(
                chain,
                plat,
                algo,
                network="resnet50-128",
                grid=Discretization.coarse(),
                iterations=4,
                ilp_time_limit=10,
            )
            assert r.algorithm == algo
            assert r.feasible
            assert r.valid_period >= r.dp_period * 0.5
            assert r.runtime_s > 0

    def test_unknown_algorithm(self, uniform8, roomy4):
        with pytest.raises(ValueError):
            run_instance(uniform8, roomy4, "magic")

    def test_save_load_roundtrip(self, tmp_path, toy_results):
        path = tmp_path / "r.json"
        save_results(toy_results, path)
        loaded = load_results(path)
        assert len(loaded) == len(toy_results)
        assert {r.key for r in loaded} == {r.key for r in toy_results}
        inf_points = [r for r in loaded if not r.feasible]
        assert len(inf_points) == 1
        assert inf_points[0].valid_period == INF

    def test_result_cache(self, tmp_path, toy_results):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        for r in toy_results:
            cache.put(r)
        reopened = ResultCache(path)
        assert len(reopened) == len(toy_results)
        assert reopened.get(toy_results[0].key) is not None
        assert reopened.get(("nope", 1, 1.0, 1.0, "x")) is None

    def test_speedup(self):
        r = mk("n", 2, 4.0, 12.0, "madpipe", 0.5, 0.5, seq=2.0)
        assert r.speedup == pytest.approx(4.0)


class TestFigures:
    def test_fig6(self, toy_results):
        panels = fig6_data(toy_results, "netA")
        assert len(panels) == 2  # (P=2, 12) and (P=4, 12)
        p2 = [p for p in panels if p.n_procs == 2][0]
        assert p2.memories_gb == [4.0, 8.0]
        assert p2.madpipe_valid == [0.4, 0.25]
        text = render_fig6(panels)
        assert "P=2" in text and "inf" in text

    def test_fig7_geomean(self, toy_results):
        data = fig7_data(toy_results)
        rows = dict((m, v) for m, v, _ in data["netA"])
        # M=8: single case, ratio 0.3/0.25
        assert rows[8.0] == pytest.approx(0.3 / 0.25)
        # M=4: geomean of 0.5/0.4 and seq(1.0)/0.22 (PipeDream infeasible)
        import math

        expected = math.exp(
            (math.log(0.5 / 0.4) + math.log(1.0 / 0.22)) / 2
        )
        assert rows[4.0] == pytest.approx(expected)
        assert "netA" in render_fig7(data)

    def test_fig8(self, toy_results):
        data = fig8_data(toy_results)
        assert data[("netA", 4.0, "madpipe")] == [(2, 1 / 0.4), (4, 1 / 0.22)]
        text = render_fig8(data)
        assert "speedup" in text
        assert "madpipe" in text
