"""Tests for the phase-2 scheduling MILP (§4.3)."""

import pytest

from repro.core import Allocation, Partitioning, Platform
from repro.ilp import build_milp, schedule_allocation, solve_fixed_period
from repro.models import uniform_chain
from repro.sim import verify_pattern

MB = float(2**20)
GB = float(2**30)


@pytest.fixture
def chain():
    return uniform_chain(8, u_f=1.0, u_b=2.0, weights=1 * MB, activation=64 * MB)


@pytest.fixture
def contiguous2(chain):
    return Allocation.contiguous(Partitioning.from_cuts(8, [4]))


@pytest.fixture
def special3(chain):
    # stages 1-2 / 3-6 / 7-8; GPU 0 is special (first and last stage)
    return Allocation(Partitioning.from_cuts(8, [2, 6]), (0, 1, 0))


class TestBuildMilp:
    def test_variable_layout(self, chain, contiguous2):
        plat = Platform.of(2, 4, 12)
        m = build_milp(chain, plat, contiguous2, 20.0)
        # 4 compute ops + 2 comm ops
        assert len(m.ops) == 6
        # t + h per op, plus one y per same-resource pair (1 per gpu, 1 link)
        assert m.n_vars == 12 + 3
        assert sum(m.integrality) == 6 + 3  # shifts + disjunctions

    def test_special_has_more_disjunctions(self, chain, special3):
        plat = Platform.of(2, 4, 12)
        m = build_milp(chain, plat, special3, 20.0)
        # GPU 0 hosts 4 ops -> 6 pairs; GPU 1 hosts 2 -> 1 pair;
        # links (0,1) twice x 2 ops... both cuts use link(0,1): 4 ops -> 6
        assert len(m.y_index) == 6 + 1 + 6

    def test_static_overflow_raises(self, contiguous2):
        # zero activations: the memory rows are constant, so an oversized
        # static footprint (weights/buffers) must fail at build time
        heavy = uniform_chain(8, u_f=1.0, u_b=2.0, weights=512 * MB, activation=0.0)
        tiny = Platform.of(2, 1.0, 12)
        with pytest.raises(ValueError, match="static"):
            build_milp(heavy, tiny, contiguous2, 20.0)

    def test_invalid_period(self, chain, contiguous2):
        with pytest.raises(ValueError):
            build_milp(chain, Platform.of(2, 4, 12), contiguous2, 0.0)


class TestSolveFixedPeriod:
    def test_sequential_period_feasible(self, chain, contiguous2):
        plat = Platform.of(2, 4, 12)
        T = 24.0 + 4 * chain.activation(4) / plat.bandwidth
        pat = solve_fixed_period(chain, plat, contiguous2, T, time_limit=20)
        assert pat is not None
        verify_pattern(chain, plat, pat)

    def test_below_load_bound_infeasible(self, chain, contiguous2):
        plat = Platform.of(2, 4, 12)
        assert solve_fixed_period(chain, plat, contiguous2, 6.0, time_limit=20) is None

    def test_tight_memory_infeasible_at_small_period(self, chain, contiguous2):
        # each stage stores 4*64 MB per copy + 12 MB buffers/weights;
        # allow ~1.5 copies so the pipelined (2-copy) period is rejected
        plat = Platform.of(2, 0.40, 12)
        assert solve_fixed_period(chain, plat, contiguous2, 12.5, time_limit=20) is None

    def test_memory_constraint_respected(self, chain, special3):
        plat = Platform.of(2, 2.0, 12)
        T = 26.0
        pat = solve_fixed_period(chain, plat, special3, T, time_limit=20)
        assert pat is not None
        peaks = pat.memory_peaks(chain)
        assert all(m <= plat.memory * (1 + 1e-6) for m in peaks.values())


class TestScheduleAllocation:
    def test_contiguous_matches_load_bound_when_roomy(self, chain, contiguous2):
        plat = Platform.of(2, 1024, 12)
        res = schedule_allocation(chain, plat, contiguous2, time_limit=20)
        assert res.feasible
        lb = contiguous2.period_lower_bound(chain, plat)
        assert res.period <= lb * 1.01
        verify_pattern(chain, plat, res.pattern)

    def test_non_contiguous_schedulable(self, chain, special3):
        plat = Platform.of(2, 4, 12)
        res = schedule_allocation(chain, plat, special3, time_limit=20)
        assert res.feasible
        verify_pattern(chain, plat, res.pattern)
        # GPU 0 runs stages 0 and 2: its load is the binding bound
        lb = special3.period_lower_bound(chain, plat)
        assert res.period >= lb - 1e-9

    def test_memory_pressure_raises_period(self, chain, special3):
        roomy = schedule_allocation(
            chain, Platform.of(2, 1024, 12), special3, time_limit=20
        )
        tight = schedule_allocation(
            chain, Platform.of(2, 1.3, 12), special3, time_limit=20
        )
        assert roomy.feasible and tight.feasible
        assert tight.period >= roomy.period - 1e-9

    def test_impossible_memory(self, chain, special3):
        res = schedule_allocation(
            chain, Platform.of(2, 0.05, 12), special3, time_limit=20
        )
        assert not res.feasible
        assert res.period == float("inf")

    def test_probe_trace_recorded(self, chain, contiguous2):
        plat = Platform.of(2, 4, 12)
        res = schedule_allocation(chain, plat, contiguous2, time_limit=20)
        assert res.probes
        assert res.probes[0][0] == pytest.approx(
            contiguous2.period_lower_bound(chain, plat)
        )


class TestSpecialProcessorInterleaving:
    def test_ilp_finds_memory_saving_interleave(self):
        """Fig. 5 scenario: two stages on the special processor.  When
        memory only allows the interleaved schedule (backward of one stage
        between the forwards), the ILP must find it rather than declare
        the period infeasible."""
        chain = uniform_chain(6, u_f=1.0, u_b=2.0, weights=0.0, activation=256 * MB)
        # stages: 1-2 (special), 3-4 (normal), 5-6 (special)
        alloc = Allocation(Partitioning.from_cuts(6, [2, 4]), (0, 1, 0))
        plat_roomy = Platform.of(2, 1024, 12)
        res = schedule_allocation(chain, plat_roomy, alloc, time_limit=30)
        assert res.feasible
        base_period = res.period

        # now constrain memory to just above the best-case peak
        peaks = res.pattern.memory_peaks(chain)
        tight = Platform.of(2, (max(peaks.values()) * 1.02) / GB, 12)
        res2 = schedule_allocation(chain, tight, alloc, time_limit=30)
        assert res2.feasible
        verify_pattern(chain, tight, res2.pattern)
        assert res2.period <= base_period * 1.6


class TestILPConsistencyWith1F1B:
    """On contiguous allocations 1F1B* is provably memory-optimal, so the
    ILP (restricted to non-wrapping ops) can never beat its minimal
    feasible period, and should get close when memory is loose."""

    @pytest.mark.parametrize("mem_gb", [1024.0, 2.0])
    def test_ilp_never_beats_onef1b(self, mem_gb):
        from repro.algorithms import min_feasible_period
        from repro.core import Partitioning
        from repro.models import random_chain

        chain = random_chain(12, seed=5, decay=0.15)
        part = Partitioning.from_cuts(12, [4, 8])
        plat = Platform.of(3, mem_gb, 12)
        star = min_feasible_period(chain, plat, part)
        if star is None:
            pytest.skip("1F1B* infeasible at this memory")
        ilp = schedule_allocation(
            chain, plat, Allocation.contiguous(part), time_limit=20
        )
        assert ilp.feasible
        assert ilp.period >= star.period * (1 - 1e-6)
        if mem_gb > 100:
            # unconstrained: both must sit at the load lower bound
            assert ilp.period <= star.period * 1.01
