"""Tests for hybrid data + model parallelism (paper §1/§6 perspective)."""

import pytest

from repro.algorithms import Discretization, group_sizes, hybrid, scale_chain_for_group
from repro.core import Platform
from repro.models import uniform_chain

MB = float(2**20)
COARSE = Discretization.coarse()


class TestScaling:
    def test_group_sizes(self):
        assert group_sizes(8) == [1, 2, 4, 8]
        assert group_sizes(6) == [1, 2, 3, 6]
        assert group_sizes(1) == [1]

    def test_identity_at_r1(self, cnnlike16):
        assert scale_chain_for_group(cnnlike16, 1, 1e9) is cnnlike16

    def test_compute_and_activations_shard(self, uniform8):
        beta = 12 * 2**30
        scaled = scale_chain_for_group(uniform8, 4, beta)
        assert scaled.u_f(1) == pytest.approx(uniform8.u_f(1) / 4)
        assert scaled.activation(3) == pytest.approx(uniform8.activation(3) / 4)
        assert scaled.activation(0) == pytest.approx(uniform8.activation(0) / 4)

    def test_weights_replicated_with_allreduce(self, uniform8):
        beta = 12 * 2**30
        scaled = scale_chain_for_group(uniform8, 4, beta)
        assert scaled.weight(2) == uniform8.weight(2)
        allreduce = 2.0 * uniform8.weight(2) * 3 / (4 * beta)
        assert scaled.u_b(2) == pytest.approx(uniform8.u_b(2) / 4 + allreduce)

    def test_invalid_group(self, uniform8):
        with pytest.raises(ValueError):
            scale_chain_for_group(uniform8, 0, 1e9)


class TestHybrid:
    def test_sweeps_all_divisors(self, cnnlike16):
        plat = Platform.of(4, 8.0, 12)
        res = hybrid(cnnlike16, plat, grid=COARSE, iterations=5, ilp_time_limit=10)
        assert [r for r, _ in res.sweep] == [1, 2, 4]
        assert res.feasible
        assert res.group_size * res.n_groups == 4

    def test_best_is_min_of_sweep(self, cnnlike16):
        plat = Platform.of(4, 8.0, 12)
        res = hybrid(cnnlike16, plat, grid=COARSE, iterations=5, ilp_time_limit=10)
        finite = [p for _, p in res.sweep if p != float("inf")]
        assert res.period == pytest.approx(min(finite))

    def test_weight_heavy_chain_prefers_small_groups(self):
        """Huge weights make all-reduce expensive: pure model parallelism
        (r = 1) should win."""
        chain = uniform_chain(
            8, u_f=0.01, u_b=0.02, weights=1024 * MB, activation=1 * MB
        )
        plat = Platform.of(4, 16.0, 1.0)  # slow links hurt all-reduce
        res = hybrid(chain, plat, grid=COARSE, iterations=5, ilp_time_limit=10)
        assert res.group_size == 1

    def test_weight_light_chain_tolerates_data_parallelism(self):
        """With tiny weights the all-reduce is free, so larger groups are
        at least represented among the near-optimal configurations."""
        chain = uniform_chain(
            8, u_f=0.05, u_b=0.10, weights=0.1 * MB, activation=2 * MB
        )
        plat = Platform.of(4, 16.0, 12)
        res = hybrid(chain, plat, grid=COARSE, iterations=5, ilp_time_limit=10)
        periods = dict(res.sweep)
        # flat data parallelism must be close to ideal here
        assert periods[4] <= chain.total_compute() / 4 * 1.2

    def test_memory_relief_from_sharding(self):
        """Activation-sharded groups can be feasible where pure model
        parallelism is not."""
        chain = uniform_chain(
            4, u_f=0.05, u_b=0.10, weights=1 * MB, activation=600 * MB
        )
        plat = Platform.of(4, 1.0, 12)
        res = hybrid(chain, plat, grid=COARSE, iterations=5, ilp_time_limit=10)
        periods = dict(res.sweep)
        assert periods[1] == float("inf") or periods[4] < float("inf")
        assert res.feasible
