"""Tests for the eager 1F1B executor (PipeDream's scheduling policy)."""

import pytest

from repro.algorithms import min_feasible_period
from repro.core import Allocation, Partitioning
from repro.sim import eager_1f1b

MB = float(2**20)


class TestEager1F1B:
    def test_completes_all_batches(self, uniform8, roomy4):
        alloc = Allocation.contiguous(Partitioning.from_cuts(8, [2, 4, 6]))
        rep = eager_1f1b(uniform8, roomy4, alloc, n_batches=16)
        completions = [e for e in rep.executions if e[0] == "B" and e[1] == 0]
        assert len(completions) == 16

    def test_steady_period_at_least_bottleneck(self, uniform8, roomy4):
        alloc = Allocation.contiguous(Partitioning.from_cuts(8, [2, 4, 6]))
        rep = eager_1f1b(uniform8, roomy4, alloc, n_batches=24)
        lb = alloc.period_lower_bound(uniform8, roomy4)
        assert rep.steady_period >= lb * 0.99

    def test_deeper_pipeline_not_slower(self, cnnlike16, roomy4):
        alloc = Allocation.contiguous(Partitioning.from_cuts(16, [4, 8, 12]))
        shallow = eager_1f1b(cnnlike16, roomy4, alloc, n_batches=24, depth=1)
        deep = eager_1f1b(cnnlike16, roomy4, alloc, n_batches=24, depth=4)
        assert deep.makespan <= shallow.makespan * 1.01

    def test_depth_one_is_sequential(self, uniform8, roomy4):
        alloc = Allocation.contiguous(Partitioning.from_cuts(8, [4]))
        rep = eager_1f1b(uniform8, roomy4, alloc, n_batches=8, depth=1)
        # one batch in flight: period == full round trip
        seq = 24.0 + 4 * uniform8.activation(4) / roomy4.bandwidth
        assert rep.steady_period == pytest.approx(seq, rel=0.01)

    def test_memory_grows_with_depth(self, cnnlike16, roomy4):
        alloc = Allocation.contiguous(Partitioning.from_cuts(16, [4, 8, 12]))
        m1 = eager_1f1b(cnnlike16, roomy4, alloc, n_batches=24, depth=1).peak_memory
        m4 = eager_1f1b(cnnlike16, roomy4, alloc, n_batches=24, depth=4).peak_memory
        assert m4[0] >= m1[0]
        assert max(m4.values()) > max(m1.values()) * 0.99

    def test_eager_memory_never_below_optimal_pattern(self, cnnlike16, roomy4):
        """Proposition 1 consequence: 1F1B* uses the fewest active batches
        of all schedules achieving its period.  The eager run at the same
        effective rate must use at least as much peak activation memory on
        the first GPU (which holds the big early activations)."""
        part = Partitioning.from_cuts(16, [4, 8, 12])
        res = min_feasible_period(cnnlike16, roomy4, part)
        eager = eager_1f1b(
            cnnlike16, roomy4, Allocation.contiguous(part), n_batches=32
        )
        if eager.steady_period <= res.period * 1.001:
            assert eager.peak_memory[0] >= res.memory[0] * 0.999

    def test_requires_contiguous(self, uniform8, roomy4):
        alloc = Allocation(Partitioning.from_cuts(8, [2, 4]), (0, 1, 0))
        with pytest.raises(ValueError, match="contiguous"):
            eager_1f1b(uniform8, roomy4, alloc)

    def test_invalid_depth(self, uniform8, roomy4):
        alloc = Allocation.contiguous(Partitioning.from_cuts(8, [4]))
        with pytest.raises(ValueError):
            eager_1f1b(uniform8, roomy4, alloc, depth=0)
