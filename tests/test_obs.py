"""Observability layer: spans, metrics, exporters, cross-process merge."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.algorithms.madpipe_dp import Discretization, algorithm1
from repro.core.platform import Platform
from repro.experiments import run_grid
from repro.experiments.harness import ResultCache
from repro.models import uniform_chain

COARSE = Discretization.coarse()
MB = float(2**20)


# ------------------------------------------------------------------ spans


class TestTrace:
    def test_span_nesting(self):
        tr = obs.Trace("t")
        with obs.use_trace(tr):
            with obs.span("outer", a=1):
                with obs.span("inner"):
                    pass
                with obs.span("inner") as sp:
                    sp.set(b=2)
        assert len(tr.roots) == 1
        outer = tr.roots[0]
        assert outer.name == "outer" and outer.attrs == {"a": 1}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.children[1].attrs == {"b": 2}
        assert outer.wall_s >= sum(c.wall_s for c in outer.children) >= 0
        assert len(tr) == 3 and len(tr.find("inner")) == 2

    def test_exception_leaves_recorded_span_with_error_status(self):
        tr = obs.Trace()
        with obs.use_trace(tr):
            with pytest.raises(ValueError):
                with obs.span("outer"):
                    with obs.span("boom"):
                        raise ValueError("x")
            with obs.span("after"):
                pass
        assert [r.name for r in tr.roots] == ["outer", "after"]
        boom = tr.roots[0].children[0]
        assert boom.status == "error:ValueError"
        # the stack unwound cleanly: "after" is a root, not a child
        assert tr._stack == []

    def test_span_dict_round_trip(self):
        tr = obs.Trace()
        with obs.use_trace(tr):
            with obs.span("a", x=1.5, label="s") as sp:
                sp.set(period=float("inf"))  # non-finite → None in JSON
                with obs.span("b"):
                    pass
        d = tr.roots[0].to_dict()
        json.dumps(d)  # must be JSON-clean
        assert d["attrs"]["period"] is None
        back = obs.Span.from_dict(d)
        assert back.name == "a" and back.children[0].name == "b"
        assert back.attrs["x"] == 1.5

    def test_disabled_is_null_span(self):
        assert obs.active_trace() is None
        assert obs.span("anything", k=1) is obs.NULL_SPAN
        with obs.span("anything") as sp:
            sp.set(a=1)  # no-op, no error

    def test_disabled_trace_identical_results(self, uniform8):
        plat = Platform.of(4, 1.0, 12)
        base = algorithm1(uniform8, plat, iterations=6, grid=COARSE)
        tr = obs.Trace()
        with obs.use_trace(tr), obs.use_metrics(obs.MetricsRegistry()):
            traced = algorithm1(uniform8, plat, iterations=6, grid=COARSE)
        assert traced.period == base.period
        assert traced.states == base.states
        assert len(tr.find("madpipe.dp")) == len(base.history)


# ---------------------------------------------------------------- metrics


class TestMetrics:
    def test_inc_get_snapshot(self):
        reg = obs.MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 2)
        reg.inc("z.wall_s", 0.5)
        assert reg.get("a.b") == 3
        assert list(reg.snapshot()) == ["a.b", "z.wall_s"]
        assert reg.counters() == {"a.b": 3}  # _s-suffixed filtered out
        assert len(reg) == 2

    def test_module_inc_is_guarded(self):
        obs.inc("nobody.home")  # no registry installed: silent no-op
        reg = obs.MetricsRegistry()
        with obs.use_metrics(reg):
            obs.inc("x")
        obs.inc("x")  # outside the context again
        assert reg.get("x") == 1

    def test_merge_is_additive(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("m")
        a.merge(b.snapshot())
        assert a.get("n") == 5 and a.get("m") == 1

    def test_timer_accumulates(self):
        reg = obs.MetricsRegistry()
        with reg.timer("t_s"):
            pass
        with obs.use_metrics(reg), obs.time_block("t_s"):
            pass
        assert reg.get("t_s") > 0


# ----------------------------------------------------- cross-process merge


class TestSweepObservability:
    GRID = dict(
        networks=("toy6",),
        procs=(2,),
        memories_gb=(8.0,),
        bandwidths_gbps=(12.0,),
    )

    def test_serial_vs_pool_counters_identical(self):
        """Counter sums are order-independent: a 2-worker pool must merge
        to exactly the serial totals."""
        serial = obs.MetricsRegistry()
        with obs.use_metrics(serial):
            run_grid(**self.GRID, iterations=2, grid=COARSE)
        pooled = obs.MetricsRegistry()
        with obs.use_metrics(pooled):
            run_grid(**self.GRID, iterations=2, grid=COARSE, n_workers=2)
        assert serial.counters() == pooled.counters()
        assert serial.get("sweep.instances") == 2

    def test_trace_path_jsonl(self, tmp_path):
        trace_file = tmp_path / "sweep_trace.jsonl"
        run_grid(**self.GRID, iterations=2, grid=COARSE,
                 trace_path=trace_file)
        lines = [json.loads(ln) for ln in trace_file.read_text().splitlines()]
        assert len(lines) == 2  # one record per instance
        for rec in lines:
            assert set(rec) == {"spec", "spans"}
            assert rec["spans"][0]["name"] == "instance"
        roots = obs.load_trace_file(trace_file)
        names = {s["name"] for r in roots for s in _walk(r)}
        assert "madpipe.dp" in names

    def test_resumed_sweep_appends(self, tmp_path):
        trace_file = tmp_path / "t.jsonl"
        cache = ResultCache(tmp_path / "c.jsonl")
        run_grid(**self.GRID, iterations=2, grid=COARSE,
                 cache=cache, trace_path=trace_file)
        n = len(trace_file.read_text().splitlines())
        # resume: everything cached, nothing new appended
        run_grid(**self.GRID, iterations=2, grid=COARSE,
                 cache=cache, trace_path=trace_file)
        assert len(trace_file.read_text().splitlines()) == n
        # forcing a re-run appends to the same file
        run_grid(**self.GRID, iterations=2, grid=COARSE,
                 trace_path=trace_file)
        assert len(trace_file.read_text().splitlines()) == 2 * n

    def test_no_observation_returns_plain_results(self):
        results = run_grid(**self.GRID, iterations=2, grid=COARSE)
        assert all(r.status == "ok" for r in results)


def _walk(span: dict):
    yield span
    for c in span.get("children", ()):
        yield from _walk(c)


# -------------------------------------------------------------- exporters


class TestExport:
    def _traced_run(self):
        tr = obs.Trace("x")
        chain = uniform_chain(6, u_f=1.0, u_b=2.0, weights=4 * MB,
                              activation=8 * MB)
        with obs.use_trace(tr):
            algorithm1(chain, Platform.of(2, 1.0, 12), iterations=3,
                       grid=COARSE)
        return tr

    def test_chrome_trace_schema(self):
        tr = self._traced_run()
        doc = obs.chrome_trace(tr)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["reproSpans"] == [s.to_dict() for s in tr.roots]
        assert len(doc["traceEvents"]) == len(tr)
        for ev in doc["traceEvents"]:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(ev)
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        json.dumps(doc)  # Chrome must be able to parse it

    def test_write_and_load_round_trip(self, tmp_path):
        tr = self._traced_run()
        path = obs.write_chrome_trace(tr, tmp_path / "t.json")
        roots = obs.load_trace_file(path)
        assert roots == [s.to_dict() for s in tr.roots]

    def test_load_rejects_foreign_chrome_trace(self, tmp_path):
        p = tmp_path / "foreign.json"
        p.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="reproSpans"):
            obs.load_trace_file(p)

    def test_summarize_and_render(self):
        tr = self._traced_run()
        rows = obs.summarize(tr)
        by_name = {r["name"]: r for r in rows}
        assert by_name["madpipe.algorithm1"]["count"] == 1
        assert by_name["madpipe.dp"]["count"] >= 1
        # total wall is sorted descending
        walls = [r["wall_s"] for r in rows]
        assert walls == sorted(walls, reverse=True)
        table = obs.render_summary(rows)
        assert "madpipe.dp" in table and "count" in table
        assert obs.render_summary([]) == "(empty trace)"

    def test_metrics_payload(self):
        reg = obs.MetricsRegistry()
        reg.inc("a", 2)
        payload = obs.metrics_payload(reg, command="x")
        assert payload == {"metrics": {"a": 2}, "command": "x"}
