"""Planner-as-a-service tests: fingerprints, plan cache, coalescing,
kill-and-restart resume, and the ``repro serve`` CLI.

The service's core promise is that it never changes an answer — a served
plan is bit-identical (``PlanResult.to_json()``) to a direct cold
:func:`repro.api.plan` call whether it came from a fresh solve, the
in-process LRU, the persistent store, or another request's coalesced
solve.  Every behavioural test here re-asserts that promise alongside
whatever mechanism it exercises.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import api, warmstart
from repro.algorithms import Discretization
from repro.cli import main as cli_main
from repro.core.platform import Platform
from repro.models import uniform_chain
from repro.serve import PlanCache, PlanService, PlanStore, request_fingerprint
from repro.testing import Fault, FaultInjected, faults
from repro.warmstart import canonical_value

MB = float(2**20)
COARSE = Discretization.coarse()
PLAN_OPTS = dict(grid=COARSE, iterations=4, ilp_time_limit=10.0)


def toy(L: int = 4, **kw):
    defaults = dict(u_f=0.001, u_b=0.002, weights=4 * MB, activation=8 * MB,
                    name=f"toy{L}")
    defaults.update(kw)
    return uniform_chain(L, **defaults)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def plat() -> Platform:
    return Platform.of(2, 8.0, 12.0)


def make_service(tmp_path=None, **kw) -> PlanService:
    kw.setdefault("max_workers", 0)
    if tmp_path is not None:
        kw.setdefault("store", tmp_path / "plans.jsonl")
    service = api.serve(**kw)
    assert isinstance(service, PlanService)  # the facade returns the real thing
    return service


# --------------------------------------------------------------- fingerprints


class TestRequestFingerprint:
    def test_key_order_independent(self, plat):
        chain = toy()
        a = request_fingerprint(chain, plat, "madpipe", {"iterations": 4, "x": 1})
        b = request_fingerprint(chain, plat, "madpipe", {"x": 1, "iterations": 4})
        assert a == b

    def test_int_float_normalized(self, plat):
        chain = toy()
        a = request_fingerprint(chain, plat, "madpipe", {"ilp_time_limit": 10})
        b = request_fingerprint(chain, plat, "madpipe", {"ilp_time_limit": 10.0})
        assert a == b

    def test_bool_is_not_one(self, plat):
        chain = toy()
        a = request_fingerprint(chain, plat, "madpipe", {"flag": True})
        b = request_fingerprint(chain, plat, "madpipe", {"flag": 1})
        assert a != b

    def test_equivalent_objects_hash_equal(self):
        # separately constructed but value-identical chain/platform/grid
        a = request_fingerprint(
            toy(), Platform.of(2, 8.0, 12.0), "madpipe",
            {"grid": Discretization.coarse()},
        )
        b = request_fingerprint(
            toy(), Platform.of(2, 8, 12), "madpipe",
            {"grid": Discretization.coarse()},
        )
        assert a == b

    def test_near_misses_distinct(self, plat):
        chain = toy()
        base = request_fingerprint(chain, plat, "madpipe", {"iterations": 4})
        assert base != request_fingerprint(
            chain, Platform.of(2, 8.0 + 1e-9, 12.0), "madpipe", {"iterations": 4}
        )
        assert base != request_fingerprint(chain, plat, "pipedream", {"iterations": 4})
        assert base != request_fingerprint(chain, plat, "madpipe", {"iterations": 5})
        assert base != request_fingerprint(
            toy(u_f=0.0011), plat, "madpipe", {"iterations": 4}
        )

    def test_canonical_value_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            canonical_value(object())


# ------------------------------------------------------------ JSON round-trip


class TestPlanResultJson:
    def test_round_trip_equality(self, plat):
        result = api.plan(toy(), plat, **PLAN_OPTS)
        reloaded = api.PlanResult.from_json(result.to_json())
        assert reloaded.to_json() == result.to_json()
        assert reloaded.algorithm == result.algorithm
        assert reloaded.period == result.period
        assert reloaded.status == result.status
        assert reloaded.pattern is not None
        assert reloaded.certificate is not None
        assert reloaded.certificate.to_dict() == result.certificate.to_dict()

    def test_round_trip_infeasible(self, plat):
        # a chain far beyond the platform memory: period must survive as INF
        result = api.plan(toy(weights=64 * 1024 * MB), plat, **PLAN_OPTS)
        assert not result.feasible
        reloaded = api.PlanResult.from_json(result.to_json())
        assert reloaded.period == float("inf")
        assert reloaded.to_json() == result.to_json()

    def test_json_is_strict(self, plat):
        # the wire form must survive a strict json dump/load cycle
        result = api.plan(toy(), plat, **PLAN_OPTS)
        text = json.dumps(result.to_json(), allow_nan=False, sort_keys=True)
        assert api.PlanResult.from_json(json.loads(text)).to_json() == result.to_json()

    @pytest.mark.parametrize(
        "bad",
        [None, [], {}, {"algorithm": "madpipe"}, {"status": "ok"},
         {"algorithm": "madpipe", "status": "ok", "pattern": 7}],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            api.PlanResult.from_json(bad)


# ------------------------------------------------------------- plan cache


class TestPlanStore:
    def test_persists_across_instances(self, tmp_path, plat):
        payload = api.plan(toy(), plat, **PLAN_OPTS).to_json()
        path = tmp_path / "plans.jsonl"
        store = PlanStore(path)
        store.put_plan("fp1", payload)
        store.flush()
        again = PlanStore(path)
        assert again.get_plan("fp1") == payload
        assert again.get_plan("fp2") is None

    def test_damaged_payload_quarantined(self, tmp_path, plat):
        payload = api.plan(toy(), plat, **PLAN_OPTS).to_json()
        path = tmp_path / "plans.jsonl"
        store = PlanStore(path)
        store.put_plan("fp1", payload)
        store.flush()
        with path.open("a") as fh:
            fh.write('{"fingerprint": "fp2", "plan": {"nope": 1}}\n')
            fh.write("not json at all\n")
        reloaded = PlanStore(path)
        assert reloaded.get_plan("fp1") == payload
        assert reloaded.get_plan("fp2") is None
        assert len(reloaded.quarantined) == 2

    def test_two_tier_promotion_and_dedup(self, tmp_path, plat):
        payload = api.plan(toy(), plat, **PLAN_OPTS).to_json()
        path = tmp_path / "plans.jsonl"
        cache = PlanCache(memory_entries=4, store=path)
        assert cache.get("fp") is None
        cache.put("fp", payload)
        cache.flush()
        assert cache.get("fp") == ("memory", payload)
        # a fresh cache sees only the store; the hit promotes to memory
        cache2 = PlanCache(memory_entries=4, store=path)
        assert cache2.get("fp") == ("store", payload)
        assert cache2.get("fp") == ("memory", payload)
        # re-putting a reloaded plan must not append a duplicate record
        cache2.put("fp", payload)
        cache2.flush()
        assert sum(1 for line in path.open() if line.strip()) == 1


# ------------------------------------------------------------- the service


class TestPlanService:
    def test_served_bit_identical_to_direct_plan(self, tmp_path, plat):
        chain = toy()
        with warmstart.activate(False):
            reference = api.plan(chain, plat, **PLAN_OPTS).to_json()

        async def scenario():
            async with make_service(tmp_path) as service:
                fresh = await service.handle(service.request(chain, plat, **PLAN_OPTS))
                cached = await service.handle(service.request(chain, plat, **PLAN_OPTS))
                return fresh, cached

        fresh, cached = run(scenario())
        assert fresh.served_from == "solve" and not fresh.cached
        assert cached.served_from == "memory" and cached.cached
        assert fresh.fingerprint == cached.fingerprint
        assert fresh.result.to_json() == reference
        assert cached.result.to_json() == reference

    def test_coalescing_single_flight(self, tmp_path, plat):
        chain = toy(5)

        async def scenario():
            async with make_service(tmp_path) as service:
                request = service.request(chain, plat, **PLAN_OPTS)
                replies = await asyncio.gather(
                    *(service.handle(request) for _ in range(6))
                )
                return replies, service.stats()

        replies, stats = run(scenario())
        sources = sorted(r.served_from for r in replies)
        assert sources.count("solve") == 1
        assert sources.count("coalesced") == 5
        assert stats["counters"]["serve.solves"] == 1
        assert stats["counters"]["serve.coalesced"] == 5
        first = replies[0].result.to_json()
        assert all(r.result.to_json() == first for r in replies)

    def test_restart_serves_from_store(self, tmp_path, plat):
        chain = toy(6)

        async def first():
            async with make_service(tmp_path) as service:
                reply = await service.handle(service.request(chain, plat, **PLAN_OPTS))
                return reply.result.to_json()

        async def second():
            async with make_service(tmp_path) as service:
                reply = await service.handle(service.request(chain, plat, **PLAN_OPTS))
                return reply, service.stats()

        before = run(first())
        reply, stats = run(second())
        assert reply.served_from == "store"
        assert reply.result.to_json() == before
        assert "serve.solves" not in stats["counters"]

    def test_submit_positional_shorthand(self, plat):
        async def scenario():
            async with make_service() as service:
                return await service.submit(toy(), plat, **PLAN_OPTS)

        result = run(scenario())
        assert result.status == "ok"

    def test_closed_service_refuses(self, plat):
        async def scenario():
            service = make_service()
            await service.close()
            with pytest.raises(RuntimeError):
                await service.handle(service.request(toy(), plat, **PLAN_OPTS))

        run(scenario())

    def test_error_propagates_to_all_waiters(self, tmp_path, plat):
        faults.install(
            [Fault(site="serve_solve", action="raise", times=-1)], tmp_path
        )

        async def scenario():
            async with make_service(max_retries=0) as service:
                request = service.request(toy(), plat, **PLAN_OPTS)
                return await asyncio.gather(
                    *(service.handle(request) for _ in range(3)),
                    return_exceptions=True,
                )

        replies = run(scenario())
        assert all(isinstance(r, FaultInjected) for r in replies)


class TestKillAndRestart:
    """The acceptance scenario: a service killed mid-replay resumes from
    the persistent store with no duplicate solves and identical answers."""

    CHAINS = (3, 4, 5, 6)

    def replay(self, plat):
        return [toy(L) for L in self.CHAINS for _ in range(2)]

    @pytest.mark.faultinject
    def test_resume_without_duplicate_solves(self, tmp_path, plat):
        chains = self.replay(plat)
        with warmstart.activate(False):
            references = {
                chain.name: api.plan(chain, plat, **PLAN_OPTS).to_json()
                for chain in chains
            }
        # the service dies (hard, uncaught) before its 3rd distinct solve
        faults.install(
            [Fault(site="serve_solve", action="raise", after=2, times=-1)],
            tmp_path / "faults",
        )

        async def killed_replay():
            served = []
            service = make_service(tmp_path, max_retries=0)
            try:
                for chain in chains:
                    request = service.request(chain, plat, **PLAN_OPTS)
                    served.append(await service.handle(request))
            finally:
                # emulate process death: nothing graceful, but the store
                # has already persisted every completed solve
                service.cache.flush()
            return served

        with pytest.raises(FaultInjected):
            run(killed_replay())
        faults.clear()

        async def resumed_replay():
            async with make_service(tmp_path, max_retries=0) as service:
                replies = []
                for chain in chains:
                    request = service.request(chain, plat, **PLAN_OPTS)
                    replies.append(await service.handle(request))
                return replies, service.stats()

        replies, stats = run(resumed_replay())
        # the 2 pre-kill solves come back from the store, never re-solved
        assert stats["counters"]["serve.solves"] == len(self.CHAINS) - 2
        served_from = [r.served_from for r in replies]
        assert served_from.count("store") == 2
        for reply, chain in zip(replies, chains):
            assert reply.result.to_json() == references[chain.name]

    @pytest.mark.faultinject
    def test_hard_worker_death_restarts_pool(self, tmp_path, plat):
        # the worker process dies with os._exit (as SIGKILL would): the
        # pool is rebuilt and the retry succeeds
        chain = toy()
        faults.install(
            [Fault(site="serve_worker", action="exit", times=1)],
            tmp_path / "faults",
        )
        with warmstart.activate(False):
            reference = api.plan(chain, plat, **PLAN_OPTS).to_json()

        async def scenario():
            async with make_service(
                tmp_path, max_workers=1, max_retries=1, retry_backoff_s=0.01
            ) as service:
                reply = await service.handle(service.request(chain, plat, **PLAN_OPTS))
                return reply, service.stats()

        reply, stats = run(scenario())
        assert reply.result.to_json() == reference
        assert stats["counters"]["serve.pool_restarts"] == 1
        assert stats["counters"]["serve.retries"] == 1

    @pytest.mark.faultinject
    def test_pool_restart_cap(self, tmp_path, plat):
        # the pool dies on *every* dispatch: consecutive rebuilds are
        # capped and surfaced as a typed error instead of a restart storm
        # that burns the whole retry budget re-spawning doomed workers
        chain = toy()
        faults.install(
            [Fault(site="serve_worker", action="exit", times=-1)],
            tmp_path / "faults",
        )

        async def scenario():
            async with make_service(
                tmp_path, max_workers=1, max_retries=5, retry_backoff_s=0.01,
                max_pool_restarts=1,
            ) as service:
                with pytest.raises(api.PoolExhaustedError):
                    await service.handle(
                        service.request(chain, plat, **PLAN_OPTS)
                    )
                return service.stats()

        stats = run(scenario())
        assert stats["counters"]["serve.pool_restarts"] == 2
        assert stats["counters"]["serve.pool_exhausted"] == 1
        assert stats["counters"]["serve.errors"] == 1

    @pytest.mark.faultinject
    def test_transient_worker_crash_retried(self, tmp_path, plat):
        chain = toy(5)
        faults.install(
            [Fault(site="serve_worker", action="raise", times=1)],
            tmp_path / "faults",
        )

        async def scenario():
            async with make_service(
                max_retries=1, retry_backoff_s=0.01
            ) as service:
                reply = await service.handle(service.request(chain, plat, **PLAN_OPTS))
                return reply, service.stats()

        reply, stats = run(scenario())
        assert reply.result.status == "ok"
        assert stats["counters"]["serve.retries"] == 1


# ------------------------------------------------------------------ CLI


class TestServeCli:
    def requests_file(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        lines = [
            {"id": 1, "network": "toy4", "procs": 2, "memory_gb": 8},
            {"id": 2, "network": "toy4", "procs": 2, "memory_gb": 8},
            {"id": 3, "network": "toy6", "procs": 2, "memory_gb": 8,
             "algorithm": "gpipe"},
        ]
        path.write_text("".join(json.dumps(obj) + "\n" for obj in lines))
        return path

    def cli(self, tmp_path, capsys, *extra):
        rc = cli_main(
            ["serve", str(self.requests_file(tmp_path)),
             "--store", str(tmp_path / "plans.jsonl"), "--workers", "0",
             "--quiet", *extra]
        )
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        return rc, out[:-1], out[-1]["stats"]

    def test_replay_then_restart(self, tmp_path, capsys):
        rc, responses, stats = self.cli(tmp_path, capsys)
        assert rc == 0
        assert all(r["ok"] for r in responses)
        assert {r["id"] for r in responses} == {1, 2, 3}
        assert stats["counters"]["serve.solves"] == 2
        assert stats["counters"]["serve.coalesced"] == 1
        # restart against the same store: nothing solves again
        rc, responses, stats = self.cli(tmp_path, capsys)
        assert rc == 0
        assert "serve.solves" not in stats["counters"]
        assert stats["counters"]["serve.hits"] == 3

    def test_emit_plans_round_trip(self, tmp_path, capsys):
        rc, responses, _ = self.cli(tmp_path, capsys, "--emit-plans")
        assert rc == 0
        for response in responses:
            reloaded = api.PlanResult.from_json(response["plan"])
            assert reloaded.status == response["status"]

    def test_bad_request_reported_not_fatal(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            '{"id": 1, "network": "toy4", "procs": 2, "memory_gb": 8}\n'
            '{"id": 2, "network": "zzz", "procs": 2}\n'
            "not json\n"
        )
        rc = cli_main(
            ["serve", str(path), "--workers", "0", "--quiet"]
        )
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rc == 1
        by_ok = {bool(r.get("ok")) for r in out[:-1]}
        assert by_ok == {True, False}
        assert sum(1 for r in out[:-1] if not r["ok"]) == 2
        # both failures happened before the service: parse-stage errors
        assert all(r["stage"] == "parse" for r in out[:-1] if not r["ok"])

    def test_inline_chain_served(self, tmp_path, capsys):
        from repro.models import uniform_chain

        chain = uniform_chain(4, u_f=0.01, u_b=0.02, weights=1e6, activation=1e6)
        path = tmp_path / "requests.jsonl"
        path.write_text(
            json.dumps(
                {"id": 9, "chain": chain.to_dict(), "procs": 2, "memory_gb": 8}
            )
            + "\n"
        )
        rc = cli_main(["serve", str(path), "--workers", "0", "--quiet"])
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rc == 0
        (response,) = out[:-1]
        assert response["ok"] and response["id"] == 9
        assert response["period"] is not None

    def test_malformed_inline_chain_structured_error(self, tmp_path, capsys):
        # an inline profile failing Chain validation must come back as a
        # structured per-line ok=false with the reason, at the parse
        # stage — never as a generic serve.errors solve failure
        bad = {
            "name": "bad",
            "input_activation": 1e6,
            "layers": [
                {"name": "l1", "u_f": -1.0, "u_b": 0.1,
                 "weights": 1e6, "activation": 1e6},
            ],
        }
        path = tmp_path / "requests.jsonl"
        path.write_text(
            json.dumps({"id": 1, "chain": bad, "procs": 2, "memory_gb": 8})
            + "\n"
            + json.dumps({"id": 2, "chain": {"layers": []}, "procs": 2})
            + "\n"
        )
        rc = cli_main(["serve", str(path), "--workers", "0", "--quiet"])
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        stats = out[-1]["stats"]
        assert rc == 1
        for response in out[:-1]:
            assert response["ok"] is False
            assert response["stage"] == "parse"
        by_id = {r["id"]: r for r in out[:-1]}
        assert "negative duration" in by_id[1]["error"]
        assert "input_activation" in by_id[2]["error"]
        # the solver was never reached: no solve failures counted
        assert "serve.errors" not in stats["counters"]
        assert "serve.solves" not in stats["counters"]
