"""Tests for the report module and the command-line interface."""

import json

from repro.algorithms import min_feasible_period
from repro.cli import main
from repro.core import Partitioning, load_pattern
from repro.profiling import save_chain
from repro.viz import chain_report, schedule_report


class TestChainReport:
    def test_all_layers(self, tiny_chain):
        text = chain_report(tiny_chain)
        assert "L=4" in text
        for name in ("a", "b", "c", "d"):
            assert f" {name}" in text

    def test_top_filter(self, cnnlike16):
        text = chain_report(cnnlike16, top=3)
        # header + 3 rows
        assert len(text.splitlines()) == 2 + 3


class TestScheduleReport:
    def test_contents(self, cnnlike16, roomy4):
        part = Partitioning.from_cuts(16, [4, 8, 12])
        res = min_feasible_period(cnnlike16, roomy4, part)
        text = schedule_report(cnnlike16, roomy4, res.pattern)
        assert f"period {res.period:.6g}" in text
        assert "headroom" in text
        assert text.count("\n") >= 4 + 4  # stage rows + gpu rows


class TestCLI:
    def test_profile_report_schedule_pipeline(self, tmp_path, capsys):
        profile = tmp_path / "chain.json"
        sched = tmp_path / "sched.json"
        rc = main(
            [
                "profile",
                "vgg16",
                "--image-size",
                "128",
                "--batch",
                "2",
                "-o",
                str(profile),
            ]
        )
        assert rc == 0
        assert profile.exists()
        assert json.loads(profile.read_text())["name"] == "vgg16"

        rc = main(["report", str(profile), "--top", "5"])
        assert rc == 0
        assert "vgg16" in capsys.readouterr().out

        rc = main(
            [
                "schedule",
                str(profile),
                "-p",
                "2",
                "-m",
                "2",
                "--grid",
                "coarse",
                "--gantt",
                "-o",
                str(sched),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "period" in out and "GPU 0" in out
        pattern = load_pattern(sched)
        assert pattern.period > 0

    def test_unknown_network(self, capsys):
        assert main(["profile", "alexnet"]) == 2

    def test_infeasible_schedule(self, tmp_path, uniform8, capsys):
        profile = tmp_path / "u8.json"
        save_chain(uniform8, profile)
        rc = main(
            ["schedule", str(profile), "-p", "2", "-m", "0.001", "--grid", "coarse"]
        )
        assert rc == 1
        assert "no memory-feasible" in capsys.readouterr().out

    def test_pipedream_algorithm(self, tmp_path, cnnlike16, capsys):
        profile = tmp_path / "c16.json"
        save_chain(cnnlike16, profile)
        rc = main(
            [
                "schedule",
                str(profile),
                "-p",
                "4",
                "-m",
                "64",
                "-a",
                "pipedream",
            ]
        )
        assert rc == 0
        assert "period" in capsys.readouterr().out
