"""Edge cases across the whole stack: degenerate sizes, extreme platforms."""

import pytest

from repro.algorithms import (
    Discretization,
    gpipe,
    madpipe,
    min_feasible_period,
    pipedream,
)
from repro.core import Partitioning, Platform
from repro.models import uniform_chain
from repro.sim import verify_pattern

COARSE = Discretization.coarse()


@pytest.fixture
def single_layer():
    return uniform_chain(1, u_f=1.0, u_b=2.0, weights=1e6, activation=1e6)


class TestDegenerateSizes:
    def test_single_gpu_pipedream(self, uniform8):
        plat = Platform.of(1, 1.0, 12)
        res = pipedream(uniform8, plat)
        assert res.feasible
        assert res.period == pytest.approx(uniform8.total_compute())

    def test_single_gpu_madpipe(self, uniform8):
        plat = Platform.of(1, 1.0, 12)
        res = madpipe(uniform8, plat, grid=COARSE, iterations=4)
        assert res.feasible
        assert res.period == pytest.approx(uniform8.total_compute())
        verify_pattern(uniform8, plat, res.pattern)

    def test_single_layer_chain(self, single_layer):
        plat = Platform.of(2, 1.0, 12)
        pd = pipedream(single_layer, plat)
        mp = madpipe(single_layer, plat, grid=COARSE, iterations=4)
        assert pd.period == pytest.approx(3.0)
        assert mp.period == pytest.approx(3.0)
        verify_pattern(single_layer, plat, mp.pattern)

    def test_single_stage_partitioning(self, uniform8):
        plat = Platform.of(4, 1.0, 12)
        res = min_feasible_period(uniform8, plat, Partitioning.from_cuts(8, []))
        assert res is not None
        assert res.period == pytest.approx(uniform8.total_compute())
        verify_pattern(uniform8, plat, res.pattern)

    def test_more_gpus_than_layers(self, single_layer):
        plat = Platform.of(8, 1.0, 12)
        res = madpipe(single_layer, plat, grid=COARSE, iterations=4)
        assert res.feasible  # uses one GPU, leaves seven idle
        assert res.allocation.n_stages == 1

    def test_gpipe_single_microbatch(self, uniform8, roomy4):
        res = gpipe(uniform8, roomy4, micro_batches=1)
        assert res.feasible


class TestExtremePlatforms:
    def test_very_slow_links_stay_feasible(self, cnnlike16):
        plat = Platform.of(4, 1024.0, 1e-3)
        pd = pipedream(cnnlike16, plat)
        assert pd.feasible
        # all layers collapse onto few stages to dodge communication
        assert pd.partitioning.n_stages <= 2

    def test_very_fast_links_balance_freely(self, cnnlike16):
        plat = Platform.of(4, 1024.0, 1e6)
        pd = pipedream(cnnlike16, plat)
        assert pd.feasible
        assert pd.partitioning.n_stages == 4

    def test_memory_exactly_at_requirement(self, uniform8):
        """Platform memory equal to the 1F1B* requirement is feasible."""
        plat = Platform.of(2, 1024.0, 12)
        part = Partitioning.from_cuts(8, [4])
        res = min_feasible_period(uniform8, plat, part)
        needed = max(res.memory.values()) / 2**30
        exact = Platform.of(2, needed, 12)
        res2 = min_feasible_period(uniform8, exact, part)
        assert res2 is not None
        assert res2.period == pytest.approx(res.period)

    def test_memory_just_below_requirement(self, uniform8):
        plat = Platform.of(2, 1024.0, 12)
        part = Partitioning.from_cuts(8, [4])
        res = min_feasible_period(uniform8, plat, part)
        needed = max(res.memory.values())
        barely = Platform.of(2, needed * 0.999 / 2**30, 12)
        res2 = min_feasible_period(uniform8, barely, part)
        # either infeasible or strictly larger period
        if res2 is not None:
            assert res2.period > res.period

    def test_zero_weight_chain(self):
        chain = uniform_chain(6, u_f=1.0, u_b=2.0, weights=0.0, activation=1e6)
        plat = Platform.of(3, 1.0, 12)
        res = madpipe(chain, plat, grid=COARSE, iterations=4)
        assert res.feasible
        verify_pattern(chain, plat, res.pattern)

    def test_zero_activation_chain(self):
        chain = uniform_chain(6, u_f=1.0, u_b=2.0, weights=1e6, activation=0.0)
        plat = Platform.of(3, 1.0, 12)
        res = madpipe(chain, plat, grid=COARSE, iterations=4)
        assert res.feasible
        verify_pattern(chain, plat, res.pattern)
