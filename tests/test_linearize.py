"""Unit tests for graph → chain linearization."""

import pytest

from repro.models import coarsen, linearize, vgg16
from repro.models.graph import ModelGraph
from repro.models.layers import Add, Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU
from repro.profiling import V100, profile_model


def residual_net(n_blocks: int = 3) -> ModelGraph:
    g = ModelGraph("resnetlet")
    x = g.input((3, 32, 32))
    x = g.add_layer(Conv2d(8, 3, padding=1), x, name="stem")
    for i in range(n_blocks):
        a = g.add_layer(Conv2d(8, 3, padding=1), x, name=f"b{i}.conv1")
        a = g.add_layer(ReLU(), a, name=f"b{i}.relu")
        a = g.add_layer(Conv2d(8, 3, padding=1), a, name=f"b{i}.conv2")
        x = g.add_layer(Add(), a, x, name=f"b{i}.add")
    x = g.add_layer(GlobalAvgPool2d(), x, name="gap")
    x = g.add_layer(Flatten(), x, name="flat")
    g.add_layer(Linear(10), x, name="fc")
    return g


class TestLinearize:
    def test_requires_profile(self):
        g = residual_net()
        g.propagate_shapes()
        with pytest.raises(ValueError, match="profiled"):
            linearize(g)

    def test_pure_chain_is_identity(self):
        g = vgg16(image_size=64)
        profile_model(g, V100, 2)
        chain = linearize(g)
        # every non-input node is its own serialization point
        assert chain.L == len(g) - 1

    def test_residual_blocks_grouped(self):
        g = residual_net(3)
        profile_model(g, V100, 2)
        chain = linearize(g)
        # stem, 3 blocks, gap, flat, fc -> 7 chain layers
        assert chain.L == 7
        block_layers = [l for l in chain.layers if "conv1" in l.name]
        assert len(block_layers) == 3
        # each grouped block contains its 4 member nodes
        assert all("[4]" in l.name for l in block_layers)

    def test_totals_preserved(self):
        g = residual_net(4)
        profile_model(g, V100, 2)
        chain = linearize(g)
        nodes = g.g.nodes
        total_uf = sum(nodes[n]["u_f"] for n in g.g)
        total_w = sum(nodes[n]["weight_bytes"] for n in g.g)
        assert chain.U_f(1, chain.L) == pytest.approx(total_uf)
        assert chain.weights(1, chain.L) == pytest.approx(total_w)

    def test_input_activation_is_network_input(self):
        g = residual_net()
        profile_model(g, V100, 2)
        chain = linearize(g)
        assert chain.activation(0) == 3 * 32 * 32 * 2 * 4  # C*H*W*batch*fp32

    def test_boundary_activations_match_graph(self):
        g = residual_net(2)
        profile_model(g, V100, 2)
        chain = linearize(g)
        # all residual-block boundaries carry the 8x32x32 tensor
        for l in range(1, chain.L - 2):
            assert chain.activation(l) == 8 * 32 * 32 * 2 * 4


class TestCoarsen:
    def test_reduces_length(self):
        g = vgg16(image_size=64)
        profile_model(g, V100, 2)
        chain = linearize(g)
        small = coarsen(chain, 10)
        assert small.L == 10

    def test_preserves_totals(self):
        g = vgg16(image_size=64)
        profile_model(g, V100, 2)
        chain = linearize(g)
        small = coarsen(chain, 8)
        assert small.total_compute() == pytest.approx(chain.total_compute())
        assert small.weights(1, 8) == pytest.approx(chain.weights(1, chain.L))
        assert small.activation(0) == chain.activation(0)
        assert small.activation(8) == chain.activation(chain.L)

    def test_noop_when_small_enough(self):
        g = residual_net(1)
        profile_model(g, V100, 2)
        chain = linearize(g)
        assert coarsen(chain, 100).L == chain.L

    def test_invalid_target(self):
        g = residual_net(1)
        profile_model(g, V100, 2)
        chain = linearize(g)
        with pytest.raises(ValueError):
            coarsen(chain, 0)
