"""Unit tests for the ModelGraph DAG."""

import pytest

from repro.models.graph import ModelGraph
from repro.models.layers import Add, Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU


def diamond() -> ModelGraph:
    """input -> conv -> (branch a, branch b) -> add -> gap -> fc."""
    g = ModelGraph("diamond")
    x = g.input((3, 16, 16))
    x = g.add_layer(Conv2d(8, 3, padding=1), x, name="stem")
    a = g.add_layer(Conv2d(8, 3, padding=1), x, name="a")
    b = g.add_layer(ReLU(), x, name="b")
    y = g.add_layer(Add(), a, b, name="add")
    y = g.add_layer(GlobalAvgPool2d(), y, name="gap")
    y = g.add_layer(Flatten(), y, name="flat")
    g.add_layer(Linear(10), y, name="fc")
    return g


class TestConstruction:
    def test_single_input_enforced(self):
        g = ModelGraph("t")
        g.input((3, 4, 4))
        with pytest.raises(ValueError):
            g.input((3, 4, 4))

    def test_unknown_predecessor(self):
        g = ModelGraph("t")
        g.input((3, 4, 4))
        with pytest.raises(KeyError):
            g.add_layer(ReLU(), "nope")

    def test_unary_arity_enforced(self):
        g = ModelGraph("t")
        x = g.input((3, 4, 4))
        y = g.add_layer(ReLU(), x)
        with pytest.raises(ValueError):
            g.add_layer(ReLU(), x, y)

    def test_needs_predecessor(self):
        g = ModelGraph("t")
        g.input((3, 4, 4))
        with pytest.raises(ValueError):
            g.add_layer(ReLU())

    def test_len(self):
        assert len(diamond()) == 8


class TestAnalysis:
    def test_topo_order_starts_at_input(self):
        g = diamond()
        order = g.topo_order()
        assert order[0] == g.source
        assert order[-1] == g.sink
        pos = {n: i for i, n in enumerate(order)}
        for u, v in g.g.edges:
            assert pos[u] < pos[v]

    def test_shapes(self):
        g = diamond()
        g.propagate_shapes()
        assert g.shape(g.sink) == (10,)

    def test_params_total(self):
        g = diamond()
        # stem conv 3*3*3*8, branch conv 3*3*8*8, fc 8*10+10
        assert g.total_params() == 216 + 576 + 90

    def test_fwd_flops_positive(self):
        assert diamond().total_fwd_flops() > 0

    def test_predecessor_order_preserved(self):
        g = ModelGraph("t")
        x = g.input((3, 4, 4))
        a = g.add_layer(Conv2d(4, 1), x, name="a")
        b = g.add_layer(Conv2d(6, 1), x, name="b")
        from repro.models.layers import Concat

        y = g.add_layer(Concat(), a, b, name="cat")
        g.propagate_shapes()
        assert g.shape(y)[0] == 10
        assert g.predecessors_in_order(y) == [a, b]

    def test_source_without_input_raises(self):
        g = ModelGraph("t")
        with pytest.raises(ValueError):
            g.source
