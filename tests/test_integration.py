"""Integration tests: the full pipeline on a realistic (small) network."""

import pytest

from repro import (
    Discretization,
    Platform,
    V100,
    gpipe,
    linearize,
    madpipe,
    pipedream,
    profile_model,
    render_gantt,
    resnet50,
    verify_pattern,
)
from repro.profiling import load_chain, save_chain
from repro.sim import eager_1f1b
from repro.core import Allocation


@pytest.fixture(scope="module")
def chain():
    """ResNet-50 at 320px, batch 4 — the full model zoo path, but fast."""
    g = resnet50(image_size=320)
    profile_model(g, V100, 4)
    return linearize(g)


COARSE = Discretization.coarse()


class TestFullPipeline:
    def test_profile_shape(self, chain):
        assert 30 <= chain.L <= 50
        assert chain.total_compute() > 0
        # early activations dominate late ones (CNN profile)
        assert chain.activation(1) > chain.activation(chain.L - 1)

    def test_pipedream_end_to_end(self, chain):
        plat = Platform.of(4, 2.0, 12)
        res = pipedream(chain, plat)
        assert res.feasible
        rep = verify_pattern(chain, plat, res.schedule.pattern)
        assert rep.steady_throughput == pytest.approx(1 / res.period, rel=0.2)

    def test_madpipe_end_to_end(self, chain):
        plat = Platform.of(4, 2.0, 12)
        res = madpipe(chain, plat, grid=COARSE, iterations=6, ilp_time_limit=15)
        assert res.feasible
        verify_pattern(chain, plat, res.pattern)

    def test_madpipe_survives_tighter_memory_than_pipedream(self, chain):
        """Scan memory downwards: MadPipe must stay feasible at least as
        far as PipeDream does."""
        last_pd, last_mp = None, None
        for mem in (2.0, 1.5, 1.0, 0.8, 0.6):
            plat = Platform.of(4, mem, 12)
            if pipedream(chain, plat).feasible:
                last_pd = mem
            if madpipe(chain, plat, grid=COARSE, iterations=6, ilp_time_limit=15).feasible:
                last_mp = mem
        assert last_mp is not None
        if last_pd is not None:
            assert last_mp <= last_pd  # MadPipe reaches at least as low

    def test_gpipe_comparison(self, chain):
        plat = Platform.of(4, 4.0, 12)
        gp = gpipe(chain, plat, micro_batches=4)
        pd = pipedream(chain, plat)
        if gp.feasible and pd.feasible:
            assert gp.period > pd.period  # the fill/drain bubble costs

    def test_eager_execution_on_pipedream_partition(self, chain):
        plat = Platform.of(4, 4.0, 12)
        res = pipedream(chain, plat)
        eager = eager_1f1b(
            chain, plat, Allocation.contiguous(res.partitioning), n_batches=24
        )
        # eager reaches a steady period no better than the load bound
        lb = Allocation.contiguous(res.partitioning).period_lower_bound(chain, plat)
        assert eager.steady_period >= lb * 0.99

    def test_gantt_renders(self, chain):
        plat = Platform.of(4, 2.0, 12)
        res = madpipe(chain, plat, grid=COARSE, iterations=5, ilp_time_limit=15)
        text = render_gantt(res.pattern)
        assert "GPU 0" in text

    def test_profile_roundtrip_preserves_decisions(self, chain, tmp_path):
        path = tmp_path / "chain.json"
        save_chain(chain, path)
        clone = load_chain(path)
        plat = Platform.of(4, 2.0, 12)
        a = pipedream(chain, plat)
        b = pipedream(clone, plat)
        assert a.partitioning == b.partitioning
        assert a.period == pytest.approx(b.period)
