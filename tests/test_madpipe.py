"""End-to-end tests for the complete MadPipe algorithm (phase 1 + 2)."""

import pytest

from repro.algorithms import Discretization, madpipe, pipedream
from repro.core import Platform
from repro.models import random_chain
from repro.sim import verify_pattern

MB = float(2**20)
COARSE = Discretization.coarse()


class TestMadPipe:
    def test_roomy_instance(self, cnnlike16, roomy4):
        res = madpipe(cnnlike16, roomy4, grid=COARSE, iterations=6, ilp_time_limit=15)
        assert res.feasible
        verify_pattern(cnnlike16, roomy4, res.pattern)
        assert res.period <= cnnlike16.total_compute() + 1e-9

    def test_period_consistent_with_pattern(self, cnnlike16, roomy4):
        res = madpipe(cnnlike16, roomy4, grid=COARSE, iterations=6, ilp_time_limit=15)
        assert res.pattern.period == pytest.approx(res.period)

    def test_allocation_matches_pattern(self, cnnlike16, roomy4):
        res = madpipe(cnnlike16, roomy4, grid=COARSE, iterations=6, ilp_time_limit=15)
        assert res.pattern.allocation is res.allocation or (
            res.pattern.allocation.stages == res.allocation.stages
        )

    def test_infeasible_memory(self, uniform8):
        tiny = Platform.of(2, 1 * MB / 2**30, 12)
        res = madpipe(uniform8, tiny, grid=COARSE, iterations=4)
        assert not res.feasible
        assert res.period == float("inf")
        assert res.notes

    def test_tight_memory_still_verifies(self):
        chain = random_chain(16, seed=11, decay=0.2)
        for mem in (2.0, 1.0, 0.6):
            plat = Platform.of(4, mem, 12)
            res = madpipe(chain, plat, grid=COARSE, iterations=6, ilp_time_limit=15)
            if res.feasible:
                verify_pattern(chain, plat, res.pattern)

    def test_never_worse_than_sequential(self, cnnlike16):
        # memory that fits a single-GPU schedule must yield a result
        plat = Platform.of(4, 64.0, 12)
        res = madpipe(cnnlike16, plat, grid=COARSE, iterations=6)
        assert res.feasible
        assert res.period <= cnnlike16.total_compute() * 1.001

    def test_beats_pipedream_under_memory_pressure(self):
        """The headline claim: on memory-constrained heterogeneous chains
        MadPipe is at least as good as PipeDream in the aggregate.  We
        assert it on the geometric mean over a small batch of instances
        (pointwise wins are not guaranteed by the algorithm)."""
        import math

        logs = []
        for seed in (0, 3, 11):
            chain = random_chain(16, seed=seed, decay=0.25)
            for mem in (1.0, 0.7):
                plat = Platform.of(4, mem, 12)
                mp = madpipe(chain, plat, grid=COARSE, iterations=6, ilp_time_limit=15)
                pd = pipedream(chain, plat)
                if not mp.feasible:
                    continue
                pd_period = pd.period if pd.feasible else chain.total_compute()
                logs.append(math.log(pd_period / mp.period))
        assert logs, "no feasible MadPipe instances in the batch"
        assert math.exp(sum(logs) / len(logs)) >= 0.95

    def test_notes_explain_path(self, cnnlike16, roomy4):
        res = madpipe(cnnlike16, roomy4, grid=COARSE, iterations=6)
        assert any(
            "1F1B*" in n or "ILP" in n or "candidate" in n for n in res.notes
        )
