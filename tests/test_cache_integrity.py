"""ResultCache integrity: corruption recovery, migration, concurrency."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    ResultCache,
    RunResult,
    load_results,
    save_results,
    verify_cache,
)
from repro.experiments.harness import _to_jsonable
from repro.testing import Fault, faults

INF = float("inf")


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def mk(i: int, status: str = "ok") -> RunResult:
    return RunResult(
        network=f"net{i}",
        n_procs=2,
        memory_gb=4.0,
        bandwidth_gbps=12.0,
        algorithm="madpipe",
        dp_period=0.5 + i,
        valid_period=0.6 + i,
        n_stages=2,
        runtime_s=0.1,
        sequential=2.0,
        status=status,
        failure=None if status == "ok" else "why",
    )


def fill(path, n=4, **kw) -> ResultCache:
    cache = ResultCache(path, **kw)
    for i in range(n):
        cache.put(mk(i))
    cache.flush()
    return cache


class TestTruncation:
    def test_truncated_final_line_recovers_prefix(self, tmp_path):
        path = tmp_path / "c.jsonl"
        fill(path, 4)
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # tear the last record

        cache = ResultCache(path)
        assert len(cache) == 3
        assert len(cache.quarantined) == 1
        sidecar = tmp_path / "c.jsonl.quarantine"
        assert sidecar.exists() and "line 4" in sidecar.read_text()

        # the next flush rewrites the file clean
        cache.put(mk(9))
        cache.flush()
        report = verify_cache(path)
        assert report["clean"] and report["records"] == 4

    @pytest.mark.faultinject
    def test_injected_torn_write_then_reload(self, tmp_path):
        path = tmp_path / "c.jsonl"
        faults.install(
            [Fault(site="cache_flush", action="truncate", times=1, param=17)],
            tmp_path / "state",
        )
        fill(path, 3, flush_every=10)  # single flush, torn 17 bytes short
        faults.clear()
        assert not path.read_text().endswith("\n")

        cache = ResultCache(path)
        assert len(cache) == 2  # last record lost to the tear
        cache.put(mk(7))
        cache.flush()
        assert verify_cache(path)["clean"]

    def test_missing_trailing_newline_never_concatenates(self, tmp_path):
        path = tmp_path / "c.jsonl"
        fill(path, 2)
        with path.open() as fh:
            lines = fh.read()
        path.write_text(lines.rstrip("\n"))  # parseable, but unterminated

        cache = ResultCache(path)
        assert len(cache) == 2  # nothing lost...
        cache.put(mk(5))
        cache.flush()  # ...and the append did not glue two records together
        assert verify_cache(path)["clean"]
        assert len(load_results(path)) == 3


class TestMigration:
    def test_legacy_array_migrates_atomically(self, tmp_path):
        path = tmp_path / "c.json"
        save_results([mk(0), mk(1)], path)
        cache = ResultCache(path)
        assert len(cache) == 2
        assert path.read_text().lstrip().startswith("[")  # pure read: untouched

        cache.put(mk(2))
        cache.flush()
        text = path.read_text()
        assert not text.lstrip().startswith("[")  # migrated to JSONL
        assert verify_cache(path)["format"] == "jsonl"
        assert len(ResultCache(path)) == 3
        # no stale temp file left behind
        assert not list(tmp_path.glob("*.tmp*"))

    def test_interrupted_migration_leaves_original_valid(self, tmp_path):
        # a stale temp file from a killed migration must not break loads
        path = tmp_path / "c.json"
        save_results([mk(0)], path)
        (tmp_path / f"c.json.tmp{os.getpid()}").write_text('{"half": ')
        cache = ResultCache(path)
        assert len(cache) == 1
        cache.put(mk(1))
        cache.flush()
        assert len(ResultCache(path)) == 2


class TestDuplicates:
    def test_duplicate_keys_last_write_wins(self, tmp_path):
        path = tmp_path / "c.jsonl"
        first, second = mk(0), mk(0)
        second.valid_period = 9.9
        with path.open("w") as fh:
            fh.write(json.dumps(_to_jsonable(first)) + "\n")
            fh.write(json.dumps(_to_jsonable(second)) + "\n")
        cache = ResultCache(path)
        assert len(cache) == 1
        assert cache.get(first.key).valid_period == 9.9
        assert verify_cache(path)["duplicate_keys"] == 1

    def test_overwrite_rewrites_instead_of_duplicating(self, tmp_path):
        path = tmp_path / "c.jsonl"
        fill(path, 2)
        cache = ResultCache(path)
        updated = mk(0)
        updated.valid_period = 7.7
        cache.put(updated)
        cache.flush()
        report = verify_cache(path)
        assert report["duplicate_keys"] == 0 and report["clean"]
        assert ResultCache(path).get(updated.key).valid_period == 7.7


class TestConcurrency:
    @staticmethod
    def _worker(path, offset, n):
        cache = ResultCache(path, flush_every=1)
        for i in range(offset, offset + n):
            cache.put(mk(i))
        cache.flush()

    def test_concurrent_appends_lose_nothing(self, tmp_path):
        path = tmp_path / "c.jsonl"
        procs = [
            multiprocessing.Process(target=self._worker, args=(path, k * 10, 5))
            for k in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        report = verify_cache(path)
        assert report["clean"] and report["records"] == 15
        assert len(ResultCache(path)) == 15


class TestStrictParsing:
    def test_load_results_rejects_nan(self, tmp_path):
        path = tmp_path / "c.jsonl"
        d = _to_jsonable(mk(0))
        d["dp_period"] = float("nan")
        path.write_text(json.dumps(d) + "\n")  # json emits bare NaN
        with pytest.raises(ValueError, match="NaN|non-finite|finite"):
            load_results(path)

    def test_load_results_names_the_bad_line(self, tmp_path):
        path = tmp_path / "c.jsonl"
        good = json.dumps(_to_jsonable(mk(0)))
        path.write_text(good + "\n{broken\n" + good + "\n")
        with pytest.raises(ValueError, match=r":2"):
            load_results(path)

    def test_cache_quarantines_nan(self, tmp_path):
        path = tmp_path / "c.jsonl"
        d = _to_jsonable(mk(0))
        d["valid_period"] = float("nan")
        path.write_text(json.dumps(d) + "\n" + json.dumps(_to_jsonable(mk(1))) + "\n")
        cache = ResultCache(path)
        assert len(cache) == 1
        assert len(cache.quarantined) == 1

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        d = _to_jsonable(mk(0))
        del d["sequential"]
        path.write_text(json.dumps(d) + "\n")
        with pytest.raises(ValueError, match="sequential"):
            load_results(path)

    def test_unknown_status_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        d = _to_jsonable(mk(0))
        d["status"] = "mostly_fine"
        path.write_text(json.dumps(d) + "\n")
        with pytest.raises(ValueError, match="mostly_fine"):
            load_results(path)

    def test_legacy_records_default_status(self, tmp_path):
        # records written before the taxonomy existed have no status field
        path = tmp_path / "c.jsonl"
        ok, infeasible = _to_jsonable(mk(0)), _to_jsonable(mk(1))
        for d in (ok, infeasible):
            del d["status"], d["failure"]
        infeasible["valid_period"] = None  # inf ⇒ infeasible
        path.write_text(json.dumps(ok) + "\n" + json.dumps(infeasible) + "\n")
        loaded = load_results(path)
        assert loaded[0].status == "ok"
        assert loaded[1].status == "infeasible" and loaded[1].valid_period == INF


class TestVerifyCLI:
    def test_verify_clean(self, tmp_path, capsys):
        path = tmp_path / "c.jsonl"
        fill(path, 2)
        assert cli_main(["cache", "verify", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_dirty_then_fix(self, tmp_path, capsys):
        path = tmp_path / "c.jsonl"
        fill(path, 3)
        text = path.read_text()
        path.write_text(text[:-20])  # tear the tail

        assert cli_main(["cache", "verify", str(path)]) == 1
        out = capsys.readouterr().out
        assert "corrupt line" in out

        assert cli_main(["cache", "verify", str(path), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out
        assert verify_cache(path)["clean"]
        assert cli_main(["cache", "verify", str(path)]) == 0

    def test_verify_missing_file(self, tmp_path, capsys):
        assert cli_main(["cache", "verify", str(tmp_path / "nope.jsonl")]) == 1
