"""Unit tests for layer specs: shapes, parameters, FLOPs."""

import pytest

from repro.models.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Input,
    Linear,
    MaxPool2d,
    ReLU,
    numel,
)


class TestConv2d:
    def test_shape_same_padding(self):
        conv = Conv2d(64, 3, stride=1, padding=1)
        assert conv.out_shape((3, 224, 224)) == (64, 224, 224)

    def test_shape_stride2(self):
        conv = Conv2d(64, 7, stride=2, padding=3)
        assert conv.out_shape((3, 224, 224)) == (64, 112, 112)

    def test_params(self):
        assert Conv2d(64, 3).param_count((32, 8, 8)) == 3 * 3 * 32 * 64
        assert Conv2d(64, 3, bias=True).param_count((32, 8, 8)) == 3 * 3 * 32 * 64 + 64

    def test_flops(self):
        conv = Conv2d(16, 3, padding=1)
        # 2 * k^2 * cin * cout * Hout * Wout
        assert conv.fwd_flops((8, 10, 10)) == 2 * 9 * 8 * 16 * 100
        assert conv.bwd_flops((8, 10, 10)) == 2 * conv.fwd_flops((8, 10, 10))

    def test_too_small_input(self):
        with pytest.raises(ValueError):
            Conv2d(8, 7).out_shape((3, 4, 4))


class TestPooling:
    def test_maxpool_shape(self):
        assert MaxPool2d(3, 2, 1).out_shape((64, 112, 112)) == (64, 56, 56)

    def test_avgpool_shape(self):
        assert AvgPool2d(2, 2).out_shape((64, 56, 56)) == (64, 28, 28)

    def test_global_pool(self):
        gap = GlobalAvgPool2d()
        assert gap.out_shape((512, 7, 7)) == (512,)
        assert gap.param_count((512, 7, 7)) == 0


class TestElementwise:
    def test_bn(self):
        bn = BatchNorm2d()
        assert bn.out_shape((64, 10, 10)) == (64, 10, 10)
        assert bn.param_count((64, 10, 10)) == 128
        assert bn.fwd_flops((64, 10, 10)) == 4 * 6400

    def test_relu_dropout(self):
        for spec in (ReLU(), Dropout()):
            assert spec.out_shape((8, 4, 4)) == (8, 4, 4)
            assert spec.param_count((8, 4, 4)) == 0
            assert spec.bwd_flops((8, 4, 4)) == spec.fwd_flops((8, 4, 4))


class TestLinearFlatten:
    def test_flatten(self):
        assert Flatten().out_shape((64, 7, 7)) == (64 * 49,)

    def test_linear(self):
        fc = Linear(1000)
        assert fc.out_shape((2048,)) == (1000,)
        assert fc.param_count((2048,)) == 2048 * 1000 + 1000
        assert fc.fwd_flops((2048,)) == 2 * 2048 * 1000

    def test_linear_requires_flat(self):
        with pytest.raises(ValueError):
            Linear(10).out_shape((3, 4, 4))

    def test_linear_no_bias(self):
        assert Linear(10, bias=False).param_count((5,)) == 50


class TestMergeNodes:
    def test_add(self):
        add = Add()
        assert add.out_shape((8, 4, 4), (8, 4, 4)) == (8, 4, 4)
        assert add.fwd_flops((8, 4, 4), (8, 4, 4)) == 128

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            Add().out_shape((8, 4, 4), (8, 4, 5))

    def test_concat(self):
        cat = Concat()
        assert cat.out_shape((8, 4, 4), (16, 4, 4), (8, 4, 4)) == (32, 4, 4)
        assert cat.fwd_flops((8, 4, 4), (16, 4, 4)) == 0.0

    def test_concat_spatial_mismatch(self):
        with pytest.raises(ValueError):
            Concat().out_shape((8, 4, 4), (8, 5, 4))


class TestInputAndTraffic:
    def test_input(self):
        inp = Input((3, 8, 8))
        assert inp.out_shape() == (3, 8, 8)
        with pytest.raises(ValueError):
            inp.out_shape((1, 1, 1))

    def test_numel(self):
        assert numel((3, 4, 5)) == 60
        assert numel((7,)) == 7

    def test_mem_traffic_counts_in_and_out(self):
        relu = ReLU()
        assert relu.mem_traffic((8, 4, 4)) == 2 * 128
        conv = Conv2d(4, 1)
        assert conv.mem_traffic((8, 4, 4)) == 128 + 64
