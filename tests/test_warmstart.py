"""Warm-start layer tests: bit-identity vs cold, reuse mechanics, dedup.

The contract under test is the one rule of :mod:`repro.warmstart`:
**warm starts never change results**.  Every test here compares a warm
solve against a cold one field for field (``runtime_s`` excepted — it is
the one thing warm starts are supposed to change), across the harness,
the MILP layer, the DP and the 1F1B* search, including under the
fault-injection kill-and-resume harness.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import api, obs, warmstart
from repro.algorithms import Discretization
from repro.algorithms.madpipe import madpipe
from repro.algorithms.madpipe_dp import algorithm1
from repro.core.partition import Allocation, Partitioning
from repro.core.platform import Platform
from repro.experiments import ResultCache, run_grid, verify_cache
from repro.ilp.formulation import build_skeleton
from repro.ilp.solver import schedule_allocation
from repro.models import random_chain, uniform_chain
from repro.testing import Fault, faults

INF = float("inf")
MB = float(2**20)
COARSE = Discretization.coarse()

TOY_GRID = dict(
    networks=("toy5",),
    procs=(2,),
    memories_gb=(0.25, 0.5, 1.0),
    bandwidths_gbps=(12.0,),
)
N_TOY = 6

#: Non-contiguous madpipe instance (phase 2 goes through the MILP); the
#: same seed/platform family as the resilience tests.
ILP_SEED = 7
ILP_MEMORIES = (1.0, 0.8, 0.7)  # descending, the warm sweep order


@pytest.fixture(autouse=True)
def _fresh_warm_state():
    warmstart.reset_process_context()
    faults.clear()
    yield
    warmstart.reset_process_context()
    faults.clear()


def toy_sweep(warm_start=False, **kw):
    defaults = dict(grid=COARSE, iterations=4, ilp_time_limit=10.0)
    defaults.update(kw)
    return run_grid(
        TOY_GRID["networks"],
        TOY_GRID["procs"],
        TOY_GRID["memories_gb"],
        TOY_GRID["bandwidths_gbps"],
        warm_start=warm_start,
        **defaults,
    )


def strip_runtime(results):
    return [dataclasses.replace(r, runtime_s=0.0) for r in results]


def ilp_trace_sig(res):
    """The full probe sequence of a MadPipe ILP search — identical floats
    and statuses prove the warm search took the exact same path."""
    if res.ilp is None:
        return None
    return [(p.period, p.feasible, p.kind, p.status) for p in res.ilp.trace]


class TestWarmColdIdentity:
    def test_toy_grid_bit_identical(self):
        """Every (network, P, M, β, algorithm) grid point: warm equals
        cold on every RunResult field except runtime_s."""
        cold = toy_sweep(warm_start=False)
        warmstart.reset_process_context()
        warm = toy_sweep(warm_start=True)
        assert strip_runtime(cold) == strip_runtime(warm)

    def test_noncontiguous_milp_instances_identical(self):
        """Descending-memory MILP instances: the warm search must take
        the exact same probe path (frontier-served probes included)."""
        chain = random_chain(12, seed=ILP_SEED, decay=0.2)

        def solve_all():
            out = []
            for m in ILP_MEMORIES:
                res = madpipe(
                    chain, Platform.of(4, m, 12),
                    grid=COARSE, iterations=6, ilp_time_limit=15,
                )
                out.append((res.dp_period, res.period, res.status, ilp_trace_sig(res)))
            return out

        cold = solve_all()
        warmstart.reset_process_context()
        with warmstart.activate(True):
            warm = solve_all()
        assert any(sig is not None for *_, sig in cold)  # MILP actually ran
        assert cold == warm

    def test_pooled_warm_matches_serial_cold(self):
        cold = toy_sweep(warm_start=False)
        warmstart.reset_process_context()
        warm = toy_sweep(warm_start=True, n_workers=2)
        assert strip_runtime(cold) == strip_runtime(warm)

    def test_cold_after_warm_stays_cold(self):
        """activate(False) masks the process database: a cold sweep after
        a warm one must not see (or grow) the warm context."""
        toy_sweep(warm_start=True)
        ctx = warmstart.process_context()
        before = (len(ctx.phase1), len(ctx.onef1b), len(ctx.skeletons))
        with warmstart.activate(True):
            with warmstart.activate(False):
                assert warmstart.active_warm() is None
            assert warmstart.active_warm() is ctx
        toy_sweep(warm_start=False)
        after = (len(ctx.phase1), len(ctx.onef1b), len(ctx.skeletons))
        assert before == after

    @pytest.mark.faultinject
    def test_killed_warm_sweep_resumes_to_cold_results(self, tmp_path):
        """A warm CLI sweep (the default) killed mid-run and resumed must
        land on the exact result set of a cold serial run."""
        cache_path = tmp_path / "grid.jsonl"
        src_path = str(Path(__file__).resolve().parents[1] / "src")
        cmd = [
            sys.executable, "-m", "repro", "sweep",
            "--networks", "toy5", "--procs", "2",
            "--memories", "0.25", "0.5", "1.0", "--bandwidths", "12",
            "--out", str(cache_path), "--flush-every", "1",
            "--grid", "coarse", "--iterations", "4",
            "--ilp-time-limit", "10", "--quiet",
        ]
        faults.install(
            [Fault(site="sweep_record", action="exit", after=3, times=1, param=86)],
            tmp_path / "state",
        )
        env = dict(os.environ)  # after install: carries the fault spec
        env["PYTHONPATH"] = src_path
        proc = subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=300
        )
        faults.clear()
        assert proc.returncode == 86, proc.stderr
        assert 0 < len(ResultCache(cache_path)) < N_TOY

        # resume warm (CLI default), then compare with a cold serial run
        env = dict(os.environ)  # after clear: fault spec gone
        env["PYTHONPATH"] = src_path
        proc = subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=300
        )
        assert proc.returncode == 0, proc.stderr
        resumed = {r.key: r for r in ResultCache(cache_path)._data.values()}
        cold = toy_sweep(warm_start=False)
        assert len(resumed) == N_TOY
        for r in cold:
            got = resumed[r.key]
            assert dataclasses.replace(got, runtime_s=0.0) == dataclasses.replace(
                r, runtime_s=0.0
            )
        assert verify_cache(cache_path)["clean"]


class TestSkeletonRetarget:
    @pytest.fixture
    def noncontig(self):
        chain = uniform_chain(8, u_f=1.0, u_b=2.0, weights=1 * MB, activation=64 * MB)
        alloc = Allocation(Partitioning.from_cuts(8, [2, 6]), (0, 1, 0))
        return chain, alloc

    def test_retarget_matches_fresh_build_bitwise(self, noncontig):
        chain, alloc = noncontig
        skel_hi = build_skeleton(chain, Platform.of(2, 4, 12), alloc)
        fresh_lo = build_skeleton(chain, Platform.of(2, 2, 12), alloc)
        retargeted = skel_hi.retarget(Platform.of(2, 2, 12).memory)
        assert np.array_equal(retargeted.row_ub, fresh_lo.row_ub)
        # everything else is shared with the template, not copied
        assert retargeted.a_const is skel_hi.a_const
        assert retargeted.lb_const is skel_hi.lb_const
        assert retargeted.c is skel_hi.c
        # and the instantiated models agree float for float
        m1 = fresh_lo.instantiate(10.0)
        m2 = retargeted.instantiate(10.0)
        assert np.array_equal(m1.constraints[0].A, m2.constraints[0].A)
        assert np.array_equal(m1.constraints[0].ub, m2.constraints[0].ub)

    def test_retarget_replays_static_check_error(self):
        # zero activations → every memory row is a coefficient-free
        # static check, the only path that raises at build time
        chain = uniform_chain(4, u_f=1.0, u_b=2.0, weights=512 * MB, activation=0.0)
        alloc = Allocation(Partitioning.from_cuts(4, [2]), (0, 1))
        roomy = build_skeleton(chain, Platform.of(2, 4, 12), alloc)
        assert roomy.static_checks  # the replay list is populated
        tiny = Platform.of(2, 0.25, 12)
        with pytest.raises(ValueError) as fresh_err:
            build_skeleton(chain, tiny, alloc)
        with pytest.raises(ValueError) as warm_err:
            roomy.retarget(tiny.memory)
        assert str(fresh_err.value) == str(warm_err.value)

    def test_schedule_allocation_reuses_template_across_memories(self, noncontig):
        chain, alloc = noncontig
        registry = obs.MetricsRegistry()
        with warmstart.activate(True), obs.use_metrics(registry):
            hi = schedule_allocation(chain, Platform.of(2, 4, 12), alloc, time_limit=10)
            lo = schedule_allocation(chain, Platform.of(2, 2, 12), alloc, time_limit=10)
        snap = registry.snapshot()
        assert snap.get("warm.skeleton_reuse", 0) >= 1
        assert snap.get("ilp.skeleton_builds", 0) == 1
        # and matches the cold solves exactly
        cold_hi = schedule_allocation(chain, Platform.of(2, 4, 12), alloc, time_limit=10)
        cold_lo = schedule_allocation(chain, Platform.of(2, 2, 12), alloc, time_limit=10)
        for warm_res, cold_res in ((hi, cold_hi), (lo, cold_lo)):
            assert warm_res.period == cold_res.period
            assert warm_res.status == cold_res.status
            assert [(p.period, p.feasible, p.kind, p.status) for p in warm_res.trace] \
                == [(p.period, p.feasible, p.kind, p.status) for p in cold_res.trace]


class TestInfeasibilityFrontier:
    def test_dominance_and_pruning(self):
        ctx = warmstart.WarmContext()
        key = ("k",)
        ctx.frontier_add(key, 5.0, 8.0)
        assert ctx.frontier_dominated(key, 5.0, 8.0)
        assert ctx.frontier_dominated(key, 4.0, 2.0)
        assert not ctx.frontier_dominated(key, 5.1, 8.0)  # larger T
        assert not ctx.frontier_dominated(key, 5.0, 8.1)  # larger capacity
        ctx.frontier_add(key, 4.0, 2.0)  # implied: not stored
        assert ctx.frontier[key] == [(5.0, 8.0)]
        ctx.frontier_add(key, 6.0, 9.0)  # dominates: replaces
        assert ctx.frontier[key] == [(6.0, 9.0)]
        ctx.frontier_add(key, 7.0, 1.0)  # incomparable: both kept
        assert len(ctx.frontier[key]) == 2

    def test_frontier_saves_probes_with_identical_results(self):
        """Descending-memory searches on one allocation: the tighter
        instance answers probes from the roomier one's certificates."""
        chain = uniform_chain(8, u_f=1.0, u_b=2.0, weights=1 * MB, activation=64 * MB)
        alloc = Allocation(Partitioning.from_cuts(8, [2, 6]), (0, 1, 0))
        plats = [Platform.of(2, m, 12) for m in (0.7, 0.6, 0.5)]
        cold = [schedule_allocation(chain, p, alloc, time_limit=10) for p in plats]
        assert any(
            pr.status == "infeasible" for res in cold for pr in res.trace
        ), "instance family has no certified-infeasible probes to transfer"
        registry = obs.MetricsRegistry()
        with warmstart.activate(True), obs.use_metrics(registry):
            warm = [schedule_allocation(chain, p, alloc, time_limit=10) for p in plats]
        assert registry.snapshot().get("warm.probes_saved", 0) >= 1
        for c, w in zip(cold, warm):
            assert (c.period, c.status) == (w.period, w.status)
            assert [(p.period, p.feasible, p.kind, p.status) for p in c.trace] \
                == [(p.period, p.feasible, p.kind, p.status) for p in w.trace]

    def test_injected_timeouts_never_enter_frontier(self, tmp_path):
        """A budget timeout is not a certificate: with every MILP solve
        timing out, the frontier must stay empty."""
        chain = uniform_chain(8, u_f=1.0, u_b=2.0, weights=1 * MB, activation=64 * MB)
        alloc = Allocation(Partitioning.from_cuts(8, [2, 6]), (0, 1, 0))
        faults.install([Fault(site="milp_solve", action="timeout", times=-1)], tmp_path)
        with warmstart.activate(True) as ctx:
            res = schedule_allocation(chain, Platform.of(2, 4, 12), alloc, time_limit=10)
        faults.clear()
        assert res.status == "timeout"
        assert not ctx.frontier


class TestSearchMemos:
    def test_algorithm1_memo_returns_identical_result(self):
        chain = uniform_chain(6)
        plat = Platform.of(2, 8.0, 12.0)
        cold = algorithm1(chain, plat, iterations=4, grid=COARSE)
        registry = obs.MetricsRegistry()
        with warmstart.activate(True), obs.use_metrics(registry):
            first = algorithm1(chain, plat, iterations=4, grid=COARSE)
            second = algorithm1(chain, plat, iterations=4, grid=COARSE)
        assert second is first  # exact-key memo
        assert first.period == cold.period
        assert first.history == cold.history
        snap = registry.snapshot()
        assert snap.get("warm.dp_reuse", 0) >= 1
        assert snap.get("warm.probes_saved", 0) == len(first.history)

    def test_memo_key_separates_neighbors(self):
        """Different memory / iterations / restriction must not share a
        memo entry."""
        chain = uniform_chain(6)
        with warmstart.activate(True):
            a = algorithm1(chain, Platform.of(2, 8.0, 12.0), iterations=4, grid=COARSE)
            b = algorithm1(chain, Platform.of(2, 4.0, 12.0), iterations=4, grid=COARSE)
            c = algorithm1(chain, Platform.of(2, 8.0, 12.0), iterations=5, grid=COARSE)
            d = algorithm1(
                chain, Platform.of(2, 8.0, 12.0),
                iterations=4, grid=COARSE, allow_special=False,
            )
        assert a is not b and a is not c and a is not d
        # and each matches its cold twin
        assert a.period == algorithm1(
            chain, Platform.of(2, 8.0, 12.0), iterations=4, grid=COARSE
        ).period
        assert b.period == algorithm1(
            chain, Platform.of(2, 4.0, 12.0), iterations=4, grid=COARSE
        ).period

    def test_chain_fingerprint_is_value_based(self):
        c1 = uniform_chain(6)
        c2 = uniform_chain(6)
        c3 = uniform_chain(7)
        assert warmstart.chain_fingerprint(c1) == warmstart.chain_fingerprint(c2)
        assert warmstart.chain_fingerprint(c1) != warmstart.chain_fingerprint(c3)
        # cached on the object after the first computation
        assert c1._warm_fingerprint == warmstart.chain_fingerprint(c1)


class TestSweepDedupAndTrace:
    def test_duplicate_specs_solved_once(self, tmp_path):
        cache = ResultCache(tmp_path / "grid.jsonl")
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            results = run_grid(
                ("toy5",), (2,), (0.5, 0.5, 1.0), (12.0,),
                grid=COARSE, iterations=4, ilp_time_limit=10.0, cache=cache,
            )
        snap = registry.snapshot()
        assert snap["sweep.dedup_hits"] == 2  # one dup memory × 2 algorithms
        assert snap["sweep.instances"] == 4  # 6 specs, 4 solves
        assert len(results) == 6
        by_key = {}
        for r in results:
            by_key.setdefault(r.key, []).append(r)
        for dups in by_key.values():
            assert all(d is dups[0] for d in dups)  # fanned out, not re-solved
        report = verify_cache(tmp_path / "grid.jsonl")
        assert report["clean"] and report["records"] == 4

    def test_cached_duplicates_fan_out(self, tmp_path):
        cache_path = tmp_path / "grid.jsonl"
        run_grid(
            ("toy5",), (2,), (0.5, 1.0), (12.0,),
            grid=COARSE, iterations=4, ilp_time_limit=10.0,
            cache=ResultCache(cache_path),
        )
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            again = run_grid(
                ("toy5",), (2,), (0.5, 0.5, 1.0), (12.0,),
                grid=COARSE, iterations=4, ilp_time_limit=10.0,
                cache=ResultCache(cache_path),
            )
        snap = registry.snapshot()
        assert snap.get("sweep.instances", 0) == 0  # everything served
        assert snap["sweep.dedup_hits"] == 2
        assert all(r is not None for r in again)

    def test_trace_file_single_handle_one_line_per_instance(self, tmp_path):
        trace_path = tmp_path / "sweep_trace.jsonl"
        cache = ResultCache(tmp_path / "grid.jsonl")
        toy_sweep(cache=cache, trace_path=trace_path)
        lines = trace_path.read_text().splitlines()
        assert len(lines) == N_TOY
        specs = {tuple(json.loads(line)["spec"]) for line in lines}
        assert len(specs) == N_TOY
        # a fully-cached re-run appends nothing (and must not fail on the
        # lazily-opened handle)
        toy_sweep(cache=ResultCache(tmp_path / "grid.jsonl"), trace_path=trace_path)
        assert len(trace_path.read_text().splitlines()) == N_TOY


class TestApiSurface:
    def test_sweep_warm_default_and_counters(self, tmp_path):
        res = api.sweep(
            ("toy5", 2, (0.25, 0.5, 1.0), 12.0, "madpipe"),
            grid=COARSE, iterations=4, ilp_time_limit=10.0,
        )
        assert len(res) == 3
        assert any(k.startswith("warm.") for k in res.metrics)

    def test_sweep_warm_off_matches(self, tmp_path):
        warm = api.sweep(
            ("toy5", 2, (0.25, 0.5, 1.0), 12.0, "madpipe"),
            grid=COARSE, iterations=4, ilp_time_limit=10.0,
        )
        warmstart.reset_process_context()
        cold = api.sweep(
            ("toy5", 2, (0.25, 0.5, 1.0), 12.0, "madpipe"),
            grid=COARSE, iterations=4, ilp_time_limit=10.0, warm_start=False,
        )
        assert not any(k.startswith("warm.") for k in cold.metrics)
        assert strip_runtime(warm.results) == strip_runtime(cold.results)

    def test_cli_no_warm_start_flag(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(
            [
                "sweep", "--networks", "toy5", "--procs", "2",
                "--memories", "0.5", "--bandwidths", "12",
                "--algorithms", "madpipe",
                "--out", str(tmp_path / "g.jsonl"),
                "--grid", "coarse", "--iterations", "4",
                "--ilp-time-limit", "10", "--no-warm-start", "--quiet",
            ]
        )
        assert rc == 0
