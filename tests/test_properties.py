"""Property-based tests (hypothesis) on the core invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import min_feasible_period, pipedream
from repro.algorithms.madpipe_dp import Discretization, madpipe_dp
from repro.algorithms.onef1b import Item, assign_groups
from repro.core import Chain, LayerProfile, Partitioning, Platform

MB = float(2**20)
COARSE = Discretization.coarse()


@st.composite
def chains(draw, min_layers=2, max_layers=12):
    L = draw(st.integers(min_layers, max_layers))
    layers = []
    for i in range(L):
        layers.append(
            LayerProfile(
                name=f"l{i}",
                u_f=draw(st.floats(0.01, 2.0)),
                u_b=draw(st.floats(0.01, 4.0)),
                weights=draw(st.floats(0.0, 64.0)) * MB,
                activation=draw(st.floats(0.1, 128.0)) * MB,
            )
        )
    a0 = draw(st.floats(0.1, 128.0)) * MB
    return Chain(layers, a0, name="hyp")


@st.composite
def chain_and_cuts(draw):
    chain = draw(chains(min_layers=4))
    n_cuts = draw(st.integers(1, min(3, chain.L - 1)))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, chain.L - 1),
                min_size=n_cuts,
                max_size=n_cuts,
                unique=True,
            )
        )
    )
    return chain, cuts


class TestChainInvariants:
    @given(chains())
    def test_prefix_sums_match_naive(self, chain):
        for k in range(1, chain.L + 1):
            for l in range(k, chain.L + 1):
                naive = sum(
                    chain.u_f(i) + chain.u_b(i) for i in range(k, l + 1)
                )
                assert math.isclose(chain.U(k, l), naive, rel_tol=1e-9, abs_tol=1e-12)

    @given(chains())
    def test_U_additive(self, chain):
        L = chain.L
        mid = L // 2
        if mid >= 1:
            assert math.isclose(
                chain.U(1, L),
                chain.U(1, mid) + chain.U(mid + 1, L),
                rel_tol=1e-9,
            )

    @given(chains())
    def test_serialization_roundtrip(self, chain):
        clone = Chain.from_dict(chain.to_dict())
        assert clone.L == chain.L
        assert math.isclose(clone.total_compute(), chain.total_compute(), rel_tol=1e-12)


class TestGroupingInvariants:
    @given(
        st.lists(st.floats(0.01, 5.0), min_size=1, max_size=10),
        st.floats(5.0, 50.0),
    )
    def test_groups_contiguous_decreasing_from_back(self, loads, period):
        items = [Item("stage", i, l / 2, l / 2) for i, l in enumerate(loads)]
        groups = assign_groups(items, period)
        assert groups[-1] == 1
        # group indices are non-increasing along the chain and step by <= 1
        for a, b in zip(groups, groups[1:]):
            assert a in (b, b + 1)

    @given(
        st.lists(st.floats(0.01, 5.0), min_size=1, max_size=10),
        st.floats(5.0, 50.0),
    )
    def test_group_loads_within_period(self, loads, period):
        items = [Item("stage", i, l / 2, l / 2) for i, l in enumerate(loads)]
        groups = assign_groups(items, period)
        by_group: dict[int, float] = {}
        for it, g in zip(items, groups):
            by_group[g] = by_group.get(g, 0.0) + it.load
        for g, total in by_group.items():
            assert total <= period * (1 + 1e-9)

    @given(
        st.lists(st.floats(0.01, 5.0), min_size=2, max_size=10),
        st.floats(5.0, 20.0),
    )
    def test_larger_period_never_more_groups(self, loads, period):
        items = [Item("stage", i, l / 2, l / 2) for i, l in enumerate(loads)]
        g1 = assign_groups(items, period)
        g2 = assign_groups(items, period * 1.7)
        assert max(g2) <= max(g1)


class TestOneF1BProperties:
    @settings(max_examples=30, deadline=None)
    @given(chain_and_cuts())
    def test_min_period_pattern_always_valid(self, data):
        chain, cuts = data
        part = Partitioning.from_cuts(chain.L, cuts)
        platform = Platform.of(part.n_stages, 1024.0, 12)
        res = min_feasible_period(chain, platform, part)
        assert res is not None
        res.pattern.validate(chain, platform)
        res.pattern.check_memory(chain, platform)

    @settings(max_examples=30, deadline=None)
    @given(chain_and_cuts(), st.floats(0.001, 2.0))
    def test_memory_feasibility_monotone(self, data, mem_gb):
        """If a period is feasible at memory M, it stays feasible at 2M."""
        chain, cuts = data
        part = Partitioning.from_cuts(chain.L, cuts)
        small = Platform.of(part.n_stages, mem_gb, 12)
        big = Platform.of(part.n_stages, 2 * mem_gb, 12)
        r_small = min_feasible_period(chain, small, part, build=False)
        r_big = min_feasible_period(chain, big, part, build=False)
        if r_small is not None:
            assert r_big is not None
            assert r_big.period <= r_small.period * (1 + 1e-9)


class TestPipeDreamProperties:
    @settings(max_examples=25, deadline=None)
    @given(chains(min_layers=4))
    def test_partition_covers_and_fits(self, chain):
        platform = Platform.of(4, 1024.0, 12)
        res = pipedream(chain, platform)
        assert res.feasible
        res.partitioning.validate_cover(chain)
        assert res.period >= res.dp_period - 1e-9
        assert res.partitioning.n_stages <= 4


class TestMadPipeDPProperties:
    @settings(max_examples=15, deadline=None)
    @given(chains(min_layers=4, max_layers=10), st.floats(0.3, 1.5))
    def test_allocation_structure(self, chain, frac):
        platform = Platform.of(3, 1024.0, 12)
        target = chain.total_compute() * frac / 3
        res = madpipe_dp(chain, platform, target, grid=COARSE)
        assume(res.feasible)
        alloc = res.allocation
        # stages tile the chain exactly
        assert alloc.stages[0].start == 1
        assert alloc.stages[-1].end == chain.L
        for a, b in zip(alloc.stages, alloc.stages[1:]):
            assert b.start == a.end + 1
        # at most P-1 normal stages
        assert sum(1 for s in alloc.special if not s) <= 2
        # load-based period is a true lower bound of the DP value
        concrete = alloc.to_allocation(platform)
        assert res.dp_period >= concrete.period_lower_bound(chain, platform) - 1e-6


class TestSerializationProperties:
    @settings(max_examples=25, deadline=None)
    @given(chain_and_cuts())
    def test_pattern_roundtrip_preserves_validity(self, data):
        from repro.core import pattern_from_dict, pattern_to_dict

        chain, cuts = data
        part = Partitioning.from_cuts(chain.L, cuts)
        platform = Platform.of(part.n_stages, 1024.0, 12)
        res = min_feasible_period(chain, platform, part)
        assert res is not None
        clone = pattern_from_dict(pattern_to_dict(res.pattern))
        clone.validate(chain, platform)
        assert clone.memory_peaks(chain) == res.pattern.memory_peaks(chain)


class TestOplusProperties:
    """The group-rounding operator x ⊕ y of §4.2.2."""

    @staticmethod
    def _oplus(x: float, y: float, That: float) -> float:
        cx = math.ceil(x / That - 1e-9)
        if cx == math.ceil((x + y) / That - 1e-9):
            return x + y
        return That * cx + y

    @given(
        st.floats(0.0, 100.0),
        st.floats(0.001, 50.0),
        st.floats(0.1, 20.0),
    )
    def test_oplus_bounds(self, x, y, That):
        """x ⊕ y is at least x + y... no: it rounds x DOWN to a period
        boundary when a new group starts, so the sharp invariants are
        y-monotonicity and the bracket ⌈x/T⌉·T ≥ x ⊕ y − y ≥ x − T."""
        z = self._oplus(x, y, That)
        assert z - y <= math.ceil(x / That - 1e-9) * That + 1e-6
        assert z - y >= x - That - 1e-6

    @given(
        st.floats(0.0, 100.0),
        st.floats(0.001, 50.0),
        st.floats(0.1, 20.0),
    )
    def test_oplus_same_group_is_plain_addition(self, x, y, That):
        z = self._oplus(x, y, That)
        if math.ceil(x / That - 1e-9) == math.ceil((x + y) / That - 1e-9):
            assert z == x + y

    @given(
        st.floats(0.0, 50.0),
        st.floats(0.001, 25.0),
        st.floats(0.001, 25.0),
        st.floats(0.1, 20.0),
    )
    def test_oplus_monotone_in_y(self, x, y1, y2, That):
        lo, hi = sorted((y1, y2))
        assert self._oplus(x, lo, That) <= self._oplus(x, hi, That) + 1e-9


class TestHybridProperties:
    @settings(max_examples=20, deadline=None)
    @given(chains(min_layers=3, max_layers=8), st.integers(2, 8))
    def test_group_scaling_preserves_weights_and_shards_compute(self, chain, r):
        from repro.algorithms import scale_chain_for_group

        beta = 12 * 2**30
        scaled = scale_chain_for_group(chain, r, beta)
        assert scaled.L == chain.L
        for l in range(1, chain.L + 1):
            assert scaled.weight(l) == chain.weight(l)
            assert scaled.u_f(l) == pytest.approx(chain.u_f(l) / r)
            assert scaled.u_b(l) >= chain.u_b(l) / r - 1e-12
        assert scaled.U_f(1, chain.L) == pytest.approx(chain.U_f(1, chain.L) / r)
