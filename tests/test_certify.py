"""Certification gate + robustness layer (repro.robust, api.certify).

Covers: every plan() result carrying a certificate, seeded robustness
reports being bit-reproducible, the memory_headroom knob (inert at 0,
enforced margins when set), and the quarantine path — an injected
certification failure must degrade to the certified 1F1B* fallback with
visible counters, never silently return the rejected pattern.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.algorithms.madpipe import madpipe
from repro.api import certify, plan
from repro.cli import main as cli_main
from repro.core.memory import effective_capacity
from repro.core.platform import Platform
from repro.core.tolerances import memory_slack
from repro.experiments.harness import run_instance
from repro.models import uniform_chain
from repro.profiling import NoiseModel, save_chain
from repro.robust import certify_pattern, robustness_report
from repro.testing import Fault, faults

INF = float("inf")
MB = float(2**20)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def chain():
    return uniform_chain(8, u_f=1.0, u_b=2.0, weights=1 * MB, activation=2 * MB)


@pytest.fixture
def plat(chain):
    return Platform(n_procs=4, memory=64 * MB, bandwidth=100 * MB)


class TestPlanCertificate:
    def test_madpipe_plan_carries_certificate(self, chain, plat):
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        cert = result.certificate
        assert cert is not None and cert.ok
        assert cert.mode == "verified"
        assert cert.periods_simulated > 0
        assert cert.oom_margin and all(m >= 0 for m in cert.oom_margin.values())
        assert result.metrics.get("certify.checks", 0) >= 1

    def test_pipedream_plan_carries_certificate(self, chain, plat):
        result = plan(chain, plat, algorithm="pipedream")
        assert result.certificate is not None and result.certificate.ok
        assert result.certificate.mode == "verified"

    def test_gpipe_certificate_skipped(self, chain, plat):
        result = plan(chain, plat, algorithm="gpipe")
        assert result.certificate is not None and result.certificate.ok
        assert result.certificate.mode == "skipped"

    def test_certify_false_skips_gate(self, chain, plat):
        result = plan(chain, plat, algorithm="madpipe", iterations=6, certify=False)
        assert result.certificate is None
        assert result.feasible  # numerics untouched

    def test_certificate_serializes_deterministically(self, chain, plat):
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        d = result.certificate.to_dict()
        assert "wall_s" not in d  # wall time must not leak into the dict
        json.dumps(d)  # JSON-ready


class TestApiCertify:
    def test_same_seed_same_report(self, chain, plat):
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        c1 = certify(chain, plat, result, samples=16, seed=11)
        c2 = certify(chain, plat, result, samples=16, seed=11)
        assert c1.robustness is not None
        assert c1.to_dict() == c2.to_dict()

    def test_different_seed_different_draws(self, chain, plat):
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        c1 = certify(chain, plat, result, samples=16, seed=1)
        c2 = certify(chain, plat, result, samples=16, seed=2)
        r1, r2 = c1.robustness, c2.robustness
        assert (
            r1.worst_period_inflation != r2.worst_period_inflation
            or r1.worst_oom_margin != r2.worst_oom_margin
        )

    def test_robustness_fields_sane(self, chain, plat):
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        cert = certify(chain, plat, result, samples=16, seed=0)
        rep = cert.robustness
        assert rep.worst_period_inflation >= 1.0
        assert 1.0 <= rep.mean_period_inflation <= rep.worst_period_inflation
        assert rep.oom_margin  # nominal margins, one per used GPU
        for p, m in rep.worst_oom_margin.items():
            assert m <= rep.oom_margin[p]
        if rep.breaking_noise_scale is not None:
            assert 0.0 < rep.breaking_noise_scale <= rep.max_noise_scale
        assert rep.worst_sample_sim_violations == 0  # stretch restores validity

    def test_certify_refreshes_result_field(self, chain, plat):
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        before = result.certificate
        after = certify(chain, plat, result, samples=4, seed=0)
        assert result.certificate is after and after is not before

    def test_bare_pattern_accepted(self, chain, plat):
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        cert = certify(chain, plat, result.pattern, robustness=False)
        assert cert.ok and cert.robustness is None

    def test_noise_model_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma_compute=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(distribution="cauchy")

    def test_scale_zero_is_nominal(self, chain, plat):
        """At noise scale 0 the report must see the unperturbed chain:
        inflation exactly 1, margins equal to the certificate's."""
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        rep = robustness_report(
            chain, plat, result.pattern, samples=4, seed=0, max_noise_scale=0.0
        )
        assert rep.breaking_noise_scale is None
        for p, m in rep.oom_margin.items():
            assert m == pytest.approx(result.certificate.oom_margin[p])


class TestMemoryHeadroom:
    def test_zero_headroom_bit_identical(self, chain, plat):
        base = madpipe(chain, plat, iterations=6)
        zero = madpipe(chain, plat, iterations=6, memory_headroom=0.0)
        assert zero.period == base.period
        assert {
            k: (o.start, o.shift) for k, o in zero.pattern.ops.items()
        } == {k: (o.start, o.shift) for k, o in base.pattern.ops.items()}

    def test_headroom_reserves_margin(self, chain, plat):
        res = madpipe(chain, plat, iterations=6, memory_headroom=0.3)
        assert res.status in ("ok", "degraded")
        floor = 0.3 * plat.memory - memory_slack(plat.memory)
        assert min(res.certificate.oom_margin.values()) >= floor

    def test_headroom_can_cost_period(self, chain):
        """On a tight platform, reserving headroom can only hurt (or
        match) the achievable period — never improve it."""
        tight = Platform(n_procs=4, memory=16 * MB, bandwidth=100 * MB)
        base = madpipe(chain, tight, iterations=6)
        held = madpipe(chain, tight, iterations=6, memory_headroom=0.25)
        if base.feasible and held.feasible:
            assert held.period >= base.period - 1e-9

    def test_invalid_headroom_rejected(self, chain, plat):
        with pytest.raises(ValueError):
            madpipe(chain, plat, memory_headroom=1.0)
        with pytest.raises(ValueError):
            effective_capacity(100.0, -0.1)

    def test_effective_capacity_identity_at_zero(self):
        assert effective_capacity(12345.678, 0.0) == 12345.678
        assert effective_capacity(100.0, 0.25) == 75.0


class TestQuarantine:
    @pytest.mark.faultinject
    def test_quarantine_falls_back_to_onef1b(self, chain, plat, tmp_path):
        faults.install(
            [Fault(site="sim_verify", action="fail", key="madpipe:", times=1)],
            tmp_path,
        )
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            res = madpipe(chain, plat, iterations=6)
        assert res.status == "degraded"
        cert = res.certificate
        assert cert.ok and cert.mode == "fallback"
        assert cert.quarantined is not None and not cert.quarantined.ok
        assert "injected certification failure" in cert.quarantined.violations[0]
        snap = registry.snapshot()
        assert snap["certify.quarantined"] == 1
        assert snap["certify.failures"] >= 1
        assert snap["certify.fallbacks"] == 1

    @pytest.mark.faultinject
    def test_error_when_nothing_certifiable(self, chain, plat, tmp_path):
        """When the fallback fails certification too, the pattern is
        withheld — status error, never an uncertified plan."""
        faults.install(
            [Fault(site="sim_verify", action="fail", key="madpipe", times=-1)],
            tmp_path,
        )
        res = madpipe(chain, plat, iterations=6)
        assert res.status == "error"
        assert res.pattern is None and res.period == INF
        assert res.certificate is not None and not res.certificate.ok

    @pytest.mark.faultinject
    def test_pipedream_instance_quarantined(self, chain, plat, tmp_path):
        faults.install(
            [Fault(site="sim_verify", action="fail", key="pipedream:", times=1)],
            tmp_path,
        )
        r = run_instance(chain, plat, "pipedream")
        assert r.status == "error"
        assert r.valid_period == INF
        assert "certification failed" in r.failure

    @pytest.mark.faultinject
    def test_api_certify_fault_site(self, chain, plat, tmp_path):
        result = plan(chain, plat, algorithm="madpipe", iterations=6)
        faults.install(
            [Fault(site="certify", action="fail", times=1)], tmp_path
        )
        cert = certify(chain, plat, result, robustness=False)
        assert not cert.ok
        assert "injected certification failure" in cert.violations[0]

    @pytest.mark.faultinject
    def test_quarantine_counters_in_cli_stats(self, chain, plat, tmp_path, capsys):
        profile = tmp_path / "toy.json"
        save_chain(chain, profile)
        faults.install(
            [Fault(site="sim_verify", action="fail", key="madpipe:", times=1)],
            tmp_path,
        )
        rc = cli_main(
            [
                "schedule", str(profile),
                "-p", "4", "-m", "4", "-b", str(100 / 1024),
                "--grid", "coarse", "--iterations", "6", "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "plans quarantined" in out and "1 plans quarantined" in out
        assert "replaced by the 1F1B* fallback" in out
        assert "certificate: ok [fallback]" in out


class TestCliCertify:
    def test_bit_reproducible(self, chain, tmp_path):
        profile = tmp_path / "toy.json"
        save_chain(chain, profile)
        args = [
            "certify", str(profile),
            "-p", "4", "-m", "4", "-b", str(100 / 1024),
            "--grid", "coarse", "--iterations", "6",
            "--samples", "8", "--seed", "7",
        ]
        rc1 = cli_main(args + ["-o", str(tmp_path / "c1.json")])
        rc2 = cli_main(args + ["-o", str(tmp_path / "c2.json")])
        assert rc1 == 0 and rc2 == 0
        b1 = (tmp_path / "c1.json").read_bytes()
        b2 = (tmp_path / "c2.json").read_bytes()
        assert b1 == b2
        payload = json.loads(b1)
        assert payload["certificate"]["ok"]
        assert payload["certificate"]["robustness"]["seed"] == 7

    def test_stdout_json(self, chain, tmp_path, capsys):
        profile = tmp_path / "toy.json"
        save_chain(chain, profile)
        rc = cli_main(
            [
                "certify", str(profile),
                "-p", "4", "-m", "4", "-b", str(100 / 1024),
                "--grid", "coarse", "--iterations", "6",
                "--samples", "4", "--no-robustness",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["certificate"]["mode"] == "verified"
        assert "robustness" not in payload["certificate"]

    @pytest.mark.faultinject
    def test_failed_certification_exit_code(self, chain, tmp_path, capsys):
        profile = tmp_path / "toy.json"
        save_chain(chain, profile)
        faults.install(
            [Fault(site="certify", action="fail", times=1)], tmp_path
        )
        rc = cli_main(
            [
                "certify", str(profile),
                "-p", "4", "-m", "4", "-b", str(100 / 1024),
                "--grid", "coarse", "--iterations", "6", "--samples", "4",
            ]
        )
        assert rc == 1
        assert not json.loads(capsys.readouterr().out)["certificate"]["ok"]


class TestIncumbentGate:
    @pytest.mark.faultinject
    def test_incumbent_source_key_reaches_gate(self, chain, plat, tmp_path):
        """The ilp.incumbent source label is addressable by the fault
        plan (the gate is wired); with no incumbent outcome in this easy
        instance the fault simply never fires."""
        faults.install(
            [Fault(site="sim_verify", action="fail", key="ilp.incumbent", times=-1)],
            tmp_path,
        )
        res = madpipe(chain, plat, iterations=6)
        assert res.status in ("ok", "degraded")
        assert res.certificate is not None and res.certificate.ok


def test_certify_pattern_none_is_skipped(chain, plat):
    cert = certify_pattern(chain, plat, None, source="x")
    assert cert.ok and cert.mode == "skipped"
