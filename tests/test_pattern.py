"""Unit tests for periodic pattern semantics (paper §3, Fig. 2)."""

import pytest

from repro.core import (
    Allocation,
    Op,
    Partitioning,
    PatternError,
    PeriodicPattern,
    Platform,
    gpu,
    link,
)
from repro.models import uniform_chain

MB = float(2**20)


@pytest.fixture
def chain():
    # two stages of 4 layers each: U_f = 4, U_b = 8 per stage
    return uniform_chain(8, u_f=1.0, u_b=2.0, weights=1 * MB, activation=8 * MB)


@pytest.fixture
def alloc():
    return Allocation.contiguous(Partitioning.from_cuts(8, [4]))


@pytest.fixture
def platform():
    return Platform.of(2, 1.0, 12)


def comm_half(chain, platform):
    return chain.activation(4) / platform.bandwidth


def sequential_pattern(chain, alloc, platform):
    """One batch at a time: F0, CF0, F1, B1, CB0, B0, all shift 0."""
    c = comm_half(chain, platform)
    T = 24.0 + 2 * c
    pat = PeriodicPattern(allocation=alloc, period=T)
    pat.add(Op("F", 0, gpu(0), 0.0, 4.0, 0))
    pat.add(Op("CF", 0, link(0, 1), 4.0, c, 0))
    pat.add(Op("F", 1, gpu(1), 4.0 + c, 4.0, 0))
    pat.add(Op("B", 1, gpu(1), 8.0 + c, 8.0, 0))
    pat.add(Op("CB", 0, link(0, 1), 16.0 + c, c, 0))
    pat.add(Op("B", 0, gpu(0), 16.0 + 2 * c, 8.0, 0))
    return pat


def pipelined_pattern(chain, alloc, platform):
    """Period 12 + 2c (per-stage load), stage-0 backward shifted by one
    batch: batch ``b``'s ``B0`` runs one period after its ``F0``."""
    c = comm_half(chain, platform)
    T = 12.0 + 2 * c
    pat = PeriodicPattern(allocation=alloc, period=T)
    pat.add(Op("F", 0, gpu(0), 0.0, 4.0, 0))
    pat.add(Op("CF", 0, link(0, 1), 4.0, c, 0))
    pat.add(Op("F", 1, gpu(1), 4.0 + c, 4.0, 0))
    pat.add(Op("B", 1, gpu(1), 8.0 + c, 8.0, 0))
    pat.add(Op("CB", 0, link(0, 1), 4.0 - c, c, 1))
    pat.add(Op("B", 0, gpu(0), 4.0, 8.0, 1))
    return pat


class TestValidation:
    def test_sequential_valid(self, chain, alloc, platform):
        sequential_pattern(chain, alloc, platform).validate(chain, platform)

    def test_pipelined_valid(self, chain, alloc, platform):
        pipelined_pattern(chain, alloc, platform).validate(chain, platform)

    def test_dependency_violation(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        pat.ops[("B", 0)].start = 10.0  # before CB0 completes
        with pytest.raises(PatternError, match="dependency"):
            pat.validate(chain, platform)

    def test_resource_overlap(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        pat.ops[("B", 0)].start = 2.0  # collides with F0 on gpu 0
        with pytest.raises(PatternError):
            pat.validate(chain, platform)

    def test_circular_overlap_detected(self, chain, alloc, platform):
        # an op wrapping past T collides with an op at the period start
        pat = sequential_pattern(chain, alloc, platform)
        T = pat.period
        pat.ops[("B", 0)].start = T - 1.0  # duration 8 wraps onto F0
        with pytest.raises(PatternError, match="overlap"):
            pat.validate(chain, platform)

    def test_missing_op(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        del pat.ops[("B", 1)]
        with pytest.raises(PatternError, match="missing"):
            pat.validate(chain, platform)

    def test_missing_comm(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        del pat.ops[("CF", 0)]
        with pytest.raises(PatternError, match="communication"):
            pat.validate(chain, platform)

    def test_wrong_resource(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        pat.ops[("F", 1)].resource = gpu(0)
        with pytest.raises(PatternError, match="resource"):
            pat.validate(chain, platform)

    def test_duplicate_add_rejected(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        with pytest.raises(PatternError, match="duplicate"):
            pat.add(Op("F", 0, gpu(0), 0.0, 1.0, 0))


class TestNormalize:
    def test_wraps_late_starts(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        T = pat.period
        op = pat.ops[("B", 0)]
        op.start += T  # push one period late
        pat.normalize()
        assert 0 <= op.start < T
        assert op.shift == 1
        pat.validate(chain, platform)

    def test_anchors_first_forward(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        for op in pat.ops.values():
            op.shift += 3
        pat.normalize()
        assert pat.ops[("F", 0)].shift == 0
        pat.validate(chain, platform)


class TestMemoryAccounting:
    def test_sequential_one_active_batch(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        # stage 0 holds its activation from F0 start to B0 end
        assert pat.active_batches(0, 1.0) == 1
        assert pat.active_batches(0, pat.period - 1e-6) == 1

    def test_pipelined_two_active_batches(self, chain, alloc, platform):
        pat = pipelined_pattern(chain, alloc, platform)
        # stage 0: h_B - h_F = 1, plus the batch whose F just ran
        assert pat.active_batches(0, 1.0) == 2

    def test_memory_peaks_values(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        peaks = pat.memory_peaks(chain)
        # stage 0: 3*4MB weights + 1*(a0..a3)=4*8MB + out buffer 2*8MB
        assert peaks[0] == pytest.approx((12 + 32 + 16) * MB)
        # stage 1: 3*4MB + 4*8MB + in buffer 2*8MB
        assert peaks[1] == pytest.approx((12 + 32 + 16) * MB)

    def test_check_memory_raises_when_tight(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        small = Platform.of(2, 0.05, 12)  # ~51 MB < 60 MB peak
        with pytest.raises(PatternError, match="memory"):
            pat.check_memory(chain, small)

    def test_throughput(self, chain, alloc, platform):
        pat = pipelined_pattern(chain, alloc, platform)
        assert pat.throughput == pytest.approx(1.0 / pat.period)


class TestDependencyEdges:
    def test_edges_with_comm(self, chain, alloc, platform):
        pat = sequential_pattern(chain, alloc, platform)
        edges = set(pat.dependency_edges())
        assert (("F", 0), ("CF", 0)) in edges
        assert (("CF", 0), ("F", 1)) in edges
        assert (("B", 1), ("CB", 0)) in edges
        assert (("F", 1), ("B", 1)) in edges

    def test_edges_without_comm(self, chain, platform):
        alloc = Allocation(Partitioning.from_cuts(8, [4]), (0, 0))
        pat = PeriodicPattern(allocation=alloc, period=36.0)
        pat.add(Op("F", 0, gpu(0), 0.0, 4.0, 0))
        pat.add(Op("F", 1, gpu(0), 4.0, 4.0, 0))
        pat.add(Op("B", 1, gpu(0), 8.0, 8.0, 0))
        pat.add(Op("B", 0, gpu(0), 16.0, 8.0, 0))
        edges = set(pat.dependency_edges())
        assert (("F", 0), ("F", 1)) in edges
        assert (("B", 1), ("B", 0)) in edges
        pat.validate(chain, Platform.of(1, 1.0, 12))
