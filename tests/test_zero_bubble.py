"""Zero-bubble B/W-split schedule family: registry, builder, memory, wins.

Covers the op-kind registry surface, the split-backward helper, validity
of the zero-bubble contiguous construction (analytic *and* executed
through the discrete-event verifier), the split-backward memory model
against its closed forms, the family dispatch through
``madpipe``/``pipedream``/``api.plan``, and the headline claim: under
tight memory on a deep uniform chain the certified zero-bubble period is
strictly below 1F1B\\*'s.
"""

from __future__ import annotations

import math

import pytest

from repro import api
from repro.algorithms.onef1b import min_feasible_period
from repro.algorithms.zero_bubble import (
    SPLIT_FRACTION,
    assign_groups_zb,
    min_feasible_period_zb,
)
from repro.core.partition import Partitioning
from repro.core.pattern import OP_KINDS, B, F, W, is_comm, is_compute, split_backward
from repro.core.platform import Platform
from repro.models.synthetic import uniform_chain
from repro.sim import verify_pattern

GB = float(2**30)


# ------------------------------------------------------------ registry


class TestOpKindRegistry:
    def test_registry_entries(self):
        assert set(OP_KINDS) == {"F", "B", "W", "CF", "CB"}
        for kind, meta in OP_KINDS.items():
            assert meta.name == kind
            assert meta.category in ("compute", "comm")
            assert meta.glyph and meta.description

    def test_predicates_partition_kinds(self):
        for kind in OP_KINDS:
            assert is_compute(kind) != is_comm(kind)
        assert all(is_compute(k) for k in (F, B, W))
        assert all(is_comm(k) for k in ("CF", "CB"))

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            is_compute("X")


class TestSplitBackward:
    def test_halves_sum_to_whole(self):
        d_b, d_w = split_backward(2.0)
        assert d_b == pytest.approx(2.0 * SPLIT_FRACTION)
        assert d_b + d_w == pytest.approx(2.0)

    @pytest.mark.parametrize("fraction", (0.0, 1.0, -0.5, 1.5))
    def test_degenerate_fraction_rejected(self, fraction):
        with pytest.raises(ValueError):
            split_backward(1.0, fraction=fraction)


# ------------------------------------------------------------ builder


def even_partition(L: int, P: int) -> Partitioning:
    per = L // P
    return Partitioning.from_cuts(L, [per * i for i in range(1, P)])


@pytest.fixture(scope="module")
def zb_planned():
    """A verified zero-bubble schedule on a tight-memory uniform chain."""
    chain = uniform_chain(24, name="zb24")
    platform = Platform.of(4, 0.05, 1.0)
    res = min_feasible_period_zb(chain, platform, even_partition(24, 4))
    assert res is not None and res.pattern is not None
    return chain, platform, res


class TestZeroBubbleBuilder:
    def test_pattern_has_w_per_stage(self, zb_planned):
        chain, platform, res = zb_planned
        n = res.pattern.allocation.n_stages
        assert sum(1 for k in res.pattern.ops if k[0] == "W") == n
        assert sum(1 for k in res.pattern.ops if k[0] == "B") == n

    def test_pattern_verifies_end_to_end(self, zb_planned):
        chain, platform, res = zb_planned
        report = verify_pattern(chain, platform, res.pattern)
        assert not report.violations

    def test_w_follows_b_same_resource(self, zb_planned):
        """W runs back-to-back after its B on the same GPU: the unrolled
        gap ``(h_W − h_B)·T + t_W − t_B`` is exactly ``d_B`` (normalize()
        may wrap W into the next period, bumping its shift)."""
        chain, platform, res = zb_planned
        T = res.pattern.period
        for (kind, i), op in res.pattern.ops.items():
            if kind != "W":
                continue
            b = res.pattern.ops[("B", i)]
            assert op.resource == b.resource
            gap = (op.shift - b.shift) * T + op.start - b.start
            assert gap == pytest.approx(b.duration)

    def test_analytic_memory_bounds_exact_peaks(self, zb_planned):
        """The search's conservative per-GPU bound must dominate the
        pattern's exact event-based peaks (so search-feasible implies
        certification-feasible)."""
        chain, platform, res = zb_planned
        exact = res.pattern.memory_peaks(chain)
        for p, peak in exact.items():
            assert peak <= res.memory[p] * (1 + 1e-9)
            assert peak <= platform.memory * (1 + 1e-9)

    def test_infeasible_memory_returns_none(self):
        chain = uniform_chain(24, name="zb24tight")
        platform = Platform.of(4, 0.001, 1.0)
        assert min_feasible_period_zb(chain, platform, even_partition(24, 4)) is None

    def test_group_assignment_rejects_oversized_item(self):
        with pytest.raises(ValueError):
            assign_groups_zb([3.0, 1.0], [2.0, 0.5], 4.0)  # 3 + 2 > 4


class TestGradBufferClosedForm:
    def test_active_grad_batches_matches_op_times(self, zb_planned):
        """Closed form: a split stage holds exactly one grad-input buffer
        between B's start and W's end (mod T), zero elsewhere — the
        builder always emits W back-to-back with B on the same shift."""
        chain, platform, res = zb_planned
        pattern = res.pattern
        T = pattern.period
        for (kind, i), w in pattern.ops.items():
            if kind != "W":
                continue
            b = pattern.ops[("B", i)]
            held = b.duration + w.duration  # B start -> W end, mod T
            for k in range(40):
                tau = (k / 40.0) * T
                inside = (tau - b.start) % T < held
                assert pattern.active_grad_batches(i, tau) == (1 if inside else 0)

    def test_non_split_stage_holds_no_grad_buffer(self, uniform8, roomy4):
        sched = min_feasible_period(
            uniform8, roomy4, even_partition(uniform8.L, roomy4.n_procs)
        )
        assert sched is not None
        for i in range(sched.pattern.allocation.n_stages):
            assert sched.pattern.active_grad_batches(i, 0.0) == 0


# ------------------------------------------------------------ the win


class TestZeroBubbleWin:
    def test_strictly_better_under_tight_memory(self):
        """On a deep uniform chain with activation-dominated memory the
        split family merges groups earlier and drops strictly below the
        1F1B* period on the same partitioning."""
        chain = uniform_chain(24, name="win24")
        platform = Platform.of(4, 0.05, 1.0)
        part = even_partition(24, 4)
        base = min_feasible_period(chain, platform, part)
        zb = min_feasible_period_zb(chain, platform, part)
        assert base is not None and zb is not None
        assert zb.period < base.period - 1e-12
        # both certified-valid, not just analytically feasible
        verify_pattern(chain, platform, base.pattern)
        verify_pattern(chain, platform, zb.pattern)

    def test_never_worse_than_onef1b_lower_bound(self):
        """The split family can't beat the V-load lower bound: with roomy
        memory both families sit on it."""
        chain = uniform_chain(8, name="lb8")
        platform = Platform.of(4, 8.0, 12.0)
        part = even_partition(8, 4)
        base = min_feasible_period(chain, platform, part)
        zb = min_feasible_period_zb(chain, platform, part)
        assert base is not None and zb is not None
        assert zb.period == pytest.approx(base.period)


# ------------------------------------------------------------ dispatch


class TestFamilyDispatch:
    def test_madpipe_family_validation(self, uniform8, roomy4):
        from repro.algorithms.madpipe import madpipe

        with pytest.raises(ValueError, match="schedule family"):
            madpipe(uniform8, roomy4, schedule_family="interleaved")

    def test_pipedream_zero_bubble(self, uniform8, roomy4):
        from repro.algorithms.pipedream import pipedream

        res = pipedream(uniform8, roomy4, schedule_family="zero_bubble")
        assert res.feasible
        assert any(k[0] == "W" for k in res.schedule.pattern.ops)
        with pytest.raises(ValueError, match="schedule family"):
            pipedream(uniform8, roomy4, schedule_family="nope")

    def test_plan_zero_bubble_certified(self, uniform8, roomy4):
        res = api.plan(
            uniform8, roomy4, schedule_family="zero_bubble", iterations=4
        )
        assert res.schedule_family == "zero_bubble"
        assert res.feasible and res.certificate is not None and res.certificate.ok
        assert any(k[0] == "W" for k in res.pattern.ops)

    def test_plan_unknown_family_rejected(self, uniform8, roomy4):
        with pytest.raises(ValueError, match="schedule family"):
            api.plan(uniform8, roomy4, schedule_family="zb")

    def test_plan_gpipe_rejects_nondefault_family(self, uniform8, roomy4):
        with pytest.raises(ValueError, match="gpipe"):
            api.plan(
                uniform8, roomy4, algorithm="gpipe", schedule_family="zero_bubble"
            )

    def test_default_family_keyword_is_identity(self, uniform8, roomy4):
        a = api.plan(uniform8, roomy4, iterations=4)
        b = api.plan(uniform8, roomy4, iterations=4, schedule_family="1f1b")
        assert a.to_json() == b.to_json()


# ------------------------------------------------------------ gpt chains


class TestGptScenarios:
    def test_gpt_chain_is_uniform(self):
        from repro.experiments.scenarios import paper_chain

        c = paper_chain("gpt24")
        assert c.L == 24 and c.name == "gpt24"
        u_f = {round(c.u_f(i), 12) for i in range(1, 25)}
        w = {c.weight(i) for i in range(1, 25)}
        assert len(u_f) == 1 and len(w) == 1

    def test_gpt_name_validation(self):
        from repro.experiments.scenarios import paper_chain

        with pytest.raises(ValueError, match="gpt"):
            paper_chain("gptx")
        with pytest.raises(ValueError, match="depth"):
            paper_chain("gpt999")

    def test_gpt_zero_bubble_win_deep_pipeline(self):
        """The acceptance instance: gpt24 at P=8 under ~1 GB/GPU."""
        from repro.experiments.scenarios import paper_chain

        chain = paper_chain("gpt24")
        platform = Platform.of(8, 1.0, 12.0)
        part = even_partition(24, 8)
        base = min_feasible_period(chain, platform, part)
        zb = min_feasible_period_zb(chain, platform, part)
        assert base is not None and zb is not None
        assert zb.period < base.period - 1e-9


def test_period_monotone_in_split_fraction():
    """Sanity: the period search is well-defined for non-default splits."""
    chain = uniform_chain(12, name="frac12")
    platform = Platform.of(4, 0.05, 1.0)
    part = even_partition(12, 4)
    periods = []
    for frac in (0.3, 0.5, 0.7):
        res = min_feasible_period_zb(
            chain, platform, part, split_fraction=frac
        )
        assert res is not None
        verify_pattern(chain, platform, res.pattern)
        periods.append(res.period)
    assert all(math.isfinite(p) for p in periods)
