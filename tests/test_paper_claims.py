"""Regression tests for the reproduced paper claims (§5.2).

These run against the cached sweep ``results/paper_grid.json`` when it
exists (produced by ``scripts/run_paper_sweep.py``) and are skipped
otherwise — they protect the EXPERIMENTS.md conclusions against
algorithm regressions.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.experiments import fig6_data, fig7_data, fig8_data, load_results

GRID = Path(__file__).resolve().parent.parent / "results" / "paper_grid.json"

pytestmark = pytest.mark.skipif(
    not GRID.exists(), reason="run scripts/run_paper_sweep.py first"
)


@pytest.fixture(scope="module")
def results():
    return load_results(GRID)


class TestFig6Claims:
    def test_pipedream_dp_is_optimistic(self, results):
        """PD-valid ≥ PD-DP everywhere, with a real gap somewhere."""
        gap_seen = False
        for r in results:
            if r.algorithm != "pipedream" or not r.feasible:
                continue
            assert r.valid_period >= r.dp_period * (1 - 1e-9)
            if r.valid_period > r.dp_period * 1.2:
                gap_seen = True
        assert gap_seen

    def test_madpipe_feasible_wherever_pipedream_is(self, results):
        idx = {r.key: r for r in results}
        for r in results:
            if r.algorithm == "pipedream" and r.feasible:
                mp = idx.get(r.key[:-1] + ("madpipe",))
                assert mp is not None and mp.feasible

    def test_madpipe_extends_the_memory_floor(self, results):
        """For each network there are scenarios feasible for MadPipe only."""
        idx = {r.key: r for r in results}
        networks = {r.network for r in results}
        for net in networks:
            only_madpipe = 0
            for r in results:
                if r.network != net or r.algorithm != "madpipe" or not r.feasible:
                    continue
                pd = idx.get(r.key[:-1] + ("pipedream",))
                if pd is not None and not pd.feasible:
                    only_madpipe += 1
            assert only_madpipe > 0, f"{net}: MadPipe never extended feasibility"

    def test_dp_estimates_non_increasing_in_memory(self, results):
        panels = fig6_data(results, "resnet50")
        for panel in panels:
            dp = [x for x in panel.madpipe_dp if x != float("inf")]
            assert all(a >= b - 1e-9 for a, b in zip(dp, dp[1:]))


class TestFig7Claims:
    def test_overall_geomean_favours_madpipe(self, results):
        data = fig7_data(results)
        logs = [
            math.log(ratio) for rows in data.values() for (_m, ratio, _n) in rows
        ]
        assert math.exp(sum(logs) / len(logs)) >= 1.0

    def test_tight_memory_advantage(self, results):
        """The 4-8 GB band shows a clear MadPipe advantage on average."""
        data = fig7_data(results)
        logs = [
            math.log(ratio)
            for rows in data.values()
            for (m, ratio, _n) in rows
            if 4 <= m <= 8
        ]
        assert math.exp(sum(logs) / len(logs)) >= 1.05


class TestFig8Claims:
    def test_scaling_at_roomy_memory(self, results):
        data = fig8_data(results)
        for net in {k[0] for k in data}:
            key = (net, 16.0, "madpipe")
            if key not in data:
                continue
            series = dict(data[key])
            assert series[max(series)] >= 2.5, f"{net}: no scaling at 16 GB"
            # speedup grows from P=2 to P=8
            assert series[max(series)] > series[min(series)]

    def test_memory_starved_scaling_is_worse(self, results):
        data = fig8_data(results)
        for net in {k[0] for k in data}:
            lo, hi = (net, 4.0, "madpipe"), (net, 16.0, "madpipe")
            if lo in data and hi in data:
                lo_s, hi_s = dict(data[lo]), dict(data[hi])
                shared = sorted(set(lo_s) & set(hi_s))
                if shared:
                    p = shared[-1]
                    assert hi_s[p] >= lo_s[p] * 1.2

    def test_madpipe_scales_at_least_as_well_as_pipedream(self, results):
        """Aggregate P=8, M≥12 comparison (the paper's scalability claim)."""
        data = fig8_data(results)
        logs = []
        for (net, m, algo), series in data.items():
            if algo != "madpipe" or m < 12:
                continue
            pd = dict(data.get((net, m, "pipedream"), []))
            mp = dict(series)
            if 8 in mp and 8 in pd:
                logs.append(math.log(mp[8] / pd[8]))
        assert logs
        assert math.exp(sum(logs) / len(logs)) >= 1.0
