"""Tests for the PipeDream baseline partitioner."""

import pytest

from repro.algorithms.pipedream import pipedream, pipedream_partition
from repro.core import Platform
from repro.core.memory import stage_memory


MB = float(2**20)


class TestPartitioner:
    def test_uniform_chain_balanced(self, uniform8, roomy4):
        part, dp = pipedream_partition(uniform8, roomy4)
        assert part is not None
        assert part.n_stages == 4
        assert all(len(s) == 2 for s in part)
        assert dp == pytest.approx(uniform8.U(1, 2))

    def test_covers_chain(self, cnnlike16, roomy4):
        part, _ = pipedream_partition(cnnlike16, roomy4)
        part.validate_cover(cnnlike16)

    def test_respects_memory_estimate(self, cnnlike16):
        found = False
        for mem in (2.0, 1.5, 1.2, 0.9):
            plat = Platform.of(4, mem, 12)
            part, _ = pipedream_partition(cnnlike16, plat)
            if part is None:
                continue
            found = True
            n = part.n_stages
            for i, s in enumerate(part):
                assert stage_memory(cnnlike16, s.start, s.end, n - i) <= plat.memory
        assert found, "no feasible memory level in the scan"

    def test_may_use_fewer_stages(self, uniform8):
        # communication so expensive that fewer cuts win
        slow = Platform.of(4, 1024.0, 1e-4)
        part, _ = pipedream_partition(uniform8, slow)
        assert part.n_stages == 1

    def test_infeasible_when_memory_tiny(self, uniform8):
        tiny = Platform.of(2, 1 * MB / 2**30, 12)
        part, dp = pipedream_partition(uniform8, tiny)
        assert part is None and dp == float("inf")

    def test_dp_period_is_bottleneck(self, cnnlike16, roomy4):
        part, dp = pipedream_partition(cnnlike16, roomy4)
        bottleneck = max(
            max(s.compute(cnnlike16) for s in part),
            max(
                (
                    cnnlike16.comm_time(s.end, roomy4.bandwidth)
                    for s in list(part)[:-1]
                ),
                default=0.0,
            ),
        )
        assert dp == pytest.approx(bottleneck)


class TestFullBaseline:
    def test_valid_schedule_at_least_dp(self, cnnlike16, roomy4):
        res = pipedream(cnnlike16, roomy4)
        assert res.feasible
        assert res.period >= res.dp_period - 1e-9

    def test_valid_pattern(self, cnnlike16, roomy4):
        res = pipedream(cnnlike16, roomy4)
        res.schedule.pattern.validate(cnnlike16, roomy4)
        res.schedule.pattern.check_memory(cnnlike16, roomy4)

    def test_optimistic_estimate_is_beaten_by_comm_groups(self):
        """The paper's key observation (§5.1): PipeDream assumes at most P
        activation copies, but with communication pseudo-stages the first
        stage may need up to 2P−1.  We build the minimal counterexample:
        two unit stages separated by a 1.5-second communication, so the
        1F1B* item loads are (1, 1.5, 1).  At PipeDream's optimistic
        period T=1.5 the first stage sits in group 3, needing 3 copies —
        one more than PipeDream budgets.  With memory for exactly 2
        copies, the valid schedule must enlarge the period."""
        from repro.core import Chain, LayerProfile

        a0 = 2**30  # 1 GB input activation dominates stage-1 memory
        a1 = 0.75 * 2**30  # with beta = 1 GB/s: C(1) = 1.5 s
        chain = Chain(
            layers=[
                LayerProfile("l1", u_f=0.4, u_b=0.6, weights=0.0, activation=a1),
                LayerProfile("l2", u_f=0.4, u_b=0.6, weights=0.0, activation=1.0),
            ],
            input_activation=a0,
            name="counterexample",
        )
        # stage-1 memory is g*a0 + 2*a1; grant PipeDream's budget g = 2
        mem_gb = (2 * a0 + 2 * a1) / 2**30
        platform = Platform.of(2, mem_gb, 1.0)
        res = pipedream(chain, platform)
        assert res.feasible
        assert res.partitioning.n_stages == 2
        # item loads (1, 1.5, 1): PipeDream expects the comm bottleneck
        assert res.dp_period == pytest.approx(1.5)
        # ...but at T=1.5 stage 1 lands in group 3 (3 copies > budget);
        # the smallest feasible period merges {U2, C} into one group
        assert res.period == pytest.approx(2.5)
        res.schedule.pattern.validate(chain, platform)
        assert res.schedule.groups[0] == 2  # stage 1 now in group 2

    def test_infeasible_result(self, uniform8):
        tiny = Platform.of(2, 1 * MB / 2**30, 12)
        res = pipedream(uniform8, tiny)
        assert not res.feasible
        assert res.period == float("inf")
