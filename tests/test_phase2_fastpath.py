"""Golden and property tests for the phase-2 fast paths (PR 2).

The vectorized 1F1B\\* kernel must be *bit-identical* to
``onef1b_reference`` (periods, group assignments, memory maps, even the
error messages); the skeleton-reuse ILP path must reproduce the
from-scratch probe trajectory exactly; and the fast period search must
agree with the reference bisection to within the certification band.
"""

import random

import pytest

from repro.algorithms.bruteforce import best_contiguous, best_special
from repro.algorithms.onef1b import (
    CANDIDATE_ATOL,
    GROUP_FIT_RTOL,
    Item,
    assign_groups,
    extended_items,
    min_feasible_period,
)
from repro.algorithms.onef1b_reference import (
    assign_groups_reference,
    min_feasible_period_reference,
)
from repro.core import Allocation, Partitioning, Platform
from repro.core.memory import stage_memory
from repro.ilp import schedule_allocation, schedule_allocation_reference
from repro.models import random_chain, uniform_chain

MB = float(2**20)


def _random_partitionings(L, rng, k):
    parts = [Partitioning.from_cuts(L, [])]
    for _ in range(k):
        n_cuts = rng.randint(1, min(4, L - 1))
        cuts = sorted(rng.sample(range(1, L), n_cuts))
        parts.append(Partitioning.from_cuts(L, cuts))
    return parts


class TestOneF1BGolden:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_kernel_matches_reference_randomized(self, seed):
        """Vectorized 1F1B* vs the scalar reference: identical periods,
        groups, and per-processor memory, bit for bit."""
        rng = random.Random(seed)
        chain = random_chain(10, seed=seed, decay=0.3)
        checked = 0
        for mem_gb in (0.4, 1.0, 4.0):
            plat = Platform.of(5, mem_gb, 12)
            for part in _random_partitionings(10, rng, 12):
                fast = min_feasible_period(chain, plat, part, build=False)
                ref = min_feasible_period_reference(chain, plat, part, build=False)
                if ref is None:
                    assert fast is None
                    continue
                assert fast is not None
                assert fast.period == ref.period  # bit-identical
                assert fast.groups == ref.groups
                assert fast.memory == ref.memory
                checked += 1
        assert checked > 5  # the sweep must exercise feasible cases

    def test_assign_groups_matches_reference(self):
        rng = random.Random(7)
        for _ in range(50):
            items = [
                Item(
                    "stage" if i % 2 == 0 else "comm",
                    i // 2,
                    rng.uniform(0.01, 0.5),
                    rng.uniform(0.01, 0.5),
                )
                for i in range(rng.randint(1, 12))
            ]
            period = max(it.load for it in items) * rng.uniform(1.0, 3.0)
            assert assign_groups(items, period) == assign_groups_reference(
                items, period
            )

    def test_error_messages_match(self):
        chain = uniform_chain(4, u_f=1.0, u_b=2.0, weights=MB, activation=MB)
        plat = Platform.of(2, 64.0, 12)
        part = Partitioning.from_cuts(4, [2])
        items = extended_items(chain, plat, Allocation.contiguous(part))
        with pytest.raises(ValueError) as fast_err:
            assign_groups(items, 0.5)
        with pytest.raises(ValueError) as ref_err:
            assign_groups_reference(items, 0.5)
        assert str(fast_err.value) == str(ref_err.value)

    def test_group_fit_tolerance_boundary(self):
        """Loads overshooting the period by less than GROUP_FIT_RTOL must
        still pack into one group, in kernel and reference alike."""
        eps_in = GROUP_FIT_RTOL / 4
        eps_out = 1e-9
        inside = [Item("stage", 0, 0.25, 0.25), Item("stage", 1, 0.25, 0.25 * (1 + eps_in))]
        outside = [Item("stage", 0, 0.25, 0.25), Item("stage", 1, 0.25, 0.25 * (1 + eps_out))]
        for items in (inside, outside):
            assert assign_groups(items, 1.0) == assign_groups_reference(items, 1.0)
        # within tolerance: one group; beyond: the earlier item spills
        assert assign_groups(inside, 1.0) == [1, 1]
        assert assign_groups(outside, 1.0) == [2, 1]

    def test_tolerance_constants_ordering(self):
        assert 0 < CANDIDATE_ATOL < GROUP_FIT_RTOL


class TestOneF1BProperties:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_memory_non_increasing_in_period(self, seed):
        """Prop: growing T never increases any processor's 1F1B* memory
        (the greedy group counts are monotone non-increasing in T)."""
        chain = random_chain(8, seed=seed, decay=0.3)
        plat = Platform.of(4, 64.0, 12)
        alloc = Allocation.contiguous(Partitioning.from_cuts(8, [2, 4, 6]))
        items = extended_items(chain, plat, alloc)
        base = sum(it.load for it in items) / len(items)
        bottleneck = max(it.load for it in items)
        prev = None
        for scale in (1.0, 1.3, 1.7, 2.5, 4.0, 8.0):
            period = max(bottleneck, base * scale)
            groups = assign_groups(items, period)
            mem = [
                stage_memory(chain, stage.start, stage.end, groups[2 * i])
                for i, stage in enumerate(alloc.stages)
            ]
            if prev is not None:
                assert all(m <= p + 1e-12 for m, p in zip(mem, prev))
            prev = mem


class TestIlpFastPath:
    @pytest.fixture
    def noncontig(self):
        chain = uniform_chain(8, u_f=1.0, u_b=2.0, weights=MB, activation=64 * MB)
        alloc = Allocation(Partitioning.from_cuts(8, [2, 6]), (0, 1, 0))
        return chain, Platform.of(2, 4.0, 12), alloc

    def test_skeleton_reuse_is_bit_identical(self, noncontig):
        """Cached-skeleton probes must retrace the from-scratch search:
        same period, same probe count, same probe outcomes."""
        chain, plat, alloc = noncontig
        reuse = schedule_allocation(chain, plat, alloc)
        scratch = schedule_allocation(chain, plat, alloc, reuse_skeleton=False)
        assert reuse.period == scratch.period
        assert reuse.probes == scratch.probes

    def test_fast_agrees_with_reference_bisection(self, noncontig):
        """Both searches certify to rel_tol, so they agree within the
        combined band (trajectories differ by design)."""
        chain, plat, alloc = noncontig
        rel_tol = 5e-3
        fast = schedule_allocation(chain, plat, alloc, rel_tol=rel_tol)
        ref = schedule_allocation_reference(chain, plat, alloc, rel_tol=rel_tol)
        assert fast.feasible and ref.feasible
        assert fast.period <= ref.period * (1 + 2 * rel_tol) + 1e-12
        assert ref.period <= fast.period * (1 + 2 * rel_tol) + 1e-12

    def test_trace_carries_timings(self, noncontig):
        chain, plat, alloc = noncontig
        res = schedule_allocation(chain, plat, alloc)
        t = res.timings
        assert t["milp_probes"] == len(res.probes) > 0
        assert t["solve_s"] > 0.0
        assert all(p.kind in ("milp", "lp") for p in res.trace)


class TestBruteForceMemo:
    def test_best_special_memoizes_contiguous_variants(self):
        chain = random_chain(5, seed=2, decay=0.2)
        plat = Platform.of(3, 1.0, 12)
        oracle = best_special(chain, plat, ilp_time_limit=5)
        # duplicate layouts are skipped and contiguous variants share one
        # 1F1B* solve, so strictly fewer searches than allocations
        assert 0 < oracle.solver_calls < oracle.evaluated
        contig = best_contiguous(chain, plat)
        assert contig.solver_calls == contig.evaluated
        if oracle.feasible and contig.feasible:
            assert oracle.period <= contig.period * (1 + 1e-9)
