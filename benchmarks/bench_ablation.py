"""Ablations on MadPipe's design choices (DESIGN.md experiment index).

1. *Special processor on/off* — how much of MadPipe's advantage comes
   from non-contiguous allocations vs from accurate memory accounting.
2. *Discretization granularity* — solution quality and runtime across
   the coarse / default / paper grids of §5.1.
"""

from __future__ import annotations

import time

from _util import write_figure

from repro.algorithms import Discretization, madpipe
from repro.core import Platform
from repro.experiments import paper_chain

SCENARIOS = [(4, 8.0), (2, 10.0), (8, 14.0), (8, 16.0)]


def test_ablation_special_processor(benchmark):
    chain = paper_chain("resnet50")
    lines = [
        "Ablation: special processor (ResNet-50, beta = 12 GB/s)",
        f"{'P':>3} {'M (GB)':>7} {'full MadPipe':>13} {'contiguous only':>16}",
    ]

    def run_all():
        rows = []
        for p, m in SCENARIOS:
            plat = Platform.of(p, m, 12)
            full = madpipe(
                chain, plat, grid=Discretization.coarse(), iterations=8,
                ilp_time_limit=30,
            )
            contig = madpipe(
                chain, plat, grid=Discretization.coarse(), iterations=8,
                ilp_time_limit=30, allow_special=False,
            )
            rows.append((p, m, full.period, contig.period))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for p, m, full, contig in rows:
        lines.append(f"{p:3d} {m:7g} {full:13.4f} {contig:16.4f}")
        # the special processor can only help
        assert full <= contig * 1.02
    text = "\n".join(lines)
    print()
    print(text)
    write_figure("ablation_special.txt", text)


def test_ablation_discretization(benchmark):
    chain = paper_chain("resnet50")
    plat = Platform.of(4, 8, 12)
    grids = [
        ("coarse", Discretization.coarse()),
        ("default", Discretization.default()),
        ("paper", Discretization.paper()),
    ]
    lines = [
        "Ablation: DP grid granularity (ResNet-50, P=4, M=8 GB)",
        f"{'grid':>8} {'points (t x m x v)':>20} {'period':>8} {'runtime':>9}",
    ]

    def run_all():
        rows = []
        for name, grid in grids:
            t0 = time.perf_counter()
            res = madpipe(chain, plat, grid=grid, iterations=8, ilp_time_limit=30)
            rows.append((name, grid, res.period, time.perf_counter() - t0))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    periods = {}
    for name, grid, period, dt in rows:
        pts = f"{grid.n_t}x{grid.n_m}x{grid.n_v}"
        lines.append(f"{name:>8} {pts:>20} {period:8.4f} {dt:8.1f}s")
        periods[name] = period
    # finer grids never hurt solution quality by much
    assert periods["paper"] <= periods["coarse"] * 1.05
    text = "\n".join(lines)
    print()
    print(text)
    write_figure("ablation_grid.txt", text)
