"""Sweep-level warm-start benchmark: cold vs warm full-grid wall time.

Measures what PR-level single-solve benchmarks (``BENCH_dp.json``,
``BENCH_phase2.json``) cannot: the cross-instance reuse of
:mod:`repro.warmstart` over a neighboring grid.  Three passes over the
paper ResNet-50/101 (P, M) grid, every instance driven individually
through :func:`repro.experiments.run_grid` so each gets its own metrics
registry (per-instance wall time and probe counts):

* **cold** — ``warm_start=False``, no cache: every instance from
  scratch (the pre-warm-start baseline);
* **insweep** — ``warm_start=True``, no cache: only the in-sweep
  mechanisms (DP row forwarding, phase-1/1F1B* memos across MadPipe's
  fallback + certification re-searches, skeleton retargeting and the
  infeasibility frontier across neighbors);
* **warm** — ``warm_start=True`` against a result database primed from
  a coarser memory subgrid (the resumed-sweep scenario the JSONL
  ``ResultCache`` makes routine): subgrid instances are served from the
  database, the rest solve warm next to them.

Instances run at *descending* memory within each (network, P) group so
infeasibility certificates flow from roomy instances to tight ones.
Every pass must produce bit-identical ``RunResult``\\ s (all fields but
``runtime_s``); the benchmark asserts this before reporting.

``probes_saved`` per instance: the ``warm.probes_saved`` counter for
warm-solved instances, and the instance's full cold probe count
(DP + MILP) when the database served it outright.

The measurement core is importable — ``scripts/bench_report.py`` uses it
to emit ``BENCH_warm.json``.  Run under pytest for the smoke mode.
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
from pathlib import Path

from repro import obs, warmstart
from repro.algorithms.madpipe_dp import Discretization
from repro.experiments.harness import ResultCache, run_grid

# the paper evaluation slice: the two ResNets over the full memory axis
NETWORKS = ("resnet50", "resnet101")
PROCS = (4, 8)
MEMORIES_GB = (3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0)
#: The coarser subgrid a prior sweep left in the warm-start database.
DB_MEMORIES_GB = (3.0, 6.0, 10.0, 14.0)
BANDWIDTH_GBPS = 12.0
ITERATIONS = 8
ILP_TIME_LIMIT = 30.0

SMOKE = dict(
    networks=("toy5",),
    procs=(2,),
    memories_gb=(0.25, 0.5, 1.0),
    db_memories_gb=(0.5,),
    iterations=4,
    ilp_time_limit=10.0,
)


def _instances(networks, procs, memories) -> list[tuple[str, int, float]]:
    """Bench order: memory descending within each (network, P) group."""
    return [
        (network, p, m)
        for network in networks
        for p in procs
        for m in sorted(memories, reverse=True)
    ]


def _run_one(
    network: str,
    p: int,
    m: float,
    *,
    warm: bool,
    cache: ResultCache | None,
    iterations: int,
    ilp_time_limit: float,
) -> tuple[object, float, dict]:
    """One instance through the harness under its own registry."""
    registry = obs.MetricsRegistry()
    t0 = time.perf_counter()
    with obs.use_metrics(registry):
        (res,) = run_grid(
            (network,),
            (p,),
            (m,),
            (BANDWIDTH_GBPS,),
            algorithms=("madpipe",),
            grid=Discretization.coarse(),
            iterations=iterations,
            ilp_time_limit=ilp_time_limit,
            cache=cache,
            warm_start=warm,
        )
    return res, time.perf_counter() - t0, registry.snapshot()


def _probes(snap: dict) -> int:
    return int(snap.get("dp.probes", 0) + snap.get("ilp.milp_probes", 0))


def _strip(res) -> object:
    return dataclasses.replace(res, runtime_s=0.0)


def run_bench(
    *,
    smoke: bool = False,
    networks: tuple[str, ...] | None = None,
    procs: tuple[int, ...] | None = None,
    memories_gb: tuple[float, ...] | None = None,
    db_memories_gb: tuple[float, ...] | None = None,
    iterations: int | None = None,
    ilp_time_limit: float | None = None,
) -> dict:
    """The three-pass measurement; returns a JSON-ready result dict."""
    cfg = dict(
        networks=NETWORKS,
        procs=PROCS,
        memories_gb=MEMORIES_GB,
        db_memories_gb=DB_MEMORIES_GB,
        iterations=ITERATIONS,
        ilp_time_limit=ILP_TIME_LIMIT,
    )
    if smoke:
        cfg.update(SMOKE)
    for key, override in (
        ("networks", networks),
        ("procs", procs),
        ("memories_gb", memories_gb),
        ("db_memories_gb", db_memories_gb),
        ("iterations", iterations),
        ("ilp_time_limit", ilp_time_limit),
    ):
        if override is not None:
            cfg[key] = override
    run_opts = dict(
        iterations=cfg["iterations"], ilp_time_limit=cfg["ilp_time_limit"]
    )
    insts = _instances(cfg["networks"], cfg["procs"], cfg["memories_gb"])

    # pass 1: cold baseline
    warmstart.reset_process_context()
    cold: dict[tuple, tuple] = {}
    for key in insts:
        cold[key] = _run_one(*key, warm=False, cache=None, **run_opts)

    # pass 2: in-sweep warm (no database)
    warmstart.reset_process_context()
    insweep: dict[tuple, tuple] = {}
    for key in insts:
        insweep[key] = _run_one(*key, warm=True, cache=None, **run_opts)

    # pass 3: warm against a database primed from the memory subgrid
    warmstart.reset_process_context()
    db_build_s = 0.0
    warm: dict[tuple, tuple] = {}
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "warm_db.jsonl")
        for key in _instances(cfg["networks"], cfg["procs"], cfg["db_memories_gb"]):
            _, wall, _ = _run_one(*key, warm=True, cache=cache, **run_opts)
            db_build_s += wall
        for key in insts:
            warm[key] = _run_one(*key, warm=True, cache=cache, **run_opts)

    records = []
    identical = True
    for key in insts:
        network, p, m = key
        res_c, wall_c, snap_c = cold[key]
        res_i, wall_i, _ = insweep[key]
        res_w, wall_w, snap_w = warm[key]
        identical &= _strip(res_c) == _strip(res_i) == _strip(res_w)
        served = snap_w.get("sweep.cache_hits", 0) > 0
        probes_cold = _probes(snap_c)
        probes_saved = (
            probes_cold if served else int(snap_w.get("warm.probes_saved", 0))
        )
        records.append(
            {
                "network": network,
                "n_procs": p,
                "memory_gb": m,
                "status": res_c.status,
                "cold_s": wall_c,
                "insweep_s": wall_i,
                "warm_s": wall_w,
                "probes_cold": probes_cold,
                "probes_warm": 0 if served else _probes(snap_w),
                "probes_saved": probes_saved,
                "served_from_db": served,
            }
        )
    if not identical:
        raise AssertionError("warm results diverged from cold (bit-identity)")

    cold_s = sum(r["cold_s"] for r in records)
    insweep_s = sum(r["insweep_s"] for r in records)
    warm_s = sum(r["warm_s"] for r in records)
    return {
        "config": {k: list(v) if isinstance(v, tuple) else v for k, v in cfg.items()},
        "instances": records,
        "n_instances": len(records),
        "cold_s": cold_s,
        "insweep_s": insweep_s,
        "warm_s": warm_s,
        "db_build_s": db_build_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "insweep_speedup": cold_s / insweep_s if insweep_s > 0 else float("inf"),
        "probes_saved_total": sum(r["probes_saved"] for r in records),
        "instances_with_savings": sum(
            1 for r in records if r["probes_saved"] > 0
        ),
        "identical": identical,
    }


def render(result: dict) -> str:
    lines = [
        f"{'network':>12} {'P':>3} {'M (GB)':>7} {'cold (s)':>9} "
        f"{'warm (s)':>9} {'saved':>6} {'db':>3}"
    ]
    for r in result["instances"]:
        lines.append(
            f"{r['network']:>12} {r['n_procs']:>3} {r['memory_gb']:>7.2f} "
            f"{r['cold_s']:>9.3f} {r['warm_s']:>9.3f} "
            f"{r['probes_saved']:>6d} {'db' if r['served_from_db'] else '-':>3}"
        )
    lines.append(
        f"cold {result['cold_s']:.2f}s | insweep {result['insweep_s']:.2f}s "
        f"({result['insweep_speedup']:.2f}x) | warm+db {result['warm_s']:.2f}s "
        f"({result['speedup']:.2f}x; db built warm in {result['db_build_s']:.2f}s) | "
        f"probes saved {result['probes_saved_total']} over "
        f"{result['instances_with_savings']}/{result['n_instances']} instances"
    )
    return "\n".join(lines)


def test_warm_sweep_smoke():
    """Smoke run on the toy grid so the benchmark harness cannot rot:
    warm must match cold bit for bit and save at least one probe."""
    result = run_bench(smoke=True)
    assert result["identical"]
    assert result["speedup"] > 0
    # the toy grid is feasible everywhere, so probe savings come from the
    # database-served subgrid; the ≥-half property is asserted on the
    # paper grid by the full (non-smoke) run in BENCH_warm.json
    assert result["probes_saved_total"] > 0
    assert all(r["probes_saved"] > 0 for r in result["instances"] if r["served_from_db"])
    print()
    print(render(result))
