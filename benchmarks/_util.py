"""Helpers shared by the benchmark files."""

from __future__ import annotations

from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GRID_PATH = REPO_ROOT / "results" / "paper_grid.json"

REDUCED = dict(
    networks=("resnet50",),
    procs=(2, 4, 8),
    memories_gb=(4.0, 8.0, 12.0, 16.0),
    bandwidths_gbps=(12.0,),
)


def write_figure(name: str, text: str) -> None:
    out = REPO_ROOT / "results"
    out.mkdir(exist_ok=True)
    (out / name).write_text(text)
