"""Phase-2 hot-path benchmark: fast period searches vs their references.

Two suites, mirroring ``bench_dp_hotpath.py``:

* **ilp** — :func:`repro.ilp.schedule_allocation` (skeleton reuse,
  gallop bracketing, LP jumps, feasibility-only probes) raced against
  :func:`repro.ilp.schedule_allocation_reference` (the pre-skeleton
  scratch-build bisection) on the paper's non-contiguous ResNet-50
  instances — every (P, bandwidth, grid, memory) sweep point whose
  phase-1 allocation actually uses the special processor.  The two
  searches certify to the same ``rel_tol`` band but take different
  probe trajectories, so periods are checked to tolerance, not bitwise.

* **onef1b** — :func:`repro.algorithms.onef1b.min_feasible_period` (the
  NumPy kernel) raced against the pure-Python reference over the
  brute-force contiguous enumeration (every partitioning of a ResNet-50
  prefix into ≤ P stages, the ``best_contiguous`` workload), with
  **bit-identical** periods enforced on all ~1800 partitionings.

The measurement core is importable — ``scripts/bench_report.py`` uses it
to emit ``BENCH_phase2.json`` so later changes have a perf trajectory to
regress against.  Run standalone via the report script, or under pytest
(smoke mode) with the rest of the benchmark suite.
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.algorithms.madpipe_dp import Discretization, algorithm1
from repro.algorithms.onef1b import min_feasible_period
from repro.algorithms.onef1b_reference import min_feasible_period_reference
from repro.core.partition import Partitioning
from repro.core.platform import Platform
from repro.experiments.scenarios import paper_chain
from repro.ilp import schedule_allocation, schedule_allocation_reference

GRIDS = {"coarse": Discretization.coarse, "default": Discretization.default}

#: Certification tolerance shared by both searches; their periods may
#: differ by up to (1 + REL_TOL)^2 − 1 ≈ 2·REL_TOL since each stops
#: anywhere inside its own band.
REL_TOL = 5e-3

# The ILP suite sweep: the paper's ResNet-50 experiment axes.  Only the
# points whose phase-1 allocation is non-contiguous reach the MILP.
ILP_PROCS = (4, 8)
ILP_BANDWIDTHS_GBPS = (5.0, 12.0, 25.0)
ILP_MEMORIES_GB = (6.0, 8.0, 12.0)

# The 1F1B* suite: exhaustive contiguous enumeration of a ResNet-50
# prefix (the full chain's C(38, ≤7) partitionings are out of reach for
# any implementation — the oracle itself caps at 12 layers).
ONEF1B_L = 12
ONEF1B_PROCS = 8
ONEF1B_MEMORIES_GB = (3.0, 4.0)
ONEF1B_BANDWIDTH_GBPS = 12.0


def ilp_instances(
    *,
    network: str = "resnet50",
    procs: tuple[int, ...] = ILP_PROCS,
    bandwidths: tuple[float, ...] = ILP_BANDWIDTHS_GBPS,
    grids: tuple[str, ...] = ("coarse", "default"),
    memories: tuple[float, ...] = ILP_MEMORIES_GB,
):
    """Yield ``(meta, chain, platform, allocation)`` for every sweep point
    whose phase-1 allocation is non-contiguous (the MILP workload)."""
    chain = paper_chain(network)
    for P in procs:
        for bw in bandwidths:
            for grid_name in grids:
                grid = GRIDS[grid_name]()
                for mem in memories:
                    platform = Platform.of(P, mem, bw)
                    phase1 = algorithm1(chain, platform, grid=grid)
                    if not phase1.feasible:
                        continue
                    allocation = phase1.allocation.to_allocation(platform)
                    if allocation.is_contiguous():
                        continue
                    meta = {
                        "network": network,
                        "n_procs": P,
                        "bandwidth_gbps": bw,
                        "grid": grid_name,
                        "memory_gb": mem,
                        "procs_layout": list(allocation.procs),
                    }
                    yield meta, chain, platform, allocation


def bench_ilp_instance(meta, chain, platform, allocation) -> dict:
    """Race the fast period search against the reference bisection on one
    non-contiguous allocation; the certified periods must agree within
    the combined tolerance band."""
    t0 = time.perf_counter()
    fast = schedule_allocation(chain, platform, allocation, rel_tol=REL_TOL)
    t1 = time.perf_counter()
    ref = schedule_allocation_reference(chain, platform, allocation, rel_tol=REL_TOL)
    t2 = time.perf_counter()
    band = 1 + 2 * REL_TOL
    assert fast.feasible == ref.feasible, f"feasibility mismatch on {meta}"
    if fast.feasible:
        assert fast.period <= ref.period * band and ref.period <= fast.period * band, (
            f"period mismatch on {meta}: fast={fast.period} reference={ref.period}"
        )
    fast_t, ref_t = t1 - t0, t2 - t1
    return {
        **meta,
        "fast_s": fast_t,
        "fast_probes": len(fast.probes),
        "period": fast.period,
        "reference_s": ref_t,
        "reference_probes": len(ref.probes),
        "reference_period": ref.period,
        "speedup": ref_t / fast_t if fast_t > 0 else float("inf"),
    }


def run_ilp_bench(**kwargs) -> list[dict]:
    return [bench_ilp_instance(*inst) for inst in ilp_instances(**kwargs)]


def bench_onef1b_instance(
    memory_gb: float,
    *,
    network: str = "resnet50",
    L: int = ONEF1B_L,
    n_procs: int = ONEF1B_PROCS,
    bandwidth_gbps: float = ONEF1B_BANDWIDTH_GBPS,
) -> dict:
    """Time the full contiguous enumeration (every partitioning into ≤ P
    stages) for both implementations and enforce bit-identical answers."""
    chain = paper_chain(network).subchain(1, L)
    platform = Platform.of(n_procs, memory_gb, bandwidth_gbps)
    parts = [
        Partitioning.from_cuts(L, list(cuts))
        for n_cuts in range(0, n_procs)
        for cuts in combinations(range(1, L), n_cuts)
    ]

    t0 = time.perf_counter()
    fast = [min_feasible_period(chain, platform, p, build=False) for p in parts]
    t1 = time.perf_counter()
    ref = [
        min_feasible_period_reference(chain, platform, p, build=False)
        for p in parts
    ]
    t2 = time.perf_counter()

    for p, f, r in zip(parts, fast, ref):
        assert (f is None) == (r is None), f"feasibility mismatch on {p}"
        if f is not None:
            assert f.period == r.period and f.groups == r.groups, (
                f"kernel mismatch on {p}: fast={f.period} reference={r.period}"
            )
    fast_t, ref_t = t1 - t0, t2 - t1
    return {
        "network": network,
        "L": L,
        "n_procs": n_procs,
        "memory_gb": memory_gb,
        "bandwidth_gbps": bandwidth_gbps,
        "n_partitionings": len(parts),
        "n_feasible": sum(1 for f in fast if f is not None),
        "fast_s": fast_t,
        "reference_s": ref_t,
        "speedup": ref_t / fast_t if fast_t > 0 else float("inf"),
    }


def run_onef1b_bench(
    memories: tuple[float, ...] = ONEF1B_MEMORIES_GB, **kwargs
) -> list[dict]:
    return [bench_onef1b_instance(mem, **kwargs) for mem in memories]


def run_bench(*, smoke: bool = False) -> dict:
    """Both suites; ``smoke`` shrinks each to a single quick instance."""
    if smoke:
        ilp = [
            bench_ilp_instance(*inst)
            for inst in ilp_instances(
                procs=(4,), bandwidths=(25.0,), grids=("coarse",), memories=(6.0,)
            )
        ]
        onef1b = [bench_onef1b_instance(3.0, L=10)]
    else:
        ilp = run_ilp_bench()
        onef1b = run_onef1b_bench()
    return {"ilp": ilp, "onef1b": onef1b}


def _aggregate(records: list[dict]) -> float:
    fast = sum(r["fast_s"] for r in records)
    ref = sum(r.get("reference_s", 0.0) for r in records)
    return ref / fast if fast > 0 else float("inf")


def render(result: dict) -> str:
    lines = ["ilp: schedule_allocation vs reference bisection"]
    lines.append(
        f"{'instance':>32} {'fast (s)':>9} {'ref (s)':>9} {'speedup':>8} "
        f"{'probes':>7} {'period':>8}"
    )
    for r in result["ilp"]:
        name = (
            f"P{r['n_procs']}/bw{r['bandwidth_gbps']:g}/"
            f"{r['grid']}/m{r['memory_gb']:g}"
        )
        lines.append(
            f"{name:>32} {r['fast_s']:9.3f} {r['reference_s']:9.3f} "
            f"{r['speedup']:7.2f}x {r['fast_probes']:3d}/{r['reference_probes']:<3d} "
            f"{r['period']:8.5f}"
        )
    if result["ilp"]:
        lines.append(f"aggregate ilp speedup: {_aggregate(result['ilp']):.2f}x")
    lines.append("")
    lines.append("onef1b: min_feasible_period over the contiguous enumeration")
    lines.append(
        f"{'instance':>32} {'fast (s)':>9} {'ref (s)':>9} {'speedup':>8} "
        f"{'parts':>7} {'feas':>6}"
    )
    for r in result["onef1b"]:
        name = f"{r['network']}[:{r['L']}] P{r['n_procs']}/m{r['memory_gb']:g}"
        lines.append(
            f"{name:>32} {r['fast_s']:9.3f} {r['reference_s']:9.3f} "
            f"{r['speedup']:7.2f}x {r['n_partitionings']:7d} {r['n_feasible']:6d}"
        )
    if result["onef1b"]:
        lines.append(
            f"aggregate onef1b speedup: {_aggregate(result['onef1b']):.2f}x"
        )
    return "\n".join(lines)


def test_phase2_hotpath_smoke():
    """Smoke run so the benchmark harness itself cannot rot; asserts the
    implementations agree (done inside the bench helpers) and the 1F1B*
    kernel is not slower than the reference (the ILP race is too close
    to HiGHS run-to-run variance for a hard smoke assertion)."""
    result = run_bench(smoke=True)
    assert result["onef1b"][0]["speedup"] > 1.0
    for r in result["ilp"]:
        assert r["fast_probes"] <= r["reference_probes"]
    print()
    print(render(result))
