"""Certification overhead benchmark: the gate must stay cheap.

Every plan emitted by :func:`repro.algorithms.madpipe.madpipe` now runs
through the discrete-event certification gate before it is returned.
This benchmark measures what that costs —

* ``bench_gate`` times the full MadPipe pipeline with ``certify=True``
  against ``certify=False`` on one paper network (the gate's share of
  the end-to-end wall time), checking the period is unchanged;
* ``bench_verify`` times the bare :func:`repro.robust.certify_pattern`
  call hammered in a loop (the marginal cost per certification, which
  the MILP incumbent gate pays once per suspect probe);
* ``bench_robustness`` times a seeded
  :func:`repro.robust.robustness_report` and reports the per-sample
  cost of the stress test, checking two runs with the same seed agree.

``scripts/bench_report.py --suite certify`` records the results to
``BENCH_certify.json`` for trend tracking.
"""

from __future__ import annotations

import time

from repro.algorithms.madpipe import madpipe
from repro.core.platform import Platform
from repro.experiments.scenarios import paper_chain
from repro.robust import certify_pattern, robustness_report

BENCH_PROCS = 4
BENCH_MEMORY_GB = 8.0
BENCH_BANDWIDTH_GBPS = 12.0


def _bench_platform() -> Platform:
    return Platform.of(BENCH_PROCS, BENCH_MEMORY_GB, BENCH_BANDWIDTH_GBPS)


def bench_gate(network: str = "resnet50", *, repeats: int = 3,
               iterations: int = 8) -> dict:
    """End-to-end MadPipe wall time with and without the gate."""
    chain = paper_chain(network)
    platform = _bench_platform()
    out: dict = {"bench": "gate", "network": network}
    periods = set()
    for mode, certify in (("uncertified", False), ("certified", True)):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = madpipe(chain, platform, iterations=iterations, certify=certify)
            best = min(best, time.perf_counter() - t0)
        periods.add(res.period)
        out[f"{mode}_s"] = best
    assert len(periods) == 1, f"the gate changed numerics: {periods}"
    out["overhead_certified"] = out["certified_s"] / out["uncertified_s"]
    return out


def bench_verify(network: str = "resnet50", *, calls: int = 50,
                 repeats: int = 3, iterations: int = 8) -> dict:
    """Marginal cost of one certify_pattern call (best-of-N loop)."""
    chain = paper_chain(network)
    platform = _bench_platform()
    res = madpipe(chain, platform, iterations=iterations, certify=False)
    assert res.pattern is not None
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(calls):
            cert = certify_pattern(chain, platform, res.pattern)
        best = min(best, time.perf_counter() - t0)
    assert cert.ok
    return {
        "bench": "verify",
        "network": network,
        "calls": calls,
        "total_s": best,
        "per_call_s": best / calls,
        "periods_simulated": cert.periods_simulated,
    }


def bench_robustness(network: str = "resnet50", *, samples: int = 32,
                     repeats: int = 3, iterations: int = 8) -> dict:
    """Cost of one seeded robustness report (and its determinism)."""
    chain = paper_chain(network)
    platform = _bench_platform()
    res = madpipe(chain, platform, iterations=iterations, certify=False)
    assert res.pattern is not None
    best = float("inf")
    reports = set()
    for _ in range(repeats):
        t0 = time.perf_counter()
        rep = robustness_report(chain, platform, res.pattern,
                                samples=samples, seed=0)
        best = min(best, time.perf_counter() - t0)
        reports.add(repr(sorted(rep.to_dict().items())))
    assert len(reports) == 1, "seeded robustness report was not deterministic"
    return {
        "bench": "robustness",
        "network": network,
        "samples": samples,
        "total_s": best,
        "per_sample_s": best / samples,
        "worst_period_inflation": rep.worst_period_inflation,
        "breaking_noise_scale": rep.breaking_noise_scale,
    }


def bench_all(**kw) -> list[dict]:
    return [bench_gate(**kw), bench_verify(), bench_robustness()]


def test_certify_overhead_smoke():
    """The gate's share of the pipeline stays bounded, numerics intact.

    The bound is deliberately loose: the point is catching something
    catastrophic (re-simulating hundreds of periods, say) on noisy CI
    runners, not enforcing a performance budget.
    """
    g = bench_gate("toy8", repeats=2, iterations=4)
    assert g["certified_s"] < g["uncertified_s"] * 5 + 0.5
    v = bench_verify("toy8", calls=10, repeats=2, iterations=4)
    assert v["per_call_s"] < 0.5
    r = bench_robustness("toy8", samples=8, repeats=2, iterations=4)
    assert r["total_s"] < 5.0


if __name__ == "__main__":
    for rec in bench_all():
        print(rec)
