"""QPS traffic replay: the plan service vs naive serial ``api.plan``.

The planner-as-a-service claim is about *traffic*, not single solves:
real planning workloads repeat themselves (the same (chain, platform,
knobs) arrives again and again as users iterate and autoscalers probe),
so a fingerprinted cache plus single-flight coalescing should multiply
throughput without changing a single answer.  This benchmark measures
exactly that:

* **workload** — ``n_requests`` requests drawn Zipf-style (seeded, rank
  exponent ``zipf_s``) from a pool of unique (network, P, M, algorithm)
  specs, shuffled into one replay sequence: a few hot specs dominate,
  the tail stays cold — the canonical cache-friendly traffic shape;
* **naive pass** — the replay answered the pre-service way: one blocking
  :func:`repro.api.plan` call per request, in order, no reuse anywhere
  (warm starts disabled; every request pays the full solve);
* **service pass** — the same replay fired concurrently at one
  :class:`repro.serve.PlanService` (bounded worker pool + two-tier plan
  cache + coalescing), wall-clocked end to end including pool startup.

Before any number is reported, every reply of the service pass is
asserted bit-identical (``PlanResult.to_json()``) to a dedicated cold
reference solve of its spec — the service may only ever be *faster*,
never *different*.  The emitted record has both QPS figures, the
speedup, and the cache-hit / coalesce rates that explain it.

The measurement core is importable — ``scripts/bench_report.py`` uses it
to emit ``BENCH_serve.json``.  Run under pytest for the smoke mode.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
import time
from pathlib import Path

from repro import api, warmstart
from repro.algorithms import Discretization
from repro.core.platform import Platform
from repro.experiments.scenarios import paper_chain

# the full workload: ResNet-50 over a platform spread, madpipe + pipedream
NETWORKS = ("resnet50",)
PLATFORMS = ((4, 8.0), (4, 16.0), (8, 8.0), (8, 16.0))
ALGORITHMS = ("madpipe", "pipedream")
BANDWIDTH_GBPS = 12.0
N_REQUESTS = 64
WORKERS = 2
CONCURRENCY = 16
ITERATIONS = 8
ILP_TIME_LIMIT = 30.0
SEED = 0
ZIPF_S = 1.1

SMOKE = dict(
    networks=("toy4", "toy6"),
    platforms=((2, 8.0), (2, 16.0)),
    algorithms=("madpipe",),
    n_requests=12,
    workers=0,  # inline thread mode: no pool startup in CI smoke
    iterations=4,
    ilp_time_limit=10.0,
)


def _specs(cfg) -> list[tuple[str, int, float, str]]:
    return [
        (network, p, m, algorithm)
        for network in cfg["networks"]
        for (p, m) in cfg["platforms"]
        for algorithm in cfg["algorithms"]
    ]


def _replay(n_unique: int, n_requests: int, seed: int, s: float) -> list[int]:
    """Seeded Zipf draw of spec indices: rank r gets weight 1/r^s."""
    rng = random.Random(seed)
    ranks = list(range(n_unique))
    rng.shuffle(ranks)  # which spec is "hot" is itself randomized
    weights = [1.0 / (ranks[i] + 1) ** s for i in range(n_unique)]
    return rng.choices(range(n_unique), weights=weights, k=n_requests)


def _opts(cfg, algorithm: str) -> dict:
    if algorithm != "madpipe":
        return {}
    return dict(
        grid=Discretization.coarse(),
        iterations=cfg["iterations"],
        ilp_time_limit=cfg["ilp_time_limit"],
    )


def _cold_plan(cfg, spec) -> "api.PlanResult":
    network, p, m, algorithm = spec
    chain = paper_chain(network)
    platform = Platform.of(p, m, BANDWIDTH_GBPS)
    with warmstart.activate(False):
        return api.plan(chain, platform, algorithm=algorithm, **_opts(cfg, algorithm))


async def _service_pass(cfg, specs, replay, store: Path) -> tuple[list, float, dict]:
    service = api.serve(
        store=store,
        max_workers=cfg["workers"],
        max_retries=cfg["max_retries"],
    )
    requests = [
        service.request(
            paper_chain(network),
            Platform.of(p, m, BANDWIDTH_GBPS),
            algorithm=algorithm,
            **_opts(cfg, algorithm),
        )
        for (network, p, m, algorithm) in specs
    ]
    gate = asyncio.Semaphore(cfg["concurrency"])

    async def one(i: int):
        async with gate:
            return await service.handle(requests[i])

    async with service:
        t0 = time.perf_counter()
        replies = await asyncio.gather(*(one(i) for i in replay))
        wall = time.perf_counter() - t0
        stats = service.stats()
    return replies, wall, stats


def run_bench(
    *,
    smoke: bool = False,
    networks: tuple[str, ...] | None = None,
    platforms: "tuple[tuple[int, float], ...] | None" = None,
    algorithms: tuple[str, ...] | None = None,
    n_requests: int | None = None,
    workers: int | None = None,
    concurrency: int | None = None,
    iterations: int | None = None,
    ilp_time_limit: float | None = None,
    max_retries: int = 2,
    seed: int | None = None,
    zipf_s: float | None = None,
) -> dict:
    """The replay measurement; returns a JSON-ready result dict."""
    cfg = dict(
        networks=NETWORKS,
        platforms=PLATFORMS,
        algorithms=ALGORITHMS,
        n_requests=N_REQUESTS,
        workers=WORKERS,
        concurrency=CONCURRENCY,
        iterations=ITERATIONS,
        ilp_time_limit=ILP_TIME_LIMIT,
        max_retries=max_retries,
        seed=SEED,
        zipf_s=ZIPF_S,
    )
    if smoke:
        cfg.update(SMOKE)
    for key, override in (
        ("networks", networks),
        ("platforms", platforms),
        ("algorithms", algorithms),
        ("n_requests", n_requests),
        ("workers", workers),
        ("concurrency", concurrency),
        ("iterations", iterations),
        ("ilp_time_limit", ilp_time_limit),
        ("seed", seed),
        ("zipf_s", zipf_s),
    ):
        if override is not None:
            cfg[key] = override
    specs = _specs(cfg)
    replay = _replay(len(specs), cfg["n_requests"], cfg["seed"], cfg["zipf_s"])

    # cold references: one from-scratch solve per unique spec — the
    # ground truth every served plan must match bit for bit
    warmstart.reset_process_context()
    references = [_cold_plan(cfg, spec).to_json() for spec in specs]

    # naive pass: serial blocking api.plan per request, no reuse
    warmstart.reset_process_context()
    t0 = time.perf_counter()
    for i in replay:
        naive = _cold_plan(cfg, specs[i])
        if naive.to_json() != references[i]:
            raise AssertionError("naive replay diverged from the cold reference")
    naive_s = time.perf_counter() - t0

    # service pass: the same replay, concurrent, cached, coalesced
    with tempfile.TemporaryDirectory() as tmp:
        replies, serve_s, stats = asyncio.run(
            _service_pass(cfg, specs, replay, Path(tmp) / "plans.jsonl")
        )

    identical = all(
        reply.result.to_json() == references[i]
        for reply, i in zip(replies, replay)
    )
    if not identical:
        raise AssertionError("service replies diverged from cold api.plan")

    n = cfg["n_requests"]
    n_distinct = len(set(replay))
    counters = stats["counters"]
    served_from = {}
    for reply in replies:
        served_from[reply.served_from] = served_from.get(reply.served_from, 0) + 1
    return {
        "config": {
            k: list(v) if isinstance(v, tuple) else v for k, v in cfg.items()
        },
        "n_requests": n,
        "n_unique": len(specs),
        "n_distinct": n_distinct,
        "naive_s": naive_s,
        "serve_s": serve_s,
        "naive_qps": n / naive_s if naive_s > 0 else float("inf"),
        "serve_qps": n / serve_s if serve_s > 0 else float("inf"),
        "speedup": naive_s / serve_s if serve_s > 0 else float("inf"),
        "solves": int(counters.get("serve.solves", 0)),
        "hit_rate": counters.get("serve.hits", 0) / n,
        "coalesce_rate": counters.get("serve.coalesced", 0) / n,
        "served_from": served_from,
        "latency_ms": stats["latency_ms"],
        "identical": identical,
    }


def render(result: dict) -> str:
    src = " ".join(f"{k}={v}" for k, v in sorted(result["served_from"].items()))
    lat = result["latency_ms"]
    return (
        f"{result['n_requests']} requests over {result['n_distinct']} distinct "
        f"specs (pool of {result['n_unique']}) [{src}]\n"
        f"naive serial: {result['naive_s']:.2f}s ({result['naive_qps']:.2f} qps) | "
        f"service: {result['serve_s']:.2f}s ({result['serve_qps']:.2f} qps) | "
        f"speedup {result['speedup']:.2f}x\n"
        f"solves {result['solves']} | hit rate {result['hit_rate']:.0%} | "
        f"coalesce rate {result['coalesce_rate']:.0%} | "
        f"latency p50 {lat['p50']:.1f}ms p95 {lat['p95']:.1f}ms"
    )


def test_serve_bench_smoke():
    """Smoke run on toy chains so the benchmark harness cannot rot: the
    service must answer bit-identically and actually reuse solves."""
    result = run_bench(smoke=True)
    assert result["identical"]
    # no duplicate solves: each distinct spec in the replay solved exactly once
    assert result["solves"] == result["n_distinct"]
    assert result["hit_rate"] + result["coalesce_rate"] > 0
    print()
    print(render(result))
