"""Fig. 5 — memory peaks of the two special-processor interleavings.

The paper's Fig. 5 contrasts the worst case (all forwards of the special
processor's stages before all backwards: peak ``Σ g_i·a_i``) with the
best case (each backward right after its forward: peak
``max_i g_i a_i + Σ_{j≠i} (g_j−1) a_j``).  We schedule a two-stage
special processor with the phase-2 ILP under progressively tighter
memory and show the solver landing at or below the worst-case peak, down
to the best-case peak, before going infeasible.
"""

from __future__ import annotations

from _util import write_figure

from repro.core import Allocation, Partitioning, Platform
from repro.ilp import schedule_allocation
from repro.models import uniform_chain

MB = float(2**20)
GB = float(2**30)


def test_fig5_interleaving_memory(benchmark):
    chain = uniform_chain(6, u_f=1.0, u_b=2.0, weights=0.0, activation=256 * MB)
    alloc = Allocation(Partitioning.from_cuts(6, [2, 4]), (0, 1, 0))

    def roomy_schedule():
        return schedule_allocation(
            chain, Platform.of(2, 1024, 12), alloc, time_limit=30
        )

    roomy = benchmark.pedantic(roomy_schedule, rounds=1, iterations=1)
    assert roomy.feasible

    lines = ["Fig. 5 analogue: ILP memory peaks vs memory budget (GPU 0 special)"]
    lines.append(f"{'budget (GiB)':>13} {'period':>8} {'gpu0 peak (GiB)':>16}")
    best_peak = max(roomy.pattern.memory_peaks(chain).values())
    budgets = [best_peak * f / GB for f in (2.0, 1.5, 1.2, 1.05, 0.8)]
    feasible_peaks = []
    for budget in budgets:
        res = schedule_allocation(
            chain, Platform.of(2, budget, 12), alloc, time_limit=30
        )
        if res.feasible:
            peak = max(res.pattern.memory_peaks(chain).values())
            feasible_peaks.append((budget, peak))
            lines.append(f"{budget:13.2f} {res.period:8.2f} {peak / GB:16.2f}")
        else:
            lines.append(f"{budget:13.2f} {'inf':>8} {'-':>16}")
    text = "\n".join(lines)
    print()
    print(text)
    write_figure("fig5.txt", text)

    # the ILP adapts its interleaving: every feasible peak fits its budget
    for budget, peak in feasible_peaks:
        assert peak <= budget * GB * (1 + 1e-6)
