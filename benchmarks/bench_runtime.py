"""Optimizer runtime benchmarks (paper §5.1: "several seconds for the
smaller networks, up to 15 minutes for the large networks").

These are real pytest-benchmark measurements of the algorithm building
blocks on the paper's profiles.
"""

from __future__ import annotations

import pytest

from repro.algorithms import Discretization, madpipe_dp, min_feasible_period
from repro.algorithms.pipedream import pipedream_partition
from repro.core import Platform
from repro.experiments import paper_chain
from repro.ilp import schedule_allocation

PLATFORM = Platform.of(4, 8, 12)


@pytest.fixture(scope="module")
def resnet50_chain():
    return paper_chain("resnet50")


def test_pipedream_dp_runtime(benchmark, resnet50_chain):
    part, dp = benchmark(pipedream_partition, resnet50_chain, PLATFORM)
    assert part is not None


def test_onef1b_runtime(benchmark, resnet50_chain):
    part, _ = pipedream_partition(resnet50_chain, PLATFORM)
    res = benchmark(min_feasible_period, resnet50_chain, PLATFORM, part)
    assert res is not None


def test_madpipe_dp_single_call_runtime(benchmark, resnet50_chain):
    target = resnet50_chain.total_compute() / 3

    def run():
        return madpipe_dp(
            resnet50_chain, PLATFORM, target, grid=Discretization.coarse()
        )

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.feasible


def test_ilp_schedule_runtime(benchmark, resnet50_chain):
    from repro.algorithms import algorithm1

    phase1 = algorithm1(
        resnet50_chain, PLATFORM, iterations=8, grid=Discretization.coarse()
    )
    alloc = phase1.allocation.to_allocation(PLATFORM)

    def run():
        return schedule_allocation(
            resnet50_chain, PLATFORM, alloc, time_limit=30
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.feasible or alloc.is_contiguous()
