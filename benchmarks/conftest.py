"""Shared benchmark fixtures.

The figure benchmarks replay ``results/paper_grid.json`` (produced by
``scripts/run_paper_sweep.py``) when it exists, so the full paper grid is
rendered; otherwise they compute a reduced grid on the fly.  Rendered
tables are also written to ``results/figN.txt``.
"""

from __future__ import annotations

import pytest

from _util import GRID_PATH, REDUCED

from repro.algorithms import Discretization
from repro.experiments import RunResult, load_results, run_grid


@pytest.fixture(scope="session")
def paper_results() -> list[RunResult]:
    """Full cached sweep if present, else a freshly computed reduced grid."""
    if GRID_PATH.exists():
        results = load_results(GRID_PATH)
        if results:
            return results
    return run_grid(
        grid=Discretization.coarse(),
        iterations=8,
        ilp_time_limit=30.0,
        **REDUCED,
    )
