"""Zero-bubble B/W-split family raced against 1F1B* on GPT-style chains.

The zero-bubble claim is about *tight memory on deep uniform pipelines*:
splitting each backward into its grad-input half ``B`` (critical path)
and grad-weight half ``W`` (only ``B_i -> W_i`` depends on it) shrinks
the per-stage V-load, which lets stage groups merge at smaller periods
and cuts the number of in-flight activation copies.  Where memory is the
binding constraint, the certified zero-bubble period drops strictly
below the certified 1F1B\\* period of the *same* planner on the *same*
instance.

This benchmark measures exactly that.  For each (P, M) case on the
uniform GPT-style chain (``gpt24``: 24 profiled transformer blocks) it
runs the full MadPipe pipeline twice through :func:`repro.api.plan` —
once per ``schedule_family`` — with the discrete-event certification
gate on, and records both certified periods.  Only *certified* plans
count: an uncertified or quarantined result can never score a win.

The emitted record asserts the acceptance criterion before reporting any
number: at least one memory budget must show the zero-bubble family
strictly below 1F1B\\* with both plans certified.

The measurement core is importable — ``scripts/bench_report.py`` uses it
to emit ``BENCH_zb.json`` (``--suite zb``).  Smoke mode runs the single
cheapest winning case for CI.
"""

from __future__ import annotations

import time

from repro import api
from repro.algorithms import Discretization
from repro.core.platform import Platform
from repro.experiments.scenarios import paper_chain

NETWORK = "gpt24"
BANDWIDTH_GBPS = 12.0
#: (P, memory budgets GB): the tight-memory regime where group structure
#: differs between the families; roomy budgets tie (both hit the V-load
#: lower bound) and are deliberately excluded.
CASES = ((4, (1.5, 2.0)), (8, (1.0, 1.2, 1.5)))
ITERATIONS = 8
ILP_TIME_LIMIT = 30.0

SMOKE_CASES = ((8, (1.2,)),)

# a strict win must clear floating-point noise
WIN_ATOL = 1e-9


def _plan(chain, platform, family: str) -> dict:
    t0 = time.perf_counter()
    r = api.plan(
        chain,
        platform,
        schedule_family=family,
        grid=Discretization.coarse(),
        iterations=ITERATIONS,
        ilp_time_limit=ILP_TIME_LIMIT,
    )
    certified = r.certificate is not None and r.certificate.ok
    return {
        "period": r.period if r.feasible else None,
        "status": r.status,
        "certified": certified,
        "certificate_mode": r.certificate.mode if r.certificate else None,
        "wall_s": round(time.perf_counter() - t0, 3),
    }


def run_bench(smoke: bool = False) -> dict:
    cases = SMOKE_CASES if smoke else CASES
    chain = paper_chain(NETWORK)
    runs = []
    for n_procs, memories in cases:
        for memory_gb in memories:
            platform = Platform.of(n_procs, memory_gb, BANDWIDTH_GBPS)
            base = _plan(chain, platform, "1f1b")
            zb = _plan(chain, platform, "zero_bubble")
            win = (
                base["certified"]
                and zb["certified"]
                and base["period"] is not None
                and zb["period"] is not None
                and zb["period"] < base["period"] - WIN_ATOL
            )
            improvement = (
                (1.0 - zb["period"] / base["period"]) * 100.0 if win else 0.0
            )
            runs.append(
                {
                    "network": NETWORK,
                    "n_procs": n_procs,
                    "memory_gb": memory_gb,
                    "bandwidth_gbps": BANDWIDTH_GBPS,
                    "onef1b": base,
                    "zero_bubble": zb,
                    "win": win,
                    "improvement_pct": round(improvement, 4),
                }
            )
    wins = [r for r in runs if r["win"]]
    # the acceptance criterion is part of the benchmark, not a footnote:
    # no certified strict win on any budget means the number is wrong
    assert wins, (
        "zero_bubble produced no certified strictly-better period on any "
        f"memory budget of {NETWORK} (cases: {cases})"
    )
    return {
        "network": NETWORK,
        "runs": runs,
        "n_wins": len(wins),
        "best_improvement_pct": max(r["improvement_pct"] for r in runs),
    }


def render(result: dict) -> str:
    lines = [
        f"zero-bubble vs 1F1B* on {result['network']} "
        f"(certified plans only):"
    ]
    def fmt(d: dict) -> str:
        return "infeasible" if d["period"] is None else f"{d['period']:.6f}"

    for r in result["runs"]:
        base, zb = r["onef1b"], r["zero_bubble"]
        tag = f"  WIN -{r['improvement_pct']:.2f}%" if r["win"] else ""
        lines.append(
            f"  P={r['n_procs']} M={r['memory_gb']:g}GB: "
            f"1f1b={fmt(base)} zb={fmt(zb)}{tag}"
        )
    lines.append(
        f"{result['n_wins']}/{len(result['runs'])} budgets strictly better, "
        f"best -{result['best_improvement_pct']:.2f}%"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true")
    ap.add_argument("-o", "--out", default=None)
    args = ap.parse_args()
    result = run_bench(smoke=args.smoke)
    print(render(result))
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(json.dumps(result, indent=1) + "\n")
        print(f"wrote {args.out}")
