"""Seeded chaos soak: the plan service under overload and failure.

``repro.testing.ChaosSchedule.standard`` composes the repo's fault
sites into one storm — cache warmup, an admission-overflow burst, a
solve-failure storm that trips a circuit breaker, a latency spike that
burns per-request deadline budgets, (with a worker pool) hard worker
kills, a torn store write, and a post-cooldown recovery — and this
driver replays it against a real :class:`repro.serve.PlanService`
(admission ``1×2``, breaker threshold 3, degraded fallback on, fake
clock + seeded RNG installed).

**Invariants before any number is reported:**

1. every non-degraded reply is bit-identical (``PlanResult.to_json``)
   to a cold :func:`repro.api.plan` solve of the same request;
2. every degraded reply is feasible and carries an ``ok`` certificate;
3. shed + served (incl. degraded) accounts for every request issued —
   no reply lost, no unexplained error;
4. after the faults clear, the first fresh full-quality solve arrives
   within ``n_warm + 1`` recovery requests (the warmup replays plus
   one probe), and the half-open breaker closes;
5. the persistent store holds no degraded payload, every record
   matches its cold reference, and the torn write was quarantined.

The emitted record is split into a ``summary`` that is *deterministic
by construction* — phase outcomes, ``serve.*`` counters, breaker
states, invariant verdicts; no wall-clock anywhere — and a ``timing``
section with the walls.  CI runs the smoke twice and byte-compares the
summaries; ``scripts/bench_report.py`` emits ``BENCH_chaos.json``.

The measurement core is importable; run under pytest for smoke mode.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

from repro import api, warmstart
from repro.algorithms import Discretization
from repro.core.platform import Platform
from repro.experiments.scenarios import paper_chain
from repro.testing import ChaosPhase, ChaosRequest, ChaosSchedule, faults

N_WARM = 6
SCALE = 3
WORKERS = 1
POOL_KILL = True
ITERATIONS = 6
SEED = 0
BREAKER_THRESHOLD = 3
BREAKER_COOLDOWN_S = 60.0
PROCS = 2
BANDWIDTH_GBPS = 12.0

SMOKE = dict(
    n_warm=4,
    scale=1,
    workers=0,  # inline thread mode: no pool startup in CI smoke
    pool_kill=False,  # an exit fault inline would kill the CI process
    iterations=4,
)

#: Deterministic counters worth publishing; everything timing-flavoured
#: (latencies, runtime metrics merged from solvers) stays out of the
#: byte-compared summary.
_SUMMARY_COUNTERS = (
    "serve.requests", "serve.solves", "serve.hits", "serve.hits_memory",
    "serve.hits_store", "serve.coalesced", "serve.retries", "serve.errors",
    "serve.shed", "serve.queued", "serve.queue_hwm",
    "serve.breaker_trips", "serve.breaker_probes", "serve.breaker_closes",
    "serve.breaker_short_circuits", "serve.deadline_exhausted",
    "serve.degraded", "serve.degraded_solves", "serve.degraded_hits",
    "serve.pool_restarts", "serve.pool_exhausted",
)

_TOY_SIZES = (3, 4, 5, 6, 7, 8, 9, 10)


class _FakeClock:
    """The schedule's monotonic clock: advances only when told to."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def _spec(i: int) -> tuple[str, float]:
    """Deterministic request-spec pool: (network, memory_gb), unique per
    index for every pool size a standard schedule can ask for."""
    return (
        f"toy{_TOY_SIZES[i % len(_TOY_SIZES)]}",
        8.0 + 4.0 * (i // len(_TOY_SIZES)),
    )


def _request(service, cfg, req: ChaosRequest):
    network, memory_gb = _spec(req.spec)
    return service.request(
        paper_chain(network),
        Platform.of(PROCS, memory_gb, BANDWIDTH_GBPS),
        priority=req.priority,
        deadline_s=req.deadline_s,
        grid=Discretization.coarse(),
        iterations=cfg["iterations"],
        schedule_family=req.family,
    )


def _cold_reference(cfg, spec: int, family: str) -> dict:
    network, memory_gb = _spec(spec)
    with warmstart.activate(False):
        result = api.plan(
            paper_chain(network),
            Platform.of(PROCS, memory_gb, BANDWIDTH_GBPS),
            grid=Discretization.coarse(),
            iterations=cfg["iterations"],
            schedule_family=family,
        )
    return result.to_json()


def _service_with_clock(cfg, store: Path, clock: _FakeClock):
    from repro.serve import PlanService, ResilienceConfig

    return PlanService(
        store=store,
        max_workers=cfg["workers"],
        instance_timeout=10.0,
        max_retries=cfg["max_retries"],
        retry_backoff_s=0.02,
        seed=cfg["seed"],
        clock=clock.now,
        resilience=ResilienceConfig(
            max_concurrency=1,
            max_pending=2,
            degraded_fallback=True,
            degraded_timeout_s=30.0,
            breaker_threshold=BREAKER_THRESHOLD,
            breaker_cooldown_s=BREAKER_COOLDOWN_S,
        ),
    )


async def _soak(cfg, schedule: ChaosSchedule, store: Path, state: Path):
    """Replay the schedule; returns (per-phase outcomes, final stats)."""
    clock = _FakeClock()
    service = _service_with_clock(cfg, store, clock)
    phases: list[tuple[ChaosPhase, list[tuple]]] = []
    counters: dict[str, float] = {}

    def absorb(svc) -> None:
        # counters survive service restarts: accumulate every incarnation
        for name, value in svc.registry.snapshot().items():
            counters[name] = counters.get(name, 0) + value

    async def one(req: ChaosRequest) -> tuple:
        try:
            reply = await service.handle(_request(service, cfg, req))
        except api.OverloadedError as exc:
            return ("shed", req, exc.retry_after_s)
        except Exception as exc:  # noqa: BLE001 - accounted, then asserted 0
            return ("error", req, f"{type(exc).__name__}: {exc}")
        return ("reply", req, reply)

    try:
        for phase in schedule:
            if phase.faults:
                # one counter dir per phase: fault call counts must not
                # bleed between phases that reuse a rule index
                faults.install(list(phase.faults), state / phase.name)
            else:
                faults.clear()
            clock.t += phase.clock_advance_s
            if phase.restart_service:
                absorb(service)
                await service.close()
                service = _service_with_clock(cfg, store, clock)
            if phase.burst:
                outcomes = list(await asyncio.gather(
                    *(one(req) for req in phase.requests)
                ))
            else:
                outcomes = [await one(req) for req in phase.requests]
            phases.append((phase, outcomes))
        stats = service.stats()
        absorb(service)
        stats["counters"] = counters
    finally:
        faults.clear()
        await service.close()
    return phases, stats


def _check_store(cfg, store: Path, fingerprints: dict) -> dict:
    """Reopen the store cold: quarantine must have caught the torn line,
    no degraded payload may be persisted, every record must match its
    cold reference."""
    from repro.serve import PlanStore

    reopened = PlanStore(store)
    degraded_in_store = 0
    mismatched = 0
    for fingerprint in list(reopened._data):
        plan = reopened.get_plan(fingerprint)
        if plan.get("status") == "degraded":
            degraded_in_store += 1
        ref = fingerprints.get(fingerprint)
        if ref is not None and plan != ref:
            mismatched += 1
    quarantine = store.with_name(store.name + ".quarantine")
    return {
        "records": len(reopened._data),
        "degraded_in_store": degraded_in_store,
        "mismatched": mismatched,
        "quarantined": quarantine.exists(),
    }


def run_soak(
    *,
    smoke: bool = False,
    seed: int | None = None,
    scale: int | None = None,
    workers: int | None = None,
) -> dict:
    """The chaos soak measurement; returns a JSON-ready result dict with
    a deterministic ``summary`` and a wall-clock ``timing`` section."""
    cfg = dict(
        n_warm=N_WARM,
        scale=SCALE,
        workers=WORKERS,
        pool_kill=POOL_KILL,
        iterations=ITERATIONS,
        max_retries=3,
        seed=SEED,
    )
    if smoke:
        cfg.update(SMOKE)
    for key, override in (("seed", seed), ("scale", scale), ("workers", workers)):
        if override is not None:
            cfg[key] = override
    if cfg["workers"] == 0:
        cfg["pool_kill"] = False  # an inline exit fault kills the driver

    warmstart.reset_process_context()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "plans.jsonl"
        schedule = ChaosSchedule.standard(
            cfg["seed"],
            n_warm=cfg["n_warm"],
            scale=cfg["scale"],
            pool_kill=cfg["pool_kill"],
            breaker_cooldown_s=BREAKER_COOLDOWN_S,
            store_path=str(store),
        )
        phases, stats = asyncio.run(
            _soak(cfg, schedule, store, Path(tmp) / "fault-state")
        )
        soak_s = time.perf_counter() - t0

        # ---- invariants --------------------------------------------------
        references: dict[tuple[int, str], dict] = {}

        def reference(req: ChaosRequest) -> dict:
            key = (req.spec, req.family)
            if key not in references:
                references[key] = _cold_reference(cfg, req.spec, req.family)
            return references[key]

        bit_identical = True
        degraded_certified = True
        errors = 0
        shed = 0
        served = 0
        degraded = 0
        fingerprints: dict[str, dict] = {}
        phase_summaries = []
        recovery_requests = None
        recovered = 0
        for phase, outcomes in phases:
            counts: dict[str, int] = {}
            for position, outcome in enumerate(outcomes, 1):
                kind, req, value = outcome
                if kind == "shed":
                    shed += 1
                    counts["shed"] = counts.get("shed", 0) + 1
                    continue
                if kind == "error":
                    errors += 1
                    counts["error"] = counts.get("error", 0) + 1
                    continue
                reply = value
                served += 1
                counts[reply.served_from] = counts.get(reply.served_from, 0) + 1
                if reply.served_from == "degraded":
                    degraded += 1
                    result = reply.result
                    if not (
                        result.status == "degraded"
                        and result.feasible
                        and result.certificate is not None
                        and result.certificate.ok
                    ):
                        degraded_certified = False
                else:
                    ref = reference(req)
                    if reply.result.to_json() != ref:
                        bit_identical = False
                    fingerprints[reply.fingerprint] = ref
                if phase.name == "recovery":
                    if reply.served_from == "solve":
                        recovered += 1
                        if recovery_requests is None:
                            recovery_requests = position
            phase_summaries.append({
                "name": phase.name,
                "n_requests": len(phase.requests),
                "outcomes": dict(sorted(counts.items())),
            })
        store_report = _check_store(cfg, store, fingerprints)

    total = schedule.total_requests
    accounted = (shed + served == total) and errors == 0
    recovery_bound = cfg["n_warm"] + 1
    recovery_bounded = (
        recovery_requests is not None and recovery_requests <= recovery_bound
    )
    counters = stats["counters"]
    store_clean = (
        store_report["degraded_in_store"] == 0
        and store_report["mismatched"] == 0
        and store_report["quarantined"]
    )
    summary = {
        "seed": cfg["seed"],
        "scale": cfg["scale"],
        "workers": cfg["workers"],
        "pool_kill": cfg["pool_kill"],
        "n_warm": cfg["n_warm"],
        "total_requests": total,
        "phases": phase_summaries,
        "shed": shed,
        "served": served,
        "degraded": degraded,
        "errors": errors,
        "recovery_requests": recovery_requests,
        "recovery_bound": recovery_bound,
        "recovered": recovered,
        "breakers": stats["breakers"],
        "counters": {
            name: int(counters[name])
            for name in _SUMMARY_COUNTERS
            if name in counters
        },
        "store": store_report,
        "invariants": {
            "bit_identical": bit_identical,
            "degraded_certified": degraded_certified,
            "accounted": accounted,
            "recovery_bounded": recovery_bounded,
            "store_clean": store_clean,
        },
    }
    if not all(summary["invariants"].values()):
        raise AssertionError(f"chaos invariants violated: {summary['invariants']}")
    return {
        "summary": summary,
        "timing": {
            "soak_s": soak_s,
            "requests_per_s": total / soak_s if soak_s > 0 else float("inf"),
        },
    }


def render(result: dict) -> str:
    s = result["summary"]
    inv = " ".join(
        f"{name}={'ok' if passed else 'FAIL'}"
        for name, passed in s["invariants"].items()
    )
    phases = " → ".join(
        f"{p['name']}[{' '.join(f'{k}:{v}' for k, v in p['outcomes'].items())}]"
        for p in s["phases"]
    )
    return (
        f"{s['total_requests']} requests (seed {s['seed']}, scale {s['scale']}, "
        f"workers {s['workers']}): {s['served']} served "
        f"({s['degraded']} degraded), {s['shed']} shed, {s['errors']} errors\n"
        f"{phases}\n"
        f"recovery after {s['recovery_requests']} request(s) "
        f"(bound {s['recovery_bound']}) | breakers {s['breakers']}\n"
        f"invariants: {inv} | soak {result['timing']['soak_s']:.2f}s"
    )


def test_chaos_smoke():
    """Two same-seed smoke soaks: every invariant holds and the
    deterministic summaries are identical byte for byte."""
    import json

    first = run_soak(smoke=True)
    second = run_soak(smoke=True)
    assert all(first["summary"]["invariants"].values())
    assert first["summary"]["shed"] >= 1
    assert first["summary"]["degraded"] >= 1
    assert first["summary"]["recovered"] >= 1
    assert json.dumps(first["summary"], sort_keys=True) == json.dumps(
        second["summary"], sort_keys=True
    )
    print()
    print(render(first))
