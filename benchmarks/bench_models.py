"""Substrate benchmarks: model building, profiling and linearization.

Not a paper table — measures the cost of the profiling substrate that
stands in for PyTorch measurements (§5.1), and records the chain sizes
it produces for each paper network.
"""

from __future__ import annotations

import pytest

from _util import write_figure

from repro.models import densenet121, inception, linearize, resnet50, resnet101
from repro.profiling import V100, profile_model

BUILDERS = {
    "resnet50": resnet50,
    "resnet101": resnet101,
    "inception": inception,
    "densenet121": densenet121,
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_profile_and_linearize(benchmark, name):
    def run():
        graph = BUILDERS[name](image_size=1000)
        profile_model(graph, V100, 8)
        return linearize(graph)

    chain = benchmark.pedantic(run, rounds=2, iterations=1)
    assert chain.L > 10
    assert chain.total_compute() > 0


def test_chain_size_table(benchmark):
    def run():
        rows = []
        for name, builder in sorted(BUILDERS.items()):
            graph = builder(image_size=1000)
            profile_model(graph, V100, 8)
            chain = linearize(graph)
            rows.append(
                f"{name:>12} {len(graph):6d} {chain.L:5d} "
                f"{chain.total_compute():9.4f} "
                f"{chain.weights(1, chain.L) / 2**30:8.2f} "
                f"{chain.stored_activations(1, chain.L) / 2**30:9.2f}"
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        [
            "Paper networks at 1000x1000, batch 8",
            f"{'network':>12} {'nodes':>6} {'L':>5} {'U (s)':>9} "
            f"{'W (GiB)':>8} {'acts (GiB)':>9}",
            *rows,
        ]
    )
    print()
    print(text)
    write_figure("model_zoo.txt", text)
