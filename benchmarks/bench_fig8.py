"""Fig. 8 — speedup vs number of GPUs (paper §5.2).

Speedup is ``U(1,L) / period`` against the sequential execution.  The
paper's claims: good scalability at M ∈ {12, 16} GB, degraded speedup
when memory is tight, and MadPipe scaling better than PipeDream.
"""

from __future__ import annotations

from _util import write_figure

from repro.experiments import fig8_data, render_fig8


def test_fig8_speedups(benchmark, paper_results):
    data = benchmark.pedantic(
        fig8_data, args=(paper_results,), rounds=1, iterations=1
    )
    assert data
    text = render_fig8(data)
    print()
    print(text)
    write_figure("fig8.txt", text)

    # shape: for every network, MadPipe speedup at the roomiest memory is
    # non-trivial (> 1.2 at the largest P) and no worse than at the
    # tightest memory
    networks = {k[0] for k in data}
    for net in networks:
        mems = sorted({k[1] for k in data if k[0] == net and k[2] == "madpipe"})
        if not mems:
            continue
        roomy = dict(data[(net, mems[-1], "madpipe")])
        tight = dict(data[(net, mems[0], "madpipe")])
        p_max = max(roomy)
        assert roomy[p_max] > 1.2, f"{net}: no scaling at M={mems[-1]}"
        if p_max in tight:
            assert roomy[p_max] >= tight[p_max] - 1e-9
