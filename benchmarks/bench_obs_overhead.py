"""Observability overhead benchmark: the disabled path must stay free.

Every solver layer now carries :mod:`repro.obs` instrumentation that is
supposed to cost one context-variable lookup per call site when no
trace/registry is installed.  This benchmark times the two hot paths the
instrumentation touches —

* :func:`repro.algorithms.madpipe_dp.algorithm1` (the phase-1 T̂ search,
  ``bench_dp_hotpath``'s subject), and
* :func:`repro.algorithms.onef1b.min_feasible_period` hammered in a loop
  (phase 2's inner kernel, called thousands of times per enumeration) —

in three modes: ``disabled`` (production default), ``metrics`` (registry
installed) and ``traced`` (trace + registry installed), and checks that
all three produce identical numeric results.  The smoke test bounds the
*disabled* overhead loosely; ``scripts/bench_report.py``-style JSON comes
out of :func:`bench_all` for trend tracking.
"""

from __future__ import annotations

import time

from repro import obs
from repro.algorithms.madpipe_dp import Discretization, algorithm1
from repro.algorithms.onef1b import min_feasible_period
from repro.core.partition import Partitioning
from repro.core.platform import Platform
from repro.experiments.scenarios import paper_chain

BENCH_PROCS = 4
BENCH_MEMORY_GB = 8.0
BENCH_BANDWIDTH_GBPS = 12.0


def _modes():
    """(name, context-factory) for the three instrumentation modes."""
    from contextlib import ExitStack, nullcontext

    def traced():
        stack = ExitStack()
        stack.enter_context(obs.use_trace(obs.Trace("bench")))
        stack.enter_context(obs.use_metrics(obs.MetricsRegistry()))
        return stack

    return (
        ("disabled", nullcontext),
        ("metrics", lambda: obs.use_metrics(obs.MetricsRegistry())),
        ("traced", traced),
    )


def bench_dp(network: str = "resnet50", *, repeats: int = 3,
             iterations: int = 8) -> dict:
    """Best-of-``repeats`` algorithm1 wall time per instrumentation mode."""
    chain = paper_chain(network)
    platform = Platform.of(BENCH_PROCS, BENCH_MEMORY_GB, BENCH_BANDWIDTH_GBPS)
    grid = Discretization.coarse()
    out: dict = {"bench": "dp", "network": network}
    periods = set()
    for mode, ctx in _modes():
        best = float("inf")
        for _ in range(repeats):
            with ctx():
                t0 = time.perf_counter()
                res = algorithm1(chain, platform, iterations=iterations, grid=grid)
                best = min(best, time.perf_counter() - t0)
        periods.add(res.period)
        out[f"{mode}_s"] = best
    assert len(periods) == 1, f"instrumentation changed numerics: {periods}"
    out["overhead_disabled"] = out["disabled_s"] / out["disabled_s"]
    out["overhead_traced"] = out["traced_s"] / out["disabled_s"]
    return out


def bench_onef1b(network: str = "resnet50", *, calls: int = 200,
                 repeats: int = 3) -> dict:
    """Wall time of ``calls`` min_feasible_period invocations per mode."""
    chain = paper_chain(network)
    platform = Platform.of(BENCH_PROCS, BENCH_MEMORY_GB, BENCH_BANDWIDTH_GBPS)
    cuts = [chain.L // 4, chain.L // 2, 3 * chain.L // 4]
    partitioning = Partitioning.from_cuts(chain.L, cuts)
    out: dict = {"bench": "onef1b", "network": network, "calls": calls}
    periods = set()
    for mode, ctx in _modes():
        best = float("inf")
        for _ in range(repeats):
            with ctx():
                t0 = time.perf_counter()
                for _ in range(calls):
                    res = min_feasible_period(chain, platform, partitioning)
                best = min(best, time.perf_counter() - t0)
        periods.add(res.period if res is not None else None)
        out[f"{mode}_s"] = best
    assert len(periods) == 1, f"instrumentation changed numerics: {periods}"
    out["overhead_traced"] = out["traced_s"] / out["disabled_s"]
    return out


def bench_all(**kw) -> list[dict]:
    return [bench_dp(**kw), bench_onef1b()]


def test_obs_overhead_smoke():
    """Identical numerics across modes; traced mode within a loose bound.

    The strict "<2% disabled overhead" acceptance check needs quiet
    best-of-N timing against the pre-instrumentation baseline and lives
    in the bench report, not CI — here we only guard against something
    catastrophic (an always-on span allocation, say) with a generous
    traced-mode multiplier that stays robust on noisy shared runners.
    """
    dp = bench_dp("toy8", repeats=2, iterations=4)
    assert dp["traced_s"] < dp["disabled_s"] * 5 + 0.05
    o = bench_onef1b("toy8", calls=50, repeats=2)
    assert o["traced_s"] < o["disabled_s"] * 5 + 0.05


if __name__ == "__main__":
    for rec in bench_all():
        print(rec)
