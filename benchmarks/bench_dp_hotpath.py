"""DP hot-path benchmark: vectorized MadPipe-DP vs the naive reference.

Times :func:`repro.algorithms.madpipe_dp.algorithm1` (the T̂ binary
search, the hot path of every experiment) on the paper chains at the
three :class:`Discretization` presets, for both the vectorized solver
and the kept-for-reference recursive one, and checks that their answers
agree.  The measurement core is importable — ``scripts/bench_report.py``
uses it to emit ``BENCH_dp.json`` so later changes have a perf
trajectory to regress against.

Run standalone via the report script, or under pytest (smoke mode: one
repeat, coarse + default grids) with the rest of the benchmark suite.
"""

from __future__ import annotations

import time

from repro.algorithms.madpipe_dp import Discretization, algorithm1, madpipe_dp
from repro.algorithms.madpipe_dp_reference import madpipe_dp_reference
from repro.core.platform import Platform
from repro.experiments.scenarios import paper_chain

GRIDS = {
    "coarse": Discretization.coarse,
    "default": Discretization.default,
    "paper": Discretization.paper,
}

# the benchmark platform: the paper's mid-size configuration
BENCH_PROCS = 4
BENCH_MEMORY_GB = 8.0
BENCH_BANDWIDTH_GBPS = 12.0


def bench_instance(
    network: str,
    grid_name: str,
    *,
    repeats: int = 3,
    iterations: int = 10,
    with_reference: bool = True,
) -> dict:
    """Time ``algorithm1`` on one paper chain at one grid preset.

    Returns a JSON-ready record with best-of-``repeats`` wall times for
    the fast solver (and, when ``with_reference``, the naive one plus
    their speedup ratio), the solved period, and DP diagnostics.
    """
    chain = paper_chain(network)
    platform = Platform.of(BENCH_PROCS, BENCH_MEMORY_GB, BENCH_BANDWIDTH_GBPS)
    grid = GRIDS[grid_name]()

    def measure(dp) -> tuple[float, object]:
        best, res = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = algorithm1(
                chain, platform, iterations=iterations, grid=grid, dp=dp
            )
            best = min(best, time.perf_counter() - t0)
        return best, res

    fast_t, fast = measure(madpipe_dp)
    record = {
        "network": network,
        "L": chain.L,
        "grid": grid_name,
        "n_procs": BENCH_PROCS,
        "memory_gb": BENCH_MEMORY_GB,
        "bandwidth_gbps": BENCH_BANDWIDTH_GBPS,
        "iterations": iterations,
        "repeats": repeats,
        "fast_s": fast_t,
        "period": fast.period,
        "states": fast.states,
        "pruned_cap": fast.pruned_cap,
        "pruned_mem": fast.pruned_mem,
    }
    if with_reference:
        ref_t, ref = measure(madpipe_dp_reference)
        assert ref.period == fast.period, (
            f"solver mismatch on {network}/{grid_name}: "
            f"fast={fast.period} reference={ref.period}"
        )
        record["reference_s"] = ref_t
        record["speedup"] = ref_t / fast_t if fast_t > 0 else float("inf")
    return record


def run_bench(
    *,
    networks: tuple[str, ...] = ("resnet50", "resnet101"),
    grids: tuple[str, ...] = ("coarse", "default", "paper"),
    repeats: int = 3,
    iterations: int = 10,
    reference_grids: tuple[str, ...] = ("coarse", "default"),
) -> list[dict]:
    """The full hot-path sweep.  The naive reference is only timed on the
    grids in ``reference_grids`` (it is ~10× slower; the paper grid ratio
    mirrors the default-grid one)."""
    return [
        bench_instance(
            network,
            grid_name,
            repeats=repeats,
            iterations=iterations,
            with_reference=grid_name in reference_grids,
        )
        for network in networks
        for grid_name in grids
    ]


def render(records: list[dict]) -> str:
    lines = [
        f"{'network':>12} {'grid':>8} {'fast (s)':>9} {'naive (s)':>10} "
        f"{'speedup':>8} {'states':>9} {'period':>8}"
    ]
    for r in records:
        ref = f"{r['reference_s']:10.3f}" if "reference_s" in r else f"{'-':>10}"
        spd = f"{r['speedup']:7.1f}x" if "speedup" in r else f"{'-':>8}"
        lines.append(
            f"{r['network']:>12} {r['grid']:>8} {r['fast_s']:9.3f} {ref} "
            f"{spd} {r['states']:9d} {r['period']:8.4f}"
        )
    return "\n".join(lines)


def test_dp_hotpath_smoke():
    """Smoke run (1 repeat, coarse grid, short search) so the benchmark
    harness itself cannot rot; asserts the solvers agree and the fast
    path is not slower than the naive one."""
    record = bench_instance("resnet50", "coarse", repeats=1, iterations=4)
    assert record["speedup"] > 1.0
    assert record["states"] > 0
    print()
    print(render([record]))
