"""Fig. 7 — geometric mean of period ratios over P and β (paper §5.2).

For each network and memory limit, the geomean over platforms of
``period(PipeDream) / period(MadPipe)``; values above 1 mean MadPipe is
faster.  The paper reports the PipeDream overhead consistently above 20%
below 10 GB; we assert the weaker *shape* claim that the low-memory
geomean exceeds the high-memory one and stays ≥ 1 in aggregate.
"""

from __future__ import annotations

import math

from _util import write_figure

from repro.experiments import fig7_data, render_fig7


def test_fig7_all_networks(benchmark, paper_results):
    data = benchmark.pedantic(
        fig7_data, args=(paper_results,), rounds=1, iterations=1
    )
    assert data
    text = render_fig7(data)
    print()
    print(text)
    write_figure("fig7.txt", text)

    # aggregate shape: overall geomean ratio >= 1 (MadPipe no slower), and
    # the advantage is larger at the tight-memory end than at 16 GB
    all_logs = []
    low, high = [], []
    for rows in data.values():
        for m, ratio, _n in rows:
            all_logs.append(math.log(ratio))
            (low if m <= 8 else high).append(math.log(ratio))
    overall = math.exp(sum(all_logs) / len(all_logs))
    assert overall >= 0.99, f"MadPipe geomean ratio {overall:.3f} below parity"
    if low and high:
        assert math.exp(sum(low) / len(low)) >= math.exp(
            sum(high) / len(high)
        ) * 0.95, "memory-constrained advantage should not vanish"
