"""Measured-profile ingestion throughput and determinism.

The ingestion subsystem (:mod:`repro.profiles`) is on the critical path
between a profiling run and a certified plan: every raw trace line is
schema-validated, every corrupt line quarantined, and every surviving
sample folded into robust per-layer statistics.  This benchmark answers
two questions about that path:

* **throughput** — records/second through ``ingest_traces`` +
  ``calibrate`` on a clean multi-run trace set and on a deliberately
  damaged one (corrupt lines, NaN records, outliers), so the cost of the
  validation and quarantine machinery is visible rather than assumed;
* **determinism** — before any number is reported, the calibration of
  the damaged trace set is run twice and asserted byte-identical
  (``json.dumps(to_dict(), sort_keys=True)``).  A benchmark of a
  non-deterministic ingest would be measuring noise.

The measurement core is importable — ``scripts/bench_report.py`` uses it
to emit ``BENCH_ingest.json``.  Run under pytest for the smoke mode.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.models import generate_traces, random_chain
from repro.profiles import calibrate, ingest_traces
from repro.profiling.cost_model import NoiseModel

LAYERS = 64
RUNS = 40
REPEATS = 5
SEED = 0

SMOKE = dict(layers=8, runs=6, repeats=1)

#: damage applied to the "dirty" trace set, scaled by record count
CORRUPT_FRACTION = 0.02
NAN_FRACTION = 0.01
OUTLIER_FRACTION = 0.02


def _measure(trace_dir: Path, chain, repeats: int) -> tuple[float, dict]:
    """Best-of-``repeats`` wall time for ingest+calibrate; returns the
    time and the final calibration dict (for identity checks)."""
    best = float("inf")
    payload = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        cal = calibrate(chain, ingest_traces(trace_dir))
        best = min(best, time.perf_counter() - t0)
        payload = cal.to_dict()
    return best, payload


def run_bench(
    *,
    smoke: bool = False,
    layers: int | None = None,
    runs: int | None = None,
    repeats: int | None = None,
    seed: int | None = None,
) -> dict:
    """The ingestion measurement; returns a JSON-ready result dict."""
    cfg = dict(layers=LAYERS, runs=RUNS, repeats=REPEATS, seed=SEED)
    if smoke:
        cfg.update(SMOKE)
    for key, override in (
        ("layers", layers),
        ("runs", runs),
        ("repeats", repeats),
        ("seed", seed),
    ):
        if override is not None:
            cfg[key] = override

    chain = random_chain(cfg["layers"], seed=cfg["seed"], name="bench")
    n_records = cfg["layers"] * cfg["runs"]
    noise = NoiseModel(sigma_compute=0.05, sigma_activation=0.03)
    damage = dict(
        corrupt_lines=max(1, int(n_records * CORRUPT_FRACTION)),
        nan_records=max(1, int(n_records * NAN_FRACTION)),
        outlier_records=max(1, int(n_records * OUTLIER_FRACTION)),
    )

    with tempfile.TemporaryDirectory() as tmp:
        clean_dir = Path(tmp) / "clean"
        dirty_dir = Path(tmp) / "dirty"
        generate_traces(
            chain, clean_dir, runs=cfg["runs"], seed=cfg["seed"], noise=noise
        )
        generate_traces(
            chain, dirty_dir, runs=cfg["runs"], seed=cfg["seed"], noise=noise,
            csv_runs=1, **damage,
        )

        clean_s, _ = _measure(clean_dir, chain, cfg["repeats"])

        # determinism gate: two full passes over the damaged set must
        # produce byte-identical calibrations before timing is trusted
        dirty_s, first = _measure(dirty_dir, chain, 1)
        again_s, second = _measure(dirty_dir, chain, max(1, cfg["repeats"] - 1))
        dirty_s = min(dirty_s, again_s)
        identical = json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        if not identical:
            raise AssertionError("repeated ingest produced different calibrations")

        ts = ingest_traces(dirty_dir)
        n_quarantined = ts.n_quarantined

    return {
        "config": dict(cfg),
        "n_records": n_records,
        "damage": damage,
        "n_quarantined": n_quarantined,
        "clean_s": clean_s,
        "dirty_s": dirty_s,
        "clean_records_per_s": n_records / clean_s if clean_s > 0 else float("inf"),
        "dirty_records_per_s": n_records / dirty_s if dirty_s > 0 else float("inf"),
        "quarantine_overhead": dirty_s / clean_s if clean_s > 0 else float("inf"),
        "identical": identical,
    }


def render(result: dict) -> str:
    cfg = result["config"]
    return (
        f"{result['n_records']} records ({cfg['layers']} layers x "
        f"{cfg['runs']} runs), {result['n_quarantined']} quarantined\n"
        f"clean: {result['clean_s'] * 1e3:.1f}ms "
        f"({result['clean_records_per_s']:.0f} rec/s) | "
        f"dirty: {result['dirty_s'] * 1e3:.1f}ms "
        f"({result['dirty_records_per_s']:.0f} rec/s) | "
        f"overhead {result['quarantine_overhead']:.2f}x | "
        f"byte-identical: {result['identical']}"
    )


def test_ingest_bench_smoke():
    """Smoke run on a small chain so the harness cannot rot: ingestion
    must quarantine the damage and calibrate byte-identically."""
    result = run_bench(smoke=True)
    assert result["identical"]
    assert result["n_quarantined"] > 0
    print()
    print(render(result))
