"""Fig. 6 — period vs memory for ResNet-50 (paper §5.2).

Regenerates the four series of each (P, β) panel: PipeDream's DP estimate
and valid 1F1B* schedule, MadPipe's phase-1 estimate and valid schedule.
The benchmarked unit is one full MadPipe run on the P=4, M=8 GB panel
point (the representative single-instance cost of the figure).
"""

from __future__ import annotations

from _util import write_figure

from repro.algorithms import Discretization, madpipe
from repro.core import Platform
from repro.experiments import fig6_data, paper_chain, render_fig6


def test_fig6_resnet50(benchmark, paper_results):
    chain = paper_chain("resnet50")
    platform = Platform.of(4, 8, 12)

    def run_one_instance():
        return madpipe(
            chain,
            platform,
            grid=Discretization.coarse(),
            iterations=8,
            ilp_time_limit=30,
        )

    result = benchmark.pedantic(run_one_instance, rounds=1, iterations=1)
    assert result.feasible

    panels = fig6_data(paper_results, "resnet50")
    assert panels, "no resnet50 results available"
    text = render_fig6(panels)
    print()
    print(text)
    write_figure("fig6.txt", text)

    # shape assertions from the paper: with roomy memory both solve, and
    # PipeDream's optimistic DP line sits at or below its valid schedule
    for panel in panels:
        for i, m in enumerate(panel.memories_gb):
            if panel.pipedream_valid[i] != float("inf"):
                assert panel.pipedream_valid[i] >= panel.pipedream_dp[i] - 1e-9
        # MadPipe is feasible wherever PipeDream is
        for i in range(len(panel.memories_gb)):
            if panel.pipedream_valid[i] != float("inf"):
                assert panel.madpipe_valid[i] != float("inf")
