"""Figs. 2-3 — example valid patterns and the 1F1B* group structure.

The paper's Figs. 2 and 3 are illustrative periodic patterns.  This
bench regenerates the same *kind* of artifact on a concrete chain: the
optimal 1F1B* pattern of a 4-stage contiguous partitioning, rendered as
a Gantt chart with index shifts, plus the group assignment — and checks
the paper's structural claims (forwards share one shift, backwards carry
``shift + group − 1``, stages in group g hold g activation copies).
"""

from __future__ import annotations

from _util import write_figure

from repro.algorithms.onef1b import (
    assign_groups,
    extended_items,
    min_feasible_period,
)
from repro.core import Allocation, Partitioning, Platform
from repro.models import random_chain
from repro.viz import render_gantt


def test_fig23_pattern_example(benchmark):
    chain = random_chain(16, seed=7, decay=0.15, name="cnnlike16")
    platform = Platform.of(4, 1.0, 12)
    part = Partitioning.from_cuts(16, [4, 8, 12])

    res = benchmark.pedantic(
        min_feasible_period, args=(chain, platform, part), rounds=3, iterations=1
    )
    assert res is not None
    pattern = res.pattern
    pattern.validate(chain, platform)

    alloc = Allocation.contiguous(part)
    items = extended_items(chain, platform, alloc)
    groups = assign_groups(items, res.period)

    lines = [
        "Figs. 2-3 analogue: optimal 1F1B* pattern (4 stages + 3 comms)",
        f"groups (chain order): "
        + " ".join(f"{it.kind}{it.index}:g{g}" for it, g in zip(items, groups)),
        "",
        render_gantt(pattern, width=100),
    ]
    text = "\n".join(lines)
    print()
    print(text)
    write_figure("fig23.txt", text)

    # structural claims of §4.1
    for it, g in zip(items, groups):
        if it.kind != "stage":
            continue
        f = pattern.ops[("F", it.index)]
        b = pattern.ops[("B", it.index)]
        stored = max(
            pattern.active_batches(it.index, f.start),
            pattern.active_batches(it.index, f.start + 1e-9),
        )
        assert stored == g
        assert b.shift - f.shift in (g - 1, g)  # wrap may add one period
