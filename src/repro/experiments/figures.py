"""Figure/table generators for the paper's evaluation (§5.2).

Each ``figN_data`` function reduces a list of :class:`RunResult` into the
series the corresponding figure plots; each ``render_figN`` turns that
into an aligned text table (the repository's stand-in for the plots).

* **Fig. 6** — period vs memory for one network: four series per
  (P, β) panel — PipeDream DP estimate (dashed), PipeDream + 1F1B\\*
  (solid), MadPipe DP estimate (dashed), MadPipe (solid).
* **Fig. 7** — geometric mean, over P and β, of the ratio
  ``period(PipeDream) / period(MadPipe)`` per (network, M).  > 1 means
  MadPipe is faster.
* **Fig. 8** — speedup ``U(1,L) / period`` vs P per network at several
  memory sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .harness import RunResult

__all__ = [
    "Fig6Panel",
    "fig6_data",
    "render_fig6",
    "fig7_data",
    "render_fig7",
    "fig8_data",
    "render_fig8",
]

INF = float("inf")


def _index(results: list[RunResult]) -> dict[tuple, RunResult]:
    # "error" records carry no measurement (the instance crashed); every
    # other status — including "degraded" and "solver_timeout" — carries
    # either a certified period or a certified-infeasible verdict and is
    # plotted as-is.
    return {r.key: r for r in results if r.status != "error"}


def _fmt(x: float, width: int = 8) -> str:
    if x == INF:
        return "inf".rjust(width)
    return f"{x:.4f}".rjust(width)


# ---------------------------------------------------------------- Fig. 6


@dataclass
class Fig6Panel:
    """One (P, β) panel of Fig. 6: series over the memory axis."""

    network: str
    n_procs: int
    bandwidth_gbps: float
    memories_gb: list[float] = field(default_factory=list)
    pipedream_dp: list[float] = field(default_factory=list)
    pipedream_valid: list[float] = field(default_factory=list)
    madpipe_dp: list[float] = field(default_factory=list)
    madpipe_valid: list[float] = field(default_factory=list)


def fig6_data(results: list[RunResult], network: str = "resnet50") -> list[Fig6Panel]:
    """Assemble the Fig. 6 panels for one network."""
    idx = _index(results)
    panels: dict[tuple[int, float], Fig6Panel] = {}
    mems = sorted(
        {r.memory_gb for r in results if r.network == network}
    )
    combos = sorted(
        {
            (r.n_procs, r.bandwidth_gbps)
            for r in results
            if r.network == network
        }
    )
    for p, b in combos:
        panel = Fig6Panel(network, p, b)
        for m in mems:
            pd = idx.get((network, p, m, b, "pipedream"))
            mp = idx.get((network, p, m, b, "madpipe"))
            if pd is None and mp is None:
                continue
            panel.memories_gb.append(m)
            panel.pipedream_dp.append(pd.dp_period if pd else INF)
            panel.pipedream_valid.append(pd.valid_period if pd else INF)
            panel.madpipe_dp.append(mp.dp_period if mp else INF)
            panel.madpipe_valid.append(mp.valid_period if mp else INF)
        panels[(p, b)] = panel
    return [panels[k] for k in sorted(panels)]


def render_fig6(panels: list[Fig6Panel]) -> str:
    lines = []
    for panel in panels:
        lines.append(
            f"Fig. 6 [{panel.network}] P={panel.n_procs} "
            f"beta={panel.bandwidth_gbps:g} GB/s  (period in s, lower is better)"
        )
        lines.append(
            f"{'M (GB)':>8} {'PD-DP':>8} {'PD-1F1B*':>9} {'MAD-DP':>8} {'MadPipe':>8}"
        )
        for i, m in enumerate(panel.memories_gb):
            lines.append(
                f"{m:8g} {_fmt(panel.pipedream_dp[i])} "
                f"{_fmt(panel.pipedream_valid[i], 9)} "
                f"{_fmt(panel.madpipe_dp[i])} {_fmt(panel.madpipe_valid[i])}"
            )
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------- Fig. 7


def fig7_data(
    results: list[RunResult],
) -> dict[str, list[tuple[float, float, int]]]:
    """Per network: list of ``(M, geomean ratio, n_cases)`` over (P, β).

    The ratio is PipeDream's valid period over MadPipe's.  Instances
    where MadPipe is infeasible are skipped; instances where *only*
    PipeDream is infeasible contribute the ratio of the sequential
    period over MadPipe (a finite, conservative stand-in for ∞ — the
    practitioner's fallback is a single-GPU-equivalent schedule).
    """
    idx = _index(results)
    networks = sorted({r.network for r in results})
    mems = sorted({r.memory_gb for r in results})
    combos = sorted({(r.n_procs, r.bandwidth_gbps) for r in results})
    out: dict[str, list[tuple[float, float, int]]] = {}
    for network in networks:
        rows = []
        for m in mems:
            logs = []
            for p, b in combos:
                pd = idx.get((network, p, m, b, "pipedream"))
                mp = idx.get((network, p, m, b, "madpipe"))
                if pd is None or mp is None or not mp.feasible:
                    continue
                pd_period = (
                    pd.valid_period if pd.feasible else pd.sequential
                )
                logs.append(math.log(pd_period / mp.valid_period))
            if logs:
                rows.append((m, math.exp(sum(logs) / len(logs)), len(logs)))
        out[network] = rows
    return out


def render_fig7(data: dict[str, list[tuple[float, float, int]]]) -> str:
    lines = [
        "Fig. 7 — geomean of period(PipeDream)/period(MadPipe) over P and beta",
        "(> 1 means MadPipe is faster)",
        "",
    ]
    mems = sorted({m for rows in data.values() for (m, _, _) in rows})
    header = f"{'M (GB)':>8}" + "".join(f"{n:>14}" for n in data)
    lines.append(header)
    by_net = {n: {m: v for (m, v, _) in rows} for n, rows in data.items()}
    for m in mems:
        row = f"{m:8g}"
        for n in data:
            v = by_net[n].get(m)
            row += f"{v:14.3f}" if v is not None else f"{'-':>14}"
        lines.append(row)
    return "\n".join(lines)


# ---------------------------------------------------------------- Fig. 8


def fig8_data(
    results: list[RunResult],
) -> dict[tuple[str, float, str], list[tuple[int, float]]]:
    """Speedup ``U(1,L)/period`` vs P, keyed by (network, M, algorithm).

    Bandwidth is averaged out by taking, for each P, the best (largest)
    speedup across the available β values (the paper plots per-β lines;
    at this granularity the curves are nearly identical)."""
    best: dict[tuple[str, float, str, int], float] = {}
    for r in results:
        if not r.feasible or r.status == "error":
            continue
        k = (r.network, r.memory_gb, r.algorithm, r.n_procs)
        best[k] = max(best.get(k, 0.0), r.speedup)
    out: dict[tuple[str, float, str], list[tuple[int, float]]] = {}
    for (network, m, algo, p), s in sorted(best.items()):
        out.setdefault((network, m, algo), []).append((p, s))
    return out


def render_fig8(
    data: dict[tuple[str, float, str], list[tuple[int, float]]]
) -> str:
    lines = ["Fig. 8 — speedup U(1,L)/period vs P (higher is better)", ""]
    networks = sorted({k[0] for k in data})
    for network in networks:
        keys = sorted(k for k in data if k[0] == network)
        procs = sorted({p for k in keys for (p, _) in data[k]})
        lines.append(f"[{network}]")
        lines.append(
            f"{'M (GB)':>8} {'algo':>10}" + "".join(f"{f'P={p}':>8}" for p in procs)
        )
        for _, m, algo in keys:
            series = dict(data[(network, m, algo)])
            row = f"{m:8g} {algo:>10}"
            for p in procs:
                row += f"{series[p]:8.2f}" if p in series else f"{'-':>8}"
            lines.append(row)
        lines.append("")
    return "\n".join(lines)
