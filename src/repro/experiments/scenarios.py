"""Paper evaluation scenarios (§5.1).

Networks: ResNet-50, ResNet-101, Inception, DenseNet-121 — profiled at
1000×1000 images, batch size 8, on a V100-class device.  Platforms:
P ∈ {2..8} GPUs, M ∈ [3, 16] GB, β ∈ {12, 24} GB/s.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.chain import Chain
from ..core.platform import Platform
from ..models import densenet121, inception, linearize, resnet50, resnet101
from ..profiling import V100, profile_model

__all__ = [
    "network_builders",
    "PAPER_NETWORKS",
    "PAPER_MEMORIES_GB",
    "PAPER_PROCS",
    "PAPER_BANDWIDTHS_GBPS",
    "FIG8_PROCS",
    "paper_chain",
    "paper_platforms",
]

PAPER_NETWORKS = ("resnet50", "resnet101", "inception", "densenet121")
PAPER_MEMORIES_GB = (3, 4, 6, 8, 10, 12, 14, 16)
PAPER_PROCS = (2, 4, 8)
FIG8_PROCS = (2, 3, 4, 5, 6, 7, 8)
PAPER_BANDWIDTHS_GBPS = (12, 24)

_BUILDERS = {
    "resnet50": resnet50,
    "resnet101": resnet101,
    "inception": inception,
    "densenet121": densenet121,
}


def network_builders() -> dict:
    """Name → builder map for the paper networks (a copy; safe to extend)."""
    return dict(_BUILDERS)


@lru_cache(maxsize=None)
def paper_chain(
    network: str, *, image_size: int = 1000, batch_size: int = 8
) -> Chain:
    """Profiled, linearized chain of one of the paper's networks.

    Names of the form ``toy<L>`` (e.g. ``toy8``) build a uniform
    synthetic chain of ``L`` layers instead — milliseconds to schedule,
    deterministic, and buildable inside any sweep worker process.  They
    exist for resilience tests and CI smoke sweeps, not for paper
    figures.

    Names of the form ``gpt<L>`` (e.g. ``gpt24``, ``gpt64``) build the
    uniform GPT-style decoder chain of
    :func:`repro.models.transformer.gpt_chain`: ``L`` identical profiled
    transformer blocks — the deep homogeneous regime for comparing the
    zero-bubble schedule family against 1F1B\\* at pipeline depths up to
    32–64.
    """
    if network.startswith("gpt"):
        try:
            L = int(network[3:] or "24")
        except ValueError:
            raise ValueError(
                f"bad gpt network name {network!r}; use e.g. 'gpt24'"
            ) from None
        if not 1 <= L <= 256:
            raise ValueError(f"gpt network depth must be in 1..256, got {L}")
        from ..models import gpt_chain

        return gpt_chain(L, name=network)
    if network.startswith("toy"):
        try:
            L = int(network[3:] or "8")
        except ValueError:
            raise ValueError(f"bad toy network name {network!r}; use e.g. 'toy8'") from None
        if not 1 <= L <= 256:
            raise ValueError(f"toy network size must be in 1..256, got {L}")
        from ..models import uniform_chain

        MB = float(2**20)
        return uniform_chain(
            L, u_f=0.001, u_b=0.002, weights=4 * MB, activation=8 * MB, name=network
        )
    try:
        builder = _BUILDERS[network]
    except KeyError:
        raise ValueError(
            f"unknown network {network!r}; choose from {PAPER_NETWORKS}"
        ) from None
    graph = builder(image_size=image_size)
    profile_model(graph, V100, batch_size)
    return linearize(graph)


def paper_platforms(
    *,
    procs: tuple[int, ...] = PAPER_PROCS,
    memories_gb: tuple[float, ...] = PAPER_MEMORIES_GB,
    bandwidths_gbps: tuple[float, ...] = PAPER_BANDWIDTHS_GBPS,
) -> list[Platform]:
    """The cartesian platform grid of the paper's simulations."""
    return [
        Platform.of(p, m, b)
        for p in procs
        for m in memories_gb
        for b in bandwidths_gbps
    ]
