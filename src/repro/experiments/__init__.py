"""Experiment harness reproducing the paper's evaluation (§5)."""

from .figures import (
    Fig6Panel,
    fig6_data,
    fig7_data,
    fig8_data,
    render_fig6,
    render_fig7,
    render_fig8,
)
from .harness import (
    RESULT_STATUSES,
    InstanceTimeoutError,
    ResultCache,
    RunResult,
    SweepInstanceError,
    load_results,
    run_grid,
    run_instance,
    save_results,
    verify_cache,
)
from .scenarios import (
    FIG8_PROCS,
    PAPER_BANDWIDTHS_GBPS,
    PAPER_MEMORIES_GB,
    PAPER_NETWORKS,
    PAPER_PROCS,
    paper_chain,
    paper_platforms,
)

__all__ = [
    "Fig6Panel",
    "fig6_data",
    "fig7_data",
    "fig8_data",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "RESULT_STATUSES",
    "InstanceTimeoutError",
    "ResultCache",
    "RunResult",
    "SweepInstanceError",
    "load_results",
    "run_grid",
    "run_instance",
    "save_results",
    "verify_cache",
    "FIG8_PROCS",
    "PAPER_BANDWIDTHS_GBPS",
    "PAPER_MEMORIES_GB",
    "PAPER_NETWORKS",
    "PAPER_PROCS",
    "paper_chain",
    "paper_platforms",
]
