"""Experiment harness: run algorithms over scenario grids, cache results.

Every (network, P, M, β, algorithm) instance yields a :class:`RunResult`
with both the optimizer's own estimate (``dp_period``, the dashed lines
of Fig. 6) and the certified valid-schedule period (``valid_period``, the
solid lines).  Results serialize to JSON so that expensive sweeps run
once and the figure generators replay them.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from ..algorithms.madpipe import madpipe
from ..algorithms.madpipe_dp import Discretization
from ..algorithms.pipedream import pipedream
from ..core.chain import Chain
from ..core.platform import GB, GBPS, Platform
from .scenarios import paper_chain

__all__ = [
    "RunResult",
    "run_instance",
    "run_grid",
    "save_results",
    "load_results",
    "ResultCache",
]

INF = float("inf")


@dataclass
class RunResult:
    """One algorithm run on one scenario."""

    network: str
    n_procs: int
    memory_gb: float
    bandwidth_gbps: float
    algorithm: str  # "pipedream" | "madpipe"
    dp_period: float  # the optimizer's internal estimate (dashed)
    valid_period: float  # certified schedule period (solid); inf if none
    n_stages: int
    runtime_s: float
    sequential: float  # U(1, L), for speedups

    @property
    def feasible(self) -> bool:
        return self.valid_period != INF

    @property
    def speedup(self) -> float:
        return self.sequential / self.valid_period if self.feasible else 0.0

    @property
    def key(self) -> tuple:
        return (
            self.network,
            self.n_procs,
            self.memory_gb,
            self.bandwidth_gbps,
            self.algorithm,
        )


def run_instance(
    chain: Chain,
    platform: Platform,
    algorithm: str,
    *,
    network: str = "",
    grid: Discretization | None = None,
    iterations: int = 10,
    ilp_time_limit: float = 60.0,
) -> RunResult:
    """Run one algorithm on one (chain, platform) instance."""
    t0 = time.perf_counter()
    if algorithm == "pipedream":
        res = pipedream(chain, platform)
        dp, valid = res.dp_period, res.period
        n_stages = res.partitioning.n_stages if res.feasible else 0
    elif algorithm == "madpipe":
        res = madpipe(
            chain,
            platform,
            grid=grid,
            iterations=iterations,
            ilp_time_limit=ilp_time_limit,
        )
        dp, valid = res.dp_period, res.period
        n_stages = res.allocation.n_stages if res.allocation is not None else 0
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return RunResult(
        network=network or chain.name,
        n_procs=platform.n_procs,
        memory_gb=platform.memory / GB,
        bandwidth_gbps=platform.bandwidth / GBPS,
        algorithm=algorithm,
        dp_period=dp,
        valid_period=valid,
        n_stages=n_stages,
        runtime_s=time.perf_counter() - t0,
        sequential=chain.total_compute(),
    )


def run_grid(
    networks: tuple[str, ...],
    procs: tuple[int, ...],
    memories_gb: tuple[float, ...],
    bandwidths_gbps: tuple[float, ...],
    *,
    algorithms: tuple[str, ...] = ("pipedream", "madpipe"),
    grid: Discretization | None = None,
    iterations: int = 10,
    ilp_time_limit: float = 60.0,
    cache: "ResultCache | None" = None,
    verbose: bool = False,
) -> list[RunResult]:
    """Run a full scenario grid, replaying cached instances if available."""
    out: list[RunResult] = []
    for network in networks:
        chain = paper_chain(network)
        for p in procs:
            for b in bandwidths_gbps:
                for m in memories_gb:
                    platform = Platform.of(p, m, b)
                    for algo in algorithms:
                        key = (network, p, float(m), float(b), algo)
                        hit = cache.get(key) if cache is not None else None
                        if hit is not None:
                            out.append(hit)
                            continue
                        r = run_instance(
                            chain,
                            platform,
                            algo,
                            network=network,
                            grid=grid,
                            iterations=iterations,
                            ilp_time_limit=ilp_time_limit,
                        )
                        if cache is not None:
                            cache.put(r)
                        if verbose:
                            print(
                                f"{network} P={p} M={m} beta={b} {algo}: "
                                f"dp={r.dp_period:.4f} valid={r.valid_period:.4f} "
                                f"({r.runtime_s:.1f}s)"
                            )
                        out.append(r)
    return out


def save_results(results: list[RunResult], path: str | Path) -> None:
    """Persist results as JSON (``inf`` encoded as ``null``)."""
    payload = []
    for r in results:
        d = asdict(r)
        for k in ("dp_period", "valid_period"):
            if d[k] == INF:
                d[k] = None
        payload.append(d)
    Path(path).write_text(json.dumps(payload, indent=1))


def load_results(path: str | Path) -> list[RunResult]:
    """Load results written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    out = []
    for d in payload:
        for k in ("dp_period", "valid_period"):
            if d[k] is None:
                d[k] = INF
        out.append(RunResult(**d))
    return out


class ResultCache:
    """A tiny JSON-backed instance cache keyed by scenario tuple."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._data: dict[tuple, RunResult] = {}
        if self.path.exists():
            for r in load_results(self.path):
                self._data[r.key] = r

    def get(self, key: tuple) -> RunResult | None:
        return self._data.get(key)

    def put(self, result: RunResult) -> None:
        self._data[result.key] = result
        save_results(list(self._data.values()), self.path)

    def __len__(self) -> int:
        return len(self._data)
