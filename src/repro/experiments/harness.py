"""Experiment harness: run algorithms over scenario grids, cache results.

Every (network, P, M, β, algorithm) instance yields a :class:`RunResult`
with both the optimizer's own estimate (``dp_period``, the dashed lines
of Fig. 6) and the certified valid-schedule period (``valid_period``, the
solid lines).  Results serialize to JSON so that expensive sweeps run
once and the figure generators replay them.

Sweeps scale out two ways:

* :func:`run_grid` fans uncached instances out over a
  ``ProcessPoolExecutor`` when ``n_workers > 1`` (instances are
  independent; the returned list keeps the deterministic grid order
  regardless of completion order, and ``n_workers=1`` falls back to the
  plain serial loop);
* :class:`ResultCache` persists results to an *append-only* JSON-Lines
  file — one ``json.dumps`` line per instance, flushed in batches — so a
  sweep of N instances costs O(N) I/O instead of the O(N²) of rewriting
  a monolithic JSON document on every insert.  Legacy caches written by
  :func:`save_results` (a JSON array) are read transparently and
  migrated to JSONL on the first write.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path

from ..algorithms.madpipe import madpipe
from ..algorithms.madpipe_dp import Discretization
from ..algorithms.pipedream import pipedream
from ..core.chain import Chain
from ..core.platform import GB, GBPS, Platform
from .scenarios import paper_chain

__all__ = [
    "RunResult",
    "run_instance",
    "run_grid",
    "save_results",
    "load_results",
    "ResultCache",
]

INF = float("inf")


@dataclass
class RunResult:
    """One algorithm run on one scenario."""

    network: str
    n_procs: int
    memory_gb: float
    bandwidth_gbps: float
    algorithm: str  # "pipedream" | "madpipe"
    dp_period: float  # the optimizer's internal estimate (dashed)
    valid_period: float  # certified schedule period (solid); inf if none
    n_stages: int
    runtime_s: float
    sequential: float  # U(1, L), for speedups

    @property
    def feasible(self) -> bool:
        return self.valid_period != INF

    @property
    def speedup(self) -> float:
        return self.sequential / self.valid_period if self.feasible else 0.0

    @property
    def key(self) -> tuple:
        return (
            self.network,
            self.n_procs,
            self.memory_gb,
            self.bandwidth_gbps,
            self.algorithm,
        )


def run_instance(
    chain: Chain,
    platform: Platform,
    algorithm: str,
    *,
    network: str = "",
    grid: Discretization | None = None,
    iterations: int = 10,
    ilp_time_limit: float = 60.0,
) -> RunResult:
    """Run one algorithm on one (chain, platform) instance."""
    t0 = time.perf_counter()
    if algorithm == "pipedream":
        res = pipedream(chain, platform)
        dp, valid = res.dp_period, res.period
        n_stages = res.partitioning.n_stages if res.feasible else 0
    elif algorithm == "madpipe":
        res = madpipe(
            chain,
            platform,
            grid=grid,
            iterations=iterations,
            ilp_time_limit=ilp_time_limit,
        )
        dp, valid = res.dp_period, res.period
        n_stages = res.allocation.n_stages if res.allocation is not None else 0
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return RunResult(
        network=network or chain.name,
        n_procs=platform.n_procs,
        memory_gb=platform.memory / GB,
        bandwidth_gbps=platform.bandwidth / GBPS,
        algorithm=algorithm,
        dp_period=dp,
        valid_period=valid,
        n_stages=n_stages,
        runtime_s=time.perf_counter() - t0,
        sequential=chain.total_compute(),
    )


def _run_spec(
    spec: tuple,
    grid: Discretization | None,
    iterations: int,
    ilp_time_limit: float,
) -> RunResult:
    """Worker entry point: rebuild the (cached-per-process) chain from the
    network name and run one instance.  Must stay module-level picklable."""
    network, p, m, b, algo = spec
    return run_instance(
        paper_chain(network),
        Platform.of(p, m, b),
        algo,
        network=network,
        grid=grid,
        iterations=iterations,
        ilp_time_limit=ilp_time_limit,
    )


def run_grid(
    networks: tuple[str, ...],
    procs: tuple[int, ...],
    memories_gb: tuple[float, ...],
    bandwidths_gbps: tuple[float, ...],
    *,
    algorithms: tuple[str, ...] = ("pipedream", "madpipe"),
    grid: Discretization | None = None,
    iterations: int = 10,
    ilp_time_limit: float = 60.0,
    cache: "ResultCache | None" = None,
    verbose: bool = False,
    n_workers: int = 1,
) -> list[RunResult]:
    """Run a full scenario grid, replaying cached instances if available.

    ``n_workers > 1`` dispatches uncached instances to a process pool;
    results come back in the same deterministic (network, P, β, M,
    algorithm) order as the serial loop, and new results are written to
    ``cache`` as they complete so interrupted sweeps stay resumable.
    """
    specs: list[tuple] = [
        (network, p, float(m), float(b), algo)
        for network in networks
        for p in procs
        for b in bandwidths_gbps
        for m in memories_gb
        for algo in algorithms
    ]
    out: list[RunResult | None] = [None] * len(specs)
    todo: list[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            out[i] = hit
        else:
            todo.append(i)

    def record(i: int, r: RunResult) -> None:
        out[i] = r
        if cache is not None:
            cache.put(r)
        if verbose:
            network, p, m, b, algo = specs[i]
            print(
                f"{network} P={p} M={m} beta={b} {algo}: "
                f"dp={r.dp_period:.4f} valid={r.valid_period:.4f} "
                f"({r.runtime_s:.1f}s)"
            )

    if n_workers > 1 and len(todo) > 1:
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {
                    pool.submit(
                        _run_spec, specs[i], grid, iterations, ilp_time_limit
                    ): i
                    for i in todo
                }
                for fut in as_completed(futures):
                    record(futures[fut], fut.result())
            todo = []
        except (OSError, RuntimeError) as exc:  # pool unavailable → serial
            if verbose:
                print(f"process pool failed ({exc}); falling back to serial")
            todo = [i for i in todo if out[i] is None]
    for i in todo:
        record(i, _run_spec(specs[i], grid, iterations, ilp_time_limit))
    if cache is not None:
        cache.flush()
    return out


def _to_jsonable(r: RunResult) -> dict:
    d = asdict(r)
    for k in ("dp_period", "valid_period"):
        if d[k] == INF:
            d[k] = None
    return d


def _from_jsonable(d: dict) -> RunResult:
    for k in ("dp_period", "valid_period"):
        if d[k] is None:
            d[k] = INF
    return RunResult(**d)


def save_results(results: list[RunResult], path: str | Path) -> None:
    """Persist results as a JSON array (``inf`` encoded as ``null``).

    This is the legacy bulk format; :class:`ResultCache` writes JSONL.
    """
    payload = [_to_jsonable(r) for r in results]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_results(path: str | Path) -> list[RunResult]:
    """Load results written by :func:`save_results` *or* by the JSONL
    :class:`ResultCache` — the format is sniffed from the first byte."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped[0] == "[":
        payload = json.loads(text)
    else:
        payload = [json.loads(line) for line in text.splitlines() if line.strip()]
    return [_from_jsonable(d) for d in payload]


class ResultCache:
    """Append-only JSONL instance cache keyed by scenario tuple.

    Each :meth:`put` buffers one record; buffers are appended to the file
    every ``flush_every`` inserts (and on :meth:`flush`/context exit), so
    inserting N results costs O(N) I/O.  A cache file in the legacy
    :func:`save_results` JSON-array format is read transparently and
    rewritten as JSONL on the first flush.
    """

    def __init__(self, path: str | Path, *, flush_every: int = 1):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self._data: dict[tuple, RunResult] = {}
        self._pending: list[RunResult] = []
        self._legacy = False
        if self.path.exists():
            text = self.path.read_text()
            self._legacy = text.lstrip().startswith("[")
            for r in load_results(self.path):
                self._data[r.key] = r

    def get(self, key: tuple) -> RunResult | None:
        return self._data.get(key)

    def put(self, result: RunResult) -> None:
        self._data[result.key] = result
        self._pending.append(result)
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered records out (rewriting legacy-format files once).

        Pure reads never rewrite: a legacy file is only migrated to JSONL
        when there is something new to persist.
        """
        if self._legacy and self._pending:
            lines = [json.dumps(_to_jsonable(r)) for r in self._data.values()]
            self.path.write_text("\n".join(lines) + "\n" if lines else "")
            self._legacy = False
        elif self._pending:
            with self.path.open("a") as fh:
                for r in self._pending:
                    fh.write(json.dumps(_to_jsonable(r)) + "\n")
        self._pending.clear()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()

    def __len__(self) -> int:
        return len(self._data)
