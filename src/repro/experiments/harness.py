"""Experiment harness: run algorithms over scenario grids, cache results.

Every (network, P, M, β, algorithm) instance yields a :class:`RunResult`
with both the optimizer's own estimate (``dp_period``, the dashed lines
of Fig. 6) and the certified valid-schedule period (``valid_period``, the
solid lines), plus a ``status`` recording how the instance ended:

``ok``
    a certified schedule with no solver-budget trouble;
``degraded``
    a certified schedule, but the phase-2 MILP exhausted its time budget
    somewhere along the way (the period carries the 1F1B\\* fallback or
    an uncertified search outcome — valid, possibly improvable);
``solver_timeout``
    no schedule, and the failure is a time-limit hit rather than proven
    infeasibility (re-running with a larger budget may succeed);
``infeasible``
    certified: no valid schedule exists for the instance;
``error``
    the instance crashed or exceeded its deadline repeatedly and was
    recorded instead of re-raised (``on_exhausted="record"``), *or* its
    schedule failed the discrete-event certification gate and no
    certified fallback existed — the quarantined period is withheld
    (``valid_period = inf``), never recorded as valid.

Sweeps are built to *survive*:

* :func:`run_grid` fans uncached instances out over a
  ``ProcessPoolExecutor`` when ``n_workers > 1``, retries crashed or
  timed-out instances with exponential backoff and jitter
  (``max_retries``), restarts the pool after a hard worker death
  (``BrokenProcessPool``), enforces a per-instance deadline *inside*
  the worker (``instance_timeout``, SIGALRM), and flushes the cache on
  the way out even when interrupted — a sweep killed mid-run resumes
  from the cache and re-runs only missing (and, with
  ``retry_failed=True``, previously failed) instances;
* :class:`ResultCache` persists results to an *append-only* JSON-Lines
  file with fsync'd batched appends; legacy JSON-array caches are
  migrated atomically (temp file + rename), corrupt or truncated
  trailing lines are quarantined on load (the valid prefix is recovered
  and the dropped lines are logged and copied to a ``.quarantine``
  sidecar), and :func:`verify_cache` audits a cache file without
  touching it.
"""

from __future__ import annotations

import json
import logging
import math
import os
import random
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path

from .. import obs, warmstart
from ..algorithms.madpipe import madpipe
from ..algorithms.madpipe_dp import Discretization
from ..algorithms.pipedream import pipedream
from ..core.chain import Chain
from ..core.platform import GB, GBPS, Platform
from ..robust import certify_pattern
from ..testing import faults
from .scenarios import paper_chain

__all__ = [
    "RunResult",
    "RESULT_STATUSES",
    "SweepInstanceError",
    "InstanceTimeoutError",
    "run_instance",
    "run_grid",
    "save_results",
    "load_results",
    "JsonlCache",
    "ResultCache",
    "verify_cache",
]

INF = float("inf")

log = logging.getLogger(__name__)

#: The failure taxonomy; ``RunResult.status`` is always one of these.
RESULT_STATUSES = ("ok", "degraded", "solver_timeout", "infeasible", "error")

#: Cached statuses that ``run_grid(..., retry_failed=True)`` re-runs.
RETRY_STATUSES = ("solver_timeout", "error")


class SweepInstanceError(Exception):
    """One grid instance kept failing after every retry.

    Deliberately *not* a ``RuntimeError``: the pool-unavailable fallback
    in :func:`run_grid` catches ``RuntimeError`` and must never swallow
    this.
    """

    def __init__(self, spec: tuple, attempts: int, cause: BaseException):
        super().__init__(
            f"sweep instance {spec!r} failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.spec = spec
        self.attempts = attempts
        self.cause = cause


class InstanceTimeoutError(RuntimeError):
    """A worker blew its per-instance deadline (``instance_timeout``)."""


@dataclass
class RunResult:
    """One algorithm run on one scenario."""

    network: str
    n_procs: int
    memory_gb: float
    bandwidth_gbps: float
    algorithm: str  # "pipedream" | "madpipe"
    dp_period: float  # the optimizer's internal estimate (dashed)
    valid_period: float  # certified schedule period (solid); inf if none
    n_stages: int
    runtime_s: float
    sequential: float  # U(1, L), for speedups
    status: str = "ok"  # one of RESULT_STATUSES
    failure: str | None = None  # human-readable reason when status != "ok"

    @property
    def feasible(self) -> bool:
        return self.valid_period != INF

    @property
    def speedup(self) -> float:
        return self.sequential / self.valid_period if self.feasible else 0.0

    @property
    def key(self) -> tuple:
        return (
            self.network,
            self.n_procs,
            self.memory_gb,
            self.bandwidth_gbps,
            self.algorithm,
        )


def run_instance(
    chain: Chain,
    platform: Platform,
    algorithm: str,
    *,
    network: str = "",
    grid: Discretization | None = None,
    iterations: int = 10,
    ilp_time_limit: float = 60.0,
    schedule_family: str = "1f1b",
) -> RunResult:
    """Run one algorithm on one (chain, platform) instance.

    ``schedule_family`` is a solver option like ``grid``/``iterations``:
    it selects the pattern family (1F1B or zero-bubble B/W split) but is
    not part of the instance's cache identity — sweeps of different
    families belong in different cache files.
    """
    t0 = time.perf_counter()
    status = "ok"
    failure: str | None = None
    with obs.span(
        "instance",
        network=network or chain.name,
        algorithm=algorithm,
        n_procs=platform.n_procs,
        memory_gb=platform.memory / GB,
        bandwidth_gbps=platform.bandwidth / GBPS,
    ) as inst_span:
        if algorithm == "pipedream":
            res = pipedream(chain, platform, schedule_family=schedule_family)
            dp, valid = res.dp_period, res.period
            n_stages = res.partitioning.n_stages if res.feasible else 0
            if not res.feasible:
                status, failure = (
                    "infeasible",
                    "pipedream found no memory-feasible schedule",
                )
            else:
                # certification gate: pipedream has no fallback schedule,
                # so a rejected pattern is quarantined as an error, never
                # recorded as a valid period
                cert = certify_pattern(
                    chain,
                    platform,
                    res.schedule.pattern if res.schedule is not None else None,
                    source=f"pipedream:{network or chain.name}",
                )
                if not cert.ok:
                    obs.inc("certify.quarantined")
                    valid = INF
                    status = "error"
                    failure = "certification failed: " + "; ".join(cert.violations)
        elif algorithm == "madpipe":
            res = madpipe(
                chain,
                platform,
                grid=grid,
                iterations=iterations,
                ilp_time_limit=ilp_time_limit,
                schedule_family=schedule_family,
            )
            dp, valid = res.dp_period, res.period
            n_stages = res.allocation.n_stages if res.allocation is not None else 0
            status = res.status
            if status != "ok":
                failure = "; ".join(res.notes) or None
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        inst_span.set(status=status, period=valid if valid != INF else None)
    obs.inc("sweep.instances")
    return RunResult(
        network=network or chain.name,
        n_procs=platform.n_procs,
        memory_gb=platform.memory / GB,
        bandwidth_gbps=platform.bandwidth / GBPS,
        algorithm=algorithm,
        dp_period=dp,
        valid_period=valid,
        n_stages=n_stages,
        runtime_s=time.perf_counter() - t0,
        sequential=chain.total_compute(),
        status=status,
        failure=failure,
    )


def _spec_key(spec: tuple) -> str:
    return "|".join(str(s) for s in spec)


@contextmanager
def _deadline(seconds: float | None, spec: tuple):
    """Enforce a wall-clock deadline inside the current (worker) process.

    On the POSIX main thread this uses ``SIGALRM``, so it interrupts even
    a HiGHS solve stuck inside C code between Python byte codes.  Off the
    main thread (the plan service's ``max_workers=0`` inline mode solves
    on the event loop's thread pool) a watchdog thread arms instead and
    delivers :class:`InstanceTimeoutError` asynchronously — that fires
    only between byte codes, so it cannot cut short a wedged C call, but
    it bounds every pure-Python solve instead of silently doing nothing.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if os.name == "posix" and threading.current_thread() is threading.main_thread():

        def _alarm(signum, frame):
            raise InstanceTimeoutError(
                f"instance {spec!r} exceeded its {seconds:g}s deadline"
            )

        old_handler = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
        return

    with _thread_deadline(seconds, spec):
        yield


@contextmanager
def _thread_deadline(seconds: float, spec: tuple):
    """Wall-clock deadline for non-main-thread callers.

    A watchdog thread waits ``seconds``; if the protected block is still
    running it schedules :class:`InstanceTimeoutError` in the target
    thread via ``PyThreadState_SetAsyncExc`` (the same mechanism behind
    ``KeyboardInterrupt`` delivery).  The exit path runs under a lock so
    the watchdog can never fire into code *after* the block; a pending
    async exception that did not surface in time is cancelled.
    """
    import ctypes

    tid = threading.get_ident()
    cancel = threading.Event()
    lock = threading.Lock()
    fired = False

    def _watchdog() -> None:
        nonlocal fired
        if cancel.wait(seconds):
            return
        with lock:
            if cancel.is_set():
                return
            fired = True
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(tid), ctypes.py_object(InstanceTimeoutError)
            )

    watchdog = threading.Thread(
        target=_watchdog, name="repro-deadline", daemon=True
    )
    watchdog.start()
    try:
        yield
    except InstanceTimeoutError as exc:
        if exc.args:
            raise
        raise InstanceTimeoutError(
            f"instance {spec!r} exceeded its {seconds:g}s deadline"
        ) from None
    finally:
        with lock:
            cancel.set()
            if fired and sys.exc_info()[0] is None:
                # the async exception is scheduled but has not surfaced
                # yet: withdraw it so it cannot detonate downstream
                ctypes.pythonapi.PyThreadState_SetAsyncExc(
                    ctypes.c_ulong(tid), None
                )
        watchdog.join(timeout=1.0)


def _run_spec(
    spec: tuple,
    grid: Discretization | None,
    iterations: int,
    ilp_time_limit: float,
    instance_timeout: float | None = None,
    observe: bool = False,
    warm_start: bool = False,
    schedule_family: str = "1f1b",
):
    """Worker entry point: rebuild the (cached-per-process) chain from the
    network name and run one instance.  Must stay module-level picklable.

    With ``observe=True`` the instance runs under a fresh trace + metrics
    registry and the return value is a ``(RunResult, counts, spans)``
    triple — plain dicts/lists so it pickles across the process pool and
    the parent can merge counters / append spans deterministically.

    With ``warm_start=True`` the instance solves against the per-process
    warm-start database (:mod:`repro.warmstart`) — shared across a serial
    sweep's instances, and per worker process under the pool.  With
    ``warm_start=False`` the database is explicitly masked, so cold
    sweeps stay cold even after warm ones ran in the same process.
    """
    network, p, m, b, algo = spec

    def _run() -> RunResult:
        with _deadline(instance_timeout, spec):
            # inside the deadline, so a "sleep" fault models a hung solve
            faults.fire("worker", key=_spec_key(spec))
            return run_instance(
                paper_chain(network),
                Platform.of(p, m, b),
                algo,
                network=network,
                grid=grid,
                iterations=iterations,
                ilp_time_limit=ilp_time_limit,
                schedule_family=schedule_family,
            )

    with warmstart.activate(warm_start):
        if not observe:
            return _run()
        trace = obs.Trace(_spec_key(spec))
        registry = obs.MetricsRegistry()
        with obs.use_trace(trace), obs.use_metrics(registry):
            result = _run()
        return result, registry.snapshot(), [s.to_dict() for s in trace.roots]


def _error_result(spec: tuple, exc: BaseException) -> RunResult:
    """Typed stand-in for an instance that exhausted its retries."""
    network, p, m, b, algo = spec
    status = "solver_timeout" if isinstance(exc, InstanceTimeoutError) else "error"
    return RunResult(
        network=network,
        n_procs=p,
        memory_gb=m,
        bandwidth_gbps=b,
        algorithm=algo,
        dp_period=INF,
        valid_period=INF,
        n_stages=0,
        runtime_s=0.0,
        sequential=0.0,
        status=status,
        failure=f"{type(exc).__name__}: {exc}",
    )


def run_grid(
    networks: tuple[str, ...],
    procs: tuple[int, ...],
    memories_gb: tuple[float, ...],
    bandwidths_gbps: tuple[float, ...],
    *,
    algorithms: tuple[str, ...] = ("pipedream", "madpipe"),
    grid: Discretization | None = None,
    iterations: int = 10,
    ilp_time_limit: float = 60.0,
    schedule_family: str = "1f1b",
    cache: "ResultCache | None" = None,
    verbose: bool = False,
    n_workers: int = 1,
    instance_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff_s: float = 1.0,
    retry_failed: bool = False,
    on_exhausted: str = "raise",
    trace_path: str | Path | None = None,
    warm_start: bool = False,
) -> list[RunResult]:
    """Run a full scenario grid, replaying cached instances if available.

    ``schedule_family`` selects the pattern family every instance builds
    (1F1B or the zero-bubble B/W split).  Like ``grid``/``iterations``
    it is a solver option, not part of the cache identity: sweeps of
    different families must use different cache files.

    ``n_workers > 1`` dispatches uncached instances to a process pool;
    results come back in the same deterministic (network, P, β, M,
    algorithm) order as the serial loop, and new results are written to
    ``cache`` as they complete so interrupted sweeps stay resumable.

    Resilience knobs:

    * ``instance_timeout`` — wall-clock deadline per instance, enforced
      with ``SIGALRM`` inside the worker;
    * ``max_retries`` — each crashed or timed-out instance is retried
      this many times, in rounds with exponential backoff and jitter; a
      hard worker death (``BrokenProcessPool``) restarts the pool and
      charges one attempt to every unfinished instance of the round;
    * ``on_exhausted`` — ``"raise"`` (default) raises
      :class:`SweepInstanceError` identifying the failing spec once its
      retries are spent; ``"record"`` stores a typed ``error`` /
      ``solver_timeout`` result instead and lets the sweep complete;
    * ``retry_failed`` — also re-run cached instances whose status is in
      :data:`RETRY_STATUSES` (the ``--resume`` semantics).

    Observability: with ``trace_path`` set (or a metrics registry
    installed via :func:`repro.obs.use_metrics`), every instance —
    serial or pooled — runs under its own trace + registry; counters are
    merged into the caller's registry as results return (deterministic:
    counter sums are order-independent), and each finished instance's
    spans are appended to ``trace_path`` as one JSON-Lines record
    ``{"spec": […], "spans": […]}``.  The trace file is opened once for
    the whole sweep (on the first record) and flushed per record, so a
    killed sweep keeps every finished instance's spans.  Spans of
    attempts that failed and were retried are dropped; a resumed sweep
    appends to the same file.

    ``warm_start=True`` solves instances against the per-process
    warm-start database (:mod:`repro.warmstart`): uncached instances are
    ordered so (network, P, β, algorithm) neighbors run consecutively at
    *descending* memory — infeasibility certificates transfer downward —
    and every solver layer reuses its neighbors' exact-key precomputation.
    Results are bit-identical to a cold sweep; only ``runtime_s`` and the
    ``warm.*`` counters differ.  The default stays cold for
    backward-compatible determinism of per-call counters; the
    :func:`repro.api.sweep` facade and the CLI default to warm.

    Duplicate specs (e.g. a grid with repeated memory values) are solved
    once and fanned out, counted as ``sweep.dedup_hits``.

    The cache is flushed on *every* exit path, including
    ``KeyboardInterrupt``, so completed instances are never lost.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if on_exhausted not in ("raise", "record"):
        raise ValueError('on_exhausted must be "raise" or "record"')
    specs: list[tuple] = [
        (network, p, float(m), float(b), algo)
        for network in networks
        for p in procs
        for b in bandwidths_gbps
        for m in memories_gb
        for algo in algorithms
    ]
    observe = trace_path is not None or obs.active_metrics() is not None
    out: list[RunResult | None] = [None] * len(specs)
    remaining: set[int] = set()
    primary: dict[tuple, int] = {}  # spec -> first index solving it
    dup_map: dict[int, list[int]] = {}  # primary index -> duplicate indices
    for i, spec in enumerate(specs):
        j = primary.setdefault(spec, i)
        if j != i:
            dup_map.setdefault(j, []).append(i)
            obs.inc("sweep.dedup_hits")
            continue
        hit = cache.get(spec) if cache is not None else None
        if hit is not None and not (retry_failed and hit.status in RETRY_STATUSES):
            out[i] = hit
            obs.inc("sweep.cache_hits")
        else:
            remaining.add(i)
    for j, dups in dup_map.items():  # fan cached primaries out right away
        if out[j] is not None:
            for i in dups:
                out[i] = out[j]

    attempts = dict.fromkeys(remaining, 0)
    n_recorded = 0
    trace_fh = None  # one handle for the sweep, opened on first record

    def unwrap(payload) -> RunResult:
        """Fold an observed worker's (result, counts, spans) triple back
        into the parent: merge counters, append the instance's spans."""
        nonlocal trace_fh
        if not observe or isinstance(payload, RunResult):
            return payload
        result, counts, spans = payload
        registry = obs.active_metrics()
        if registry is not None:
            registry.merge(counts)
        if trace_path is not None and spans:
            line = json.dumps({"spec": list(result.key), "spans": spans})
            if trace_fh is None:
                trace_fh = open(trace_path, "a")
            trace_fh.write(line + "\n")
            trace_fh.flush()
        return result

    def record(i: int, r: RunResult) -> None:
        nonlocal n_recorded
        out[i] = r
        if cache is not None:
            cache.put(r)
        n_recorded += 1
        if verbose:
            network, p, m, b, algo = specs[i]
            print(
                f"{network} P={p} M={m} beta={b} {algo}: "
                f"dp={r.dp_period:.4f} valid={r.valid_period:.4f} "
                f"[{r.status}] ({r.runtime_s:.1f}s)"
            )
        faults.fire("sweep_record", key=str(n_recorded))

    def finish(i: int, r: RunResult) -> None:
        record(i, r)
        remaining.discard(i)
        for j in dup_map.get(i, ()):  # duplicates share the result (no re-put:
            out[j] = r  # a second cache.put of the same key forces a rewrite)

    def fail(i: int, exc: BaseException) -> None:
        attempts[i] += 1
        if attempts[i] <= max_retries:
            obs.inc("sweep.retries")
            if verbose:
                print(
                    f"instance {specs[i]!r} failed "
                    f"({type(exc).__name__}: {exc}); "
                    f"retry {attempts[i]}/{max_retries}"
                )
            return
        if on_exhausted == "record":
            if verbose:
                print(f"instance {specs[i]!r} exhausted retries; recording error")
            finish(i, _error_result(specs[i], exc))
        else:
            raise SweepInstanceError(specs[i], attempts[i], exc) from exc

    pool_ok = n_workers > 1
    round_no = 0
    try:
        while remaining:
            if round_no > 0:  # back off with jitter before any retry round
                delay = min(retry_backoff_s * 2 ** (round_no - 1), 30.0)
                time.sleep(delay * (1.0 + 0.25 * random.random()))
            round_no += 1
            batch = sorted(remaining)
            if warm_start:
                # neighbor order: (network, P, β, algorithm) runs stay
                # consecutive with memory *descending*, so certified
                # infeasibility flows from roomy instances to tight ones
                batch.sort(
                    key=lambda i: (
                        specs[i][0], specs[i][1], specs[i][3], specs[i][4],
                        -specs[i][2], i,
                    )
                )
            if pool_ok and len(batch) > 1:
                try:
                    with ProcessPoolExecutor(max_workers=n_workers) as pool:
                        futures = {
                            pool.submit(
                                _run_spec,
                                specs[i],
                                grid,
                                iterations,
                                ilp_time_limit,
                                instance_timeout,
                                observe,
                                warm_start,
                                schedule_family,
                            ): i
                            for i in batch
                        }
                        for fut in as_completed(futures):
                            i = futures[fut]
                            try:
                                finish(i, unwrap(fut.result()))
                            except (BrokenProcessPool, KeyboardInterrupt, SystemExit):
                                raise
                            except SweepInstanceError:
                                raise
                            except Exception as exc:
                                fail(i, exc)
                except BrokenProcessPool as exc:
                    # a worker died hard (SIGKILL/os._exit): every
                    # unfinished instance of the round is charged one
                    # attempt, then the pool is rebuilt next round
                    obs.inc("sweep.pool_restarts")
                    if verbose:
                        print(f"process pool broke ({exc}); restarting")
                    for i in [j for j in batch if j in remaining]:
                        fail(i, exc)
                except (OSError, RuntimeError) as exc:  # pool unavailable → serial
                    if verbose:
                        print(f"process pool failed ({exc}); falling back to serial")
                    pool_ok = False
            else:
                for i in batch:
                    try:
                        finish(
                            i,
                            unwrap(
                                _run_spec(
                                    specs[i],
                                    grid,
                                    iterations,
                                    ilp_time_limit,
                                    instance_timeout,
                                    observe,
                                    warm_start,
                                    schedule_family,
                                )
                            ),
                        )
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except SweepInstanceError:
                        raise
                    except Exception as exc:
                        fail(i, exc)
    finally:
        try:
            if cache is not None:
                cache.flush()
        finally:
            if trace_fh is not None:
                trace_fh.close()
    return out


# ------------------------------------------------------------ serialization

#: Fields every cache record must carry (status/failure are optional for
#: records written before the failure taxonomy existed).
_CORE_FIELDS = (
    "network",
    "n_procs",
    "memory_gb",
    "bandwidth_gbps",
    "algorithm",
    "dp_period",
    "valid_period",
    "n_stages",
    "runtime_s",
    "sequential",
)
_FIELDS = _CORE_FIELDS + ("status", "failure")
#: Numeric fields; periods may be ``null`` (= inf), nothing may be NaN.
_NUMERIC_FIELDS = tuple(f for f in _CORE_FIELDS if f not in ("network", "algorithm"))


def _reject_nan(name: str) -> float:
    raise ValueError(f"non-finite JSON constant {name!r}")


def _record_from_dict(d: object) -> RunResult:
    """Strict-parse one serialized record; raises ``ValueError`` on any
    missing field, NaN/Infinity constant, wrong type or unknown status."""
    if not isinstance(d, dict):
        raise ValueError(f"expected a JSON object, got {type(d).__name__}")
    missing = [f for f in _CORE_FIELDS if f not in d]
    if missing:
        raise ValueError(f"missing fields {missing}")
    d = {k: v for k, v in d.items() if k in _FIELDS}
    for k in _NUMERIC_FIELDS:
        v = d[k]
        if v is None and k in ("dp_period", "valid_period"):
            continue
        if isinstance(v, bool) or not isinstance(v, (int, float)) or not math.isfinite(v):
            raise ValueError(f"field {k!r} must be a finite number, got {v!r}")
    for k in ("dp_period", "valid_period"):
        if d[k] is None:
            d[k] = INF
    d.setdefault("status", "ok" if d["valid_period"] != INF else "infeasible")
    d.setdefault("failure", None)
    if d["status"] not in RESULT_STATUSES:
        raise ValueError(f"unknown status {d['status']!r}")
    return RunResult(**d)


def _to_jsonable(r: RunResult) -> dict:
    d = asdict(r)
    for k in ("dp_period", "valid_period"):
        if d[k] == INF:
            d[k] = None
    return d


def _from_jsonable(d: dict) -> RunResult:
    return _record_from_dict(d)


def save_results(results: list[RunResult], path: str | Path) -> None:
    """Persist results as a JSON array (``inf`` encoded as ``null``).

    This is the legacy bulk format; :class:`ResultCache` writes JSONL.
    """
    payload = [_to_jsonable(r) for r in results]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_results(path: str | Path) -> list[RunResult]:
    """Load results written by :func:`save_results` *or* by the JSONL
    :class:`ResultCache` — the format is sniffed from the first byte.

    Strict: a corrupt line, a NaN/Infinity constant or a malformed
    record raises ``ValueError`` naming the offending line, instead of
    propagating garbage into the figure generators.  Use
    :class:`ResultCache` (which quarantines and recovers) or
    :func:`verify_cache` for damaged files.
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped[0] == "[":
        payload = json.loads(text, parse_constant=_reject_nan)
        out = []
        for i, d in enumerate(payload):
            try:
                out.append(_record_from_dict(d))
            except ValueError as exc:
                raise ValueError(f"{path}: record {i}: {exc}") from exc
        return out
    out = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            out.append(_record_from_dict(json.loads(line, parse_constant=_reject_nan)))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: corrupt cache line: {exc}") from exc
    return out


# ------------------------------------------------------------------ cache


class JsonlCache:
    """Append-only JSONL cache with quarantine, repair and batched flushes.

    The hardened persistence core behind :class:`ResultCache` (sweep
    results keyed by scenario tuple) and the plan server's
    :class:`repro.serve.PlanStore` (plans keyed by request fingerprint).
    Subclasses define the record codec: :meth:`_encode` (record →
    JSON-ready dict), :meth:`_decode` (parsed dict → record, raising
    ``ValueError`` on anything malformed) and :meth:`_key` (record →
    hashable cache key).

    Each :meth:`put` buffers one record; buffers are appended to the file
    every ``flush_every`` inserts (and on :meth:`flush`/context exit) in
    a single fsync'd write, so inserting N results costs O(N) I/O and a
    killed process loses at most the unflushed buffer.

    Loading is *recovering*: corrupt, truncated or NaN-bearing lines are
    quarantined (logged, appended to a ``<name>.quarantine`` sidecar)
    and the valid remainder is kept; the first subsequent flush rewrites
    the file clean.  Duplicate keys resolve last-write-wins.  Concurrent
    processes may append to the same cache (each flush is one
    ``O_APPEND`` write); only migration/repair rewrites, which assumes a
    single writer.
    """

    def __init__(self, path: str | Path, *, flush_every: int = 1):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self._data: dict = {}
        self._pending: list = []
        self._legacy = False
        self._needs_rewrite = False
        self.quarantined: list[tuple[int, str, str]] = []  # (lineno, reason, line)
        if self.path.exists():
            self._load()

    # -- record codec (subclass responsibility) ----------------------------

    def _encode(self, record) -> dict:
        """JSON-ready dict for one record."""
        raise NotImplementedError

    def _decode(self, obj: dict):
        """Parse one record dict; must raise ``ValueError`` if malformed."""
        raise NotImplementedError

    def _key(self, record):
        """Hashable cache key of one record."""
        raise NotImplementedError

    def _load_legacy(self, text: str) -> bool:
        """Hook for pre-JSONL formats (first byte ``[``).  Return ``True``
        after populating ``_data`` to mark the file for atomic migration
        on the next flush; the base class knows no legacy format."""
        return False

    def _load(self) -> None:
        text = self.path.read_text()
        stripped = text.lstrip()
        if not stripped:
            return
        if stripped[0] == "[" and self._load_legacy(text):
            # legacy format: all-or-nothing (the atomic migration
            # guarantees we never see a half-written one)
            self._legacy = True
            return
        for lineno, line in enumerate(text.split("\n"), start=1):
            if not line.strip():
                continue
            try:
                r = self._decode(json.loads(line, parse_constant=_reject_nan))
            except ValueError as exc:
                self.quarantined.append((lineno, str(exc), line))
            else:
                self._data[self._key(r)] = r
        if self.quarantined:
            self._needs_rewrite = True
            self._write_quarantine()
            log.warning(
                "%s: dropped %d corrupt line(s) (%s); recovered %d record(s)",
                self.path,
                len(self.quarantined),
                "; ".join(f"line {n}: {why}" for n, why, _ in self.quarantined[:3]),
                len(self._data),
            )
        if not text.endswith("\n"):
            # torn final write: even if it parsed, normalize on next flush
            # rather than appending onto a line with no terminator
            self._needs_rewrite = True

    def _write_quarantine(self) -> None:
        sidecar = self.path.with_name(self.path.name + ".quarantine")
        try:
            with sidecar.open("a") as fh:
                for lineno, reason, line in self.quarantined:
                    fh.write(f"# line {lineno}: {reason}\n{line}\n")
        except OSError:  # read-only location: the log line above suffices
            pass

    def get(self, key):
        return self._data.get(key)

    def put(self, record) -> None:
        key = self._key(record)
        if key in self._data:
            # overwrite (e.g. a --resume re-run): appending would leave a
            # stale duplicate line, so force an atomic dedup rewrite
            self._needs_rewrite = True
        self._data[key] = record
        self._pending.append(record)
        if len(self._pending) >= self.flush_every:
            self.flush()

    def _rewrite_atomic(self) -> None:
        tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        with tmp.open("w") as fh:
            for r in self._data.values():
                fh.write(json.dumps(self._encode(r)) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._legacy = False
        self._needs_rewrite = False

    def flush(self) -> None:
        """Write buffered records out (rewriting legacy/damaged files once).

        Pure reads never rewrite: migration and corruption repair happen
        only when there is something new to persist.
        """
        if self._pending:
            if self._legacy or self._needs_rewrite:
                self._rewrite_atomic()
            else:
                payload = "".join(
                    json.dumps(self._encode(r)) + "\n" for r in self._pending
                )
                with self.path.open("a") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
            self._pending.clear()
        fault = faults.fire("cache_flush", key=str(self.path))
        if fault is not None and fault.action == "truncate" and self.path.exists():
            size = self.path.stat().st_size
            os.truncate(self.path, max(0, size - int(fault.param)))

    def repair(self) -> bool:
        """Force a clean atomic rewrite: JSONL, deduplicated (last write
        wins), newline-terminated, corrupt lines dropped (they are
        already in the quarantine sidecar).  Returns ``False`` when
        there is nothing to write."""
        if not self._data:
            return False
        self._rewrite_atomic()
        self._pending.clear()
        return True

    def __enter__(self) -> "JsonlCache":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()

    def __len__(self) -> int:
        return len(self._data)


class ResultCache(JsonlCache):
    """Append-only JSONL instance cache keyed by scenario tuple.

    The :class:`JsonlCache` hardening applies: fsync'd batched appends,
    quarantine + recovery of corrupt lines, atomic dedup rewrites.  A
    cache file in the legacy :func:`save_results` JSON-array format is
    migrated to JSONL atomically (temp file + rename) on the first
    flush.
    """

    def _encode(self, record: RunResult) -> dict:
        return _to_jsonable(record)

    def _decode(self, obj: dict) -> RunResult:
        return _record_from_dict(obj)

    def _key(self, record: RunResult) -> tuple:
        return record.key

    def _load_legacy(self, text: str) -> bool:
        for r in load_results(self.path):
            self._data[r.key] = r
        return True


def verify_cache(path: str | Path) -> dict:
    """Audit a cache file without modifying it.

    Returns a report dict: ``format`` (``jsonl`` / ``legacy`` /
    ``empty`` / ``missing``), ``records`` (valid), ``corrupt`` (list of
    ``(lineno, reason)``), ``duplicate_keys``, ``statuses`` (histogram)
    and ``clean`` (no corruption, no duplicates, proper trailing
    newline).  Surfaced as ``repro cache verify``.
    """
    path = Path(path)
    report: dict = {
        "path": str(path),
        "format": "missing",
        "records": 0,
        "corrupt": [],
        "duplicate_keys": 0,
        "statuses": {},
        "clean": False,
    }
    if not path.exists():
        return report
    text = path.read_text()
    stripped = text.lstrip()
    if not stripped:
        report["format"] = "empty"
        report["clean"] = True
        return report
    keys: dict[tuple, int] = {}
    if stripped[0] == "[":
        report["format"] = "legacy"
        try:
            records = load_results(path)
        except ValueError as exc:
            report["corrupt"].append((0, str(exc)))
            records = []
        for r in records:
            keys[r.key] = keys.get(r.key, 0) + 1
            report["statuses"][r.status] = report["statuses"].get(r.status, 0) + 1
        report["records"] = len(records)
    else:
        report["format"] = "jsonl"
        for lineno, line in enumerate(text.split("\n"), start=1):
            if not line.strip():
                continue
            try:
                r = _record_from_dict(json.loads(line, parse_constant=_reject_nan))
            except ValueError as exc:
                report["corrupt"].append((lineno, str(exc)))
            else:
                keys[r.key] = keys.get(r.key, 0) + 1
                report["statuses"][r.status] = report["statuses"].get(r.status, 0) + 1
                report["records"] += 1
        if not text.endswith("\n"):
            report["corrupt"].append((text.count("\n") + 1, "missing trailing newline"))
    report["duplicate_keys"] = sum(n - 1 for n in keys.values())
    report["clean"] = not report["corrupt"] and report["duplicate_keys"] == 0
    return report
