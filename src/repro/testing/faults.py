"""Deterministic fault injection for resilience testing.

The sweep runtime must survive worker crashes, solver time-limit hits and
torn cache writes; this module lets tests *cause* those failures at exact,
reproducible points instead of hoping for races.  A test declares faults
with :func:`install`, which serializes them into the ``REPRO_FAULTS``
environment variable — worker processes forked by the harness inherit the
plan automatically — and counts matching calls in a shared state
directory, so "fire on the 3rd matching call" stays deterministic across
process boundaries.

Production code calls :func:`fire` at named *sites*.  With no plan
installed that is one dict lookup; nothing else in the package behaves
differently.

Wired sites:

=================  =========================================  ===================
site               where                                      actions
=================  =========================================  ===================
``worker``         sweep worker entry, keyed by instance      raise, exit, sleep
``sweep_record``   after each grid result is recorded,        raise, exit
                   keyed by the running record count
``milp_solve``     before each HiGHS MILP probe               timeout
``cache_flush``    after each :class:`ResultCache` write,     truncate
                   keyed by the cache path
``sim_verify``     before each discrete-event verification    fail
                   in the certification gate, keyed by the
                   pattern's source label
``certify``        entry of :func:`repro.api.certify`,        fail
                   keyed by the plan's source label
``serve_solve``    plan service, before a cache-missed        raise, exit, sleep
                   request is dispatched to the worker
                   pool, keyed
                   ``algorithm:family:fingerprint`` so a
                   chaos schedule can storm one
                   (algorithm, schedule_family) breaker
                   key without knowing fingerprints
``serve_worker``   inside a plan-service worker (within       raise, exit, sleep
                   the solve deadline, so ``sleep``
                   models a hung solve), keyed by the
                   request fingerprint
``ingest_file``    trace ingestion, once per trace file,      raise, exit, sleep
                   keyed by the file path
``ingest_record``  trace ingestion, per decoded record,       fail
                   keyed by ``file:run:layer`` — ``fail``
                   forces the record into the quarantine
                   sidecar as if it had been corrupt
=================  =========================================  ===================

Actions ``raise`` (raise :class:`FaultInjected`), ``exit``
(``os._exit`` — a hard kill that skips all cleanup, like SIGKILL) and
``sleep`` (``time.sleep(param)`` seconds) are executed by :func:`fire`
itself.  ``timeout``, ``truncate`` and ``fail`` are returned to the call
site, which knows how to simulate a solver budget hit, tear its own
file, or report a failed certification (exercising the quarantine /
fallback path without needing a genuinely invalid pattern).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["Fault", "FaultInjected", "active", "clear", "fire", "install"]

ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("raise", "exit", "sleep", "timeout", "truncate", "fail")


class FaultInjected(RuntimeError):
    """Raised by a ``raise``-action fault (stands in for a worker crash)."""


@dataclass(frozen=True)
class Fault:
    """One injection rule.

    ``site`` names the call site; ``key`` is a substring that must occur
    in the site's call key (empty matches every call).  The rule skips
    the first ``after`` matching calls, then fires on the next ``times``
    of them (``times=-1`` fires forever).  ``param`` is the action
    argument: seconds for ``sleep``, bytes for ``truncate``, the exit
    code for ``exit``.
    """

    site: str
    action: str
    key: str = ""
    times: int = 1
    after: int = 0
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; choose from {_ACTIONS}")
        if self.times < -1 or self.times == 0:
            raise ValueError("times must be a positive count or -1 (unlimited)")
        if self.after < 0:
            raise ValueError("after must be >= 0")


# (raw env value, parsed faults, state dir) of the last parse, per process.
_parsed: tuple[str, list[Fault], Path] | None = None


def install(faults: list[Fault] | tuple[Fault, ...], state_dir: str | Path) -> None:
    """Activate ``faults`` for this process and every child it spawns.

    ``state_dir`` must be a writable directory (typically a pytest
    ``tmp_path``); it holds one counter file per fault so that call
    counts are shared between the installing process and forked workers.
    """
    state = Path(state_dir)
    state.mkdir(parents=True, exist_ok=True)
    payload = {"state": str(state), "faults": [asdict(f) for f in faults]}
    os.environ[ENV_VAR] = json.dumps(payload)


def clear() -> None:
    """Deactivate fault injection in this process (and future children)."""
    os.environ.pop(ENV_VAR, None)


def active() -> bool:
    """True when a fault plan is installed."""
    return bool(os.environ.get(ENV_VAR))


def _plan() -> tuple[list[Fault], Path] | None:
    global _parsed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _parsed is None or _parsed[0] != raw:
        payload = json.loads(raw)
        faults = [Fault(**f) for f in payload["faults"]]
        _parsed = (raw, faults, Path(payload["state"]))
    return _parsed[1], _parsed[2]


def _bump(state: Path, index: int) -> int:
    """Count one matching call for fault ``index``; returns the new total.

    Appends a single byte under ``O_APPEND`` so concurrent processes
    never lose counts; the file size *is* the call sequence number.
    """
    fd = os.open(state / f"fault{index}.cnt", os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, b"x")
        return os.fstat(fd).st_size
    finally:
        os.close(fd)


def fire(site: str, key: str = "") -> Fault | None:
    """Evaluate the installed plan at one call site.

    Executes ``raise``/``exit``/``sleep`` faults in place.  Returns the
    matching :class:`Fault` for actions the call site must enact itself
    (``timeout``, ``truncate``, ``fail``), else ``None``.
    """
    plan = _plan()
    if plan is None:
        return None
    faults, state = plan
    for index, fault in enumerate(faults):
        if fault.site != site or (fault.key and fault.key not in key):
            continue
        seq = _bump(state, index)
        if seq <= fault.after or (fault.times != -1 and seq > fault.after + fault.times):
            continue
        if fault.action == "raise":
            raise FaultInjected(f"injected fault at {site}[{key}] (call #{seq})")
        if fault.action == "exit":
            os._exit(int(fault.param) or 86)
        if fault.action == "sleep":
            time.sleep(fault.param)
            return None
        return fault  # "timeout" / "truncate" / "fail": enacted by the call site
    return None
