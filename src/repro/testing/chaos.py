"""Deterministic chaos scheduling for the plan service.

A :class:`ChaosSchedule` is a seeded, declarative soak scenario: an
ordered list of :class:`ChaosPhase` steps, each naming the requests to
replay, the :class:`~repro.testing.faults.Fault` rules active while
they run, how they are issued (sequentially or as a concurrent burst)
and how far the service's injected clock advances first.  The schedule
*describes* the storm; a driver (``benchmarks/bench_chaos.py``, or a
test) executes it against a real :class:`~repro.serve.PlanService` and
checks the resilience invariants:

1. every non-degraded reply is bit-identical to a cold
   :func:`repro.api.plan` answer for the same request;
2. every degraded reply carries a valid certificate;
3. shed + served + degraded accounts for every request issued;
4. after the faults clear, the service recovers (a fresh full-quality
   solve) within a bounded number of requests.

Everything that could make two runs differ is pinned: fault rules fire
on deterministic call counts (:mod:`repro.testing.faults`), the
service's retry jitter and breaker probes draw from its seeded RNG,
the breaker cooldown runs on the schedule's fake clock, and phase
composition below derives from one ``random.Random(seed)``.  Same seed
⇒ same sheds, same trips, same degraded answers, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .faults import Fault

__all__ = ["ChaosPhase", "ChaosRequest", "ChaosSchedule"]


@dataclass(frozen=True)
class ChaosRequest:
    """One request the driver should issue: which spec from its pool,
    with what schedule family, priority and deadline budget.

    ``family`` is part of the request (and the breaker key), so a phase
    can storm one ``(algorithm, schedule_family)`` breaker while another
    phase exercises a different, still-closed one.
    """

    spec: int  # index into the driver's request-spec pool
    family: str = "1f1b"
    priority: str = "interactive"
    deadline_s: float | None = None


@dataclass(frozen=True)
class ChaosPhase:
    """One step of a soak scenario.

    ``faults`` are installed for the phase's whole duration (replacing
    the previous phase's rules; an empty tuple clears injection).
    ``burst=True`` issues all requests concurrently — exercising
    coalescing and admission shedding — while ``False`` replays them
    sequentially, which keeps breaker transitions exactly ordered.
    ``clock_advance_s`` moves the driver's fake clock *before* the
    first request, e.g. past a breaker cooldown.  ``restart_service``
    closes and rebuilds the service first (same store), proving
    recovery from persisted — possibly torn — state.
    """

    name: str
    requests: tuple[ChaosRequest, ...]
    faults: tuple[Fault, ...] = ()
    burst: bool = False
    clock_advance_s: float = 0.0
    restart_service: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase needs a name")
        if self.clock_advance_s < 0:
            raise ValueError("clock_advance_s must be >= 0")


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded sequence of :class:`ChaosPhase` steps."""

    phases: tuple[ChaosPhase, ...]
    seed: int = 0

    def __iter__(self) -> Iterator[ChaosPhase]:
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def total_requests(self) -> int:
        return sum(len(p.requests) for p in self.phases)

    @property
    def pool_size(self) -> int:
        """Distinct request specs the driver's pool must provide."""
        return 1 + max(
            (r.spec for p in self.phases for r in p.requests), default=-1
        )

    @classmethod
    def standard(
        cls,
        seed: int = 0,
        *,
        n_warm: int = 6,
        scale: int = 1,
        pool_kill: bool = False,
        breaker_cooldown_s: float = 60.0,
        store_path: "str | None" = None,
    ) -> "ChaosSchedule":
        """The canonical soak: warmup → overload burst → failure storm →
        latency spike → (optional) pool kill → torn store write →
        restart + recovery.

        ``n_warm`` specs are warmed into the cache first; later phases
        draw *fresh* spec indices (cached specs answer before admission,
        breakers or the store are ever touched, so every fault phase
        must miss the cache).  ``scale`` multiplies request counts
        (1 is the CI smoke size).  ``pool_kill`` adds a hard
        worker-death phase — only sound with ``max_workers >= 1``,
        since an ``exit`` fault in inline mode would kill the driver
        process itself.  ``breaker_cooldown_s`` must match the
        service's configured cooldown: the recovery phase advances the
        fake clock past its maximum jitter (1.5×) so the half-open
        probe is due.  ``store_path`` keys the flush-time truncation
        fault to the service's store file (omitting it skips the
        torn-write phase).

        The driver's expected service shape: admission
        ``max_concurrency=1, max_pending=2``, a breaker threshold of at
        most ``4 × scale`` (the storm length), degraded fallback on,
        and the schedule's fake clock installed.
        """
        if n_warm < 3:
            raise ValueError("need at least 3 warmup specs")
        if scale < 1:
            raise ValueError("scale must be >= 1")
        rng = random.Random(seed)
        counter = iter(range(n_warm, 10**9))

        def fresh(n: int, **kw) -> tuple[ChaosRequest, ...]:
            return tuple(ChaosRequest(spec=next(counter), **kw) for _ in range(n))

        def warmed(n: int, **kw) -> tuple[ChaosRequest, ...]:
            return tuple(
                ChaosRequest(spec=rng.randrange(n_warm), **kw) for _ in range(n)
            )

        phases: list[ChaosPhase] = []
        # 1. warmup: populate the cache, fault-free
        phases.append(ChaosPhase(
            name="warmup",
            requests=tuple(ChaosRequest(spec=i) for i in range(n_warm)),
        ))
        # 2. overload burst: more concurrent distinct solves than the
        # admission queue admits → deterministic shedding, and a batch
        # waiter evicted by a later interactive arrival; a duplicate of
        # the first (still-solving) spec rides along to exercise
        # coalescing under pressure
        burst = list(fresh(2 + 2 * scale, priority="batch"))
        burst.append(ChaosRequest(spec=burst[0].spec, priority="interactive"))
        burst += fresh(1, priority="interactive")
        phases.append(ChaosPhase(
            name="burst", requests=tuple(burst), burst=True,
        ))
        if pool_kill:
            # 3. hard worker deaths (while every breaker is still
            # closed, so the requests really dispatch): os._exit in the
            # worker → the service rebuilds the pool (BrokenProcessPool)
            # and retries until the kill budget is spent — the replies
            # must still be full-quality solves
            phases.append(ChaosPhase(
                name="pool_kill",
                requests=fresh(scale),
                faults=(Fault(site="serve_worker", action="exit",
                              times=scale, param=86),),
            ))
        # 4. failure storm: every madpipe/1f1b solve raises → the breaker
        # trips after `threshold` consecutive failures and later requests
        # short-circuit into degraded answers.  Sequential, so breaker
        # transitions happen in exact request order.
        phases.append(ChaosPhase(
            name="storm",
            requests=fresh(4 * scale),
            faults=(Fault(site="serve_solve", action="raise",
                          key="madpipe:1f1b", times=-1),),
        ))
        # 5. latency spike: worker-side sleeps overrun the per-request
        # deadline budget → timeouts burn the budget → degraded answers.
        # The zero_bubble family keeps these on their own (closed)
        # breaker key, so the degradation cause is genuinely the budget,
        # not the storm-opened 1f1b breaker.
        phases.append(ChaosPhase(
            name="spike",
            requests=fresh(2 * scale, family="zero_bubble", deadline_s=0.05),
            faults=(Fault(site="serve_worker", action="sleep",
                          times=-1, param=0.25),),
        ))
        # a clock jump past the breaker's maximum jittered cooldown
        # (1.5 × cooldown) makes the half-open probe due
        cooldown_over = 1.5 * breaker_cooldown_s + 1.0
        if store_path is not None:
            # 6. torn store write: the clock jump re-admits solves (the
            # first request is the breaker's half-open probe and must
            # close it), fresh solves append to the JSONL store, and the
            # first flush of the phase tears bytes off the tail — the
            # recovery phase's restart must quarantine the torn line and
            # keep serving the valid prefix
            phases.append(ChaosPhase(
                name="truncate",
                requests=fresh(2 * scale),
                faults=(Fault(site="cache_flush", action="truncate",
                              key=str(store_path), times=1, param=7),),
                clock_advance_s=cooldown_over,
            ))
        # 7. recovery: faults cleared (and, without a store phase, the
        # clock jump happens here instead); warmup replays check
        # bit-identity against cold solves, fresh specs force a
        # full-quality solve — the first one bounds the recovery time —
        # and a restart proves the torn store serves its valid prefix
        phases.append(ChaosPhase(
            name="recovery",
            requests=tuple(ChaosRequest(spec=i) for i in range(n_warm))
            + fresh(2 * scale) + warmed(2 * scale),
            clock_advance_s=cooldown_over,
            restart_service=store_path is not None,
        ))
        return cls(phases=tuple(phases), seed=seed)
