"""Test-support utilities shipped with the package: deterministic fault
injection (:mod:`repro.testing.faults`) and seeded chaos scheduling for
the plan service (:mod:`repro.testing.chaos`)."""

from .chaos import ChaosPhase, ChaosRequest, ChaosSchedule
from .faults import Fault, FaultInjected, active, clear, fire, install

__all__ = [
    "ChaosPhase",
    "ChaosRequest",
    "ChaosSchedule",
    "Fault",
    "FaultInjected",
    "active",
    "clear",
    "fire",
    "install",
]
