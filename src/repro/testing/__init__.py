"""Test-support utilities shipped with the package (fault injection)."""

from .faults import Fault, FaultInjected, active, clear, fire, install

__all__ = ["Fault", "FaultInjected", "active", "clear", "fire", "install"]
