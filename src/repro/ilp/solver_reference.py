"""Reference period search — the plain bisection kept for benchmarking.

This is the pre-skeleton ``schedule_allocation`` exactly as it shipped:
probe the bottleneck lower bound, probe the fully-sequential upper
bound, then bisect, rebuilding the MILP from scratch at every probe.
``benchmarks/bench_phase2_hotpath.py`` races the fast search against it
(the two produce certified periods within the same ``rel_tol`` band; the
probe *trajectories* differ by design, so periods agree to tolerance,
not bitwise — unlike the 1F1B\\* kernel, whose golden tests are exact).

Keep this file dumb and obviously correct; optimize only
:mod:`repro.ilp.solver`.
"""

from __future__ import annotations

import time

from scipy.optimize import milp

from ..core.chain import Chain
from ..core.partition import Allocation
from ..core.pattern import PatternError
from ..core.platform import Platform
from ..core.tolerances import CHECK_RTOL
from .formulation import build_milp
from .solver import (
    ILPScheduleResult,
    ProbeRecord,
    _extract_pattern,
    _sequential_period,
)

__all__ = ["schedule_allocation_reference"]


def _timed_probe(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    period: float,
    time_limit: float,
    trace: list[ProbeRecord],
):
    # Original probe: build from scratch and solve with the model's
    # min-in-flight objective (the fast path has since switched probes to
    # feasibility-only; the baseline keeps the shipped behaviour).
    t0 = time.perf_counter()
    pattern = None
    status = "infeasible"
    try:
        model = build_milp(chain, platform, allocation, period)
    except ValueError:
        model = None  # static memory alone exceeds capacity
    if model is not None:
        res = milp(
            model.c,
            constraints=model.constraints,
            integrality=model.integrality,
            bounds=model.bounds,
            options={"time_limit": time_limit, "presolve": True},
        )
        if res.success and res.x is not None:
            pattern = _extract_pattern(model, res.x, allocation)
            status = "ok"
            try:
                pattern.validate(chain, platform)
                pattern.check_memory(chain, platform, tol=CHECK_RTOL)
            except PatternError:
                pattern, status = None, "invalid"
        elif res.status == 1:
            status = "timeout"  # budget hit, infeasibility unproven
    trace.append(
        ProbeRecord(
            period=period,
            feasible=pattern is not None,
            build_s=0.0,
            solve_s=time.perf_counter() - t0,
            status=status,
        )
    )
    return pattern


def schedule_allocation_reference(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    *,
    rel_tol: float = 5e-3,
    max_probes: int = 20,
    time_limit: float = 60.0,
) -> ILPScheduleResult:
    """Smallest-period valid pattern for ``allocation`` via binary search.

    The returned period is within ``rel_tol`` of the smallest period the
    MILP can certify feasible.
    """
    lower = allocation.period_lower_bound(chain, platform)
    upper = _sequential_period(chain, platform, allocation)
    trace: list[ProbeRecord] = []

    def result(period: float, pattern) -> ILPScheduleResult:
        timed_out = any(p.status == "timeout" for p in trace)
        if pattern is not None:
            status = "degraded" if timed_out else "ok"
        else:
            status = "timeout" if timed_out else "infeasible"
        return ILPScheduleResult(period, pattern, trace, status)

    best = _timed_probe(chain, platform, allocation, lower, time_limit, trace)
    if best is not None:
        return result(lower, best)

    pattern = _timed_probe(chain, platform, allocation, upper, time_limit, trace)
    if pattern is None:
        return result(float("inf"), None)
    best, best_T = pattern, upper

    lo, hi = lower, upper
    while len(trace) < max_probes and hi - lo > rel_tol * lo:
        mid = (lo + hi) / 2
        pattern = _timed_probe(chain, platform, allocation, mid, time_limit, trace)
        if pattern is not None:
            best, best_T = pattern, mid
            hi = mid
        else:
            lo = mid
    return result(best_T, best)
