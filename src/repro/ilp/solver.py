"""Solve the scheduling MILP and search the smallest feasible period (§4.3).

``schedule_allocation`` runs a binary search on the period ``T``: each
probe solves the fixed-``T`` feasibility MILP of
:mod:`repro.ilp.formulation` with HiGHS (``scipy.optimize.milp``).  The
lower bound is the allocation's bottleneck load; the upper bound is the
fully sequential period (one batch in flight), which is feasible whenever
the allocation fits in memory at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import milp

from ..core.chain import Chain
from ..core.partition import Allocation
from ..core.pattern import Op, PeriodicPattern
from ..core.platform import Platform
from .formulation import ScheduleMILP, build_milp

__all__ = ["ILPScheduleResult", "solve_fixed_period", "schedule_allocation"]


@dataclass
class ILPScheduleResult:
    """A valid periodic pattern found by the ILP, or infeasibility."""

    period: float
    pattern: PeriodicPattern | None
    probes: list[tuple[float, bool]]  # (T, feasible) binary-search trace

    @property
    def feasible(self) -> bool:
        return self.pattern is not None


def _extract_pattern(
    milp_model: ScheduleMILP, x: np.ndarray, allocation: Allocation
) -> PeriodicPattern:
    pattern = PeriodicPattern(allocation=allocation, period=milp_model.period)
    for o in milp_model.ops:
        kind, index = o
        pattern.add(
            Op(
                kind=kind,
                index=index,
                resource=milp_model.resources[o],
                start=float(x[milp_model.t_index[o]]),
                duration=milp_model.durations[o],
                shift=int(round(x[milp_model.h_index[o]])),
            )
        )
    pattern.normalize()
    return pattern


def solve_fixed_period(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    period: float,
    *,
    time_limit: float = 60.0,
) -> PeriodicPattern | None:
    """Feasibility MILP at a fixed period; returns a pattern or ``None``.

    A time-limit hit without an incumbent is reported as infeasible
    (conservative, as in the paper's one-minute ILP budget).
    """
    try:
        model = build_milp(chain, platform, allocation, period)
    except ValueError:
        return None  # static memory alone exceeds capacity
    res = milp(
        model.c,
        constraints=model.constraints,
        integrality=model.integrality,
        bounds=model.bounds,
        options={"time_limit": time_limit, "presolve": True},
    )
    if not res.success or res.x is None:
        return None
    pattern = _extract_pattern(model, res.x, allocation)
    try:
        pattern.validate(chain, platform)
        pattern.check_memory(chain, platform, tol=1e-6)
    except Exception:
        return None  # numerical artifacts: treat as infeasible probe
    return pattern


def _sequential_period(chain: Chain, platform: Platform, allocation: Allocation) -> float:
    """Period of the one-batch-in-flight schedule (always load-feasible)."""
    total = 0.0
    for i, s in enumerate(allocation.stages):
        total += s.compute(chain)
        if i < allocation.n_stages - 1 and allocation.procs[i] != allocation.procs[i + 1]:
            total += 2.0 * chain.activation(s.end) / platform.bandwidth
    return total


def schedule_allocation(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    *,
    rel_tol: float = 5e-3,
    max_probes: int = 20,
    time_limit: float = 60.0,
) -> ILPScheduleResult:
    """Smallest-period valid pattern for ``allocation`` via binary search.

    The returned period is within ``rel_tol`` of the smallest period the
    MILP can certify feasible.
    """
    lower = allocation.period_lower_bound(chain, platform)
    upper = _sequential_period(chain, platform, allocation)
    probes: list[tuple[float, bool]] = []

    best = solve_fixed_period(chain, platform, allocation, lower, time_limit=time_limit)
    probes.append((lower, best is not None))
    if best is not None:
        return ILPScheduleResult(lower, best, probes)

    pattern = solve_fixed_period(chain, platform, allocation, upper, time_limit=time_limit)
    probes.append((upper, pattern is not None))
    if pattern is None:
        return ILPScheduleResult(float("inf"), None, probes)
    best, best_T = pattern, upper

    lo, hi = lower, upper
    while len(probes) < max_probes and hi - lo > rel_tol * lo:
        mid = (lo + hi) / 2
        pattern = solve_fixed_period(chain, platform, allocation, mid, time_limit=time_limit)
        probes.append((mid, pattern is not None))
        if pattern is not None:
            best, best_T = pattern, mid
            hi = mid
        else:
            lo = mid
    return ILPScheduleResult(best_T, best, probes)
