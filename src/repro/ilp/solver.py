"""Solve the scheduling MILP and search the smallest feasible period (§4.3).

``schedule_allocation`` searches the smallest ``T`` whose fixed-``T``
feasibility MILP (:mod:`repro.ilp.formulation`, solved with HiGHS via
``scipy.optimize.milp``) admits a valid pattern.  Feasibility is monotone
in ``T`` — any pattern valid at ``T`` stays valid at ``T' > T`` (shift
inequalities only relax, disjunction rows are T-free once the binaries
are fixed, memory rows do not involve ``T``) — which the search exploits:

* probe outcomes are memoized and every probe lands on the period
  skeleton cached per allocation (:func:`repro.ilp.build_skeleton`), so
  nothing is rebuilt from scratch; probes above the lower bound run
  with a zero objective (feasibility only), letting HiGHS stop at its
  first incumbent;
* the bracket starts from the bottleneck lower bound and *gallops*
  upward (with the 1F1B\\* period of the allocation's contiguous
  restriction as an extra probe point when it exists) instead of jumping
  straight to the fully-sequential upper bound;
* after every feasible probe, the combinatorial part of the solution
  (shifts ``h``, disjunctions ``y``) is frozen and a small LP
  re-optimizes ``(t, T)`` jointly — the certified minimum period of that
  configuration, which typically collapses the bracket in one step;
* the remaining gap is certified with asymmetric probes just below the
  incumbent (falling back to bisection when they keep succeeding).

Every probe and LP jump is recorded as a :class:`ProbeRecord` with
build/solve timings and a ``status`` naming how it ended (``ok``,
``incumbent``, ``timeout``, ``infeasible``, ``invalid``, ``error``);
``repro schedule --stats`` surfaces the totals.  The search result
itself carries a status: ``ok`` / ``infeasible`` are *certified*
outcomes, while ``degraded`` (feasible, but a probe hit the HiGHS time
limit, so the period may be improvable) and ``timeout`` (no schedule
found, but infeasibility is **not** proven) record that the solver
budget, not the mathematics, decided — callers such as
:func:`repro.algorithms.madpipe.madpipe` use this to fall back to a
certified 1F1B\\* schedule instead of silently reporting infeasible.
The pre-skeleton bisection search is preserved verbatim in
:mod:`repro.ilp.solver_reference` for benchmarking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog, milp

from .. import obs
from ..core.chain import Chain
from ..core.memory import effective_capacity
from ..core.partition import Allocation
from ..core.pattern import Op, PatternError, PeriodicPattern
from ..core.platform import Platform
from ..core.tolerances import CHECK_RTOL
from ..testing import faults
from ..warmstart import active_warm, chain_fingerprint
from .formulation import MilpSkeleton, ScheduleMILP, build_milp, build_skeleton

__all__ = [
    "ProbeRecord",
    "ILPScheduleResult",
    "solve_fixed_period",
    "schedule_allocation",
]

INF = float("inf")

#: Geometric step of the upper-bound gallop; the exponent doubles each
#: step so globally-infeasible instances reach the sequential cap fast.
GALLOP_FACTOR = 1.25


@dataclass(frozen=True)
class ProbeRecord:
    """One step of the period search: a MILP probe or an LP re-optimization.

    ``status`` records how the step ended: ``ok`` (solved), ``incumbent``
    (HiGHS hit its time limit but had a feasible incumbent — accepted),
    ``timeout`` (time limit with no incumbent — *not* a certificate of
    infeasibility), ``infeasible`` (certified), ``invalid`` (solver
    output failed pattern validation — treated as infeasible), or
    ``error`` (numerical failure inside the LP/MILP).
    """

    period: float
    feasible: bool
    build_s: float
    solve_s: float
    kind: str = "milp"  # "milp" feasibility probe | "lp" fixed-config jump
    status: str = "ok"


@dataclass
class ILPScheduleResult:
    """A valid periodic pattern found by the ILP, or infeasibility.

    ``status``: ``ok`` (certified schedule, clean search), ``degraded``
    (valid schedule, but at least one probe hit the time limit — the
    period may be improvable), ``timeout`` (no schedule and at least one
    probe hit the time limit — infeasibility unproven), ``infeasible``
    (certified: no probe up to the sequential bound admits a pattern).
    """

    period: float
    pattern: PeriodicPattern | None
    trace: list[ProbeRecord] = field(default_factory=list)
    status: str = "ok"

    @property
    def probes(self) -> list[tuple[float, bool]]:
        """(T, feasible) pairs of the MILP probes, in search order."""
        return [(p.period, p.feasible) for p in self.trace if p.kind == "milp"]

    @property
    def feasible(self) -> bool:
        return self.pattern is not None

    @property
    def timings(self) -> dict[str, float | int]:
        """Aggregate diagnostics: probe counts and build/solve seconds."""
        milp_probes = [p for p in self.trace if p.kind == "milp"]
        jumps = [p for p in self.trace if p.kind == "lp"]
        return {
            "milp_probes": len(milp_probes),
            "lp_jumps": len(jumps),
            "lp_failures": sum(1 for p in jumps if not p.feasible),
            "milp_timeouts": sum(1 for p in milp_probes if p.status == "timeout"),
            "build_s": sum(p.build_s for p in self.trace),
            "solve_s": sum(p.solve_s for p in self.trace),
        }


def _extract_pattern(
    milp_model: ScheduleMILP, x: np.ndarray, allocation: Allocation
) -> PeriodicPattern:
    pattern = PeriodicPattern(allocation=allocation, period=milp_model.period)
    for o in milp_model.ops:
        kind, index = o
        pattern.add(
            Op(
                kind=kind,
                index=index,
                resource=milp_model.resources[o],
                start=float(x[milp_model.t_index[o]]),
                duration=milp_model.durations[o],
                shift=int(round(x[milp_model.h_index[o]])),
            )
        )
    pattern.normalize()
    return pattern


def _solve_model(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    model: ScheduleMILP,
    time_limit: float,
    *,
    feasibility_only: bool = True,
) -> tuple[PeriodicPattern | None, np.ndarray | None, str]:
    """Solve one fixed-period model; validated pattern + raw solution +
    a probe status (see :class:`ProbeRecord`).

    Most probes are pure feasibility questions, so the model's
    min-in-flight objective is dropped (zero costs): HiGHS can stop at
    the first incumbent instead of proving optimality of a quantity the
    search never uses.  Pattern quality is recovered by the LP jump,
    which minimizes the period of the returned configuration.  The
    lower-bound probe keeps the objective (``feasibility_only=False``):
    on slack instances it is the whole search, and the objective steers
    HiGHS to a first incumbent ~3× faster there.

    A time-limit hit *with* an incumbent still yields a usable pattern
    (status ``incumbent``); without one it is ``timeout`` — explicitly
    not a certificate of infeasibility.
    """
    fault = faults.fire("milp_solve", key=f"T={model.period:.9g}")
    if fault is not None and fault.action == "timeout":
        return None, None, "timeout"  # injected HiGHS budget hit
    res = milp(
        np.zeros_like(model.c) if feasibility_only else model.c,
        constraints=model.constraints,
        integrality=model.integrality,
        bounds=model.bounds,
        options={"time_limit": time_limit, "presolve": True},
    )
    if res.x is None:
        if res.status == 1:
            return None, None, "timeout"
        if res.status == 2:
            return None, None, "infeasible"
        return None, None, "error"
    pattern = _extract_pattern(model, res.x, allocation)
    try:
        pattern.validate(chain, platform)
        pattern.check_memory(chain, platform, tol=CHECK_RTOL)
    except PatternError:
        return None, None, "invalid"  # numerical artifacts: infeasible probe
    status = "ok" if res.success else "incumbent"
    if status == "incumbent":
        # A budget-limited incumbent skipped HiGHS's optimality proof, so
        # the analytic checks above are its only vetting — gate it through
        # the discrete-event verifier before accepting it (rejection is
        # treated like any other invalid probe: conservative infeasible).
        from ..robust.certify import certify_pattern

        cert = certify_pattern(
            chain, platform, pattern, source=f"ilp.incumbent:T={model.period:.9g}"
        )
        if not cert.ok:
            obs.inc("ilp.incumbent_rejected")
            return None, None, "invalid"
    return pattern, res.x, status


def solve_fixed_period(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    period: float,
    *,
    time_limit: float = 60.0,
    skeleton: MilpSkeleton | None = None,
    memory_headroom: float = 0.0,
    schedule_family: str = "1f1b",
) -> PeriodicPattern | None:
    """Feasibility MILP at a fixed period; returns a pattern or ``None``.

    A time-limit hit without an incumbent is reported as infeasible
    (conservative, as in the paper's one-minute ILP budget).  Pass a
    cached ``skeleton`` to skip the period-independent model build.
    """
    try:
        model = build_milp(
            chain, platform, allocation, period,
            skeleton=skeleton, memory_headroom=memory_headroom,
            schedule_family=schedule_family,
        )
    except ValueError:
        return None  # static memory alone exceeds capacity
    pattern, _, _ = _solve_model(chain, platform, allocation, model, time_limit)
    return pattern


def _sequential_period(chain: Chain, platform: Platform, allocation: Allocation) -> float:
    """Period of the one-batch-in-flight schedule (always load-feasible)."""
    total = 0.0
    for i, s in enumerate(allocation.stages):
        total += s.compute(chain)
        if i < allocation.n_stages - 1 and allocation.procs[i] != allocation.procs[i + 1]:
            total += 2.0 * chain.activation(s.end) / platform.bandwidth
    return total


def _reoptimize_period(
    skeleton: MilpSkeleton,
    allocation: Allocation,
    x: np.ndarray,
    t_floor: float,
) -> tuple[float, PeriodicPattern] | None:
    """Fixed-configuration LP: freeze the shifts ``h`` and disjunction
    binaries ``y`` of a feasible MILP solution and minimize ``T`` over the
    start times jointly — the model is linear in ``(t, T)`` once the
    combinatorial choices are fixed.

    Returns the certified minimal period of that configuration and its
    pattern (to be re-validated by the caller), or ``None`` if the LP
    fails.  ``t_floor`` keeps the jump consistent with what the search
    already certified infeasible.
    """
    n_ops = skeleton.n_ops
    t_col = n_ops  # variables: t_0..t_{n-1}, then T
    dur = skeleton.durations
    t_index = skeleton.t_index
    h = {o: int(round(x[skeleton.h_index[o]])) for o in skeleton.ops}
    rows: list[np.ndarray] = []
    rhs: list[float] = []

    def add(coeffs: dict[int, float], ub: float) -> None:
        row = np.zeros(n_ops + 1)
        for col, val in coeffs.items():
            row[col] += val
        rows.append(row)
        rhs.append(ub)

    # dependency u→v: (h_v−h_u)·T + t_v − t_u ≥ d_u
    for u, v in skeleton.dep_edges:
        dh = h[v] - h[u]
        add({t_index[u]: 1.0, t_index[v]: -1.0, t_col: -float(dh)}, -dur[u])
    # disjunctions with y frozen:
    #   t_b − t_a − T·y ≥ d_a − T   and   t_a − t_b + T·y ≥ d_b
    for (a, b), yi in skeleton.y_index.items():
        y = int(round(x[yi]))
        if y == 1:
            add({t_index[a]: 1.0, t_index[b]: -1.0}, -dur[a])
            add({t_index[b]: 1.0, t_index[a]: -1.0, t_col: -1.0}, -dur[b])
        else:
            add({t_index[a]: 1.0, t_index[b]: -1.0, t_col: -1.0}, -dur[a])
            add({t_index[b]: 1.0, t_index[a]: -1.0}, -dur[b])
    # no wrap: t_o ≤ T − d_o
    for o in skeleton.ops:
        add({t_index[o]: 1.0, t_col: -1.0}, -dur[o])
    # memory rows involve only h and y — constant under this freeze, and
    # already satisfied at the probed period; re-checked by the caller.

    c = np.zeros(n_ops + 1)
    c[t_col] = 1.0
    bounds = [(0.0, None)] * n_ops + [(t_floor, None)]
    res = linprog(
        c, A_ub=np.array(rows), b_ub=np.array(rhs), bounds=bounds, method="highs"
    )
    if not res.success or res.x is None:
        return None
    T_lp = float(res.x[t_col])
    pattern = PeriodicPattern(allocation=allocation, period=T_lp)
    for o in skeleton.ops:
        kind, index = o
        pattern.add(
            Op(
                kind=kind,
                index=index,
                resource=skeleton.resources[o],
                start=float(res.x[t_index[o]]),
                duration=dur[o],
                shift=h[o],
            )
        )
    pattern.normalize()
    return T_lp, pattern


def schedule_allocation(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    *,
    rel_tol: float = 5e-3,
    max_probes: int = 20,
    time_limit: float = 60.0,
    reuse_skeleton: bool = True,
    memory_headroom: float = 0.0,
    schedule_family: str = "1f1b",
) -> ILPScheduleResult:
    """Smallest-period valid pattern for ``allocation``.

    The returned period is within ``rel_tol`` of the smallest period the
    MILP can certify feasible.  See the module docstring for the search
    strategy; ``reuse_skeleton=False`` rebuilds every probe's model from
    scratch (same probes, same answer — kept for the equivalence test).
    ``memory_headroom`` derates the capacity of the MILP's memory rows
    (and the 1F1B\\* bracketing hint), so the schedule leaves the
    requested per-GPU margin.  ``schedule_family="zero_bubble"``
    formulates split-backward (F/B/W) models instead; the bracketing
    hint then comes from the zero-bubble contiguous construction.

    Instrumented: the whole search runs under an ``ilp.search`` span,
    each MILP probe/LP jump emits its own span with build/solve
    attributes, and the probe totals land on the metrics registry
    (``ilp.milp_probes``, ``ilp.build_s``, …) when one is active.
    """
    with obs.span(
        "ilp.search",
        n_stages=allocation.n_stages,
        contiguous=allocation.is_contiguous(),
    ) as search_span:
        res = _schedule_allocation(
            chain,
            platform,
            allocation,
            rel_tol,
            max_probes,
            time_limit,
            reuse_skeleton,
            memory_headroom,
            schedule_family,
            search_span,
        )
    obs.inc("ilp.searches")
    t = res.timings
    obs.inc("ilp.milp_probes", t["milp_probes"])
    obs.inc("ilp.milp_timeouts", t["milp_timeouts"])
    obs.inc("ilp.lp_jumps", t["lp_jumps"])
    obs.inc("ilp.lp_failures", t["lp_failures"])
    obs.inc("ilp.build_s", t["build_s"])
    obs.inc("ilp.solve_s", t["solve_s"])
    obs.inc(f"ilp.status.{res.status}")
    return res


def _schedule_allocation(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    rel_tol: float,
    max_probes: int,
    time_limit: float,
    reuse_skeleton: bool,
    memory_headroom: float,
    schedule_family: str,
    search_span,
) -> ILPScheduleResult:
    """The uninstrumented period search; see :func:`schedule_allocation`."""
    lower = allocation.period_lower_bound(chain, platform)
    seq = _sequential_period(chain, platform, allocation)
    trace: list[ProbeRecord] = []

    def result(period: float, pattern: PeriodicPattern | None) -> ILPScheduleResult:
        # any time-limit hit means the outcome is budget-, not
        # mathematics-limited: feasible → "degraded", infeasible →
        # "timeout" (never a silent "infeasible")
        timed_out = any(p.kind == "milp" and p.status == "timeout" for p in trace)
        if pattern is not None:
            status = "degraded" if timed_out else "ok"
        else:
            status = "timeout" if timed_out else "infeasible"
        res = ILPScheduleResult(period, pattern, trace, status)
        search_span.set(
            status=status,
            period=period if period != INF else None,
            milp_probes=res.timings["milp_probes"],
        )
        return res

    # Warm-start database (see repro.warmstart): skeleton templates are
    # keyed *without* the memory capacity — only memory-row bounds
    # involve it, and MilpSkeleton.retarget rebinds them float-identically
    # — and the infeasibility frontier transfers certified-infeasible
    # probes between instances (feasibility is monotone in T and in the
    # capacity).  Gated on ``reuse_skeleton`` so the from-scratch
    # equivalence mode stays exactly from-scratch.
    warm = active_warm() if reuse_skeleton else None
    capacity = effective_capacity(platform.memory, memory_headroom)
    warm_key = None
    skeleton = None
    if warm is not None:
        warm_key = (
            chain_fingerprint(chain),
            tuple((s.start, s.end) for s in allocation.stages),
            tuple(allocation.procs),
            platform.n_procs,
            platform.bandwidth,
            memory_headroom,
        )
        if schedule_family != "1f1b":
            # family-tagged keys never collide with classic entries (the
            # tuple lengths differ), and classic keys stay unchanged
            warm_key = warm_key + (schedule_family,)
        hit = warm.skeletons.hit(warm_key)
        if hit is not None:
            tmpl, tmpl_cap = hit
            obs.inc("warm.skeleton_reuse")
            if tmpl_cap == capacity:
                skeleton = tmpl
            else:
                try:
                    skeleton = tmpl.retarget(capacity)
                except ValueError:
                    # identical to a fresh build's static-memory abort
                    return result(INF, None)
                warm.skeletons.put(warm_key, (skeleton, capacity))
    if skeleton is None:
        try:
            with obs.span("ilp.build_skeleton", n_stages=allocation.n_stages):
                skeleton = build_skeleton(
                    chain, platform, allocation, memory_headroom=memory_headroom,
                    schedule_family=schedule_family,
                )
            obs.inc("ilp.skeleton_builds")
        except ValueError:
            # static memory (weights+buffers) alone exceeds some GPU: no
            # period can ever be feasible
            return result(INF, None)
        if warm is not None:
            warm.skeletons.put(warm_key, (skeleton, capacity))
    probe_skeleton = skeleton if reuse_skeleton else None

    memo: dict[float, bool] = {}
    state = {"lo": lower, "hi": INF, "pattern": None}

    def n_milp_probes() -> int:
        return sum(1 for p in trace if p.kind == "milp")

    def lp_jump(x: np.ndarray) -> None:
        t0 = time.perf_counter()
        jump_status = "ok"
        with obs.span("ilp.lp_jump") as jump_span:
            try:
                out = _reoptimize_period(
                    skeleton, allocation, x, max(lower, state["lo"])
                )
            except (ValueError, ArithmeticError, np.linalg.LinAlgError):
                # SciPy rejects a malformed LP with ValueError; overflow /
                # division artifacts surface as ArithmeticError subclasses
                out, jump_status = None, "error"
            if out is None and jump_status == "ok":
                jump_status = "infeasible"
            if out is not None:
                T_lp, pattern = out
                if T_lp < state["hi"] * (1 - 1e-12):
                    try:
                        pattern.validate(chain, platform)
                        pattern.check_memory(chain, platform, tol=CHECK_RTOL)
                    except PatternError:
                        out, jump_status = None, "invalid"
                    else:
                        state["hi"], state["pattern"] = T_lp, pattern
            solve_s = time.perf_counter() - t0
            jump_span.set(
                T=state["hi"], status=jump_status,
                feasible=out is not None, solve_s=solve_s,
            )
        trace.append(
            ProbeRecord(
                period=state["hi"],
                feasible=out is not None,
                build_s=0.0,
                solve_s=solve_s,
                kind="lp",
                status=jump_status,
            )
        )

    def probe(T: float, *, jump: bool = True, feasibility_only: bool = True) -> bool:
        if T in memo:
            obs.inc("ilp.memo_hits")
            return memo[T]
        if warm is not None and warm.frontier_dominated(warm_key, T, capacity):
            # a neighbor certified (T', M') infeasible with T ≤ T' and
            # capacity ≤ M': this probe is infeasible by monotonicity —
            # record it exactly as a solved infeasible probe would be
            obs.inc("warm.probes_saved")
            if not any(p.kind == "milp" for p in trace):
                obs.inc("warm.bracket_hits")
            trace.append(
                ProbeRecord(
                    period=T,
                    feasible=False,
                    build_s=0.0,
                    solve_s=0.0,
                    status="infeasible",
                )
            )
            memo[T] = False
            state["lo"] = max(state["lo"], T)
            return False
        with obs.span(
            "ilp.probe", T=T, feasibility_only=feasibility_only
        ) as probe_span:
            t0 = time.perf_counter()
            model = build_milp(
                chain, platform, allocation, T,
                skeleton=probe_skeleton, memory_headroom=memory_headroom,
                schedule_family=schedule_family,
            )
            t1 = time.perf_counter()
            pattern, x, probe_status = _solve_model(
                chain, platform, allocation, model, time_limit,
                feasibility_only=feasibility_only,
            )
            ok = pattern is not None
            build_s, solve_s = t1 - t0, time.perf_counter() - t1
            probe_span.set(
                build_s=build_s, solve_s=solve_s,
                status=probe_status, feasible=ok,
            )
        trace.append(
            ProbeRecord(
                period=T,
                feasible=ok,
                build_s=build_s,
                solve_s=solve_s,
                status=probe_status,
            )
        )
        memo[T] = ok
        if ok:
            if T < state["hi"]:
                state["hi"], state["pattern"] = T, pattern
            if jump:
                lp_jump(x)
        else:
            state["lo"] = max(state["lo"], T)
            if warm is not None and probe_status == "infeasible":
                # only HiGHS-certified infeasibility enters the frontier;
                # "timeout"/"invalid"/"error" never transfer
                warm.frontier_add(warm_key, T, capacity)
        return ok

    # 1. the lower bound itself (roomy instances end here)
    if probe(lower, jump=False, feasibility_only=False):
        return result(lower, state["pattern"])

    # 2. bracket a feasible upper bound: a contiguous-construction hint
    #    (1F1B* or zero-bubble, matching the family), then an accelerating
    #    gallop from the lower bound, capped by the sequential period
    ladder: list[float] = []
    if allocation.n_stages <= platform.n_procs:
        if schedule_family == "zero_bubble":
            from ..algorithms.zero_bubble import min_feasible_period_zb

            star = min_feasible_period_zb(
                chain, platform, allocation.partitioning,
                build=False, memory_headroom=memory_headroom,
            )
        else:
            from ..algorithms.onef1b import min_feasible_period

            star = min_feasible_period(
                chain, platform, allocation.partitioning,
                build=False, memory_headroom=memory_headroom,
            )
        if star is not None and lower < star.period < seq:
            ladder.append(star.period)
    step = GALLOP_FACTOR
    g = lower * step
    while g < seq * 0.999:
        ladder.append(g)
        step *= step  # exponent doubles: 1.25, 1.25^2, 1.25^4, …
        g = g * step
    ladder = sorted(set(ladder)) + [seq]

    for T in ladder:
        if T <= state["lo"] or n_milp_probes() >= max_probes:
            continue
        if probe(T):
            break
        if T >= seq:
            return result(INF, None)
    if state["pattern"] is None:  # probe budget exhausted while bracketing
        return result(INF, None)

    # 3. certify the gap: asymmetric probes just under the incumbent close
    #    it in one infeasible probe; repeated feasible ones (the incumbent
    #    was far from optimal and the LP jump could not shrink it) fall
    #    back to plain bisection
    streak = 0
    while n_milp_probes() < max_probes:
        lo, hi = state["lo"], state["hi"]
        if hi - lo <= rel_tol * lo:
            break
        T = hi / (1 + rel_tol) if streak < 2 else 0.5 * (lo + hi)
        if not lo < T < hi:
            T = 0.5 * (lo + hi)
            if not lo < T < hi:
                break
        if probe(T):
            streak += 1
        else:
            streak = 0
    return result(state["hi"], state["pattern"])
