"""MILP formulation of periodic-pattern scheduling at a fixed period (§4.3).

Adapted from the ILP of ref. [1] to the stage chains produced by MadPipe's
phase 1: stages are super-layers with durations ``U_F(s)/U_B(s)``,
communication ops carry ``a_s`` (the boundary activation), while memory
constraints charge the *stored activation cost* ``ā_s = Σ_{i∈s} a_{i-1}``.

For a fixed period ``T`` the pattern semantics of §3 become linear:

* start times ``t_o ∈ [0, T − d_o]`` (operations do not wrap) and integer
  index shifts ``h_o ≥ 0``;
* a same-batch dependency ``u → v`` is
  ``(h_v − h_u)·T + t_v − t_u ≥ d_u``;
* two ops on one resource get a disjunction binary ``y``
  (``y = 1`` ⇔ first op precedes the second inside the period);
* the per-GPU memory peak is checked just after every forward start,
  where the number of active batches of stage ``s'`` is
  ``h_{B_{s'}} − h_{F_{s'}} + [F_{s'} before event] − [B_{s'} before
  event]`` and the bracket indicators are exactly the ``y`` binaries of
  the GPU's resource disjunctions.

The objective minimizes the total number of in-flight batches
``Σ_s (h_{B_s} − h_{F_s})``, which steers the solver toward low-memory
patterns among the feasible ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint

from ..core.chain import Chain
from ..core.memory import stage_memory_breakdown
from ..core.partition import Allocation
from ..core.pattern import gpu, link
from ..core.platform import Platform

__all__ = ["ScheduleMILP", "build_milp"]

OpKey = tuple[str, int]


@dataclass
class ScheduleMILP:
    """A ready-to-solve MILP instance for one (allocation, period) pair."""

    period: float
    ops: list[OpKey]
    durations: dict[OpKey, float]
    resources: dict[OpKey, tuple]
    t_index: dict[OpKey, int]
    h_index: dict[OpKey, int]
    y_index: dict[tuple[OpKey, OpKey], int]
    c: np.ndarray
    constraints: list[LinearConstraint]
    integrality: np.ndarray
    bounds: Bounds

    @property
    def n_vars(self) -> int:
        return len(self.c)


def _operations(
    chain: Chain, platform: Platform, allocation: Allocation
) -> tuple[list[OpKey], dict[OpKey, float], dict[OpKey, tuple]]:
    ops: list[OpKey] = []
    dur: dict[OpKey, float] = {}
    res: dict[OpKey, tuple] = {}
    stages, procs = allocation.stages, allocation.procs
    for i, s in enumerate(stages):
        for kind, d in (("F", s.forward(chain)), ("B", s.backward(chain))):
            key = (kind, i)
            ops.append(key)
            dur[key] = d
            res[key] = gpu(procs[i])
    for i in range(len(stages) - 1):
        if procs[i] == procs[i + 1]:
            continue
        half = chain.activation(stages[i].end) / platform.bandwidth
        for kind in ("CF", "CB"):
            key = (kind, i)
            ops.append(key)
            dur[key] = half
            res[key] = link(procs[i], procs[i + 1])
    return ops, dur, res


def _dependencies(allocation: Allocation, res: dict[OpKey, tuple]) -> list[tuple[OpKey, OpKey]]:
    n = allocation.n_stages
    edges: list[tuple[OpKey, OpKey]] = []
    for i in range(n - 1):
        if ("CF", i) in res:
            edges.append((("F", i), ("CF", i)))
            edges.append((("CF", i), ("F", i + 1)))
            edges.append((("B", i + 1), ("CB", i)))
            edges.append((("CB", i), ("B", i)))
        else:
            edges.append((("F", i), ("F", i + 1)))
            edges.append((("B", i + 1), ("B", i)))
    for i in range(n):
        edges.append((("F", i), ("B", i)))
    return edges


def build_milp(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    period: float,
    *,
    max_shift: int | None = None,
) -> ScheduleMILP:
    """Assemble the MILP for scheduling ``allocation`` with period ``T``."""
    if period <= 0:
        raise ValueError("period must be positive")
    T = period
    ops, dur, res = _operations(chain, platform, allocation)
    n_ops = len(ops)
    if max_shift is None:
        max_shift = 2 * n_ops  # generous: depth never exceeds the op count

    t_index = {o: i for i, o in enumerate(ops)}
    h_index = {o: n_ops + i for i, o in enumerate(ops)}
    n_vars = 2 * n_ops

    # resource disjunction binaries
    by_resource: dict[tuple, list[OpKey]] = {}
    for o in ops:
        by_resource.setdefault(res[o], []).append(o)
    y_index: dict[tuple[OpKey, OpKey], int] = {}
    for r_ops in by_resource.values():
        for a_i in range(len(r_ops)):
            for b_i in range(a_i + 1, len(r_ops)):
                y_index[(r_ops[a_i], r_ops[b_i])] = n_vars
                n_vars += 1

    rows: list[dict[int, float]] = []
    lbs: list[float] = []
    ubs: list[float] = []

    def add_row(coeffs: dict[int, float], lb: float, ub: float = np.inf) -> None:
        rows.append(coeffs)
        lbs.append(lb)
        ubs.append(ub)

    # dependencies: T*(h_v - h_u) + t_v - t_u >= d_u
    for u, v in _dependencies(allocation, res):
        coeffs = {h_index[v]: T, h_index[u]: -T}
        # u == v is impossible; t coefficients may collide only if u == v
        coeffs[t_index[v]] = coeffs.get(t_index[v], 0.0) + 1.0
        coeffs[t_index[u]] = coeffs.get(t_index[u], 0.0) - 1.0
        add_row(coeffs, dur[u])

    # resource disjunctions:
    #   a before b (y=1): t_b - t_a - T*y >= d_a - T
    #   b before a (y=0): t_a - t_b + T*y >= d_b
    for (a, b), yi in y_index.items():
        add_row({t_index[b]: 1.0, t_index[a]: -1.0, yi: -T}, dur[a] - T)
        add_row({t_index[a]: 1.0, t_index[b]: -1.0, yi: T}, dur[b])

    # memory: for each GPU p and each stage s on p, just after F_s starts
    def order_var(before: OpKey, after: OpKey) -> tuple[int, float, float]:
        """Return (var, coeff, const) such that [before precedes after]
        equals coeff*y[var] + const."""
        if (before, after) in y_index:
            return y_index[(before, after)], 1.0, 0.0
        return y_index[(after, before)], -1.0, 1.0

    M = platform.memory
    for p in allocation.procs_used():
        stage_idxs = allocation.stages_on_proc(p)
        static = 0.0
        for i in stage_idxs:
            s = allocation.stages[i]
            bd = stage_memory_breakdown(chain, s.start, s.end, 0)
            static += bd.weights + bd.buffers
        for s_i in stage_idxs:  # event: start of F_{s_i}
            coeffs: dict[int, float] = {}
            const = static
            for s_j in stage_idxs:
                abar = allocation.stages[s_j].stored_activations(chain)
                if abar == 0.0:
                    continue
                coeffs[h_index[("B", s_j)]] = coeffs.get(h_index[("B", s_j)], 0.0) + abar
                coeffs[h_index[("F", s_j)]] = coeffs.get(h_index[("F", s_j)], 0.0) - abar
                if s_j == s_i:
                    const += abar  # F_s itself has just started
                else:
                    var, coef, cst = order_var(("F", s_j), ("F", s_i))
                    coeffs[var] = coeffs.get(var, 0.0) + abar * coef
                    const += abar * cst
                var, coef, cst = order_var(("B", s_j), ("F", s_i))
                coeffs[var] = coeffs.get(var, 0.0) - abar * coef
                const -= abar * cst
            if coeffs:
                add_row(coeffs, -np.inf, M - const)
            elif const > M:
                raise ValueError(
                    f"static memory {const:.3g} exceeds capacity on GPU {p}"
                )

    # assemble
    A = np.zeros((len(rows), n_vars))
    for r, coeffs in enumerate(rows):
        for idx, val in coeffs.items():
            A[r, idx] = val
    constraints = [LinearConstraint(A, np.array(lbs), np.array(ubs))]

    lb = np.zeros(n_vars)
    ub = np.empty(n_vars)
    for o in ops:
        ub[t_index[o]] = max(T - dur[o], 0.0)
        ub[h_index[o]] = max_shift
    for yi in y_index.values():
        ub[yi] = 1.0
    # anchor: F of stage 0 has shift 0 (the paper's convention)
    ub[h_index[("F", 0)]] = 0.0

    integrality = np.zeros(n_vars)
    for o in ops:
        integrality[h_index[o]] = 1
    for yi in y_index.values():
        integrality[yi] = 1

    c = np.zeros(n_vars)
    for i in range(allocation.n_stages):
        c[h_index[("B", i)]] += 1.0
        c[h_index[("F", i)]] -= 1.0

    return ScheduleMILP(
        period=T,
        ops=ops,
        durations=dur,
        resources=res,
        t_index=t_index,
        h_index=h_index,
        y_index=y_index,
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
    )
