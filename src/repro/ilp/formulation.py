"""MILP formulation of periodic-pattern scheduling at a fixed period (§4.3).

Adapted from the ILP of ref. [1] to the stage chains produced by MadPipe's
phase 1: stages are super-layers with durations ``U_F(s)/U_B(s)``,
communication ops carry ``a_s`` (the boundary activation), while memory
constraints charge the *stored activation cost* ``ā_s = Σ_{i∈s} a_{i-1}``.

For a fixed period ``T`` the pattern semantics of §3 become linear:

* start times ``t_o ∈ [0, T − d_o]`` (operations do not wrap) and integer
  index shifts ``h_o ≥ 0``;
* a same-batch dependency ``u → v`` is
  ``(h_v − h_u)·T + t_v − t_u ≥ d_u``;
* two ops on one resource get a disjunction binary ``y``
  (``y = 1`` ⇔ first op precedes the second inside the period);
* the per-GPU memory peak is checked just after every forward start,
  where the number of active batches of stage ``s'`` is
  ``h_{B_{s'}} − h_{F_{s'}} + [F_{s'} before event] − [B_{s'} before
  event]`` and the bracket indicators are exactly the ``y`` binaries of
  the GPU's resource disjunctions.

The objective minimizes the total number of in-flight batches
``Σ_s (h_B_s − h_F_s)``, which steers the solver toward low-memory
patterns among the feasible ones.

Because ``schedule_allocation`` probes many periods for one allocation,
the model is split in two: :func:`build_skeleton` assembles everything
that does not depend on ``T`` (operations, dependency edges, the dense
constraint matrix with its T-independent coefficients, memory rows,
variable classes) once per allocation, and
:meth:`MilpSkeleton.instantiate` fills in the few T-scaled coefficients
(``±T`` on shift and disjunction variables, ``d_a − T`` disjunction
bounds, ``T − d_o`` start-time bounds) in O(nnz) per probe.
:func:`build_milp` is the composition of the two and produces the same
matrices float-for-float as building from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
from scipy.optimize import Bounds, LinearConstraint

from ..core.chain import Chain
from ..core.memory import effective_capacity, stage_memory_breakdown
from ..core.partition import Allocation
from ..core.pattern import gpu, link, split_backward
from ..core.platform import Platform
from ..obs.metrics import inc as _metric_inc

__all__ = ["ScheduleMILP", "MilpSkeleton", "build_skeleton", "build_milp"]

OpKey = tuple[str, int]


@dataclass
class ScheduleMILP:
    """A ready-to-solve MILP instance for one (allocation, period) pair."""

    period: float
    ops: list[OpKey]
    durations: dict[OpKey, float]
    resources: dict[OpKey, tuple]
    t_index: dict[OpKey, int]
    h_index: dict[OpKey, int]
    y_index: dict[tuple[OpKey, OpKey], int]
    c: np.ndarray
    constraints: list[LinearConstraint]
    integrality: np.ndarray
    bounds: Bounds

    @property
    def n_vars(self) -> int:
        return len(self.c)


def _operations(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    *,
    schedule_family: str = "1f1b",
) -> tuple[list[OpKey], dict[OpKey, float], dict[OpKey, tuple]]:
    ops: list[OpKey] = []
    dur: dict[OpKey, float] = {}
    res: dict[OpKey, tuple] = {}
    stages, procs = allocation.stages, allocation.procs
    for i, s in enumerate(stages):
        if schedule_family == "zero_bubble":
            d_b, d_w = split_backward(s.backward(chain))
            stage_ops = (("F", s.forward(chain)), ("B", d_b), ("W", d_w))
        else:
            stage_ops = (("F", s.forward(chain)), ("B", s.backward(chain)))
        for kind, d in stage_ops:
            key = (kind, i)
            ops.append(key)
            dur[key] = d
            res[key] = gpu(procs[i])
    for i in range(len(stages) - 1):
        if procs[i] == procs[i + 1]:
            continue
        half = chain.activation(stages[i].end) / platform.bandwidth
        for kind in ("CF", "CB"):
            key = (kind, i)
            ops.append(key)
            dur[key] = half
            res[key] = link(procs[i], procs[i + 1])
    return ops, dur, res


def _dependencies(allocation: Allocation, res: dict[OpKey, tuple]) -> list[tuple[OpKey, OpKey]]:
    n = allocation.n_stages
    edges: list[tuple[OpKey, OpKey]] = []
    for i in range(n - 1):
        if ("CF", i) in res:
            edges.append((("F", i), ("CF", i)))
            edges.append((("CF", i), ("F", i + 1)))
            edges.append((("B", i + 1), ("CB", i)))
            edges.append((("CB", i), ("B", i)))
        else:
            edges.append((("F", i), ("F", i + 1)))
            edges.append((("B", i + 1), ("B", i)))
    for i in range(n):
        edges.append((("F", i), ("B", i)))
        if ("W", i) in res:
            edges.append((("B", i), ("W", i)))
    return edges


@dataclass
class MilpSkeleton:
    """Period-independent structure of the scheduling MILP for one
    allocation, plus the recipe to reparametrize it at any period.

    ``a_const`` holds every T-independent coefficient; the T-scaled
    entries live at ``(t_rows, t_cols)`` with per-entry factors
    ``t_scale`` (each such slot is zero in ``a_const`` and appears only
    once, so plain fancy-index assignment reconstructs the full matrix).
    Row lower bounds decompose as ``lb_const + lb_scale·T``; row upper
    bounds are T-independent.
    """

    ops: list[OpKey]
    durations: dict[OpKey, float]
    resources: dict[OpKey, tuple]
    t_index: dict[OpKey, int]
    h_index: dict[OpKey, int]
    y_index: dict[tuple[OpKey, OpKey], int]
    dep_edges: list[tuple[OpKey, OpKey]]
    max_shift: int
    a_const: np.ndarray  # (n_rows, n_vars)
    t_rows: np.ndarray
    t_cols: np.ndarray
    t_scale: np.ndarray
    lb_const: np.ndarray
    lb_scale: np.ndarray
    row_ub: np.ndarray
    var_ub: np.ndarray  # h/y/anchor bounds; t slots overwritten per period
    dur_arr: np.ndarray  # durations in t-variable order
    integrality: np.ndarray
    c: np.ndarray
    # memory-row metadata for capacity retargeting: the rows whose upper
    # bound is ``M − const`` plus the T- and M-independent ``const`` per
    # row, and the coefficient-free per-GPU static checks in build order.
    mem_rows: np.ndarray | None = None
    mem_const: np.ndarray | None = None
    static_checks: list[tuple[int, float]] = field(default_factory=list)

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    @property
    def n_vars(self) -> int:
        return len(self.c)

    def instantiate(self, period: float) -> ScheduleMILP:
        """The full MILP at ``period`` — identical float-for-float to a
        from-scratch build."""
        if period <= 0:
            raise ValueError("period must be positive")
        T = period
        A = self.a_const.copy()
        A[self.t_rows, self.t_cols] = self.t_scale * T
        lb_rows = self.lb_const + self.lb_scale * T
        constraints = [LinearConstraint(A, lb_rows, self.row_ub.copy())]

        ub = self.var_ub.copy()
        ub[: self.n_ops] = np.maximum(T - self.dur_arr, 0.0)
        # re-anchor: F of stage 0 has shift 0 (the paper's convention)
        ub[self.h_index[("F", 0)]] = 0.0

        return ScheduleMILP(
            period=T,
            ops=self.ops,
            durations=self.durations,
            resources=self.resources,
            t_index=self.t_index,
            h_index=self.h_index,
            y_index=self.y_index,
            c=self.c,
            constraints=constraints,
            integrality=self.integrality,
            bounds=Bounds(np.zeros(self.n_vars), ub),
        )

    def retarget(self, capacity: float) -> "MilpSkeleton":
        """The same skeleton with its memory rows rebound to a new
        per-GPU ``capacity`` (already derated — pass the output of
        :func:`repro.core.memory.effective_capacity`).

        Only the memory-row upper bounds involve the capacity, as
        ``capacity − const``; that expression is recomputed here from
        the stored constants with the exact float operation of a fresh
        :func:`build_skeleton`, so the result is float-identical to
        rebuilding from scratch — including the fresh build's
        ``ValueError`` when static memory alone exceeds the new
        capacity (checks replayed in build order with the identical
        message).  Every other array is shared read-only with ``self``
        (:meth:`instantiate` copies before mutating).
        """
        for p, const in self.static_checks:
            if const > capacity:
                raise ValueError(
                    f"static memory {const:.3g} exceeds capacity on GPU {p}"
                )
        row_ub = self.row_ub.copy()
        if self.mem_rows is not None and len(self.mem_rows):
            row_ub[self.mem_rows] = capacity - self.mem_const
        return replace(self, row_ub=row_ub)


def build_skeleton(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    *,
    max_shift: int | None = None,
    memory_headroom: float = 0.0,
    schedule_family: str = "1f1b",
) -> MilpSkeleton:
    """Assemble the period-independent part of the MILP for ``allocation``.

    Raises ``ValueError`` when static memory (weights + buffers) alone
    exceeds some GPU's capacity — no period can fix that.  A nonzero
    ``memory_headroom`` derates every GPU's capacity in the memory rows
    (see :func:`repro.core.memory.effective_capacity`), so the solved
    schedule is guaranteed to leave that margin free.

    ``schedule_family="zero_bubble"`` formulates the split-backward model:
    every stage carries ``F``/``B``/``W`` ops with ``B → W`` dependency
    rows, activations are freed by ``W`` instead of ``B``, memory events
    are checked after ``B`` starts as well (that is where grad-input
    buffers allocate), and the objective minimizes ``Σ (h_W − h_F)``.
    """
    if schedule_family not in ("1f1b", "zero_bubble"):
        raise ValueError(f"unknown schedule family {schedule_family!r}")
    ops, dur, res = _operations(
        chain, platform, allocation, schedule_family=schedule_family
    )
    n_ops = len(ops)
    if max_shift is None:
        max_shift = 2 * n_ops  # generous: depth never exceeds the op count

    t_index = {o: i for i, o in enumerate(ops)}
    h_index = {o: n_ops + i for i, o in enumerate(ops)}
    n_vars = 2 * n_ops

    # resource disjunction binaries
    by_resource: dict[tuple, list[OpKey]] = {}
    for o in ops:
        by_resource.setdefault(res[o], []).append(o)
    y_index: dict[tuple[OpKey, OpKey], int] = {}
    for r_ops in by_resource.values():
        for a_i in range(len(r_ops)):
            for b_i in range(a_i + 1, len(r_ops)):
                y_index[(r_ops[a_i], r_ops[b_i])] = n_vars
                n_vars += 1

    rows: list[dict[int, float]] = []
    lbs: list[float] = []
    ubs: list[float] = []
    lb_scales: list[float] = []
    t_entries: list[tuple[int, int, float]] = []  # (row, col, scale): adds scale·T

    def add_row(
        coeffs: dict[int, float],
        lb: float,
        ub: float = np.inf,
        *,
        lb_scale: float = 0.0,
    ) -> None:
        rows.append(coeffs)
        lbs.append(lb)
        ubs.append(ub)
        lb_scales.append(lb_scale)

    # dependencies: T*(h_v - h_u) + t_v - t_u >= d_u
    dep_edges = _dependencies(allocation, res)
    for u, v in dep_edges:
        r = len(rows)
        t_entries.append((r, h_index[v], 1.0))
        t_entries.append((r, h_index[u], -1.0))
        # u == v is impossible; t coefficients may collide only if u == v
        add_row({t_index[v]: 1.0, t_index[u]: -1.0}, dur[u])

    # resource disjunctions:
    #   a before b (y=1): t_b - t_a - T*y >= d_a - T
    #   b before a (y=0): t_a - t_b + T*y >= d_b
    for (a, b), yi in y_index.items():
        r = len(rows)
        t_entries.append((r, yi, -1.0))
        add_row({t_index[b]: 1.0, t_index[a]: -1.0}, dur[a], lb_scale=-1.0)
        t_entries.append((r + 1, yi, 1.0))
        add_row({t_index[a]: 1.0, t_index[b]: -1.0}, dur[b])

    # memory: for each GPU p and each stage s on p, just after F_s starts
    def order_var(before: OpKey, after: OpKey) -> tuple[int, float, float]:
        """Return (var, coeff, const) such that [before precedes after]
        equals coeff*y[var] + const."""
        if (before, after) in y_index:
            return y_index[(before, after)], 1.0, 0.0
        return y_index[(after, before)], -1.0, 1.0

    M = effective_capacity(platform.memory, memory_headroom)
    split = schedule_family == "zero_bubble"
    mem_rows: list[int] = []
    mem_consts: list[float] = []
    static_checks: list[tuple[int, float]] = []
    for p in sorted(allocation.procs_used()):
        stage_idxs = allocation.stages_on_proc(p)
        static = 0.0
        for i in stage_idxs:
            s = allocation.stages[i]
            bd = stage_memory_breakdown(chain, s.start, s.end, 0)
            static += bd.weights + bd.buffers

        def add_event(event: OpKey, p: int = p, stage_idxs=stage_idxs, static=static) -> None:
            coeffs: dict[int, float] = {}
            const = static
            for s_j in stage_idxs:
                # activations: allocated at F start, freed by B (1F1B) or
                # W (split backward, which consumes them too)
                free = ("W", s_j) if split else ("B", s_j)
                abar = allocation.stages[s_j].stored_activations(chain)
                if abar != 0.0:
                    coeffs[h_index[free]] = coeffs.get(h_index[free], 0.0) + abar
                    coeffs[h_index[("F", s_j)]] = coeffs.get(h_index[("F", s_j)], 0.0) - abar
                    if ("F", s_j) == event:
                        const += abar  # the event op itself has just started
                    else:
                        var, coef, cst = order_var(("F", s_j), event)
                        coeffs[var] = coeffs.get(var, 0.0) + abar * coef
                        const += abar * cst
                    var, coef, cst = order_var(free, event)
                    coeffs[var] = coeffs.get(var, 0.0) - abar * coef
                    const -= abar * cst
                if split:
                    # grad-input buffers: allocated at B start, freed at W
                    ghat = allocation.stages[s_j].grad_buffer(chain)
                    if ghat != 0.0:
                        coeffs[h_index[("W", s_j)]] = (
                            coeffs.get(h_index[("W", s_j)], 0.0) + ghat
                        )
                        coeffs[h_index[("B", s_j)]] = (
                            coeffs.get(h_index[("B", s_j)], 0.0) - ghat
                        )
                        if ("B", s_j) == event:
                            const += ghat
                        else:
                            var, coef, cst = order_var(("B", s_j), event)
                            coeffs[var] = coeffs.get(var, 0.0) + ghat * coef
                            const += ghat * cst
                        var, coef, cst = order_var(("W", s_j), event)
                        coeffs[var] = coeffs.get(var, 0.0) - ghat * coef
                        const -= ghat * cst
            if coeffs:
                mem_rows.append(len(rows))
                mem_consts.append(const)
                add_row(coeffs, -np.inf, M - const)
            else:
                static_checks.append((p, const))
                if const > M:
                    raise ValueError(
                        f"static memory {const:.3g} exceeds capacity on GPU {p}"
                    )

        for s_i in stage_idxs:  # events: F starts, plus B starts when split
            add_event(("F", s_i))
            if split:
                add_event(("B", s_i))

    # assemble the T-independent matrix; T-scaled slots stay zero here
    a_const = np.zeros((len(rows), n_vars))
    for r, coeffs in enumerate(rows):
        for idx, val in coeffs.items():
            a_const[r, idx] = val
    t_rows = np.array([e[0] for e in t_entries], dtype=np.intp)
    t_cols = np.array([e[1] for e in t_entries], dtype=np.intp)
    t_scale = np.array([e[2] for e in t_entries])

    var_ub = np.empty(n_vars)
    dur_arr = np.array([dur[o] for o in ops])
    for o in ops:
        var_ub[h_index[o]] = max_shift
    for yi in y_index.values():
        var_ub[yi] = 1.0

    integrality = np.zeros(n_vars)
    for o in ops:
        integrality[h_index[o]] = 1
    for yi in y_index.values():
        integrality[yi] = 1

    c = np.zeros(n_vars)
    for i in range(allocation.n_stages):
        free = ("W", i) if split else ("B", i)
        c[h_index[free]] += 1.0
        c[h_index[("F", i)]] -= 1.0

    return MilpSkeleton(
        ops=ops,
        durations=dur,
        resources=res,
        t_index=t_index,
        h_index=h_index,
        y_index=y_index,
        dep_edges=dep_edges,
        max_shift=max_shift,
        a_const=a_const,
        t_rows=t_rows,
        t_cols=t_cols,
        t_scale=t_scale,
        lb_const=np.array(lbs),
        lb_scale=np.array(lb_scales),
        row_ub=np.array(ubs),
        var_ub=var_ub,
        dur_arr=dur_arr,
        integrality=integrality,
        c=c,
        mem_rows=np.array(mem_rows, dtype=np.intp),
        mem_const=np.array(mem_consts),
        static_checks=static_checks,
    )


def build_milp(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    period: float,
    *,
    max_shift: int | None = None,
    skeleton: MilpSkeleton | None = None,
    memory_headroom: float = 0.0,
    schedule_family: str = "1f1b",
) -> ScheduleMILP:
    """Assemble the MILP for scheduling ``allocation`` with period ``T``.

    Pass a cached ``skeleton`` (from :func:`build_skeleton`) to skip the
    period-independent work; the result is identical either way.
    ``memory_headroom`` and ``schedule_family`` only matter when no
    skeleton is supplied (a cached skeleton already has them baked in).
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if skeleton is None:
        skeleton = build_skeleton(
            chain, platform, allocation,
            max_shift=max_shift, memory_headroom=memory_headroom,
            schedule_family=schedule_family,
        )
    _metric_inc("ilp.model_builds")
    return skeleton.instantiate(period)
