"""Phase-2 scheduling ILP (periodic pattern MILP on HiGHS)."""

from .formulation import ScheduleMILP, build_milp
from .solver import ILPScheduleResult, schedule_allocation, solve_fixed_period

__all__ = [
    "ScheduleMILP",
    "build_milp",
    "ILPScheduleResult",
    "schedule_allocation",
    "solve_fixed_period",
]
