"""Phase-2 scheduling ILP (periodic pattern MILP on HiGHS)."""

from .formulation import MilpSkeleton, ScheduleMILP, build_milp, build_skeleton
from .solver import (
    ILPScheduleResult,
    ProbeRecord,
    schedule_allocation,
    solve_fixed_period,
)
from .solver_reference import schedule_allocation_reference

__all__ = [
    "MilpSkeleton",
    "ScheduleMILP",
    "build_milp",
    "build_skeleton",
    "ILPScheduleResult",
    "ProbeRecord",
    "schedule_allocation",
    "schedule_allocation_reference",
    "solve_fixed_period",
]
