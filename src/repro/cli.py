"""Command-line interface: profile networks, schedule profiles, inspect.

Usage::

    python -m repro profile resnet50 --image-size 1000 --batch 8 -o rn50.json
    python -m repro report rn50.json --top 10
    python -m repro schedule rn50.json -p 4 -m 8 -b 12 --gantt -o sched.json
"""

from __future__ import annotations

import argparse
import sys

from .algorithms import Discretization, madpipe, pipedream
from .core.platform import Platform
from .core.serialize import save_pattern
from .experiments.scenarios import network_builders
from .profiling import V100, load_chain, profile_model, save_chain
from .models import linearize, vgg16
from .viz.gantt import render_gantt
from .viz.report import chain_report, schedule_report

__all__ = ["main"]

_NETWORKS = dict(network_builders(), vgg16=vgg16)


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        builder = _NETWORKS[args.network]
    except KeyError:
        print(f"unknown network {args.network!r}; choose from {sorted(_NETWORKS)}")
        return 2
    graph = builder(image_size=args.image_size)
    profile_model(graph, V100, args.batch)
    chain = linearize(graph)
    save_chain(chain, args.out)
    print(
        f"wrote {args.out}: {chain.L} layers, U = {chain.total_compute():.4f}s"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    chain = load_chain(args.profile)
    print(chain_report(chain, top=args.top))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    chain = load_chain(args.profile)
    platform = Platform.of(args.procs, args.memory_gb, args.bandwidth_gbps)
    if args.algorithm == "pipedream":
        res = pipedream(chain, platform)
        pattern = res.schedule.pattern if res.feasible else None
        phase1 = None
        ilp = None
    else:
        mp = madpipe(
            chain,
            platform,
            grid=getattr(Discretization, args.grid)(),
            ilp_time_limit=args.ilp_time_limit,
        )
        pattern = mp.pattern
        phase1 = mp.phase1
        ilp = mp.ilp
    if args.stats:
        if phase1 is None:
            print("solver stats: n/a (pipedream has no DP phase)")
        else:
            print(
                f"phase-1 DP: {phase1.states} states over "
                f"{len(phase1.history)} probes, {phase1.wall_time_s:.2f}s wall, "
                f"pruned {phase1.pruned_cap} candidates by period cap, "
                f"{phase1.pruned_mem} by memory"
            )
            if ilp is not None:
                t = ilp.timings
                print(
                    f"phase-2 ILP: {t['milp_probes']} MILP probes, "
                    f"{t['lp_jumps']} LP jumps, build {t['build_s']:.3f}s, "
                    f"solve {t['solve_s']:.3f}s"
                )
    if pattern is None:
        print("no memory-feasible schedule found")
        return 1
    print(schedule_report(chain, platform, pattern))
    if args.gantt:
        print()
        print(render_gantt(pattern, width=args.width))
    if args.out:
        save_pattern(pattern, args.out)
        print(f"\nwrote schedule to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="profile a zoo network to a JSON chain")
    p.add_argument("network", help=f"one of {sorted(_NETWORKS)}")
    p.add_argument("--image-size", type=int, default=1000)
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("-o", "--out", default="chain.json")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("report", help="tabulate a profiled chain")
    p.add_argument("profile")
    p.add_argument("--top", type=int, default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("schedule", help="schedule a profile on a platform")
    p.add_argument("profile")
    p.add_argument("-p", "--procs", type=int, required=True)
    p.add_argument("-m", "--memory-gb", type=float, required=True)
    p.add_argument("-b", "--bandwidth-gbps", type=float, default=12.0)
    p.add_argument(
        "-a", "--algorithm", choices=("madpipe", "pipedream"), default="madpipe"
    )
    p.add_argument(
        "--grid", choices=("coarse", "default", "paper"), default="default"
    )
    p.add_argument("--ilp-time-limit", type=float, default=60.0)
    p.add_argument(
        "--stats",
        action="store_true",
        help="print solver diagnostics (DP states/pruning, ILP probe timings)",
    )
    p.add_argument("--gantt", action="store_true")
    p.add_argument("--width", type=int, default=100)
    p.add_argument("-o", "--out", default=None)
    p.set_defaults(func=_cmd_schedule)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
