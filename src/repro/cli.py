"""Command-line interface: profile networks, schedule profiles, inspect.

Usage::

    python -m repro profile resnet50 --image-size 1000 --batch 8 -o rn50.json
    python -m repro report rn50.json --top 10
    python -m repro schedule rn50.json -p 4 -m 8 -b 12 --gantt -o sched.json
    python -m repro sweep --networks toy8 --procs 2 4 --out grid.jsonl --resume
    python -m repro cache verify grid.jsonl --fix
"""

from __future__ import annotations

import argparse
import sys

from .algorithms import Discretization, madpipe, pipedream
from .core.platform import Platform
from .core.serialize import save_pattern
from .experiments.scenarios import network_builders
from .profiling import V100, load_chain, profile_model, save_chain
from .models import linearize, vgg16
from .viz.gantt import render_gantt
from .viz.report import chain_report, schedule_report

__all__ = ["main"]

_NETWORKS = dict(network_builders(), vgg16=vgg16)


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        builder = _NETWORKS[args.network]
    except KeyError:
        print(f"unknown network {args.network!r}; choose from {sorted(_NETWORKS)}")
        return 2
    graph = builder(image_size=args.image_size)
    profile_model(graph, V100, args.batch)
    chain = linearize(graph)
    save_chain(chain, args.out)
    print(
        f"wrote {args.out}: {chain.L} layers, U = {chain.total_compute():.4f}s"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    chain = load_chain(args.profile)
    print(chain_report(chain, top=args.top))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    chain = load_chain(args.profile)
    platform = Platform.of(args.procs, args.memory_gb, args.bandwidth_gbps)
    if args.algorithm == "pipedream":
        res = pipedream(chain, platform)
        pattern = res.schedule.pattern if res.feasible else None
        mp = None
        phase1 = None
        ilp = None
    else:
        mp = madpipe(
            chain,
            platform,
            grid=getattr(Discretization, args.grid)(),
            iterations=args.iterations,
            ilp_time_limit=args.ilp_time_limit,
        )
        pattern = mp.pattern
        phase1 = mp.phase1
        ilp = mp.ilp
    if args.stats:
        if phase1 is None:
            print("solver stats: n/a (pipedream has no DP phase)")
        else:
            print(
                f"phase-1 DP: {phase1.states} states over "
                f"{len(phase1.history)} probes, {phase1.wall_time_s:.2f}s wall, "
                f"pruned {phase1.pruned_cap} candidates by period cap, "
                f"{phase1.pruned_mem} by memory"
            )
            if ilp is not None:
                t = ilp.timings
                print(
                    f"phase-2 ILP: {t['milp_probes']} MILP probes "
                    f"({t['milp_timeouts']} hit the time limit), "
                    f"{t['lp_jumps']} LP jumps ({t['lp_failures']} failed), "
                    f"build {t['build_s']:.3f}s, solve {t['solve_s']:.3f}s, "
                    f"search status: {ilp.status}"
                )
            print(f"result status: {mp.status}")
            for note in mp.notes:
                print(f"  - {note}")
    if pattern is None:
        if mp is not None and mp.status != "ok":
            reason = "; ".join(mp.notes) or mp.status
            print(f"no memory-feasible schedule found [{mp.status}]: {reason}")
        else:
            print("no memory-feasible schedule found")
        return 1
    print(schedule_report(chain, platform, pattern))
    if args.gantt:
        print()
        print(render_gantt(pattern, width=args.width))
    if args.out:
        save_pattern(pattern, args.out)
        print(f"\nwrote schedule to {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .experiments import ResultCache, run_grid

    Path(args.out).parent.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(args.out, flush_every=args.flush_every)
    if cache.quarantined:
        print(
            f"warning: quarantined {len(cache.quarantined)} corrupt cache "
            f"line(s); kept {len(cache)} valid record(s)"
        )
    try:
        results = run_grid(
            tuple(args.networks),
            tuple(args.procs),
            tuple(args.memories),
            tuple(args.bandwidths),
            algorithms=tuple(args.algorithms),
            grid=getattr(Discretization, args.grid)(),
            iterations=args.iterations,
            ilp_time_limit=args.ilp_time_limit,
            cache=cache,
            verbose=not args.quiet,
            n_workers=args.workers,
            instance_timeout=args.instance_timeout,
            max_retries=args.max_retries,
            retry_failed=args.resume,
            on_exhausted=args.on_error,
        )
    except KeyboardInterrupt:
        print(f"\ninterrupted; {len(cache)} instance(s) cached in {args.out}")
        print("re-run with --resume to continue")
        return 130
    n_bad = sum(1 for r in results if r is not None and r.status != "ok")
    print(f"sweep done: {len(results)} instance(s), {n_bad} not ok, cache {args.out}")
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from .experiments import ResultCache, verify_cache

    report = verify_cache(args.cache)
    print(f"{report['path']}: format={report['format']} records={report['records']}")
    if report["statuses"]:
        hist = ", ".join(f"{k}={v}" for k, v in sorted(report["statuses"].items()))
        print(f"statuses: {hist}")
    for lineno, reason in report["corrupt"]:
        print(f"corrupt line {lineno}: {reason}")
    if report["duplicate_keys"]:
        print(f"duplicate keys: {report['duplicate_keys']} (last write wins)")
    if report["clean"]:
        print("clean")
        return 0
    if args.fix:
        cache = ResultCache(args.cache)
        if cache.repair():
            after = verify_cache(args.cache)
            print(f"repaired: {after['records']} record(s), clean={after['clean']}")
            return 0 if after["clean"] else 1
        print("nothing recoverable to write")
        return 1
    print("not clean (re-run with --fix to repair)")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="profile a zoo network to a JSON chain")
    p.add_argument("network", help=f"one of {sorted(_NETWORKS)}")
    p.add_argument("--image-size", type=int, default=1000)
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("-o", "--out", default="chain.json")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("report", help="tabulate a profiled chain")
    p.add_argument("profile")
    p.add_argument("--top", type=int, default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("schedule", help="schedule a profile on a platform")
    p.add_argument("profile")
    p.add_argument("-p", "--procs", type=int, required=True)
    p.add_argument("-m", "--memory-gb", type=float, required=True)
    p.add_argument("-b", "--bandwidth-gbps", type=float, default=12.0)
    p.add_argument(
        "-a", "--algorithm", choices=("madpipe", "pipedream"), default="madpipe"
    )
    p.add_argument(
        "--grid", choices=("coarse", "default", "paper"), default="default"
    )
    p.add_argument("--ilp-time-limit", type=float, default=60.0)
    p.add_argument(
        "--iterations", type=int, default=10,
        help="phase-1 binary-search iterations (madpipe only)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print solver diagnostics (DP states/pruning, ILP probe timings)",
    )
    p.add_argument("--gantt", action="store_true")
    p.add_argument("--width", type=int, default=100)
    p.add_argument("-o", "--out", default=None)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser(
        "sweep",
        help="run a (network, P, M, beta, algorithm) grid with a resumable cache",
    )
    p.add_argument(
        "--networks",
        nargs="+",
        default=["resnet50"],
        help="paper network names, or toy<L> for synthetic chains",
    )
    p.add_argument("--procs", nargs="+", type=int, default=[2, 4, 8])
    p.add_argument(
        "--memories", nargs="+", type=float, default=[4.0, 8.0, 16.0],
        metavar="GB",
    )
    p.add_argument(
        "--bandwidths", nargs="+", type=float, default=[12.0], metavar="GBPS"
    )
    p.add_argument(
        "--algorithms", nargs="+", choices=("pipedream", "madpipe"),
        default=["pipedream", "madpipe"],
    )
    p.add_argument("--out", default="results/sweep.jsonl", help="cache file (JSONL)")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--resume",
        action="store_true",
        help="re-run cached instances whose status is solver_timeout/error "
        "(completed instances are always skipped)",
    )
    p.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per crashed/timed-out instance before giving up",
    )
    p.add_argument(
        "--instance-timeout", type=float, default=None, metavar="S",
        help="per-instance wall-clock deadline, enforced in the worker",
    )
    p.add_argument(
        "--on-error", choices=("raise", "record"), default="raise",
        help='after retries: "raise" aborts the sweep, "record" stores a '
        "typed error result and continues",
    )
    p.add_argument(
        "--grid", choices=("coarse", "default", "paper"), default="coarse"
    )
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--ilp-time-limit", type=float, default=30.0)
    p.add_argument("--flush-every", type=int, default=8)
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("cache", help="inspect/repair sweep result caches")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pv = cache_sub.add_parser(
        "verify", help="audit a cache file; exit 1 if it is not clean"
    )
    pv.add_argument("cache", help="cache file path (JSONL or legacy JSON array)")
    pv.add_argument(
        "--fix",
        action="store_true",
        help="rewrite the file clean (atomic; corrupt lines stay in the "
        ".quarantine sidecar)",
    )
    pv.set_defaults(func=_cmd_cache_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
