"""Command-line interface: profile networks, schedule profiles, inspect.

Usage::

    python -m repro profile resnet50 --image-size 1000 --batch 8 -o rn50.json
    python -m repro report rn50.json --top 10
    python -m repro schedule rn50.json -p 4 -m 8 -b 12 --gantt -o sched.json
    python -m repro schedule rn50.json -p 4 -m 8 --trace trace.json --stats
    python -m repro certify rn50.json -p 4 -m 8 --samples 32 --seed 0 -o cert.json
    python -m repro ingest traces/ rn50.json -o calib.json
    python -m repro certify rn50.json -p 4 -m 8 --traces traces/ -o cert.json
    python -m repro trace summary trace.json
    python -m repro sweep --networks toy8 --procs 2 4 --out grid.jsonl --resume
    python -m repro cache verify grid.jsonl --fix

The sweep runtime flags (``--workers``, ``--resume``, ``--max-retries``,
``--instance-timeout``, ``--on-error``, ``--grid``, ``--iterations``,
``--ilp-time-limit``, ``--flush-every``, ``--quiet``, ``--trace``,
``--no-warm-start``) are defined once in :func:`sweep_options` and
shared — with identical spelling and semantics — by ``repro sweep`` and
``scripts/run_paper_sweep.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from pathlib import Path

from . import obs
from .algorithms import SCHEDULE_FAMILIES, Discretization, madpipe, pipedream
from .core.platform import Platform
from .core.serialize import save_pattern
from .experiments.scenarios import network_builders
from .profiling import V100, chain_from_dict, load_chain, profile_model, save_chain
from .models import linearize, vgg16
from .viz.gantt import render_gantt
from .viz.report import chain_report, schedule_report

__all__ = ["main", "sweep_options"]

_NETWORKS = dict(network_builders(), vgg16=vgg16)


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        builder = _NETWORKS[args.network]
    except KeyError:
        print(f"unknown network {args.network!r}; choose from {sorted(_NETWORKS)}")
        return 2
    graph = builder(image_size=args.image_size)
    profile_model(graph, V100, args.batch)
    chain = linearize(graph)
    save_chain(chain, args.out)
    print(
        f"wrote {args.out}: {chain.L} layers, U = {chain.total_compute():.4f}s"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    chain = load_chain(args.profile)
    print(chain_report(chain, top=args.top))
    return 0


def _print_registry_stats(snap: dict, ilp_status: str | None) -> None:
    """Render ``--stats`` from the metrics registry's counter snapshot."""
    if snap.get("dp.searches"):
        print(
            f"phase-1 DP: {snap.get('dp.states', 0)} states over "
            f"{snap.get('dp.probes', 0)} probes "
            f"({snap.get('dp.searches', 0)} searches), "
            f"{snap.get('dp.wall_s', 0.0):.2f}s wall, "
            f"pruned {snap.get('dp.pruned_cap', 0)} candidates by period cap, "
            f"{snap.get('dp.pruned_mem', 0)} by memory"
        )
    if snap.get("ilp.searches"):
        line = (
            f"phase-2 ILP: {snap.get('ilp.milp_probes', 0)} MILP probes "
            f"({snap.get('ilp.milp_timeouts', 0)} hit the time limit), "
            f"{snap.get('ilp.lp_jumps', 0)} LP jumps "
            f"({snap.get('ilp.lp_failures', 0)} failed), "
            f"build {snap.get('ilp.build_s', 0.0):.3f}s, "
            f"solve {snap.get('ilp.solve_s', 0.0):.3f}s"
        )
        if ilp_status is not None:
            line += f", search status: {ilp_status}"
        print(line)
    if snap.get("onef1b.searches"):
        print(
            f"1F1B*: {snap.get('onef1b.searches', 0)} period searches, "
            f"{snap.get('onef1b.feasible', 0)} feasible"
        )
    if snap.get("certify.checks"):
        print(
            f"certification: {snap.get('certify.checks', 0)} checks, "
            f"{snap.get('certify.failures', 0)} failed, "
            f"{snap.get('certify.quarantined', 0)} plans quarantined, "
            f"{snap.get('certify.fallbacks', 0)} replaced by the 1F1B* fallback"
        )


def _cmd_schedule(args: argparse.Namespace) -> int:
    chain = load_chain(args.profile)
    platform = Platform.of(args.procs, args.memory_gb, args.bandwidth_gbps)
    registry = obs.MetricsRegistry()
    trace = obs.Trace(f"schedule:{Path(args.profile).stem}") if args.trace else None
    with ExitStack() as stack:
        stack.enter_context(obs.use_metrics(registry))
        if trace is not None:
            stack.enter_context(obs.use_trace(trace))
        if args.algorithm == "pipedream":
            res = pipedream(chain, platform, schedule_family=args.schedule_family)
            pattern = res.schedule.pattern if res.feasible else None
            mp = None
        else:
            mp = madpipe(
                chain,
                platform,
                grid=getattr(Discretization, args.grid)(),
                iterations=args.iterations,
                ilp_time_limit=args.ilp_time_limit,
                memory_headroom=args.memory_headroom,
                schedule_family=args.schedule_family,
            )
            pattern = mp.pattern
    if trace is not None:
        obs.write_chrome_trace(trace, args.trace)
        print(f"wrote trace ({len(trace)} spans) to {args.trace}")
    if args.stats_json:
        payload = obs.metrics_payload(
            registry,
            command="schedule",
            profile=args.profile,
            algorithm=args.algorithm,
            status=mp.status if mp is not None else
            ("ok" if pattern is not None else "infeasible"),
        )
        Path(args.stats_json).write_text(json.dumps(payload, indent=1))
        print(f"wrote solver metrics to {args.stats_json}")
    if args.stats:
        _print_registry_stats(
            registry.snapshot(),
            mp.ilp.status if mp is not None and mp.ilp is not None else None,
        )
        if mp is not None:
            print(f"result status: {mp.status}")
            for note in mp.notes:
                print(f"  - {note}")
            if mp.certificate is not None:
                c = mp.certificate
                line = f"certificate: {'ok' if c.ok else 'FAILED'} [{c.mode}]"
                if c.periods_simulated:
                    line += f", {c.periods_simulated} periods simulated"
                if c.oom_margin:
                    line += (
                        f", min OOM margin "
                        f"{min(c.oom_margin.values()) / 2**30:.3f} GB"
                    )
                print(line)
    if pattern is None:
        if mp is not None and mp.status != "ok":
            reason = "; ".join(mp.notes) or mp.status
            print(f"no memory-feasible schedule found [{mp.status}]: {reason}")
        else:
            print("no memory-feasible schedule found")
        return 1
    print(schedule_report(chain, platform, pattern))
    if args.gantt:
        print()
        print(render_gantt(pattern, width=args.width))
    if args.out:
        save_pattern(pattern, args.out)
        print(f"\nwrote schedule to {args.out}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Ingest measured traces, calibrate against a baseline, emit JSON.

    The output is a deterministic function of (traces, baseline,
    min-samples, mad-k) — no timestamps — so re-running the command on
    the same inputs is byte-identical.  Corrupt trace lines are
    quarantined to ``<file>.quarantine`` sidecars and counted; they
    never abort ingestion.
    """
    from .api import ingest
    from .profiling import ProfileError

    chain = load_chain(args.profile)
    registry = obs.MetricsRegistry()
    try:
        with obs.use_metrics(registry):
            cal = ingest(
                args.traces,
                chain,
                min_samples=args.min_samples,
                mad_k=args.mad_k,
            )
    except ProfileError as exc:
        print(f"ingestion failed: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(cal.to_dict(), indent=1, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
    else:
        print(text)
    if not args.quiet:
        snap = registry.snapshot()
        print(
            f"{chain.name}: ingested {cal.n_records} record(s), "
            f"{cal.n_quarantined} quarantined, "
            f"{int(snap.get('ingest.rejected', 0))} outlier value(s) rejected",
            file=sys.stderr,
        )
        if cal.degraded:
            detail = []
            if cal.fallback_layers:
                detail.append(
                    f"fallback layers: {', '.join(cal.fallback_layers)}"
                )
            if cal.unknown_layers:
                detail.append(
                    f"unknown trace layers: {', '.join(cal.unknown_layers)}"
                )
            print(
                "calibration DEGRADED (" + "; ".join(detail) + ")",
                file=sys.stderr,
            )
        if args.out:
            print(f"wrote calibration to {args.out}", file=sys.stderr)
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    """Plan + certify + robustness-stress one profile; emit JSON.

    The payload is a deterministic function of (profile, platform,
    algorithm options, noise model, samples, seed) — no wall times —
    so the same invocation always produces byte-identical output.

    With ``--traces`` the chain and noise model are calibrated from
    measured traces first (see ``repro ingest``): planning and the
    robustness report then run against the calibrated chain and the
    fitted per-layer noise, and the payload carries the calibration's
    coverage report.  A degraded calibration marks the overall status
    ``degraded`` — loud, never silently blended.
    """
    from .api import certify, ingest, plan
    from .profiling import NoiseModel, ProfileError

    chain = load_chain(args.profile)
    platform = Platform.of(args.procs, args.memory_gb, args.bandwidth_gbps)
    opts = {}
    if args.algorithm == "madpipe":
        opts = dict(
            grid=getattr(Discretization, args.grid)(),
            iterations=args.iterations,
            ilp_time_limit=args.ilp_time_limit,
            memory_headroom=args.memory_headroom,
        )
    noise = NoiseModel(
        sigma_compute=args.sigma_compute,
        sigma_activation=args.sigma_activation,
        sigma_weight=args.sigma_weight,
    )
    calibration = None
    if args.traces:
        try:
            calibration = ingest(
                args.traces,
                chain,
                min_samples=args.min_samples,
                mad_k=args.mad_k,
                default_noise=noise,
            )
        except ProfileError as exc:
            print(f"ingestion failed: {exc}", file=sys.stderr)
            return 2
        chain = calibration.chain
        noise = calibration.noise
    registry = obs.MetricsRegistry()
    with obs.use_metrics(registry):
        result = plan(chain, platform, algorithm=args.algorithm, **opts)
        cert = certify(
            chain,
            platform,
            result,
            robustness=not args.no_robustness,
            noise=noise,
            samples=args.samples,
            seed=args.seed,
        )
    status = result.status
    if calibration is not None and calibration.degraded and status == "ok":
        status = "degraded"
    payload = {
        "profile": str(args.profile),
        "network": chain.name,
        "algorithm": args.algorithm,
        "platform": {
            "n_procs": args.procs,
            "memory_gb": args.memory_gb,
            "bandwidth_gbps": args.bandwidth_gbps,
        },
        "memory_headroom": args.memory_headroom,
        "status": status,
        "period": result.period if result.feasible else None,
        "certificate": cert.to_dict(),
    }
    if calibration is not None:
        payload["calibration"] = {
            "traces": str(args.traces),
            "degraded": calibration.degraded,
            "coverage": [c.to_dict() for c in calibration.coverage],
            "unknown_layers": list(calibration.unknown_layers),
            "n_records": calibration.n_records,
            "n_quarantined": calibration.n_quarantined,
            "min_samples": calibration.min_samples,
            "mad_k": calibration.mad_k,
            "noise": calibration.noise.to_dict(),
        }
    text = json.dumps(payload, indent=1, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
        verdict = "NOT certified" if not cert.ok else (
            "certified (calibration degraded)" if status == "degraded" else "certified"
        )
        print(f"{chain.name} [{args.algorithm}]: {verdict}; wrote {args.out}")
    else:
        print(text)
    if args.stats:
        _print_registry_stats(registry.snapshot(), None)
    return 0 if cert.ok else 1


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    try:
        roots = obs.load_trace_file(args.file)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot read trace {args.file}: {exc}")
        return 2
    print(render := obs.render_summary(obs.summarize(roots)))
    return 0 if render != "(empty trace)" else 1


def sweep_options() -> argparse.ArgumentParser:
    """The canonical sweep runtime flags, defined once.

    ``repro sweep`` and ``scripts/run_paper_sweep.py`` both include this
    parser via ``parents=[sweep_options()]``, so every shared option has
    exactly one spelling, type and help text.  Callers override defaults
    with ``parser.set_defaults(...)`` after construction.
    """
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--workers", type=int, default=1,
        help="fan instances out over N worker processes (1 = serial)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="re-run cached instances whose status is solver_timeout/error "
        "(completed instances are always skipped)",
    )
    p.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per crashed/timed-out instance before giving up",
    )
    p.add_argument(
        "--instance-timeout", type=float, default=None, metavar="S",
        help="per-instance wall-clock deadline, enforced in the worker",
    )
    p.add_argument(
        "--on-error", choices=("raise", "record"), default="raise",
        help='after retries: "raise" aborts the sweep, "record" stores a '
        "typed error result and continues",
    )
    p.add_argument(
        "--grid", choices=("coarse", "default", "paper"), default="coarse",
        help="phase-1 DP discretization preset",
    )
    p.add_argument(
        "--iterations", type=int, default=8,
        help="phase-1 binary-search iterations",
    )
    p.add_argument("--ilp-time-limit", type=float, default=30.0, metavar="S")
    p.add_argument(
        "--flush-every", type=int, default=8,
        help="cache flush batch size (records per fsync'd append)",
    )
    p.add_argument("--quiet", action="store_true")
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append per-instance span trees to PATH (JSONL; inspect with "
        "'repro trace summary PATH')",
    )
    p.add_argument(
        "--no-warm-start", action="store_true",
        help="solve every instance from scratch instead of reusing the "
        "per-process warm-start database (results are bit-identical "
        "either way; warm is faster on neighboring grids)",
    )
    p.add_argument(
        "--schedule-family", choices=SCHEDULE_FAMILIES, default="1f1b",
        help="pattern family to build and certify (like --grid, a solver "
        "option, not part of the result-cache identity: keep one --out "
        "cache file per family)",
    )
    return p


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import ResultCache, run_grid

    Path(args.out).parent.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(args.out, flush_every=args.flush_every)
    if cache.quarantined:
        print(
            f"warning: quarantined {len(cache.quarantined)} corrupt cache "
            f"line(s); kept {len(cache)} valid record(s)"
        )
    registry = obs.MetricsRegistry()
    try:
        with obs.use_metrics(registry):
            results = run_grid(
                tuple(args.networks),
                tuple(args.procs),
                tuple(args.memories),
                tuple(args.bandwidths),
                algorithms=tuple(args.algorithms),
                grid=getattr(Discretization, args.grid)(),
                iterations=args.iterations,
                ilp_time_limit=args.ilp_time_limit,
                cache=cache,
                schedule_family=args.schedule_family,
                verbose=not args.quiet,
                n_workers=args.workers,
                instance_timeout=args.instance_timeout,
                max_retries=args.max_retries,
                retry_failed=args.resume,
                on_exhausted=args.on_error,
                trace_path=args.trace,
                warm_start=not args.no_warm_start,
            )
    except KeyboardInterrupt:
        print(f"\ninterrupted; {len(cache)} instance(s) cached in {args.out}")
        print("re-run with --resume to continue")
        return 130
    from .api import SweepResult

    n_bad = sum(1 for r in results if r is not None and r.status != "ok")
    print(f"sweep done: {len(results)} instance(s), {n_bad} not ok, cache {args.out}")
    summary = SweepResult(
        results=[r for r in results if r is not None],
        specs=[],
        metrics=registry.snapshot(),
    )
    if not args.quiet:
        print(summary.render_summary())
    if args.trace:
        print(f"trace: {args.trace} (see 'repro trace summary {args.trace}')")
    return 0


def _parse_serve_request(line: str, lineno: int) -> "tuple[dict, object, Platform]":
    """Decode one JSONL serve request into (raw, chain, platform).

    A request names its chain by scenario (``"network": "toy8"``, any
    paper network or ``toy<L>``), by profile file
    (``"profile": "rn50.json"``) or inline (``"chain": {...}`` in the
    profile JSON format, validated strictly), plus the platform and
    optional ``"algorithm"`` / ``"opts"``.  Raises ``ValueError`` with a
    line-anchored message on anything malformed — the serve loop turns
    that into a structured ``ok=false`` response with ``stage="parse"``,
    so a bad request never reaches the solver or the ``serve.errors``
    counter.
    """
    from .experiments.scenarios import paper_chain

    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"line {lineno}: not valid JSON ({exc})") from None
    if not isinstance(obj, dict):
        raise ValueError(f"line {lineno}: request must be a JSON object")
    network = obj.get("network")
    profile = obj.get("profile")
    inline = obj.get("chain")
    if sum(x is not None for x in (network, profile, inline)) != 1:
        raise ValueError(
            f"line {lineno}: exactly one of 'network', 'profile' or "
            f"'chain' is required"
        )
    try:
        if network is not None:
            chain = paper_chain(network)
        elif profile is not None:
            chain = load_chain(profile)
        else:
            chain = chain_from_dict(inline, source=f"line {lineno}: 'chain'")
    except (OSError, ValueError, KeyError) as exc:
        raise ValueError(f"line {lineno}: cannot load chain: {exc}") from None
    try:
        platform = Platform.of(
            int(obj["procs"]),
            float(obj.get("memory_gb", 8.0)),
            float(obj.get("bandwidth_gbps", 12.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"line {lineno}: bad platform: {exc}") from None
    opts = obj.get("opts", {})
    if not isinstance(opts, dict):
        raise ValueError(f"line {lineno}: 'opts' must be an object")
    return obj, chain, platform


def _serve_resilience(args: argparse.Namespace):
    """Build the :class:`ResilienceConfig` for ``repro serve`` flags, or
    ``None`` when every resilience flag is at its off default."""
    from .api import ResilienceConfig

    if (
        args.max_concurrency is None
        and args.deadline_budget is None
        and args.breaker_threshold is None
        and not args.degraded
    ):
        return None
    return ResilienceConfig(
        max_concurrency=args.max_concurrency,
        max_pending=args.max_pending,
        deadline_budget_s=args.deadline_budget,
        degraded_fallback=args.degraded,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
    )


async def _serve_loop(args: argparse.Namespace, lines: list[str]) -> int:
    """Drive the JSONL request replay against one :class:`PlanService`."""
    import asyncio

    from .api import (
        CircuitOpenError,
        DeadlineExceededError,
        OverloadedError,
        PoolExhaustedError,
    )
    from .api import serve as make_service

    service = make_service(
        store=args.store,
        max_workers=args.workers,
        instance_timeout=args.instance_timeout,
        max_retries=args.max_retries,
        warm_start=not args.no_warm_start,
        seed=args.seed,
        resilience=_serve_resilience(args),
    )
    gate = asyncio.Semaphore(max(1, args.concurrency))
    failures = 0
    shed = 0

    def emit(payload: dict) -> None:
        print(json.dumps(payload, sort_keys=True), flush=True)

    async def one(lineno: int, line: str) -> None:
        nonlocal failures, shed
        rid = None
        stage = "parse"
        try:
            obj, chain, platform = _parse_serve_request(line, lineno)
            rid = obj.get("id", lineno)
            stage = "solve"
            opts = dict(obj.get("opts", {}))
            # the CLI default family applies unless the request names one;
            # the service strips the "1f1b" default from the fingerprint,
            # so pre-family stores keep serving default requests
            opts.setdefault("schedule_family", args.schedule_family)
            request = service.request(
                chain,
                platform,
                algorithm=obj.get("algorithm", "madpipe"),
                priority=obj.get("priority", "interactive"),
                deadline_s=obj.get("deadline_s"),
                **opts,
            )
            async with gate:
                reply = await service.handle(request)
        except OverloadedError as exc:
            # shedding is the service doing its job, not a failure: the
            # reply is structured and carries the retry-after hint
            shed += 1
            emit({
                "id": rid, "ok": False, "stage": "admission",
                "error": str(exc), "retry_after_s": exc.retry_after_s,
            })
            return
        except Exception as exc:  # one bad request must not kill the loop
            failures += 1
            if isinstance(exc, CircuitOpenError):
                stage = "breaker"
            elif isinstance(exc, DeadlineExceededError):
                stage = "deadline"
            elif isinstance(exc, PoolExhaustedError):
                stage = "pool"
            if rid is None:  # parse failed before the id was read: best effort
                try:
                    peek = json.loads(line)
                    rid = peek.get("id", lineno) if isinstance(peek, dict) else None
                except json.JSONDecodeError:
                    pass
            emit({"id": rid, "ok": False, "stage": stage, "error": str(exc)})
            return
        response = {
            "id": rid,
            "ok": True,
            "fingerprint": reply.fingerprint,
            "served_from": reply.served_from,
            "latency_ms": round(reply.latency_s * 1e3, 3),
            "status": reply.result.status,
            "period": reply.result.period if reply.result.feasible else None,
        }
        if args.emit_plans:
            response["plan"] = reply.result.to_json()
        emit(response)

    async with service:
        await asyncio.gather(
            *(one(i, line) for i, line in enumerate(lines, 1))
        )
        stats = service.stats()
    emit({"stats": stats})
    if not args.quiet:
        c = stats["counters"]
        print(
            f"served {int(c.get('serve.requests', 0))} request(s): "
            f"{int(c.get('serve.solves', 0))} solved, "
            f"{int(c.get('serve.hits', 0))} cache hit(s), "
            f"{int(c.get('serve.coalesced', 0))} coalesced, "
            f"{int(c.get('serve.degraded', 0))} degraded, "
            f"{shed} shed, {failures} failed",
            file=sys.stderr,
        )
    return 0 if failures == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    if args.requests == "-":
        text = sys.stdin.read()
    else:
        try:
            text = Path(args.requests).read_text()
        except OSError as exc:
            print(f"cannot read {args.requests}: {exc}", file=sys.stderr)
            return 2
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if args.store:
        Path(args.store).parent.mkdir(parents=True, exist_ok=True)
    return asyncio.run(_serve_loop(args, lines))


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from .experiments import ResultCache, verify_cache

    report = verify_cache(args.cache)
    print(f"{report['path']}: format={report['format']} records={report['records']}")
    if report["statuses"]:
        hist = ", ".join(f"{k}={v}" for k, v in sorted(report["statuses"].items()))
        print(f"statuses: {hist}")
    for lineno, reason in report["corrupt"]:
        print(f"corrupt line {lineno}: {reason}")
    if report["duplicate_keys"]:
        print(f"duplicate keys: {report['duplicate_keys']} (last write wins)")
    if report["clean"]:
        print("clean")
        return 0
    if args.fix:
        cache = ResultCache(args.cache)
        if cache.repair():
            after = verify_cache(args.cache)
            print(f"repaired: {after['records']} record(s), clean={after['clean']}")
            return 0 if after["clean"] else 1
        print("nothing recoverable to write")
        return 1
    print("not clean (re-run with --fix to repair)")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="profile a zoo network to a JSON chain")
    p.add_argument("network", help=f"one of {sorted(_NETWORKS)}")
    p.add_argument("--image-size", type=int, default=1000)
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("-o", "--out", default="chain.json")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("report", help="tabulate a profiled chain")
    p.add_argument("profile")
    p.add_argument("--top", type=int, default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "ingest",
        help="ingest measured per-layer traces (JSONL/CSV) and calibrate a "
        "chain + per-layer noise model against a baseline profile; corrupt "
        "records are quarantined to sidecars, never fatal",
    )
    p.add_argument("traces", help="directory of *.jsonl / *.csv trace files")
    p.add_argument("profile", help="baseline chain profile (JSON)")
    p.add_argument(
        "--min-samples", type=int, default=3,
        help="coverage floor per (layer, field); fewer surviving samples "
        "fall back to the baseline and mark the result degraded",
    )
    p.add_argument(
        "--mad-k", type=float, default=5.0,
        help="outlier cut in robust (MAD-based) standard deviations",
    )
    p.add_argument("--quiet", action="store_true")
    p.add_argument("-o", "--out", default=None, metavar="PATH")
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser("schedule", help="schedule a profile on a platform")
    p.add_argument("profile")
    p.add_argument("-p", "--procs", type=int, required=True)
    p.add_argument("-m", "--memory-gb", type=float, required=True)
    p.add_argument("-b", "--bandwidth-gbps", type=float, default=12.0)
    p.add_argument(
        "-a", "--algorithm", choices=("madpipe", "pipedream"), default="madpipe"
    )
    p.add_argument(
        "--schedule-family", choices=SCHEDULE_FAMILIES, default="1f1b",
        help="pattern family to build and certify: classic 1F1B or the "
        "zero-bubble B/W split",
    )
    p.add_argument(
        "--grid", choices=("coarse", "default", "paper"), default="default"
    )
    p.add_argument("--ilp-time-limit", type=float, default=60.0)
    p.add_argument(
        "--iterations", type=int, default=10,
        help="phase-1 binary-search iterations (madpipe only)",
    )
    p.add_argument(
        "--memory-headroom", type=float, default=0.0, metavar="FRAC",
        help="plan against memory*(1-FRAC) per GPU, keeping FRAC in "
        "reserve against profile noise (madpipe only)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print solver diagnostics (DP states/pruning, ILP probe timings)",
    )
    p.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="write the solver metrics registry as JSON to PATH",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome-tracing JSON span tree to PATH "
        "(load in chrome://tracing or ui.perfetto.dev)",
    )
    p.add_argument("--gantt", action="store_true")
    p.add_argument("--width", type=int, default=100)
    p.add_argument("-o", "--out", default=None)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser(
        "certify",
        help="plan, certify via discrete-event simulation, and stress-test "
        "under seeded profile noise; emits a deterministic JSON report",
    )
    p.add_argument("profile")
    p.add_argument("-p", "--procs", type=int, required=True)
    p.add_argument("-m", "--memory-gb", type=float, required=True)
    p.add_argument("-b", "--bandwidth-gbps", type=float, default=12.0)
    p.add_argument(
        "-a", "--algorithm", choices=("madpipe", "pipedream"), default="madpipe"
    )
    p.add_argument(
        "--grid", choices=("coarse", "default", "paper"), default="default"
    )
    p.add_argument("--ilp-time-limit", type=float, default=60.0)
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument(
        "--memory-headroom", type=float, default=0.0, metavar="FRAC",
        help="plan against memory*(1-FRAC) per GPU (madpipe only)",
    )
    p.add_argument(
        "--samples", type=int, default=32,
        help="noise samples for the robustness report",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed; the same seed reproduces the report bit for bit",
    )
    p.add_argument(
        "--sigma-compute", type=float, default=0.05, metavar="S",
        help="lognormal sigma on per-layer forward/backward times",
    )
    p.add_argument(
        "--sigma-activation", type=float, default=0.05, metavar="S",
        help="lognormal sigma on per-layer activation sizes",
    )
    p.add_argument(
        "--sigma-weight", type=float, default=0.0, metavar="S",
        help="lognormal sigma on per-layer weight sizes",
    )
    p.add_argument(
        "--no-robustness", action="store_true",
        help="verify only; skip the noise stress test",
    )
    p.add_argument(
        "--traces", default=None, metavar="DIR",
        help="calibrate chain + per-layer noise from measured traces in DIR "
        "first (see 'repro ingest'); the robustness report then reflects "
        "observed variance and a degraded calibration degrades the status",
    )
    p.add_argument(
        "--min-samples", type=int, default=3,
        help="calibration coverage floor per (layer, field) (with --traces)",
    )
    p.add_argument(
        "--mad-k", type=float, default=5.0,
        help="calibration outlier cut in robust standard deviations "
        "(with --traces)",
    )
    p.add_argument("--stats", action="store_true")
    p.add_argument("-o", "--out", default=None, metavar="PATH")
    p.set_defaults(func=_cmd_certify)

    p = sub.add_parser(
        "sweep",
        parents=[sweep_options()],
        help="run a (network, P, M, beta, algorithm) grid with a resumable cache",
    )
    p.add_argument(
        "--networks",
        nargs="+",
        default=["resnet50"],
        help="paper network names, or toy<L> for synthetic chains",
    )
    p.add_argument("--procs", nargs="+", type=int, default=[2, 4, 8])
    p.add_argument(
        "--memories", nargs="+", type=float, default=[4.0, 8.0, 16.0],
        metavar="GB",
    )
    p.add_argument(
        "--bandwidths", nargs="+", type=float, default=[12.0], metavar="GBPS"
    )
    p.add_argument(
        "--algorithms", nargs="+", choices=("pipedream", "madpipe"),
        default=["pipedream", "madpipe"],
    )
    p.add_argument("--out", default="results/sweep.jsonl", help="cache file (JSONL)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="answer a JSONL stream of plan requests through the caching, "
        "coalescing plan service (one JSON response per line, stats at end)",
    )
    p.add_argument(
        "requests",
        nargs="?",
        default="-",
        help="JSONL request file, or '-' (default) to read stdin; each line "
        'is e.g. {"id": 1, "network": "toy8", "procs": 4, "memory_gb": 8}',
    )
    p.add_argument(
        "--store", default=None, metavar="PATH",
        help="persistent plan cache (JSONL); restarting with the same store "
        "serves previously solved plans without re-solving",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="solver worker processes (0 = solve inline on a thread)",
    )
    p.add_argument(
        "--concurrency", type=int, default=8,
        help="max requests admitted to the service at once",
    )
    p.add_argument(
        "--instance-timeout", type=float, default=None, metavar="S",
        help="per-request wall-clock deadline, enforced in the worker",
    )
    p.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per crashed/timed-out solve before reporting an error",
    )
    p.add_argument(
        "--no-warm-start", action="store_true",
        help="solve every request cold (responses are bit-identical either way)",
    )
    p.add_argument(
        "--schedule-family", choices=SCHEDULE_FAMILIES, default="1f1b",
        help="default pattern family for requests whose 'opts' do not name "
        "one; the family is part of the request fingerprint, so cached "
        "1F1B plans are never served for zero-bubble queries",
    )
    p.add_argument(
        "--max-concurrency", type=int, default=None, metavar="N",
        help="enable admission control: at most N solves run at once, "
        "--max-pending more queue (priority-ordered), the rest are shed "
        'with an {"ok": false, "stage": "admission"} reply carrying a '
        "retry_after_s hint",
    )
    p.add_argument(
        "--max-pending", type=int, default=16, metavar="N",
        help="admission queue depth before shedding (with --max-concurrency)",
    )
    p.add_argument(
        "--deadline-budget", type=float, default=None, metavar="S",
        help="default per-request wall-clock budget including queue wait; "
        "a request's own 'deadline_s' field overrides it",
    )
    p.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help="enable per-(algorithm, schedule_family) circuit breakers "
        "tripping after N consecutive solve failures",
    )
    p.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="S",
        help="breaker cooldown before a half-open probe (seed-jittered)",
    )
    p.add_argument(
        "--degraded", action="store_true",
        help="answer budget-exhausted / breaker-open / failed requests with "
        "the certified contiguous fallback plan (served_from=degraded) "
        "instead of an error; degraded plans never enter the store",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="seed for retry jitter and breaker probe scheduling "
        "(bit-reproducible replays)",
    )
    p.add_argument(
        "--emit-plans", action="store_true",
        help="include the full plan payload in each response line",
    )
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("trace", help="inspect trace files written by --trace")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    ps = trace_sub.add_parser(
        "summary", help="aggregate a trace's spans by name (count, wall, CPU)"
    )
    ps.add_argument("file", help="Chrome trace JSON or sweep trace JSONL")
    ps.set_defaults(func=_cmd_trace_summary)

    p = sub.add_parser("cache", help="inspect/repair sweep result caches")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pv = cache_sub.add_parser(
        "verify", help="audit a cache file; exit 1 if it is not clean"
    )
    pv.add_argument("cache", help="cache file path (JSONL or legacy JSON array)")
    pv.add_argument(
        "--fix",
        action="store_true",
        help="rewrite the file clean (atomic; corrupt lines stay in the "
        ".quarantine sidecar)",
    )
    pv.set_defaults(func=_cmd_cache_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
