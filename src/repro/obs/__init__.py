"""Planner observability: hierarchical tracing + a process-safe metrics
registry, threaded through every solver layer.

Quick tour::

    from repro import obs

    trace = obs.Trace("my-run")
    registry = obs.MetricsRegistry()
    with obs.use_trace(trace), obs.use_metrics(registry):
        result = repro.api.plan(chain, platform)

    obs.write_chrome_trace(trace, "out.json")   # chrome://tracing / Perfetto
    print(obs.render_summary(obs.summarize(trace)))
    print(registry.snapshot())                  # {"dp.states": …, …}

Instrumented modules call :func:`obs.span` / :func:`obs.inc`, both of
which are no-ops (one context-variable lookup) unless a trace/registry
is installed — the disabled path stays off the solver hot paths'
critical time (``benchmarks/bench_obs_overhead.py`` tracks this).
"""

from .export import (
    chrome_trace,
    load_trace_file,
    metrics_payload,
    render_summary,
    summarize,
    write_chrome_trace,
)
from .metrics import (
    MetricsRegistry,
    active_metrics,
    inc,
    time_block,
    use_metrics,
)
from .trace import NULL_SPAN, Span, Trace, active_trace, span, use_trace

__all__ = [
    "NULL_SPAN",
    "MetricsRegistry",
    "Span",
    "Trace",
    "active_metrics",
    "active_trace",
    "chrome_trace",
    "inc",
    "load_trace_file",
    "metrics_payload",
    "render_summary",
    "span",
    "summarize",
    "time_block",
    "use_metrics",
    "use_trace",
    "write_chrome_trace",
]
