"""Trace/metrics exporters: Chrome tracing JSON, flat JSON, summary table.

Three views over one span tree:

* :func:`chrome_trace` / :func:`write_chrome_trace` — a Chrome Trace
  Event Format document (complete ``"ph": "X"`` events) loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.  The document also
  embeds the raw span trees under a ``reproSpans`` key (ignored by the
  viewers) so ``repro trace summary`` can read its own output without a
  lossy event-to-tree reconstruction;
* :func:`summarize` / :func:`render_summary` — per-span-name aggregates
  (count, total/self wall, CPU) as a human table, surfaced as
  ``repro trace summary``;
* :func:`metrics_payload` — a flat metrics JSON document
  (``repro schedule --stats-json``).

:func:`load_trace_file` sniffs all on-disk trace formats this package
writes: the Chrome document, a bare JSON list of span dicts, and the
JSONL per-instance stream appended by sweeps (one
``{"spec": …, "spans": […]}`` object per line).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Mapping

from .metrics import MetricsRegistry
from .trace import Span, Trace

__all__ = [
    "chrome_trace",
    "load_trace_file",
    "metrics_payload",
    "render_summary",
    "summarize",
    "write_chrome_trace",
]


def _as_span_dicts(trace: "Trace | Iterable[Span | dict]") -> list[dict]:
    if isinstance(trace, Trace):
        return [s.to_dict() for s in trace.roots]
    out = []
    for s in trace:
        out.append(s.to_dict() if isinstance(s, Span) else s)
    return out


def _events(span: dict, pid: int, tid: int, out: list[dict]) -> None:
    args = dict(span.get("attrs", {}))
    args["cpu_s"] = span.get("cpu_s", 0.0)
    status = span.get("status", "ok")
    if status != "ok":
        args["status"] = status
    name = span["name"]
    out.append(
        {
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": span.get("start_s", 0.0) * 1e6,  # microseconds
            "dur": span.get("wall_s", 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
    )
    for child in span.get("children", ()):
        _events(child, pid, tid, out)


def chrome_trace(
    trace: "Trace | Iterable[Span | dict]", *, name: str | None = None
) -> dict:
    """Build a Chrome Trace Event Format document from a span tree.

    Every root span tree becomes one ``tid`` lane so concurrent
    per-instance traces (from sweep workers) render side by side.
    """
    roots = _as_span_dicts(trace)
    events: list[dict] = []
    pid = os.getpid()
    for tid, root in enumerate(roots):
        _events(root, pid, tid, events)
    doc_name = name or (trace.name if isinstance(trace, Trace) else "repro")
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "name": doc_name},
        "reproSpans": roots,
    }


def write_chrome_trace(
    trace: "Trace | Iterable[Span | dict]",
    path: str | Path,
    *,
    name: str | None = None,
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(trace, name=name), indent=1))
    return path


def load_trace_file(path: str | Path) -> list[dict]:
    """Load root span dicts from any on-disk format this package writes."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped[0] == "[":
        return json.loads(text)
    # the Chrome document is one (pretty-printed) JSON object; a sweep
    # stream is one object per line, so a whole-text parse disambiguates
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        if "traceEvents" in doc or "reproSpans" in doc:
            spans = doc.get("reproSpans")
            if spans is None:
                raise ValueError(
                    f"{path}: Chrome trace without embedded reproSpans; "
                    "was it written by repro.obs?"
                )
            return spans
        return list(doc.get("spans", ()))  # a one-line sweep stream
    # JSONL per-instance stream from a sweep
    roots: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: corrupt trace line: {exc}") from exc
        roots.extend(rec.get("spans", ()))
    return roots


def summarize(roots: "Trace | Iterable[Span | dict]") -> list[dict]:
    """Aggregate spans by name: count, total/self wall seconds, CPU seconds.

    Rows come back sorted by total wall time, descending.
    """
    totals: dict[str, dict] = {}

    def visit(span: dict) -> None:
        children = span.get("children", ())
        wall = float(span.get("wall_s", 0.0))
        row = totals.setdefault(
            span["name"],
            {"name": span["name"], "count": 0, "wall_s": 0.0, "self_s": 0.0,
             "cpu_s": 0.0, "errors": 0},
        )
        row["count"] += 1
        row["wall_s"] += wall
        row["self_s"] += max(
            0.0, wall - sum(float(c.get("wall_s", 0.0)) for c in children)
        )
        row["cpu_s"] += float(span.get("cpu_s", 0.0))
        if span.get("status", "ok") != "ok":
            row["errors"] += 1
        for child in children:
            visit(child)

    for root in _as_span_dicts(roots):
        visit(root)
    return sorted(totals.values(), key=lambda r: -r["wall_s"])


def render_summary(rows: list[dict]) -> str:
    """Human table over :func:`summarize` rows."""
    if not rows:
        return "(empty trace)"
    name_w = max(24, max(len(r["name"]) for r in rows))
    lines = [
        f"{'span':<{name_w}} {'count':>7} {'wall (s)':>10} "
        f"{'self (s)':>10} {'cpu (s)':>10} {'errors':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<{name_w}} {r['count']:>7d} {r['wall_s']:>10.4f} "
            f"{r['self_s']:>10.4f} {r['cpu_s']:>10.4f} {r['errors']:>7d}"
        )
    return "\n".join(lines)


def metrics_payload(
    metrics: "MetricsRegistry | Mapping[str, float]", **extra: object
) -> dict:
    """Flat metrics JSON document: ``{"metrics": {...}, **extra}``."""
    snap = (
        metrics.snapshot() if isinstance(metrics, MetricsRegistry) else dict(metrics)
    )
    return {"metrics": snap, **extra}
