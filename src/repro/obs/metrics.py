"""Process-safe solver metrics: named counters with merge-on-return.

A :class:`MetricsRegistry` is a flat ``name -> number`` accumulator.
Solver layers increment well-known counters (``dp.states``,
``ilp.milp_probes``, ``onef1b.searches``, ``sweep.retries``, …) through
the guarded module-level :func:`inc` helper, which is a no-op unless a
registry has been installed context-locally with :func:`use_metrics` —
so the production default pays one context-variable lookup per call
site and nothing else.

Cross-process aggregation follows the sweep harness's merge-on-return
discipline (like the fault-injection counters): each worker runs its
instance under a fresh registry, ships the :meth:`snapshot` dict back
with the result, and the parent :meth:`merge`\\ s it into its own
registry.  Counter values are plain numbers, so merging is commutative
and the aggregate is deterministic regardless of worker scheduling
(timing metrics — names ending in ``_s`` — are of course wall-clock
dependent; :meth:`counters` filters them out for determinism checks).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Mapping

__all__ = [
    "MetricsRegistry",
    "active_metrics",
    "inc",
    "time_block",
    "use_metrics",
]


class MetricsRegistry:
    """Flat, lock-protected counter registry.

    By convention counter names are dotted (``subsystem.metric``) and
    timing accumulators end in ``_s`` (seconds).
    """

    __slots__ = ("_counts", "_lock")

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + value

    def get(self, name: str, default: float = 0) -> float:
        return self._counts.get(name, default)

    def snapshot(self) -> dict[str, float]:
        """A name-sorted copy of all counters (JSON-ready)."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def counters(self) -> dict[str, float]:
        """The deterministic subset: every counter not ending in ``_s``."""
        return {k: v for k, v in self.snapshot().items() if not k.endswith("_s")}

    def merge(self, counts: Mapping[str, float]) -> None:
        """Add another registry's snapshot into this one."""
        with self._lock:
            for name, value in counts.items():
                self._counts[name] = self._counts.get(name, 0) + value

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the block's wall time into ``name`` (suffix it ``_s``)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.inc(name, time.perf_counter() - t0)

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({self.snapshot()!r})"


_current: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_metrics", default=None
)


def active_metrics() -> MetricsRegistry | None:
    """The context-local registry, or ``None`` when none is installed."""
    return _current.get()


def inc(name: str, value: float = 1) -> None:
    """Increment a counter on the context registry; no-op when disabled."""
    reg = _current.get()
    if reg is not None:
        reg.inc(name, value)


@contextmanager
def time_block(name: str) -> Iterator[None]:
    """Accumulate the block's wall time on the context registry (no-op
    when disabled — the clock is not even read)."""
    reg = _current.get()
    if reg is None:
        yield
        return
    with reg.timer(name):
        yield


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Install ``registry`` as the context-local registry for the block."""
    token = _current.set(registry)
    try:
        yield registry
    finally:
        _current.reset(token)
