"""Hierarchical tracing for the planner stack.

A :class:`Trace` collects a tree of :class:`Span` records — named
intervals with wall/CPU time and free-form attributes — describing where
one planning run spent its time: DP state expansion
(``madpipe.dp``), the 1F1B\\* period search (``onef1b.period_search``),
every MILP feasibility probe (``ilp.probe`` with build/solve split), and
so on.  Traces export to Chrome ``chrome://tracing`` / Perfetto JSON and
to a human summary table (:mod:`repro.obs.export`).

Tracing is *opt-in* and context-local: instrumented code opens spans
through the module-level :func:`span` helper, which resolves the current
trace from a :class:`contextvars.ContextVar`.  When no trace is
installed (the production default) :func:`span` returns a shared
:data:`NULL_SPAN` singleton whose enter/exit/``set`` are empty methods —
the whole instrumentation layer then costs one context-variable lookup
per call site, which the ``bench_obs_overhead`` benchmark keeps honest.
Hot kernels that cannot afford even that use :func:`active_trace` to
skip their instrumentation block entirely.

Spans survive exceptions: a span entered when its block raises is still
recorded, with ``status`` set to ``error:<ExceptionName>`` — this is what
lets traces survive the sweep retry/deadline machinery (a SIGALRM-killed
instance leaves a truncated but well-formed span tree).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "NULL_SPAN",
    "Span",
    "Trace",
    "active_trace",
    "span",
    "use_trace",
]


def _json_safe(v: Any):
    """Coerce one attribute value to something ``json.dumps`` accepts.

    Non-finite floats become ``None`` (JSON has no ``Infinity``), numpy
    scalars collapse to their Python equivalents via ``.item()``, and
    anything else exotic falls back to ``str``.
    """
    if v is None or isinstance(v, (bool, int, str)):
        return v
    if isinstance(v, float):
        return v if math.isfinite(v) else None
    item = getattr(v, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            pass
    return str(v)


@dataclass
class Span:
    """One traced interval.

    ``start_s`` is the offset from the owning trace's epoch;
    ``wall_s``/``cpu_s`` are the interval's wall-clock and process-CPU
    durations.  ``attrs`` carries solver-specific attributes (probe
    period, states expanded, probe status, …) attached via :meth:`set`.
    """

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    status: str = "ok"
    children: list["Span"] = field(default_factory=list)

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def self_wall_s(self) -> float:
        """Wall time not covered by direct children."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
            "attrs": {k: _json_safe(v) for k, v in self.attrs.items()},
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            name=d["name"],
            attrs=dict(d.get("attrs", {})),
            start_s=float(d.get("start_s", 0.0)),
            wall_s=float(d.get("wall_s", 0.0)),
            cpu_s=float(d.get("cpu_s", 0.0)),
            status=d.get("status", "ok"),
            children=[cls.from_dict(c) for c in d.get("children", ())],
        )


class _OpenSpan:
    """Context manager recording one span on a trace.

    The span is attached to the tree on *enter* (under the trace's
    current innermost open span), so an exception inside the block still
    leaves the span recorded — with an ``error:<Name>`` status.
    """

    __slots__ = ("_trace", "_span", "_t0", "_c0")

    def __init__(self, trace: "Trace", name: str, attrs: dict[str, Any]):
        self._trace = trace
        self._span = Span(name, attrs)

    def __enter__(self) -> Span:
        tr = self._trace
        sp = self._span
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        sp.start_s = self._t0 - tr.epoch
        (tr._stack[-1].children if tr._stack else tr.roots).append(sp)
        tr._stack.append(sp)
        return sp

    def __exit__(self, exc_type, exc, tb) -> bool:
        sp = self._span
        sp.wall_s = time.perf_counter() - self._t0
        sp.cpu_s = time.process_time() - self._c0
        if exc_type is not None:
            sp.status = f"error:{exc_type.__name__}"
        stack = self._trace._stack
        if stack and stack[-1] is sp:
            stack.pop()
        return False


class _NullSpan:
    """Shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The singleton returned by :func:`span` when no trace is active.
NULL_SPAN = _NullSpan()


class Trace:
    """A collection of root spans plus the open-span stack.

    Not thread-safe by design: each sweep worker process (and each CLI
    invocation) builds its own trace; cross-process assembly goes
    through :meth:`Span.to_dict` payloads.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.epoch = time.perf_counter()

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        """Open a span; use as ``with trace.span("ilp.probe", T=T) as sp:``."""
        return _OpenSpan(self, name, attrs)

    def add_root(self, span: Span) -> None:
        """Graft an externally-built span tree (e.g. from a worker)."""
        self.roots.append(span)

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in pre-order."""
        return [s for s in self.walk() if s.name == name]

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, {len(self)} spans)"


_current: ContextVar[Trace | None] = ContextVar("repro_obs_trace", default=None)


def active_trace() -> Trace | None:
    """The context-local trace, or ``None`` when tracing is disabled.

    Hot kernels use this to skip their whole instrumentation block with
    a single context-variable read.
    """
    return _current.get()


def span(name: str, **attrs: Any):
    """Open a span on the context trace; no-op when tracing is disabled."""
    tr = _current.get()
    if tr is None:
        return NULL_SPAN
    return tr.span(name, **attrs)


@contextmanager
def use_trace(trace: Trace):
    """Install ``trace`` as the context-local trace for the block."""
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)
