"""The stable public API facade.

This module is the supported way in:

* :func:`plan` — run one planning algorithm on one (chain, platform)
  instance and get a uniform :class:`PlanResult` back, with optional
  tracing/metrics;
* :func:`sweep` — run one or more scenario grids through the resilient
  experiment harness and get a :class:`SweepResult` back;
* :func:`certify` — (re-)certify a plan through the discrete-event
  verifier and optionally stress-test it under seeded profile noise
  (:class:`repro.robust.RobustnessReport`);
* :func:`ingest` — turn a directory of measured per-layer traces into a
  calibrated chain + fitted per-layer noise model
  (:class:`repro.profiles.CalibrationResult`), with quarantine and an
  explicit coverage report;
* :func:`load_chain` — re-exported profile loader, so a typical script
  needs nothing beyond ``repro.api``.

Every :func:`plan` result carries a ``certificate``: patterns are run
through :func:`repro.robust.certify_pattern` before they are returned,
and a failing plan is quarantined — never silently emitted (see the
quarantine semantics in the README).

Everything here delegates to the underlying algorithm modules without
altering numerics: ``plan(chain, platform, algorithm="madpipe")``
returns bit-identical periods/patterns to calling
:func:`repro.algorithms.madpipe.madpipe` directly.  The deeper modules
remain importable, but their top-level re-exports (``repro.madpipe``,
``repro.schedule_allocation``) are deprecated in favor of this facade —
see the deprecation policy in the README.

Observability::

    result = plan(chain, platform, trace=True)
    obs.write_chrome_trace(result.trace, "plan.json")
    print(result.metrics["dp.states"])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from . import obs
from .algorithms.gpipe import gpipe
from .algorithms.madpipe import SCHEDULE_FAMILIES, madpipe
from .algorithms.pipedream import pipedream
from .core.chain import Chain
from .core.pattern import (
    B,
    CB,
    CF,
    F,
    OP_KINDS,
    OpKind,
    PeriodicPattern,
    W,
    is_comm,
    is_compute,
    split_backward,
)
from .core.platform import Platform
from .core.serialize import pattern_from_dict, pattern_to_dict
from .experiments.harness import ResultCache, RunResult, run_grid
from .profiles import CalibrationResult, calibrate, ingest_traces
from .profiling import LayerNoiseModel, NoiseModel, ProfileError, load_chain
from .robust import Certificate, RobustnessReport, certify_pattern, robustness_report
from .testing import faults

__all__ = [
    "ALGORITHMS",
    "B",
    "CB",
    "CF",
    "CalibrationResult",
    "Certificate",
    "F",
    "LayerNoiseModel",
    "NoiseModel",
    "CircuitOpenError",
    "DeadlineExceededError",
    "OP_KINDS",
    "OpKind",
    "OverloadedError",
    "PLAN_SCHEMA_VERSION",
    "PlanResult",
    "PlanService",
    "PoolExhaustedError",
    "ProfileError",
    "ResilienceConfig",
    "RobustnessReport",
    "SCHEDULE_FAMILIES",
    "SweepResult",
    "SweepSpec",
    "W",
    "certify",
    "ingest",
    "is_comm",
    "is_compute",
    "load_chain",
    "plan",
    "serve",
    "split_backward",
    "sweep",
]

#: Algorithms :func:`plan` dispatches on.
ALGORITHMS = ("madpipe", "pipedream", "gpipe")

#: Current :meth:`PlanResult.to_json` schema.  Version 2 added
#: ``schedule_family``; version-1 records (no family ⇒ ``"1f1b"``) are
#: still accepted by :meth:`PlanResult.from_json` and the plan store.
PLAN_SCHEMA_VERSION = 2

INF = float("inf")


@dataclass
class PlanResult:
    """Uniform outcome of :func:`plan`, independent of the algorithm.

    ``raw`` carries the algorithm's native result object
    (:class:`~repro.algorithms.madpipe.MadPipeResult`,
    :class:`~repro.algorithms.pipedream.PipeDreamResult` or
    :class:`~repro.algorithms.gpipe.GPipeResult`) for anything the
    uniform fields do not cover.  ``metrics`` is the run's counter
    snapshot; ``trace`` is populated when tracing was requested.

    ``certificate`` is the discrete-event certificate of the returned
    schedule (``None`` only when planning ran with ``certify=False``).
    Pattern-producing algorithms get a ``verified`` (or, after a
    quarantine, ``fallback``) certificate; GPipe's fill-drain rounds
    have no periodic pattern and get a ``skipped`` one.
    """

    algorithm: str
    period: float
    dp_period: float
    pattern: PeriodicPattern | None
    status: str
    raw: Any
    metrics: dict[str, float] = field(default_factory=dict)
    trace: "obs.Trace | None" = None
    certificate: Certificate | None = None
    schedule_family: str = "1f1b"

    @property
    def feasible(self) -> bool:
        return self.period != INF

    def to_json(self) -> dict:
        """The *plan* as a JSON-ready dict — deterministic and
        round-trippable through :meth:`from_json`.

        Serializes what the planner decided (algorithm, periods, status,
        pattern, certificate), not how the call went: ``metrics``,
        ``trace`` and the algorithm-native ``raw`` object are per-call
        observations and are deliberately excluded, so two solves of the
        same request (cold, warm or cached) serialize byte-identically.
        Infinite periods encode as ``null`` (the :class:`ResultCache`
        convention), keeping the payload strict JSON.  This is the wire
        format of the plan server's cache and protocol
        (:mod:`repro.serve`).

        Writes schema version ``2`` (adds ``schedule_family``);
        :meth:`from_json` still accepts version-1 records, which predate
        schedule families and always describe ``"1f1b"`` plans.
        """
        return {
            "version": PLAN_SCHEMA_VERSION,
            "schedule_family": self.schedule_family,
            "algorithm": self.algorithm,
            "period": None if self.period == INF else self.period,
            "dp_period": None if self.dp_period == INF else self.dp_period,
            "status": self.status,
            "pattern": None if self.pattern is None else pattern_to_dict(self.pattern),
            "certificate": (
                None if self.certificate is None else self.certificate.to_dict()
            ),
        }

    @classmethod
    def from_json(cls, data: dict) -> "PlanResult":
        """Inverse of :meth:`to_json`.

        The reloaded result carries the full plan (pattern, certificate,
        periods, status); ``raw``/``trace`` are ``None`` and ``metrics``
        empty — they do not survive serialization.  Raises ``ValueError``
        on malformed input (the plan store quarantines such records).
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"plan payload must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("version", 1)
        if version not in (1, PLAN_SCHEMA_VERSION):
            raise ValueError(
                f"unsupported plan schema version {version!r}; "
                f"this build reads versions 1..{PLAN_SCHEMA_VERSION}"
            )
        missing = [k for k in ("algorithm", "status") if k not in data]
        if missing:
            raise ValueError(f"plan payload missing fields {missing}")
        try:
            period = data.get("period")
            dp_period = data.get("dp_period")
            pattern = data.get("pattern")
            cert = data.get("certificate")
            return cls(
                algorithm=str(data["algorithm"]),
                period=INF if period is None else float(period),
                dp_period=INF if dp_period is None else float(dp_period),
                pattern=None if pattern is None else pattern_from_dict(pattern),
                status=str(data["status"]),
                raw=None,
                certificate=None if cert is None else Certificate.from_dict(cert),
                # v1 records predate schedule families: always 1f1b
                schedule_family=str(data.get("schedule_family", "1f1b")),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(f"malformed plan payload: {exc!r}") from exc


def plan(
    chain: Chain,
    platform: Platform,
    *,
    algorithm: str = "madpipe",
    schedule_family: str = "1f1b",
    trace: "obs.Trace | bool | None" = None,
    **opts: Any,
) -> PlanResult:
    """Plan one (chain, platform) instance with the chosen algorithm.

    ``schedule_family`` selects the pattern family the planner builds
    and certifies: ``"1f1b"`` (the paper's monolithic backward, default)
    or ``"zero_bubble"`` (split-backward F/B/W patterns; see the README's
    *Schedule families* section).  GPipe has no periodic pattern, so it
    accepts only the default family.  ``schedule_family="1f1b"`` is
    bit-identical to omitting the argument.

    ``trace=True`` records a fresh :class:`repro.obs.Trace` onto the
    result; passing an existing ``Trace`` appends to it instead.  Extra
    keyword arguments go to the algorithm verbatim (``iterations``,
    ``grid``, ``ilp_time_limit``, ``allow_special``,
    ``contiguous_fallback``, ``memory_headroom`` for MadPipe;
    ``micro_batches`` for GPipe), so results match the direct calls bit
    for bit.  ``certify=False`` skips the certification gate for any
    algorithm (the result's ``certificate`` stays ``None``).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if schedule_family not in SCHEDULE_FAMILIES:
        raise ValueError(
            f"unknown schedule family {schedule_family!r}; "
            f"expected one of {SCHEDULE_FAMILIES}"
        )
    if trace is True:
        tr = obs.Trace(f"plan:{algorithm}")
    elif isinstance(trace, obs.Trace):  # note: an empty Trace is falsy
        tr = trace
    elif trace in (None, False):
        tr = None
    else:
        raise TypeError(f"trace must be a Trace, True or None, not {trace!r}")
    registry = obs.MetricsRegistry()
    outer = obs.active_metrics()
    with obs.use_metrics(registry):
        if tr is not None:
            with obs.use_trace(tr):
                result = _dispatch(chain, platform, algorithm, schedule_family, opts)
        else:
            result = _dispatch(chain, platform, algorithm, schedule_family, opts)
    if outer is not None:
        outer.merge(registry.snapshot())
    result.metrics = registry.snapshot()
    result.trace = tr
    return result


def _dispatch(
    chain: Chain, platform: Platform, algorithm: str, family: str, opts: dict
) -> PlanResult:
    if algorithm == "madpipe":
        res = madpipe(chain, platform, schedule_family=family, **opts)
        return PlanResult(
            algorithm=algorithm,
            period=res.period,
            dp_period=res.dp_period,
            pattern=res.pattern,
            status=res.status,
            raw=res,
            certificate=res.certificate,
            schedule_family=family,
        )
    do_certify = opts.pop("certify", True)
    if algorithm == "pipedream":
        res = pipedream(chain, platform, schedule_family=family, **opts)
        out = PlanResult(
            algorithm=algorithm,
            period=res.period,
            dp_period=res.dp_period,
            pattern=res.schedule.pattern if res.schedule is not None else None,
            status="ok" if res.period != INF else "infeasible",
            raw=res,
            schedule_family=family,
        )
        if do_certify:
            out.certificate = certify_pattern(
                chain, platform, out.pattern, source=f"pipedream:{chain.name}"
            )
            if not out.certificate.ok:
                # PipeDream has no fallback schedule to degrade to: the
                # quarantined pattern is withheld, never silently returned
                obs.inc("certify.quarantined")
                out.pattern = None
                out.period = INF
                out.status = "error"
        return out
    if family != "1f1b":
        raise ValueError(
            f"algorithm 'gpipe' schedules fill-drain rounds, not periodic "
            f"patterns; it does not support schedule_family={family!r}"
        )
    res = gpipe(chain, platform, **opts)
    out = PlanResult(
        algorithm=algorithm,
        period=res.period,
        dp_period=res.period,  # GPipe has no separate optimizer estimate
        pattern=None,  # fill-drain rounds, not a periodic pattern
        status="ok" if res.feasible else "infeasible",
        raw=res,
    )
    if do_certify:
        out.certificate = Certificate(
            ok=True, mode="skipped", source=f"gpipe:{chain.name}"
        )
    return out


def certify(
    chain: Chain,
    platform: Platform,
    plan_result: "PlanResult | PeriodicPattern | None",
    *,
    robustness: bool = True,
    noise: "NoiseModel | None" = None,
    samples: int = 32,
    seed: int = 0,
    **robust_opts: Any,
) -> Certificate:
    """(Re-)certify a plan and optionally stress-test it under noise.

    Accepts the :class:`PlanResult` from :func:`plan` (its
    ``certificate`` field is refreshed in place) or a bare
    :class:`~repro.core.pattern.PeriodicPattern`.  The pattern is
    re-executed through the discrete-event verifier; with
    ``robustness=True`` (the default) a seeded
    :class:`repro.robust.RobustnessReport` — worst-case period
    inflation, per-GPU OOM margins, the bisected breaking noise level —
    is attached to the certificate.  The same ``seed`` always produces
    a bit-identical report.  Extra keyword arguments
    (``break_inflation``, ``max_noise_scale``, ``bisect_iters``) pass
    to :func:`repro.robust.robustness_report`.
    """
    if isinstance(plan_result, PlanResult):
        pattern = plan_result.pattern
        source = f"certify:{plan_result.algorithm}:{chain.name}"
    else:
        pattern = plan_result
        source = f"certify:{chain.name}"
    fault = faults.fire("certify", key=source)
    if fault is not None and fault.action == "fail":
        obs.inc("certify.failures")
        cert = Certificate(
            ok=False,
            source=source,
            period=pattern.period if pattern is not None else None,
            violations=[f"injected certification failure at certify[{source}]"],
        )
    else:
        cert = certify_pattern(chain, platform, pattern, source=source)
        if cert.ok and pattern is not None and robustness:
            cert.robustness = robustness_report(
                chain,
                platform,
                pattern,
                noise=noise,
                samples=samples,
                seed=seed,
                **robust_opts,
            )
    if isinstance(plan_result, PlanResult):
        plan_result.certificate = cert
    return cert


def ingest(
    trace_dir: "str | Path",
    baseline: Chain,
    *,
    min_samples: int = 3,
    mad_k: float = 5.0,
    default_noise: "NoiseModel | None" = None,
) -> CalibrationResult:
    """Ingest measured traces and calibrate them against ``baseline``.

    Reads every ``*.jsonl``/``*.csv`` trace under ``trace_dir``
    (corrupt records are quarantined to sidecar files, never fatal) and
    fits a calibrated :class:`~repro.core.chain.Chain` plus a per-layer
    :class:`~repro.profiling.LayerNoiseModel` — see
    :mod:`repro.profiles` for the robustness contract.  The returned
    :class:`~repro.profiles.CalibrationResult` carries the coverage
    report and is marked ``degraded`` whenever any field fell back to
    the baseline; feed its ``chain``/``noise`` to :func:`plan` and
    :func:`certify` for observed-noise planning (CLI: ``repro ingest``,
    ``repro certify --traces``).

    Raises :class:`~repro.profiling.ProfileError` only for structural
    problems (missing directory, no trace files).
    """
    traces = ingest_traces(trace_dir)
    return calibrate(
        baseline,
        traces,
        min_samples=min_samples,
        mad_k=mad_k,
        default_noise=default_noise,
    )


# ------------------------------------------------------------------ sweeps


@dataclass(frozen=True)
class SweepSpec:
    """One scenario grid: the cross product of every axis.

    Accepted wherever :func:`sweep` takes specs; scalars are fine on any
    axis (``SweepSpec("vgg16", 4, 8.0, 12.0)`` is a single instance per
    algorithm).
    """

    networks: tuple[str, ...]
    procs: tuple[int, ...]
    memories_gb: tuple[float, ...]
    bandwidths_gbps: tuple[float, ...]
    algorithms: tuple[str, ...] = ("pipedream", "madpipe")

    def __init__(self, networks, procs, memories_gb, bandwidths_gbps,
                 algorithms=("pipedream", "madpipe")):
        object.__setattr__(self, "networks", _tup(networks, str))
        object.__setattr__(self, "procs", _tup(procs, int))
        object.__setattr__(self, "memories_gb", _tup(memories_gb, float))
        object.__setattr__(self, "bandwidths_gbps", _tup(bandwidths_gbps, float))
        object.__setattr__(self, "algorithms", _tup(algorithms, str))


def _tup(value, kind) -> tuple:
    if isinstance(value, (str, int, float)):
        return (kind(value),)
    return tuple(kind(v) for v in value)


def _as_spec(spec: "SweepSpec | Mapping | Sequence") -> SweepSpec:
    if isinstance(spec, SweepSpec):
        return spec
    if isinstance(spec, Mapping):
        return SweepSpec(**spec)
    if isinstance(spec, Sequence) and not isinstance(spec, str):
        return SweepSpec(*spec)
    raise TypeError(
        f"cannot interpret {type(spec).__name__} as a sweep spec; "
        "pass a SweepSpec, a mapping of its fields, or a "
        "(networks, procs, memories_gb, bandwidths_gbps[, algorithms]) sequence"
    )


@dataclass
class SweepResult:
    """Outcome of :func:`sweep`: flat results plus the metrics snapshot."""

    results: list[RunResult]
    specs: list[SweepSpec]
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def statuses(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.results:
            out[r.status] = out.get(r.status, 0) + 1
        return out

    def summary(self) -> dict:
        """Digest of the sweep: statuses plus the reuse counters.

        Surfaces what the raw ``metrics`` dict buries — how much work
        the harness *avoided*: ``cache_hits`` (served from the JSONL
        result cache), ``dedup_hits`` (duplicate specs solved once and
        fanned out), ``retries``, and the per-mechanism ``warm`` reuse
        counters of :mod:`repro.warmstart` (``dp_reuse``,
        ``onef1b_hits``, ``skeleton_reuse``, ``probes_saved``,
        ``bracket_hits`` — absent keys mean the mechanism never fired).
        """
        m = self.metrics
        return {
            "instances": len(self.results),
            "statuses": self.statuses,
            "cache_hits": int(m.get("sweep.cache_hits", 0)),
            "dedup_hits": int(m.get("sweep.dedup_hits", 0)),
            "retries": int(m.get("sweep.retries", 0)),
            "warm": {
                k.split(".", 1)[1]: int(v)
                for k, v in sorted(m.items())
                if k.startswith("warm.")
            },
        }

    def render_summary(self) -> str:
        """One-line human rendering of :meth:`summary` (the ``repro
        sweep`` footer)."""
        s = self.summary()
        statuses = " ".join(f"{k}={v}" for k, v in sorted(s["statuses"].items()))
        line = (
            f"{s['instances']} instance(s) [{statuses or 'none'}] | "
            f"reuse: {s['cache_hits']} cached, {s['dedup_hits']} deduplicated"
        )
        if s["retries"]:
            line += f", {s['retries']} retried"
        if s["warm"]:
            line += " | warm: " + " ".join(
                f"{k}={v}" for k, v in s["warm"].items()
            )
        return line

    def __len__(self) -> int:
        return len(self.results)


def sweep(
    specs: "SweepSpec | Mapping | Sequence | Iterable",
    *,
    cache: "ResultCache | str | Path | None" = None,
    trace_path: "str | Path | None" = None,
    warm_start: bool = True,
    **opts: Any,
) -> SweepResult:
    """Run one or more scenario grids through the resilient harness.

    ``specs`` is a single spec or an iterable of them (see
    :class:`SweepSpec` for the accepted forms).  ``cache`` takes a
    ready :class:`ResultCache` or just a path.  Remaining keyword
    arguments pass straight to :func:`repro.experiments.run_grid`
    (``n_workers``, ``instance_timeout``, ``max_retries``,
    ``retry_failed``, ``on_exhausted``, ``iterations``, ``grid``,
    ``ilp_time_limit``, ``schedule_family``, ``verbose``);
    ``trace_path`` streams per-instance span trees to a JSONL file.
    ``schedule_family`` is a solver option, not part of the cache
    identity — keep one cache file per family.

    ``warm_start`` (default on) solves neighboring instances against the
    per-process warm-start database (:mod:`repro.warmstart`): results
    stay bit-identical to a cold sweep — only wall time and the
    ``warm.*`` counters in ``metrics`` change.  Pass
    ``warm_start=False`` (CLI: ``--no-warm-start``) for from-scratch
    solves, e.g. when timing single instances.
    """
    if isinstance(specs, (SweepSpec, Mapping)) or (
        isinstance(specs, Sequence)
        and specs
        and isinstance(specs[0], (str, int, float))
    ):
        spec_list = [_as_spec(specs)]
    elif isinstance(specs, Iterable) and not isinstance(specs, str):
        spec_list = [_as_spec(s) for s in specs]
    else:
        spec_list = [_as_spec(specs)]  # raises the descriptive TypeError
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    registry = obs.MetricsRegistry()
    outer = obs.active_metrics()
    results: list[RunResult] = []
    with obs.use_metrics(registry):
        for spec in spec_list:
            results.extend(
                run_grid(
                    spec.networks,
                    spec.procs,
                    spec.memories_gb,
                    spec.bandwidths_gbps,
                    algorithms=spec.algorithms,
                    cache=cache,
                    trace_path=trace_path,
                    warm_start=warm_start,
                    **opts,
                )
            )
    if outer is not None:
        outer.merge(registry.snapshot())
    return SweepResult(results=results, specs=spec_list, metrics=registry.snapshot())


# ------------------------------------------------------------------ serving


def serve(
    *,
    store: "str | Path | None" = None,
    memory_entries: int = 1024,
    max_workers: int = 1,
    instance_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff_s: float = 0.5,
    backoff_cap_s: float = 30.0,
    max_pool_restarts: int = 8,
    warm_start: bool = True,
    seed: int = 0,
    resilience: "ResilienceConfig | None" = None,
) -> "PlanService":
    """Build a long-lived planning service (see :mod:`repro.serve`).

    The service answers :func:`plan` requests through a fingerprinted
    two-tier cache (in-process LRU over a persistent JSONL store at
    ``store``), coalesces identical concurrent requests into one solve,
    and runs cache misses on a bounded worker pool (``max_workers``
    processes; ``0`` solves inline on the event loop's thread pool) with
    the sweep harness's per-request deadline/retry/backoff machinery and
    the warm-start context active inside workers.  Served plans are
    bit-identical — in the :meth:`PlanResult.to_json` sense — to direct
    cold :func:`plan` calls.

    Retry backoff is capped at ``backoff_cap_s`` and jittered from the
    service's seeded RNG (``seed``), so fault-injected replays are
    bit-reproducible; a pool that dies more than ``max_pool_restarts``
    consecutive times stops rebuilding and the request surfaces
    :class:`~repro.serve.PoolExhaustedError`.  ``resilience``
    (a :class:`~repro.serve.ResilienceConfig`) switches on admission
    control with load shedding (:class:`~repro.serve.OverloadedError`),
    per-(algorithm, schedule_family) circuit breakers, and degraded-mode
    planning — certified contiguous-fallback answers marked
    ``served_from="degraded"`` that never enter the primary cache.

    Usage::

        service = api.serve(store="plans.jsonl")
        result = await service.submit(chain, platform, algorithm="madpipe")
        print(service.stats()["counters"]["serve.hits"])
        await service.close()

    CLI equivalent: ``repro serve`` (JSONL request loop over stdin).
    """
    return PlanService(
        store=store,
        memory_entries=memory_entries,
        max_workers=max_workers,
        instance_timeout=instance_timeout,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        backoff_cap_s=backoff_cap_s,
        max_pool_restarts=max_pool_restarts,
        warm_start=warm_start,
        seed=seed,
        resilience=resilience,
    )


# placed last: repro.serve pulls the harness/obs layers in but never this
# module at import time, so the facade can re-export its service surface
from .serve import (  # noqa: E402  (import cycle guard)
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    PlanService,
    PoolExhaustedError,
    ResilienceConfig,
)
