"""Plan certification and robustness-under-uncertainty (the gate layer).

Every pattern the planners emit passes through :func:`certify_pattern`
— the discrete-event verifier of :mod:`repro.sim` wrapped with
observability and fault injection — before it is accepted;
:func:`robustness_report` stress-tests a certified plan under seeded
multiplicative profile noise (see
:class:`repro.profiling.NoiseModel`).
"""

from .certify import Certificate, certify_pattern
from .perturb import RobustnessReport, robustness_report

__all__ = [
    "Certificate",
    "certify_pattern",
    "RobustnessReport",
    "robustness_report",
]
