"""The certification gate: discrete-event verification on the emission path.

The analytic checks of :class:`repro.core.pattern.PeriodicPattern` and the
discrete-event simulator of :mod:`repro.sim` have always been redundant
with each other — but the simulator was only exercised by tests, never by
the planners.  :func:`certify_pattern` puts it on the emission path: a
single call that runs :func:`repro.sim.verify_pattern`, converts the
outcome into a :class:`Certificate` (per-GPU OOM margins on success, the
violation report on failure), threads ``certify.*`` counters and a
``certify.verify`` span through :mod:`repro.obs`, and honours the
``sim_verify`` fault-injection site so the quarantine path can be forced
deterministically.

It never raises: callers branch on ``Certificate.ok`` and decide what
graceful degradation means for them (quarantine + 1F1B* fallback in
:func:`repro.algorithms.madpipe.madpipe`, probe rejection in the MILP
search, an error status in the sweep harness).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .. import obs
from ..core.chain import Chain
from ..core.pattern import PatternError, PeriodicPattern
from ..core.platform import Platform
from ..core.tolerances import CHECK_RTOL
from ..sim.validator import verify_pattern
from ..testing import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .perturb import RobustnessReport

__all__ = ["Certificate", "certify_pattern"]


@dataclass
class Certificate:
    """Outcome of certifying one plan.

    ``mode`` records how the certificate was obtained: ``verified`` (the
    plan's own pattern passed the discrete-event gate), ``fallback`` (the
    original pattern was quarantined and this certificate belongs to the
    1F1B* replacement), ``skipped`` (nothing to verify — fill-drain
    schedules like GPipe have no periodic pattern, and infeasible plans
    have no schedule at all; ``ok`` then only states that nothing
    *invalid* was emitted).

    ``oom_margin`` is ``capacity − executed peak`` per GPU, in bytes.
    ``quarantined`` carries the violation report of a rejected pattern
    when graceful degradation replaced it.  ``wall_s`` is measured wall
    time and deliberately excluded from :meth:`to_dict` so serialized
    certificates stay bit-reproducible run to run.
    """

    ok: bool
    mode: str = "verified"
    source: str = ""
    period: float | None = None
    periods_simulated: int = 0
    violations: list[str] = field(default_factory=list)
    peak_memory: dict[int, float] = field(default_factory=dict)
    oom_margin: dict[int, float] = field(default_factory=dict)
    robustness: "RobustnessReport | None" = None
    quarantined: "Certificate | None" = None
    wall_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (deterministic: no timing fields)."""
        out: dict[str, Any] = {
            "ok": self.ok,
            "mode": self.mode,
            "source": self.source,
            "period": self.period,
            "periods_simulated": self.periods_simulated,
            "violations": list(self.violations),
            "peak_memory": {str(p): m for p, m in sorted(self.peak_memory.items())},
            "oom_margin": {str(p): m for p, m in sorted(self.oom_margin.items())},
        }
        if self.robustness is not None:
            out["robustness"] = self.robustness.to_dict()
        if self.quarantined is not None:
            out["quarantined"] = self.quarantined.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Certificate":
        """Inverse of :meth:`to_dict` (``wall_s`` is not serialized and
        reloads as 0).  Raises ``ValueError`` on malformed input."""
        from .perturb import RobustnessReport

        if not isinstance(data, dict):
            raise ValueError(
                f"certificate must be a JSON object, got {type(data).__name__}"
            )
        try:
            rob = data.get("robustness")
            quar = data.get("quarantined")
            period = data.get("period")
            return cls(
                ok=bool(data["ok"]),
                mode=str(data.get("mode", "verified")),
                source=str(data.get("source", "")),
                period=None if period is None else float(period),
                periods_simulated=int(data.get("periods_simulated", 0)),
                violations=[str(v) for v in data.get("violations", ())],
                peak_memory={
                    int(p): float(m)
                    for p, m in dict(data.get("peak_memory", {})).items()
                },
                oom_margin={
                    int(p): float(m)
                    for p, m in dict(data.get("oom_margin", {})).items()
                },
                robustness=None if rob is None else RobustnessReport.from_dict(rob),
                quarantined=None if quar is None else cls.from_dict(quar),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(f"malformed certificate: {exc!r}") from exc


def certify_pattern(
    chain: Chain,
    platform: Platform,
    pattern: PeriodicPattern | None,
    *,
    periods: int | None = None,
    tol: float = CHECK_RTOL,
    source: str = "",
) -> Certificate:
    """Run ``pattern`` through the discrete-event verifier.

    Returns a :class:`Certificate` — never raises.  A ``None`` pattern
    yields a ``skipped`` certificate (``ok=True``: there is nothing to
    reject).  Margins are measured against the platform's *full*
    capacity, so plans produced with a ``memory_headroom`` show their
    reserved margin here.
    """
    if pattern is None:
        return Certificate(ok=True, mode="skipped", source=source)
    t0 = time.perf_counter()
    with obs.span("certify.verify", source=source) as sp:
        obs.inc("certify.checks")
        fault = faults.fire("sim_verify", key=source)
        try:
            if fault is not None and fault.action == "fail":
                raise PatternError(
                    f"injected certification failure at sim_verify[{source}]"
                )
            report = verify_pattern(chain, platform, pattern, periods=periods, tol=tol)
        except PatternError as exc:
            obs.inc("certify.failures")
            sp.set(ok=False)
            return Certificate(
                ok=False,
                mode="verified",
                source=source,
                period=pattern.period,
                violations=[str(exc)],
                wall_s=time.perf_counter() - t0,
            )
        sp.set(ok=True, periods=round(report.horizon / pattern.period))
    return Certificate(
        ok=True,
        mode="verified",
        source=source,
        period=pattern.period,
        periods_simulated=round(report.horizon / pattern.period),
        peak_memory=dict(sorted(report.peak_memory.items())),
        oom_margin={
            p: platform.memory - m for p, m in sorted(report.peak_memory.items())
        },
        wall_s=time.perf_counter() - t0,
    )
