"""Seeded robustness analysis of a certified plan under profile noise.

A plan is a *timing structure*: start times ``t``, shifts ``h`` and a
period ``T``.  Scaling the whole structure uniformly — ``t → s·t``,
``T → s·T`` — preserves every dependency inequality
``(h_v − h_u)·T + t_v − t_u ≥ d_u`` and every circular resource gap
``(t_b − t_a) mod T ≥ d_a`` up to the same factor ``s``, because both
left-hand sides are homogeneous of degree 1 in ``(t, T)`` while the
durations ``d`` are the inhomogeneous part.  So for perturbed durations
``d'`` the *minimal uniform stretch* that restores validity is simply

    s* = max over constraints of d'_u / (nominal LHS of that constraint)

— a closed-form worst-case period inflation, no solver needed.  Memory
is then evaluated on the stretched pattern with the perturbed chain
(batch counts are scale-invariant; activation/weight bytes carry the
sampled noise), giving a per-GPU OOM margin per sample.

Sampling uses common random numbers: one seeded draw matrix is reused
across noise scales, so per-sample outcomes are (near-)monotone in the
scale and the "noise level at which the plan first breaks" can be
bisected deterministically — the same seed always yields the exact same
:class:`RobustnessReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..core.chain import Chain
from ..core.pattern import Op, PeriodicPattern
from ..core.platform import Platform
from ..core.tolerances import memory_slack
from ..profiling.cost_model import NoiseModel
from ..sim.engine import simulate

__all__ = ["RobustnessReport", "robustness_report"]

INF = float("inf")

#: A sample "breaks" the plan when its required period inflation exceeds
#: this factor (or when any GPU runs out of memory).
DEFAULT_BREAK_INFLATION = 1.05

#: Upper end of the bisection bracket, as a multiple of the noise
#: model's sigmas.
DEFAULT_MAX_NOISE_SCALE = 4.0


@dataclass
class RobustnessReport:
    """Seeded stress-test outcome for one certified plan.

    All fields are deterministic functions of ``(plan, noise, samples,
    seed)`` — no timestamps, no wall times — so the same seed reproduces
    the report bit for bit.

    * ``worst_period_inflation`` / ``mean_period_inflation``: the
      maximal/mean uniform stretch ``s*`` over the nominal-scale samples
      (``inf`` when some sample cannot be fixed by stretching at all);
    * ``oom_margin`` / ``worst_oom_margin``: per-GPU ``capacity − peak``
      in bytes, for the unperturbed profile and the worst sample;
    * ``oom_samples``: how many samples exceed some GPU's capacity even
      after stretching;
    * ``breaking_noise_scale``: smallest multiple of the noise model's
      sigmas at which a sample breaks (period inflation beyond
      ``break_inflation`` or an OOM), bisected over ``[0,
      max_noise_scale]``; ``None`` when the plan survives the whole
      bracket.
    * ``worst_sample_sim_violations``: violations the discrete-event
      simulator reports when *executing* the worst nominal-scale sample
      (stretched timing, perturbed memory) — the re-simulation
      cross-check of the analytic stretch; 0 when the sample is broken
      beyond repair (``inf`` stretch) and skipped.
    """

    seed: int
    samples: int
    noise: dict[str, Any]
    period: float
    break_inflation: float
    max_noise_scale: float
    worst_period_inflation: float = 1.0
    mean_period_inflation: float = 1.0
    oom_margin: dict[int, float] = field(default_factory=dict)
    worst_oom_margin: dict[int, float] = field(default_factory=dict)
    oom_samples: int = 0
    breaking_noise_scale: float | None = None
    worst_sample_sim_violations: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "samples": self.samples,
            "noise": dict(self.noise),
            "period": self.period,
            "break_inflation": self.break_inflation,
            "max_noise_scale": self.max_noise_scale,
            "worst_period_inflation": self.worst_period_inflation,
            "mean_period_inflation": self.mean_period_inflation,
            "oom_margin": {str(p): m for p, m in sorted(self.oom_margin.items())},
            "worst_oom_margin": {
                str(p): m for p, m in sorted(self.worst_oom_margin.items())
            },
            "oom_samples": self.oom_samples,
            "breaking_noise_scale": self.breaking_noise_scale,
            "worst_sample_sim_violations": self.worst_sample_sim_violations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RobustnessReport":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` when malformed."""
        if not isinstance(data, dict):
            raise ValueError(
                f"robustness report must be a JSON object, got {type(data).__name__}"
            )
        try:
            breaking = data.get("breaking_noise_scale")
            return cls(
                seed=int(data["seed"]),
                samples=int(data["samples"]),
                noise=dict(data["noise"]),
                period=float(data["period"]),
                break_inflation=float(data["break_inflation"]),
                max_noise_scale=float(data["max_noise_scale"]),
                worst_period_inflation=float(data["worst_period_inflation"]),
                mean_period_inflation=float(data["mean_period_inflation"]),
                oom_margin={
                    int(p): float(m) for p, m in dict(data["oom_margin"]).items()
                },
                worst_oom_margin={
                    int(p): float(m)
                    for p, m in dict(data["worst_oom_margin"]).items()
                },
                oom_samples=int(data["oom_samples"]),
                breaking_noise_scale=None if breaking is None else float(breaking),
                worst_sample_sim_violations=int(
                    data["worst_sample_sim_violations"]
                ),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(f"malformed robustness report: {exc!r}") from exc


def _op_durations(
    chain: Chain, platform: Platform, pattern: PeriodicPattern
) -> dict[tuple[str, int], float]:
    """Durations every op of ``pattern`` would have under ``chain``
    (the same convention the planners use: stage forward/backward for
    compute, ``a_l / β`` per transfer direction for communication)."""
    alloc = pattern.allocation
    dur: dict[tuple[str, int], float] = {}
    for key in pattern.ops:
        kind, i = key
        if kind == "F":
            dur[key] = alloc.stages[i].forward(chain)
        elif kind == "B":
            dur[key] = alloc.stages[i].backward(chain)
        else:  # CF / CB on the boundary after stage i
            dur[key] = chain.activation(alloc.stages[i].end) / platform.bandwidth
    return dur


def _required_stretch(
    pattern: PeriodicPattern, dur: dict[tuple[str, int], float]
) -> float:
    """Minimal uniform scale of ``(t, T)`` under which the pattern is
    valid with durations ``dur``; ``inf`` when no stretch can fix it
    (a constraint with zero nominal slack against a positive duration).
    """
    T = pattern.period
    s = 1.0
    for u_key, v_key in pattern.dependency_edges():
        d = dur[u_key]
        if d <= 0.0:
            continue
        u, v = pattern.ops[u_key], pattern.ops[v_key]
        lhs = (v.shift - u.shift) * T + v.start - u.start
        if lhs <= 0.0:
            return INF
        s = max(s, d / lhs)
    by_resource: dict[tuple, list[tuple[tuple[str, int], Op]]] = {}
    for key, op in pattern.ops.items():
        by_resource.setdefault(op.resource, []).append((key, op))
    for ops in by_resource.values():
        for i, (a_key, a) in enumerate(ops):
            for b_key, b in ops[i + 1 :]:
                gap_ab = (b.start - a.start) % T
                gap_ba = (a.start - b.start) % T
                d_a, d_b = dur[a_key], dur[b_key]
                if d_a > 0.0:
                    if gap_ab <= 0.0:
                        return INF
                    s = max(s, d_a / gap_ab)
                if d_b > 0.0:
                    if gap_ba <= 0.0:
                        return INF
                    s = max(s, d_b / gap_ba)
    for key, op in pattern.ops.items():  # no op may outgrow the period
        d = dur[key]
        if d > 0.0:
            s = max(s, d / T)
    return s


def _stretched_pattern(
    pattern: PeriodicPattern, dur: dict[tuple[str, int], float], s: float
) -> PeriodicPattern:
    """The pattern with starts and period scaled by ``s`` and durations
    replaced by ``dur`` (shifts and structure unchanged)."""
    ops = {
        key: Op(
            kind=op.kind,
            index=op.index,
            resource=op.resource,
            start=op.start * s,
            duration=dur[key],
            shift=op.shift,
        )
        for key, op in pattern.ops.items()
    }
    return PeriodicPattern(
        allocation=pattern.allocation, period=pattern.period * s, ops=ops
    )


def _evaluate(
    chain: Chain,
    platform: Platform,
    pattern: PeriodicPattern,
    noise: NoiseModel,
    draws: np.ndarray,
    scale: float,
) -> list[tuple[float, dict[int, float]]]:
    """(stretch, per-GPU margin) per sample at one noise scale."""
    out: list[tuple[float, dict[int, float]]] = []
    procs = sorted(pattern.allocation.procs_used())
    for i in range(draws.shape[0]):
        chain_p = noise.apply(chain, draws[i], scale)
        dur = _op_durations(chain_p, platform, pattern)
        s = _required_stretch(pattern, dur)
        if not math.isfinite(s):
            out.append((INF, {p: -INF for p in procs}))
            continue
        peaks = _stretched_pattern(pattern, dur, s).memory_peaks(chain_p)
        out.append((s, {p: platform.memory - m for p, m in peaks.items()}))
    return out


def robustness_report(
    chain: Chain,
    platform: Platform,
    pattern: PeriodicPattern,
    *,
    noise: NoiseModel | None = None,
    samples: int = 32,
    seed: int = 0,
    break_inflation: float = DEFAULT_BREAK_INFLATION,
    max_noise_scale: float = DEFAULT_MAX_NOISE_SCALE,
    bisect_iters: int = 12,
) -> RobustnessReport:
    """Stress-test ``pattern`` under seeded multiplicative profile noise.

    See :class:`RobustnessReport` for what comes back.  ``noise``
    defaults to :class:`repro.profiling.NoiseModel` (5% lognormal on
    compute and activations); a calibrated per-layer
    :class:`repro.profiling.LayerNoiseModel` (fitted by
    :func:`repro.profiles.calibrate`) flows through the same draw/apply
    machinery unchanged, so observed-noise reports share seeds and
    bisection with the assumed-noise ones.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    noise = noise or NoiseModel()
    calibrated_for = getattr(noise, "n_layers", None)
    if calibrated_for is not None and calibrated_for != chain.L:
        # fail before burning samples: a calibrated model must never be
        # stretched onto a chain it was not fitted for
        raise ValueError(
            f"noise model is calibrated for {calibrated_for} layer(s) "
            f"but was applied to a chain with {chain.L}"
        )
    with obs.span(
        "certify.robustness", samples=samples, seed=seed
    ) as sp:
        obs.inc("certify.robustness_runs")
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        draws = noise.draw(rng, samples, chain.L)
        slack = memory_slack(platform.memory)

        def breaks(results: list[tuple[float, dict[int, float]]]) -> bool:
            return any(
                s > break_inflation or min(m.values()) < -slack for s, m in results
            )

        nominal = _evaluate(chain, platform, pattern, noise, draws, 1.0)
        stretches = [s for s, _ in nominal]
        procs = sorted(pattern.allocation.procs_used())
        worst_margin = {
            p: min(m[p] for _, m in nominal) for p in procs
        }
        zero = _evaluate(chain, platform, pattern, noise, draws[:1], 0.0)[0]

        report = RobustnessReport(
            seed=seed,
            samples=samples,
            noise=noise.to_dict(),
            period=pattern.period,
            break_inflation=break_inflation,
            max_noise_scale=max_noise_scale,
            worst_period_inflation=max(stretches),
            mean_period_inflation=(
                INF if any(not math.isfinite(s) for s in stretches)
                else sum(stretches) / len(stretches)
            ),
            oom_margin=dict(zero[1]),
            worst_oom_margin=worst_margin,
            oom_samples=sum(1 for _, m in nominal if min(m.values()) < -slack),
        )

        # bisect the smallest breaking noise scale over [0, max_noise_scale];
        # reusing `draws` keeps every level on the same random numbers, so
        # the predicate is effectively monotone and the bisection lands on
        # a genuine threshold
        if breaks(_evaluate(chain, platform, pattern, noise, draws, max_noise_scale)):
            lo, hi = 0.0, max_noise_scale
            for _ in range(bisect_iters):
                mid = 0.5 * (lo + hi)
                if breaks(_evaluate(chain, platform, pattern, noise, draws, mid)):
                    hi = mid
                else:
                    lo = mid
            report.breaking_noise_scale = hi

        # re-simulate the worst nominal-scale sample end to end: stretched
        # timing + perturbed memory through the discrete-event engine
        worst_i = max(range(samples), key=lambda i: stretches[i])
        if math.isfinite(stretches[worst_i]):
            chain_w = noise.apply(chain, draws[worst_i], 1.0)
            dur_w = _op_durations(chain_w, platform, pattern)
            stretched = _stretched_pattern(pattern, dur_w, stretches[worst_i])
            sim = simulate(chain_w, platform, stretched)
            report.worst_sample_sim_violations = len(sim.violations)
        sp.set(
            worst_inflation=report.worst_period_inflation
            if math.isfinite(report.worst_period_inflation)
            else None,
            oom_samples=report.oom_samples,
            breaking_scale=report.breaking_noise_scale,
        )
    return report
