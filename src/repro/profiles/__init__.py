"""Measured-profile ingestion: traces → calibrated chains + fitted noise.

The trusted-ingestion subsystem (ROADMAP item 4).  Raw per-layer
timing/memory traces — JSONL or CSV, schema-versioned, multi-run — enter
through :func:`ingest_traces`, which validates every record against
:mod:`~repro.profiles.schema` and quarantines corruption to sidecar
files instead of crashing.  :func:`calibrate` then turns the surviving
samples into a calibrated :class:`~repro.core.chain.Chain` (robust
medians) and a fitted heteroscedastic
:class:`~repro.profiling.LayerNoiseModel`, with an explicit coverage
report and a ``degraded`` flag whenever anything fell back to the
synthetic baseline.  ``repro ingest`` and ``repro certify --traces``
are the CLI front ends.
"""

from .calibrate import (
    CalibrationResult,
    LayerCoverage,
    calibrate,
    fit_lognormal_sigma,
    mad_filter,
)
from .ingest import TraceLog, TraceSet, ingest_traces
from .schema import (
    SCHEMA_VERSION,
    TIME_UNITS,
    TraceRecord,
    parse_record,
    record_from_csv_row,
)

__all__ = [
    "SCHEMA_VERSION",
    "TIME_UNITS",
    "TraceRecord",
    "parse_record",
    "record_from_csv_row",
    "TraceLog",
    "TraceSet",
    "ingest_traces",
    "LayerCoverage",
    "CalibrationResult",
    "calibrate",
    "mad_filter",
    "fit_lognormal_sigma",
]
