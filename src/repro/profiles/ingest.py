"""Hardened trace ingestion: JSONL + CSV, per-record quarantine.

A trace directory holds one file per profiling run (or several runs per
file — the ``run`` field disambiguates), as ``*.jsonl`` or ``*.csv``.
:func:`ingest_traces` reads every trace file in sorted order and returns
a :class:`TraceSet`: the validated records plus a full account of what
was *dropped* and why.

Robustness contract:

* a corrupt line never aborts ingestion — it is quarantined (appended to
  a ``<file>.quarantine`` sidecar next to the trace, with line number
  and reason) and counted in the ``ingest.quarantined`` counter;
* JSONL quarantine reuses the battle-tested
  :class:`~repro.experiments.harness.JsonlCache` machinery (the same
  code path that recovers sweep caches and plan stores); the trace files
  themselves are *read-only* — ingestion never rewrites them;
* CSV rows flow through the same :func:`~repro.profiles.schema.
  parse_record` gate, with their own sidecar in the same format;
* ingestion is deterministic: files in sorted order, lines in file
  order, so the same directory always yields the same
  :class:`TraceSet`.

Fault sites (see :mod:`repro.testing.faults`): ``ingest_file`` fires
once per trace file (``raise``/``exit``/``sleep`` model a reader crash
mid-directory), ``ingest_record`` fires per decoded record (``fail``
forces the record into quarantine, exercising the sidecar path without
hand-crafting corrupt bytes).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..experiments.harness import JsonlCache
from ..profiling.io import ProfileError
from ..testing import faults
from .schema import CSV_COLUMNS, TraceRecord, parse_record, record_from_csv_row

__all__ = ["TraceLog", "TraceSet", "ingest_traces"]


class TraceLog(JsonlCache):
    """Read-only JSONL trace reader with corrupt-line quarantine.

    One instance reads one trace file.  Records are keyed by
    ``(run, layer)`` — a duplicated measurement in the same file
    resolves last-write-wins, like every other cache in the repo.
    Ingestion never calls :meth:`put`/:meth:`flush`, so the trace file
    on disk is never modified; only the ``<name>.quarantine`` sidecar
    grows when corruption is found.
    """

    def _encode(self, record: TraceRecord) -> dict:
        return record.to_dict()

    def _decode(self, obj: dict) -> TraceRecord:
        return _parse_record_with_faults(obj, source=str(self.path))

    def _key(self, record: TraceRecord) -> tuple:
        return (record.run, record.layer)

    @property
    def records(self) -> list[TraceRecord]:
        """Validated records in deterministic (file) order."""
        return list(self._data.values())


def _parse_record_with_faults(obj: object, *, source: str) -> TraceRecord:
    """The shared per-record gate: schema validation plus the
    ``ingest_record`` fault site (a ``fail`` fault forces the record into
    quarantine as if it had been corrupt)."""
    record = parse_record(obj, source=source)
    fault = faults.fire("ingest_record", key=f"{source}:{record.run}:{record.layer}")
    if fault is not None and fault.action == "fail":
        raise ProfileError(
            "injected ingest fault", source=source, field=record.layer
        )
    return record


@dataclass
class TraceSet:
    """Everything one ingestion pass read — and everything it dropped.

    ``quarantined`` lists ``(file, lineno, reason)`` for every rejected
    line, mirroring the sidecar contents; nothing is dropped silently.
    """

    records: list[TraceRecord] = field(default_factory=list)
    files: tuple[str, ...] = ()
    quarantined: list[tuple[str, int, str]] = field(default_factory=list)

    @property
    def n_records(self) -> int:
        return len(self.records)

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    @property
    def runs(self) -> tuple[int, ...]:
        """Distinct run indices seen, ascending."""
        return tuple(sorted({r.run for r in self.records}))

    def by_layer(self) -> dict[str, list[TraceRecord]]:
        """Records grouped by layer name, insertion order preserved."""
        out: dict[str, list[TraceRecord]] = {}
        for r in self.records:
            out.setdefault(r.layer, []).append(r)
        return out


def _read_jsonl(path: Path, out: TraceSet) -> None:
    log = TraceLog(path)
    out.records.extend(log.records)
    for lineno, reason, _line in log.quarantined:
        out.quarantined.append((str(path), lineno, reason))


def _read_csv(path: Path, out: TraceSet) -> None:
    """CSV twin of the JSONL path: same validation gate, same sidecar
    format (``# line N: reason`` followed by the raw line)."""
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames
        if header is None:
            return  # empty file: nothing to read, nothing to quarantine
        unknown = sorted(set(header) - set(CSV_COLUMNS))
        if unknown:
            raise ProfileError(
                f"unknown CSV columns {unknown}; expected a subset of "
                f"{list(CSV_COLUMNS)}",
                source=str(path),
            )
        bad: list[tuple[int, str, str]] = []
        for row in reader:
            lineno = reader.line_num
            try:
                record = record_from_csv_row(row, source=f"{path}:{lineno}")
                fault = faults.fire(
                    "ingest_record", key=f"{path}:{record.run}:{record.layer}"
                )
                if fault is not None and fault.action == "fail":
                    raise ProfileError(
                        "injected ingest fault",
                        source=f"{path}:{lineno}",
                        field=record.layer,
                    )
            except ProfileError as exc:
                raw = ",".join("" if v is None else str(v) for v in row.values())
                bad.append((lineno, str(exc), raw))
            else:
                out.records.append(record)
    if bad:
        sidecar = path.with_name(path.name + ".quarantine")
        try:
            with sidecar.open("a") as fh:
                for lineno, reason, line in bad:
                    fh.write(f"# line {lineno}: {reason}\n{line}\n")
        except OSError:
            pass  # read-only location: the TraceSet report still has it
        for lineno, reason, _line in bad:
            out.quarantined.append((str(path), lineno, reason))


def ingest_traces(trace_dir: str | Path) -> TraceSet:
    """Read every ``*.jsonl`` / ``*.csv`` trace under ``trace_dir``.

    Never raises on *content* problems — bad records are quarantined and
    reported in the returned :class:`TraceSet`.  Raises
    :class:`~repro.profiling.ProfileError` only for structural problems
    a sidecar cannot represent (missing directory, no trace files, an
    unreadable CSV header), and ``OSError`` for filesystem failures.
    """
    root = Path(trace_dir)
    if not root.is_dir():
        raise ProfileError("trace directory does not exist", source=str(root))
    paths = sorted(
        p for p in root.iterdir()
        if p.suffix in (".jsonl", ".csv") and p.is_file()
    )
    if not paths:
        raise ProfileError(
            "no *.jsonl or *.csv trace files found", source=str(root)
        )
    out = TraceSet(files=tuple(str(p) for p in paths))
    with obs.span("ingest", trace_dir=str(root), files=len(paths)):
        for path in paths:
            faults.fire("ingest_file", key=str(path))
            if path.suffix == ".jsonl":
                _read_jsonl(path, out)
            else:
                _read_csv(path, out)
    obs.inc("ingest.records", out.n_records)
    obs.inc("ingest.quarantined", out.n_quarantined)
    return out
