"""Trace record schema: versioned, unit-checked, strictly validated.

One trace record is one measurement of one layer in one profiling run —
the row a layer-hook profiler emits per forward/backward pair.  Records
travel as JSONL objects or CSV rows; both funnel through
:func:`parse_record`, the single validation gate of the ingestion
subsystem:

* ``schema`` must equal :data:`SCHEMA_VERSION` (future formats bump it,
  old readers reject instead of misparsing);
* ``run`` is the profiling-run index (int ≥ 0), ``layer`` the layer name
  matching the baseline chain;
* ``u_f`` / ``u_b`` are the measured forward/backward durations in
  ``time_unit`` (``s`` / ``ms`` / ``us`` — normalized to seconds here,
  so everything downstream is single-unit);
* ``weights`` / ``activation`` are optional byte sizes (a timing-only
  trace is valid; the memory fields then fall back to the baseline);
* NaN, infinity, negative values, wrong types, unknown units and
  unknown keys are all rejected with a :class:`repro.profiling.
  ProfileError` naming the source and field — the quarantine machinery
  in :mod:`repro.profiles.ingest` catches exactly that.

Validation is deliberately paranoid: measured traces are *untrusted
input* (truncated writes, mis-unit'd exporters, editor mishaps), and a
silently misparsed record would poison the calibration medians.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..profiling.io import ProfileError

__all__ = [
    "SCHEMA_VERSION",
    "TIME_UNITS",
    "CSV_COLUMNS",
    "TraceRecord",
    "parse_record",
    "record_from_csv_row",
]

#: The trace format version this reader understands.
SCHEMA_VERSION = 1

#: Accepted ``time_unit`` spellings and their factor to seconds.
TIME_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6}

#: Canonical CSV header (also the full set of accepted JSONL keys).
CSV_COLUMNS = (
    "schema",
    "run",
    "layer",
    "u_f",
    "u_b",
    "weights",
    "activation",
    "time_unit",
)

_REQUIRED = ("schema", "run", "layer", "u_f", "u_b")


@dataclass(frozen=True)
class TraceRecord:
    """One validated per-layer measurement (durations in seconds)."""

    run: int
    layer: str
    u_f: float
    u_b: float
    weights: float | None = None
    activation: float | None = None

    def to_dict(self) -> dict:
        """Canonical JSON form (seconds; optional fields omitted)."""
        out: dict = {
            "schema": SCHEMA_VERSION,
            "run": self.run,
            "layer": self.layer,
            "u_f": self.u_f,
            "u_b": self.u_b,
        }
        if self.weights is not None:
            out["weights"] = self.weights
        if self.activation is not None:
            out["activation"] = self.activation
        return out


def _number(obj: dict, key: str, source: str, *, unit: float = 1.0) -> float:
    v = obj[key]
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        raise ProfileError(
            f"must be a number, got {type(v).__name__}", source=source, field=key
        )
    if not math.isfinite(v):
        raise ProfileError(f"non-finite value {v!r}", source=source, field=key)
    if v < 0:
        raise ProfileError(f"negative value {v!r}", source=source, field=key)
    return float(v) * unit


def parse_record(obj: object, *, source: str = "<record>") -> TraceRecord:
    """Validate one raw record dict into a :class:`TraceRecord`.

    Raises :class:`~repro.profiling.ProfileError` (a ``ValueError``, so
    the JSONL quarantine machinery catches it) on anything malformed.
    """
    if not isinstance(obj, dict):
        raise ProfileError(
            f"trace record must be an object, got {type(obj).__name__}",
            source=source,
        )
    missing = [k for k in _REQUIRED if k not in obj]
    if missing:
        raise ProfileError(f"missing fields {missing}", source=source)
    unknown = sorted(set(obj) - set(CSV_COLUMNS))
    if unknown:
        raise ProfileError(f"unknown fields {unknown}", source=source)
    schema = obj["schema"]
    if isinstance(schema, bool) or schema != SCHEMA_VERSION:
        raise ProfileError(
            f"unsupported schema version {schema!r} "
            f"(this reader understands {SCHEMA_VERSION})",
            source=source,
            field="schema",
        )
    run = obj["run"]
    if isinstance(run, bool) or not isinstance(run, int) or run < 0:
        raise ProfileError(
            f"must be a non-negative integer, got {run!r}",
            source=source,
            field="run",
        )
    layer = obj["layer"]
    if not isinstance(layer, str) or not layer:
        raise ProfileError(
            f"must be a non-empty string, got {layer!r}",
            source=source,
            field="layer",
        )
    unit_name = obj.get("time_unit", "s")
    try:
        unit = TIME_UNITS[unit_name]
    except (KeyError, TypeError):
        raise ProfileError(
            f"unknown time unit {unit_name!r}; choose from "
            f"{sorted(TIME_UNITS)}",
            source=source,
            field="time_unit",
        ) from None
    mem: dict[str, float | None] = {}
    for key in ("weights", "activation"):
        mem[key] = None if obj.get(key) is None else _number(obj, key, source)
    return TraceRecord(
        run=run,
        layer=layer,
        u_f=_number(obj, "u_f", source, unit=unit),
        u_b=_number(obj, "u_b", source, unit=unit),
        weights=mem["weights"],
        activation=mem["activation"],
    )


def record_from_csv_row(row: dict, *, source: str = "<row>") -> TraceRecord:
    """Parse one ``csv.DictReader`` row (all-string values) into a
    :class:`TraceRecord` via :func:`parse_record`.

    Empty cells mean "absent" (optional fields) and a short row — the
    classic truncated-write corruption — surfaces as a missing-field
    error, not a silent zero.
    """
    if row.get(None) is not None:
        raise ProfileError(
            f"row has {len(row[None])} extra cell(s) beyond the header",
            source=source,
        )
    obj: dict = {}
    for key, raw in row.items():
        if raw is None or raw == "":
            continue
        if key in ("schema", "run"):
            try:
                obj[key] = int(raw)
            except ValueError:
                raise ProfileError(
                    f"must be an integer, got {raw!r}", source=source, field=key
                ) from None
        elif key in ("u_f", "u_b", "weights", "activation"):
            try:
                obj[key] = float(raw)
            except ValueError:
                raise ProfileError(
                    f"must be a number, got {raw!r}", source=source, field=key
                ) from None
        else:
            obj[key] = raw
    return parse_record(obj, source=source)
