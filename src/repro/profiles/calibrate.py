"""Robust calibration: traces → calibrated Chain + fitted noise model.

Given a baseline :class:`~repro.core.chain.Chain` (the synthetic profile
the planner would otherwise use) and an ingested :class:`~repro.profiles.
ingest.TraceSet`, :func:`calibrate` produces a
:class:`CalibrationResult`:

* a **calibrated chain** — per-layer medians of the measured
  ``u_F``/``u_B``/``W_l``/``a_l`` after MAD-based outlier rejection
  (median/MAD, not mean/stddev: one thermal-throttle spike must not
  drag a point estimate);
* a **fitted noise model** — per-layer lognormal sigmas estimated from
  the surviving samples' log-residual MAD
  (:class:`~repro.profiling.LayerNoiseModel`), so ``repro certify``
  stress-tests against *observed* variance instead of an assumed scalar;
* a **coverage report** — per layer: how many samples arrived, how many
  were rejected as outliers, and which fields fell back to the baseline
  because fewer than ``min_samples`` measurements survived.

Fallback is loud, never blended: an under-covered field keeps the
baseline value and the ``default_noise`` sigma, the layer is listed in
the coverage report, and the whole result is marked ``degraded``.  Trace
layers that do not exist in the baseline chain are reported as
``unknown_layers`` (and also mark the result degraded — a name mismatch
means the traces may not belong to this network).

Everything here is deterministic: medians over sorted samples, no RNG,
no timestamps — the same traces always produce byte-identical
serialized results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .. import obs
from ..core.chain import Chain, LayerProfile
from ..profiling.cost_model import LayerNoiseModel, NoiseModel
from .ingest import TraceSet

__all__ = [
    "LayerCoverage",
    "CalibrationResult",
    "calibrate",
    "mad_filter",
    "fit_lognormal_sigma",
]

#: MAD → stddev consistency constant for the normal distribution.
MAD_SCALE = 1.4826

#: The four calibratable fields of a layer, in serialization order.
_FIELDS = ("u_f", "u_b", "weights", "activation")


def _median(xs: list[float]) -> float:
    """Median of a non-empty list (deterministic, no numpy dtype drift)."""
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def mad_filter(xs: list[float], *, mad_k: float) -> tuple[list[float], int]:
    """Drop samples farther than ``mad_k`` robust standard deviations
    from the median; returns ``(kept, n_rejected)``.

    When the MAD is zero (at least half the samples identical) no filter
    is applied — a degenerate spread must not reject every non-identical
    sample.
    """
    if len(xs) < 3:
        return list(xs), 0
    med = _median(xs)
    mad = _median([abs(x - med) for x in xs])
    if mad == 0.0:
        return list(xs), 0
    cut = mad_k * MAD_SCALE * mad
    kept = [x for x in xs if abs(x - med) <= cut]
    return kept, len(xs) - len(kept)


def fit_lognormal_sigma(xs: list[float]) -> float | None:
    """Robust lognormal sigma of positive samples: the MAD of the log
    residuals, scaled to stddev.  ``None`` when fewer than two positive
    samples exist (no spread to estimate)."""
    pos = [x for x in xs if x > 0 and math.isfinite(x)]
    if len(pos) < 2:
        return None
    logs = [math.log(x) for x in pos]
    med = _median(logs)
    return MAD_SCALE * _median([abs(v - med) for v in logs])


@dataclass(frozen=True)
class LayerCoverage:
    """How well the traces covered one baseline layer.

    ``samples`` counts records naming this layer, ``outliers`` the
    sample values the MAD filter rejected (summed over fields), and
    ``fallback`` the fields that kept the baseline value + default sigma
    because fewer than ``min_samples`` measurements survived.
    """

    layer: str
    samples: int
    outliers: int
    fallback: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "samples": self.samples,
            "outliers": self.outliers,
            "fallback": list(self.fallback),
        }


@dataclass
class CalibrationResult:
    """The provenance-carrying outcome of one calibration pass."""

    chain: Chain
    noise: LayerNoiseModel
    coverage: list[LayerCoverage]
    degraded: bool
    unknown_layers: tuple[str, ...] = ()
    n_records: int = 0
    n_quarantined: int = 0
    min_samples: int = 3
    mad_k: float = 5.0

    @property
    def fallback_layers(self) -> tuple[str, ...]:
        """Names of layers with at least one fallback field."""
        return tuple(c.layer for c in self.coverage if c.fallback)

    def to_dict(self) -> dict:
        """Deterministic JSON form (no timestamps, stable ordering)."""
        return {
            "schema": 1,
            "chain": self.chain.to_dict(),
            "noise": self.noise.to_dict(),
            "coverage": [c.to_dict() for c in self.coverage],
            "degraded": self.degraded,
            "unknown_layers": list(self.unknown_layers),
            "n_records": self.n_records,
            "n_quarantined": self.n_quarantined,
            "min_samples": self.min_samples,
            "mad_k": self.mad_k,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationResult":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` when malformed."""
        from ..profiling.io import chain_from_dict

        if not isinstance(data, dict):
            raise ValueError(
                f"calibration must be a JSON object, got {type(data).__name__}"
            )
        try:
            return cls(
                chain=chain_from_dict(data["chain"], source="<calibration>"),
                noise=LayerNoiseModel.from_dict(data["noise"]),
                coverage=[
                    LayerCoverage(
                        layer=c["layer"],
                        samples=int(c["samples"]),
                        outliers=int(c["outliers"]),
                        fallback=tuple(c.get("fallback", ())),
                    )
                    for c in data["coverage"]
                ],
                degraded=bool(data["degraded"]),
                unknown_layers=tuple(data.get("unknown_layers", ())),
                n_records=int(data.get("n_records", 0)),
                n_quarantined=int(data.get("n_quarantined", 0)),
                min_samples=int(data.get("min_samples", 3)),
                mad_k=float(data.get("mad_k", 5.0)),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed calibration: {exc!r}") from exc


@dataclass
class _FieldFit:
    """One field of one layer: point estimate + sigma, or fallback."""

    value: float
    sigma: float
    outliers: int = 0
    fallback: bool = False


def _fit_field(
    samples: list[float],
    baseline: float,
    default_sigma: float,
    *,
    min_samples: int,
    mad_k: float,
) -> _FieldFit:
    kept, rejected = mad_filter(samples, mad_k=mad_k)
    if len(kept) < min_samples:
        return _FieldFit(
            value=baseline, sigma=default_sigma, outliers=rejected, fallback=True
        )
    sigma = fit_lognormal_sigma(kept)
    if sigma is None:
        # all-zero (or single positive) measurements: the point estimate
        # is trustworthy, the spread is not — keep the default sigma
        sigma = default_sigma
    return _FieldFit(value=_median(kept), sigma=sigma, outliers=rejected)


def calibrate(
    baseline: Chain,
    traces: TraceSet,
    *,
    min_samples: int = 3,
    mad_k: float = 5.0,
    default_noise: NoiseModel | None = None,
) -> CalibrationResult:
    """Fit a calibrated chain + per-layer noise model from ``traces``.

    ``min_samples`` is the coverage floor per (layer, field): fewer
    surviving measurements and the field falls back to ``baseline``'s
    value with ``default_noise``'s sigma, marking the result
    ``degraded``.  ``mad_k`` is the outlier cut in robust standard
    deviations.  ``default_noise`` defaults to the stock
    :class:`~repro.profiling.NoiseModel` (the PR 5 assumption) and also
    supplies the input-activation sigma, which traces do not measure.
    """
    if min_samples < 1:
        raise ValueError("min_samples must be >= 1")
    if mad_k <= 0:
        raise ValueError("mad_k must be > 0")
    default = default_noise if default_noise is not None else NoiseModel()
    by_layer = traces.by_layer()
    known = {layer.name for layer in baseline.layers}
    unknown = tuple(sorted(set(by_layer) - known))

    layers: list[LayerProfile] = []
    coverage: list[LayerCoverage] = []
    sigma_compute: list[float] = []
    sigma_weight: list[float] = []
    sigma_activation: list[float] = [default.sigma_activation]  # a_0: unmeasured
    n_outliers = 0

    with obs.span("calibrate", network=baseline.name, layers=baseline.L):
        for layer in baseline.layers:
            recs = by_layer.get(layer.name, [])
            fits = {
                "u_f": _fit_field(
                    [r.u_f for r in recs], layer.u_f, default.sigma_compute,
                    min_samples=min_samples, mad_k=mad_k,
                ),
                "u_b": _fit_field(
                    [r.u_b for r in recs], layer.u_b, default.sigma_compute,
                    min_samples=min_samples, mad_k=mad_k,
                ),
                "weights": _fit_field(
                    [r.weights for r in recs if r.weights is not None],
                    layer.weights, default.sigma_weight,
                    min_samples=min_samples, mad_k=mad_k,
                ),
                "activation": _fit_field(
                    [r.activation for r in recs if r.activation is not None],
                    layer.activation, default.sigma_activation,
                    min_samples=min_samples, mad_k=mad_k,
                ),
            }
            layers.append(
                LayerProfile(
                    name=layer.name,
                    u_f=fits["u_f"].value,
                    u_b=fits["u_b"].value,
                    weights=fits["weights"].value,
                    activation=fits["activation"].value,
                )
            )
            # one compute sigma drives both u_F and u_B draws; take the
            # worse of the two fits (conservative for certification)
            sigma_compute.append(max(fits["u_f"].sigma, fits["u_b"].sigma))
            sigma_weight.append(fits["weights"].sigma)
            sigma_activation.append(fits["activation"].sigma)
            outliers = sum(f.outliers for f in fits.values())
            n_outliers += outliers
            coverage.append(
                LayerCoverage(
                    layer=layer.name,
                    samples=len(recs),
                    outliers=outliers,
                    fallback=tuple(k for k in _FIELDS if fits[k].fallback),
                )
            )

    noise = LayerNoiseModel(
        sigma_compute=tuple(sigma_compute),
        sigma_activation=tuple(sigma_activation),
        sigma_weight=tuple(sigma_weight),
        distribution=default.distribution,
    )
    fallback_layers = [c for c in coverage if c.fallback]
    degraded = bool(fallback_layers) or bool(unknown)
    obs.inc("ingest.rejected", n_outliers)
    obs.inc("ingest.fallback_layers", len(fallback_layers))
    return CalibrationResult(
        chain=Chain(
            layers=layers,
            input_activation=baseline.input_activation,
            name=baseline.name,
        ),
        noise=noise,
        coverage=coverage,
        degraded=degraded,
        unknown_layers=unknown,
        n_records=traces.n_records,
        n_quarantined=traces.n_quarantined,
        min_samples=min_samples,
        mad_k=mad_k,
    )
