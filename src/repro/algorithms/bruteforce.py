"""Exhaustive baselines for small instances.

These oracles enumerate the whole search space and are exponential in the
chain length — they exist to *validate* the dynamic programs (and to let
users certify small deployments), not to replace them.

* :func:`best_contiguous` — all contiguous partitionings into ≤ P stages,
  each scheduled with the optimal 1F1B\\*; the true optimum of the
  contiguous problem.
* :func:`best_special` — additionally assigns every stage subset to the
  special processor (the MadPipe allocation space), scheduling with the
  phase-2 ILP.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.chain import Chain
from ..core.partition import Allocation, Partitioning
from ..core.platform import Platform
from ..ilp.solver import schedule_allocation
from .onef1b import OneF1BResult, min_feasible_period

__all__ = ["BruteForceResult", "best_contiguous", "best_special"]

INF = float("inf")


@dataclass
class BruteForceResult:
    """The certified optimum over an exhaustively enumerated space.

    ``evaluated`` counts the *distinct* allocations examined (duplicate
    ``procs`` layouts produced by different special-subset choices are
    skipped); ``solver_calls`` counts the period searches actually run —
    contiguous variants of one partitioning share a single memoized
    1F1B\\* solve, so ``solver_calls ≤ evaluated``.
    """

    period: float
    allocation: Allocation | None
    evaluated: int
    solver_calls: int = 0

    @property
    def feasible(self) -> bool:
        return self.allocation is not None


def _partitionings(L: int, max_stages: int):
    for n_cuts in range(0, max_stages):
        for cuts in combinations(range(1, L), n_cuts):
            yield Partitioning.from_cuts(L, list(cuts))


def best_contiguous(
    chain: Chain, platform: Platform, *, max_layers: int = 12
) -> BruteForceResult:
    """True optimal contiguous solution by exhaustive enumeration +
    1F1B\\* (which is optimal per partitioning, Prop. 1)."""
    if chain.L > max_layers:
        raise ValueError(
            f"refusing brute force on L={chain.L} (> {max_layers}); "
            "this oracle is exponential"
        )
    best = BruteForceResult(INF, None, 0)
    for part in _partitionings(chain.L, platform.n_procs):
        best.evaluated += 1
        best.solver_calls += 1
        res: OneF1BResult | None = min_feasible_period(
            chain, platform, part, build=False
        )
        if res is not None and res.period < best.period:
            best.period = res.period
            best.allocation = Allocation.contiguous(part)
    return best


def best_special(
    chain: Chain,
    platform: Platform,
    *,
    max_layers: int = 8,
    ilp_time_limit: float = 10.0,
) -> BruteForceResult:
    """Optimum over the MadPipe allocation space (one special processor)
    by exhaustive enumeration + the scheduling ILP.

    For every partitioning into at most ``P − 1 + k`` stages and every
    choice of stages for the special processor (the rest one-per-GPU),
    run the period binary search.  Exponential — tiny chains only.

    Two redundancies in the enumeration are skipped without changing the
    optimum: different special subsets can produce the *same* ``procs``
    layout (only the first is evaluated), and every contiguous variant of
    one partitioning has the same 1F1B\\* optimal period (solved once and
    memoized).  See :class:`BruteForceResult` for the counter semantics.
    """
    if chain.L > max_layers:
        raise ValueError(
            f"refusing brute force on L={chain.L} (> {max_layers}); "
            "this oracle is exponential"
        )
    P = platform.n_procs
    best = BruteForceResult(INF, None, 0)
    for part in _partitionings(chain.L, 2 * P):
        n = part.n_stages
        seen: set[tuple[int, ...]] = set()
        contig_period: float | None = None
        for n_special in range(0, n + 1):
            if n - n_special > (P - 1 if n_special else P):
                continue
            for special in combinations(range(n), n_special):
                procs, normal = [], 0
                for i in range(n):
                    if i in special:
                        procs.append(P - 1)
                    else:
                        procs.append(normal)
                        normal += 1
                procs_t = tuple(procs)
                if procs_t in seen:
                    continue
                seen.add(procs_t)
                alloc = Allocation(part, procs_t)
                best.evaluated += 1
                if alloc.is_contiguous():
                    if contig_period is None:
                        best.solver_calls += 1
                        res = min_feasible_period(
                            chain, platform, part, build=False
                        )
                        contig_period = res.period if res is not None else INF
                    period = contig_period
                else:
                    best.solver_calls += 1
                    ilp = schedule_allocation(
                        chain, platform, alloc, time_limit=ilp_time_limit
                    )
                    period = ilp.period
                if period < best.period:
                    best.period = period
                    best.allocation = alloc
    return best
