"""1F1B\\* — optimal periodic pattern for a contiguous allocation (paper §4.1).

Given a contiguous partitioning and a feasible period ``T``, the algorithm
builds the pattern using the fewest active batches on every GPU among all
valid periodic patterns (Proposition 1):

1. communications are turned into pseudo-layers of duration
   ``C(l) = 2 a_l/β`` (forward half ``a_l/β``, backward half ``a_l/β``),
   giving at most ``2P − 1`` *items* on as many resources;
2. items are grouped from the back: a group absorbs preceding items while
   its total load stays ≤ ``T``;
3. each group is scheduled as a "V": forwards in chain order back-to-back,
   then backwards in reverse order back-to-back; groups are connected at
   the forward chain, and starting times ≥ ``T`` wrap (shift += 1).

A stage in group ``g`` stores exactly ``g`` activation copies, so the
minimal feasible period of a partitioning is the smallest ``T`` (at least
the bottleneck load) whose induced groups fit in memory everywhere.

The minimal-period search is the inner loop of every contiguous planner
(``pipedream``, ``best_contiguous``, MadPipe's contiguous fallback), so it
is implemented as a NumPy kernel: candidate periods come from prefix-sum
range sums, group assignment runs batched across *all* candidates at once,
and per-processor memory is evaluated vectorized from the chain's cached
prefix arrays.  The original pure-Python implementation is preserved in
:mod:`repro.algorithms.onef1b_reference` and golden tests pin the kernel
to it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import Chain
from ..obs.metrics import active_metrics
from ..obs.trace import active_trace
from ..core.partition import Allocation, Partitioning
from ..core.pattern import Op, PeriodicPattern, gpu, link
from ..core.platform import Platform
from ..warmstart import active_warm, chain_fingerprint

__all__ = [
    "GROUP_FIT_RTOL",
    "CANDIDATE_ATOL",
    "MEMORY_FIT_RTOL",
    "Item",
    "extended_items",
    "assign_groups",
    "assign_groups_kernel",
    "build_pattern",
    "min_feasible_period",
    "OneF1BResult",
]

# Feasibility tolerances, shared by the NumPy kernel and the reference
# implementation (onef1b_reference) so both make bit-identical decisions.
#: Relative slack when packing items into a group: a group fits in ``T``
#: when its load is ≤ ``T·(1 + GROUP_FIT_RTOL)``.
GROUP_FIT_RTOL = 1e-12
#: Absolute slack when generating candidate periods: a range sum counts as
#: a candidate when it is ≥ ``lower − CANDIDATE_ATOL``.
CANDIDATE_ATOL = 1e-15
#: Relative slack of the per-GPU memory check: a schedule fits when every
#: processor uses ≤ ``capacity·(1 + MEMORY_FIT_RTOL)`` bytes.
MEMORY_FIT_RTOL = 1e-9


@dataclass(frozen=True)
class Item:
    """One resource of the transformed chain: a compute stage or a
    communication boundary."""

    kind: str  # "stage" or "comm"
    index: int  # stage index, or boundary index (cut after stage `index`)
    u_f: float
    u_b: float

    @property
    def load(self) -> float:
        return self.u_f + self.u_b


def extended_items(
    chain: Chain, platform: Platform, allocation: Allocation
) -> list[Item]:
    """The ≤ 2N−1 items of the transformed chain (stages ∪ cut boundaries)."""
    items: list[Item] = []
    stages = allocation.stages
    for i, stage in enumerate(stages):
        items.append(
            Item("stage", i, stage.forward(chain), stage.backward(chain))
        )
        if i < len(stages) - 1 and allocation.procs[i] != allocation.procs[i + 1]:
            half = chain.activation(stage.end) / platform.bandwidth
            items.append(Item("comm", i, half, half))
    return items


def assign_groups_kernel(loads: np.ndarray, periods: np.ndarray) -> np.ndarray:
    """Batched greedy grouping: group index per item for *every* period.

    ``loads`` has shape ``(n,)``; ``periods`` shape ``(m,)``.  Returns an
    ``(m, n)`` int array where row ``c`` equals the reference
    ``assign_groups(items, periods[c])``.  The scan walks the items once,
    back to front, carrying the per-period accumulator and group counter as
    vectors — each period's accumulation performs the exact float additions
    of the scalar loop, so rows are bit-identical to the reference.

    Raises ``ValueError`` when any single load exceeds the smallest
    period's threshold (the reference raises on that period too).
    """
    loads = np.asarray(loads, dtype=float)
    periods = np.atleast_1d(np.asarray(periods, dtype=float))
    n, m = loads.size, periods.size
    out = np.empty((m, n), dtype=np.int64)
    if n == 0:
        return out
    thresh = periods * (1 + GROUP_FIT_RTOL)
    if loads.max() > thresh.min():
        raise ValueError(
            f"item load {loads.max():.4g} exceeds period {periods.min():.4g}"
        )
    g = np.ones(m, dtype=np.int64)
    acc = np.zeros(m)
    for i in range(n - 1, -1, -1):
        # grown = acc + load is both the overflow test and (when it fits)
        # the new accumulator — exactly the scalar loop's additions
        grown = acc + loads[i]
        over = grown > thresh
        g += over
        acc = np.where(over, loads[i], grown)
        out[:, i] = g
    return out


def assign_groups(items: list[Item], period: float) -> list[int]:
    """Group index (1 = last group, as in the paper) per item.

    Built iteratively from the last item; a group absorbs earlier items
    while its total load stays ≤ ``period``.  Any single item with load
    > ``period`` makes the period infeasible (ValueError).
    """
    if not items:
        return []
    loads = np.fromiter((it.load for it in items), dtype=float, count=len(items))
    thresh = period * (1 + GROUP_FIT_RTOL)
    if loads.max() > thresh:
        # the backward scan of the reference hits the highest-index
        # oversized item first — report that one
        i = int(np.nonzero(loads > thresh)[0].max())
        raise ValueError(
            f"item {items[i].kind}{items[i].index} load {loads[i]:.4g} "
            f"exceeds period {period:.4g}"
        )
    row = assign_groups_kernel(loads, np.array([period]))[0]
    return [int(g) for g in row]


def build_pattern(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    period: float,
) -> PeriodicPattern:
    """Construct the 1F1B\\* pattern for a contiguous allocation.

    Raises ``ValueError`` when the period is below the bottleneck load.
    The caller is responsible for checking memory feasibility (see
    :func:`min_feasible_period`).
    """
    if not allocation.is_contiguous():
        raise ValueError("1F1B* requires a contiguous allocation")
    items = extended_items(chain, platform, allocation)
    groups = assign_groups(items, period)

    pattern = PeriodicPattern(allocation=allocation, period=period)
    procs = allocation.procs
    t = 0.0
    # walk groups from the front of the chain (largest group number first)
    i = 0
    while i < len(items):
        g = groups[i]
        j = i
        while j < len(items) and groups[j] == g:
            j += 1
        # forwards of items[i:j]
        tf = t
        for item in items[i:j]:
            kind = "F" if item.kind == "stage" else "CF"
            pattern.add(
                Op(kind, item.index, _resource(item, procs), tf, item.u_f, 0)
            )
            tf += item.u_f
        # backwards immediately after, reverse order, shift g-1
        tb = tf
        for item in reversed(items[i:j]):
            kind = "B" if item.kind == "stage" else "CB"
            pattern.add(
                Op(kind, item.index, _resource(item, procs), tb, item.u_b, g - 1)
            )
            tb += item.u_b
        t = tf  # next group's forwards connect right after our last forward
        i = j
    pattern.normalize()
    return pattern


def _resource(item: Item, procs: tuple[int, ...]) -> tuple:
    if item.kind == "stage":
        return gpu(procs[item.index])
    return link(procs[item.index], procs[item.index + 1])


# small per-size caches for the hot enumeration loops (best_contiguous
# calls min_feasible_period thousands of times on tiny item counts)
_TRI_CACHE: dict[int, np.ndarray] = {}
_ARANGE_CACHE: dict[int, np.ndarray] = {}


def _upper_triangle(n: int) -> np.ndarray:
    tri = _TRI_CACHE.get(n)
    if tri is None:
        tri = np.arange(n) >= np.arange(n)[:, None]
        _TRI_CACHE[n] = tri
    return tri


def _arange(n: int) -> np.ndarray:
    r = _ARANGE_CACHE.get(n)
    if r is None:
        r = np.arange(n)
        _ARANGE_CACHE[n] = r
    return r


@dataclass
class OneF1BResult:
    """Outcome of the minimal-feasible-period search."""

    period: float
    pattern: PeriodicPattern | None
    groups: dict[int, int]  # stage index -> group number
    memory: dict[int, float]  # processor -> bytes used (analytic, §4.2.1)


def min_feasible_period(
    chain: Chain,
    platform: Platform,
    partitioning: Partitioning,
    *,
    build: bool = True,
    memory_headroom: float = 0.0,
) -> OneF1BResult | None:
    """Smallest period at which the 1F1B\\* schedule of ``partitioning``
    fits in memory on every GPU; ``None`` if no period works.

    ``memory_headroom`` derates the capacity the schedule must fit into
    (see :func:`repro.core.memory.effective_capacity`); the reported
    per-GPU ``memory`` usage is unaffected.

    Instrumented: emits a ``onef1b.period_search`` span and
    ``onef1b.searches`` counter when tracing/metrics are active.  This
    is the innermost loop of every contiguous planner, so the disabled
    path is guarded with a single context-variable read before any span
    machinery runs.

    Under an active warm-start context the search is memoized by exact
    instance key — the function is a pure deterministic map from
    (chain, platform, partitioning, build, headroom) to its result, so
    a hit is bit-identical to recomputing (MadPipe's fallback and
    certification paths re-run the same search several times per
    instance, and neighboring sweep instances repeat it across the
    memory axis whenever the partitioning coincides).
    """
    warm = active_warm()
    memo_key = None
    if warm is not None:
        memo_key = (
            chain_fingerprint(chain), platform.n_procs, platform.memory,
            platform.bandwidth, memory_headroom,
            tuple((s.start, s.end) for s in partitioning.stages), build,
        )
        hit = warm.onef1b.hit(memo_key)
        if hit is not None:
            obs_inc = active_metrics()
            if obs_inc is not None:
                obs_inc.inc("warm.onef1b_hits")
            return hit[0]
    platform = platform.with_headroom(memory_headroom)
    tr = active_trace()
    reg = active_metrics()
    if tr is None and reg is None:
        res = _min_feasible_period(chain, platform, partitioning, build=build)
        if memo_key is not None:
            warm.onef1b.put(memo_key, (res,))
        return res
    if reg is not None:
        reg.inc("onef1b.searches")
    if tr is None:
        res = _min_feasible_period(chain, platform, partitioning, build=build)
    else:
        with tr.span(
            "onef1b.period_search", n_stages=partitioning.n_stages, build=build
        ) as sp:
            res = _min_feasible_period(chain, platform, partitioning, build=build)
            sp.set(
                feasible=res is not None,
                period=res.period if res is not None else None,
            )
    if res is not None and reg is not None:
        reg.inc("onef1b.feasible")
    if memo_key is not None:
        warm.onef1b.put(memo_key, (res,))
    return res


def _min_feasible_period(
    chain: Chain,
    platform: Platform,
    partitioning: Partitioning,
    *,
    build: bool = True,
) -> OneF1BResult | None:
    """The uninstrumented search; see :func:`min_feasible_period`.

    Candidate periods are the group-structure breakpoints: sums of item
    loads over contiguous item ranges (grouping only changes there), plus
    the bottleneck lower bound.  Increasing T can only merge groups, so
    memory usage is non-increasing in T and the scan stops at the first
    feasible candidate.

    Vectorized: stage loads and memory terms come from the chain's cached
    prefix arrays (O(1) per stage), candidates from one masked 2-D
    ``cumsum``, group assignment from the batched kernel across all
    candidates, and memory feasibility from one array comparison — all
    with float arithmetic identical to
    :func:`repro.algorithms.onef1b_reference.min_feasible_period_reference`.

    Two early exits bracket the batched scan, both justified by memory
    monotonicity (greedy domination: raising ``T`` can only merge groups,
    so every stage's group count — hence every GPU's memory — is
    non-increasing in ``T``): if the smallest candidate fits, it is the
    answer; if the largest does not, none does.
    """
    if partitioning.n_stages > platform.n_procs:
        raise ValueError("more stages than processors")
    n_stages = partitioning.n_stages
    ends = np.fromiter(
        (s.end for s in partitioning.stages), dtype=np.int64, count=n_stages
    )
    starts = np.empty(n_stages, dtype=np.int64)
    starts[0] = 1
    starts[1:] = ends[:-1] + 1

    # item loads, interleaved [stage 0, comm 0, stage 1, …, stage S−1]:
    # a contiguous allocation has a comm boundary after every stage but the
    # last, matching extended_items order
    u_f = chain.u_f_ranges(starts, ends)
    u_b = chain.u_b_ranges(starts, ends)
    half = chain.activation_values(ends[:-1]) / platform.bandwidth
    n_items = 2 * n_stages - 1
    loads = np.empty(n_items)
    loads[0::2] = u_f + u_b
    loads[1::2] = half + half
    lower = float(loads.max())

    # candidate periods: contiguous range sums ≥ lower (± atol), plus
    # lower.  Row a of the masked cumsum accumulates loads[a:] with the
    # same left-to-right additions as a scalar loop (the leading zeros are
    # exact), so sums match the reference float-for-float.  Duplicates are
    # kept (sort only): rescanning an equal period cannot change the first
    # feasible value.
    tri = _upper_triangle(n_items)
    sums = np.cumsum(np.where(tri, loads, 0.0), axis=1)
    keep = tri & (sums >= lower - CANDIDATE_ATOL)
    periods = np.sort(np.concatenate(([lower], sums[keep])))

    # The smallest candidate can sit CANDIDATE_ATOL below the bottleneck
    # load; the reference then raises out of assign_groups while scanning
    # it — replicate that exactly (larger candidates can never raise).
    thresh0 = periods[0] * (1 + GROUP_FIT_RTOL)
    if loads.max() > thresh0:
        i = int(np.nonzero(loads > thresh0)[0].max())
        kind = "stage" if i % 2 == 0 else "comm"
        raise ValueError(
            f"item {kind}{i // 2} load {loads[i]:.4g} "
            f"exceeds period {float(periods[0]):.4g}"
        )

    # memory terms of MemoryBreakdown, as arrays over stages; the total is
    # evaluated in the breakdown's float order: (weights + activations) + buffers
    w3 = 3.0 * chain.weight_ranges(starts, ends)
    abar = chain.stored_activation_ranges(starts, ends)
    buf = np.where(starts > 1, 2.0 * chain.activation_values(starts - 1), 0.0)
    buf = buf + np.where(ends < chain.L, 2.0 * chain.activation_values(ends), 0.0)
    cap = platform.memory * (1 + MEMORY_FIT_RTOL)

    # scalar single-candidate probe (same IEEE-double ops as the kernel)
    loads_l, w3_l, abar_l, buf_l = (
        loads.tolist(), w3.tolist(), abar.tolist(), buf.tolist()
    )

    def probe(T: float) -> tuple[bool, list[int]]:
        thresh = T * (1 + GROUP_FIT_RTOL)
        g, acc = 1, 0.0
        gs = [0] * n_stages
        for i in range(n_items - 1, -1, -1):
            grown = acc + loads_l[i]
            if grown > thresh:
                g += 1
                acc = loads_l[i]
            else:
                acc = grown
            if i % 2 == 0:
                gs[i // 2] = g
        ok = all(
            (w3_l[i] + gs[i] * abar_l[i]) + buf_l[i] <= cap
            for i in range(n_stages)
        )
        return ok, gs

    m = periods.size
    ok, gs = probe(float(periods[0]))
    if ok:
        k, stage_groups = 0, gs
    elif m == 1:
        return None
    else:
        ok, gs = probe(float(periods[-1]))
        if not ok:
            return None  # memory is monotone in T: nothing larger helps
        k, stage_groups = m - 1, gs
        if m > 2:
            # the boundary lies strictly inside: batch the interior scan
            rows = assign_groups_kernel(loads, periods[1:-1])[:, 0::2]
            mem = (w3 + rows * abar) + buf  # (m−2, n_stages)
            hits = np.nonzero((mem <= cap).all(axis=1))[0]
            if hits.size:
                j = int(hits[0])
                k, stage_groups = 1 + j, [int(g) for g in rows[j]]

    T = float(periods[k])
    # Allocation.contiguous puts stage i on processor i, so per-stage
    # memory is per-processor memory (bincount is the general aggregation,
    # an identity here)
    gs_arr = np.asarray(stage_groups, dtype=np.int64)
    procs = _arange(n_stages)
    by_proc = np.bincount(procs, weights=(w3 + gs_arr * abar) + buf, minlength=n_stages)
    pattern = (
        build_pattern(chain, platform, Allocation.contiguous(partitioning), T)
        if build
        else None
    )
    return OneF1BResult(
        period=T,
        pattern=pattern,
        groups={i: int(g) for i, g in enumerate(stage_groups)},
        memory={int(p): float(by_proc[p]) for p in procs},
    )
