"""1F1B\\* — optimal periodic pattern for a contiguous allocation (paper §4.1).

Given a contiguous partitioning and a feasible period ``T``, the algorithm
builds the pattern using the fewest active batches on every GPU among all
valid periodic patterns (Proposition 1):

1. communications are turned into pseudo-layers of duration
   ``C(l) = 2 a_l/β`` (forward half ``a_l/β``, backward half ``a_l/β``),
   giving at most ``2P − 1`` *items* on as many resources;
2. items are grouped from the back: a group absorbs preceding items while
   its total load stays ≤ ``T``;
3. each group is scheduled as a "V": forwards in chain order back-to-back,
   then backwards in reverse order back-to-back; groups are connected at
   the forward chain, and starting times ≥ ``T`` wrap (shift += 1).

A stage in group ``g`` stores exactly ``g`` activation copies, so the
minimal feasible period of a partitioning is the smallest ``T`` (at least
the bottleneck load) whose induced groups fit in memory everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.chain import Chain
from ..core.memory import stage_memory
from ..core.partition import Allocation, Partitioning
from ..core.pattern import Op, PeriodicPattern, gpu, link
from ..core.platform import Platform

__all__ = [
    "Item",
    "extended_items",
    "assign_groups",
    "build_pattern",
    "min_feasible_period",
    "OneF1BResult",
]


@dataclass(frozen=True)
class Item:
    """One resource of the transformed chain: a compute stage or a
    communication boundary."""

    kind: str  # "stage" or "comm"
    index: int  # stage index, or boundary index (cut after stage `index`)
    u_f: float
    u_b: float

    @property
    def load(self) -> float:
        return self.u_f + self.u_b


def extended_items(
    chain: Chain, platform: Platform, allocation: Allocation
) -> list[Item]:
    """The ≤ 2N−1 items of the transformed chain (stages ∪ cut boundaries)."""
    items: list[Item] = []
    stages = allocation.stages
    for i, stage in enumerate(stages):
        items.append(
            Item("stage", i, stage.forward(chain), stage.backward(chain))
        )
        if i < len(stages) - 1 and allocation.procs[i] != allocation.procs[i + 1]:
            half = chain.activation(stage.end) / platform.bandwidth
            items.append(Item("comm", i, half, half))
    return items


def assign_groups(items: list[Item], period: float) -> list[int]:
    """Group index (1 = last group, as in the paper) per item.

    Built iteratively from the last item; a group absorbs earlier items
    while its total load stays ≤ ``period``.  Any single item with load
    > ``period`` makes the period infeasible (ValueError).
    """
    groups = [0] * len(items)
    g = 1
    acc = 0.0
    for i in range(len(items) - 1, -1, -1):
        load = items[i].load
        if load > period * (1 + 1e-12):
            raise ValueError(
                f"item {items[i].kind}{items[i].index} load {load:.4g} "
                f"exceeds period {period:.4g}"
            )
        if acc + load > period * (1 + 1e-12):
            g += 1
            acc = 0.0
        acc += load
        groups[i] = g
    return groups


def build_pattern(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    period: float,
) -> PeriodicPattern:
    """Construct the 1F1B\\* pattern for a contiguous allocation.

    Raises ``ValueError`` when the period is below the bottleneck load.
    The caller is responsible for checking memory feasibility (see
    :func:`min_feasible_period`).
    """
    if not allocation.is_contiguous():
        raise ValueError("1F1B* requires a contiguous allocation")
    items = extended_items(chain, platform, allocation)
    groups = assign_groups(items, period)

    pattern = PeriodicPattern(allocation=allocation, period=period)
    procs = allocation.procs
    t = 0.0
    # walk groups from the front of the chain (largest group number first)
    i = 0
    while i < len(items):
        g = groups[i]
        j = i
        while j < len(items) and groups[j] == g:
            j += 1
        # forwards of items[i:j]
        tf = t
        for item in items[i:j]:
            kind = "F" if item.kind == "stage" else "CF"
            pattern.add(
                Op(kind, item.index, _resource(item, procs), tf, item.u_f, 0)
            )
            tf += item.u_f
        # backwards immediately after, reverse order, shift g-1
        tb = tf
        for item in reversed(items[i:j]):
            kind = "B" if item.kind == "stage" else "CB"
            pattern.add(
                Op(kind, item.index, _resource(item, procs), tb, item.u_b, g - 1)
            )
            tb += item.u_b
        t = tf  # next group's forwards connect right after our last forward
        i = j
    pattern.normalize()
    return pattern


def _resource(item: Item, procs: tuple[int, ...]) -> tuple:
    if item.kind == "stage":
        return gpu(procs[item.index])
    return link(procs[item.index], procs[item.index + 1])


@dataclass
class OneF1BResult:
    """Outcome of the minimal-feasible-period search."""

    period: float
    pattern: PeriodicPattern
    groups: dict[int, int]  # stage index -> group number
    memory: dict[int, float]  # processor -> bytes used (analytic, §4.2.1)


def _stage_memories(
    chain: Chain, allocation: Allocation, items: list[Item], groups: list[int]
) -> dict[int, float]:
    """Per-processor memory of the 1F1B\\* schedule: stage in group ``g``
    keeps ``g`` activation copies (paper §4.1)."""
    memory: dict[int, float] = {}
    for item, g in zip(items, groups):
        if item.kind != "stage":
            continue
        s = allocation.stages[item.index]
        p = allocation.procs[item.index]
        memory[p] = memory.get(p, 0.0) + stage_memory(chain, s.start, s.end, g)
    return memory


def min_feasible_period(
    chain: Chain,
    platform: Platform,
    partitioning: Partitioning,
    *,
    build: bool = True,
) -> OneF1BResult | None:
    """Smallest period at which the 1F1B\\* schedule of ``partitioning``
    fits in memory on every GPU; ``None`` if no period works.

    Candidate periods are the group-structure breakpoints: sums of item
    loads over contiguous item ranges (grouping only changes there), plus
    the bottleneck lower bound.  Increasing T can only merge groups, so
    memory usage is non-increasing in T and the scan stops at the first
    feasible candidate.
    """
    allocation = Allocation.contiguous(partitioning)
    if partitioning.n_stages > platform.n_procs:
        raise ValueError("more stages than processors")
    items = extended_items(chain, platform, allocation)
    loads = [it.load for it in items]
    lower = max(loads)

    candidates = {lower}
    n = len(items)
    for a in range(n):
        acc = 0.0
        for b in range(a, n):
            acc += loads[b]
            if acc >= lower - 1e-15:
                candidates.add(acc)
    for T in sorted(candidates):
        groups = assign_groups(items, T)
        memory = _stage_memories(chain, allocation, items, groups)
        if all(m <= platform.memory * (1 + 1e-9) for m in memory.values()):
            pattern = (
                build_pattern(chain, platform, allocation, T) if build else None
            )
            stage_groups = {
                it.index: g
                for it, g in zip(items, groups)
                if it.kind == "stage"
            }
            return OneF1BResult(
                period=T, pattern=pattern, groups=stage_groups, memory=memory
            )
    return None
