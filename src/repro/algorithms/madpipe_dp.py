"""MadPipe phase 1 — memory-aware DP for non-contiguous allocations (§4.2).

The dynamic program allocates the chain back-to-front into stages.  All
processors are *normal* (one stage each) except one *special* processor
that may receive any number of stages.  The state is

``T(l, p, t_P, m_P, V)`` — the smallest achievable period for the first
``l`` layers on ``p`` remaining normal processors, given that the special
processor already carries compute load ``t_P`` and memory ``m_P``, and
that at least ``V`` seconds elapse between the end of ``F_l`` and the
start of ``B_l`` for one batch.

Memory is estimated against a *target* period ``T̂`` via the 1F1B\\*
analysis: a stage ``k..l`` whose forward→backward delay is ``V`` keeps
``g(k,l,V) = ⌈(V + U(k,l))/T̂⌉`` activation copies (``g − 1`` on the
special processor — a deliberate under-estimate, repaired by the phase-2
ILP).  Delays propagate through the group-rounding operator

``x ⊕ y = x + y``                     if ``⌈x/T̂⌉ = ⌈(x+y)/T̂⌉``
``x ⊕ y = T̂·⌈x/T̂⌉ + y``              otherwise.

Algorithm 1 then binary-searches the target ``T̂`` for
``min max(MadPipe-DP(T̂), T̂)``.

The continuous coordinates ``t_P``, ``m_P``, ``V`` are snapped to a
:class:`Discretization` grid (the paper uses 101 × 11 × 51 points); the
recursion is memoized top-down so only *reachable* grid states are ever
evaluated, and candidate stages whose immediate load already exceeds a
known upper bound are pruned.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field

from ..core.chain import Chain
from ..core.partition import Allocation, Partitioning, Stage
from ..core.platform import Platform

__all__ = [
    "Discretization",
    "DPAllocation",
    "madpipe_dp",
    "MadPipeDPResult",
    "algorithm1",
]

INF = float("inf")
_EPS = 1e-9


@dataclass(frozen=True)
class Discretization:
    """Grid sizes for the continuous DP coordinates (paper §5.1)."""

    n_t: int = 101  # special-processor load, over [0, U(1,L)]
    n_m: int = 11  # special-processor memory, over [0, M]
    n_v: int = 51  # forward→backward delay, over [0, U(1,L) + ΣC]

    def __post_init__(self) -> None:
        if min(self.n_t, self.n_m, self.n_v) < 2:
            raise ValueError("each grid needs at least 2 points")

    @classmethod
    def paper(cls) -> "Discretization":
        """The granularity used in the paper's experiments."""
        return cls(101, 11, 51)

    @classmethod
    def default(cls) -> "Discretization":
        """A good speed/quality trade-off for pure-Python runs."""
        return cls(51, 11, 31)

    @classmethod
    def coarse(cls) -> "Discretization":
        """Fast grid for tests and wide parameter sweeps."""
        return cls(25, 7, 15)


@dataclass(frozen=True)
class DPAllocation:
    """Decisions of one DP solution: stages in chain order, each flagged
    normal (own GPU) or special (shared GPU)."""

    stages: tuple[Stage, ...]
    special: tuple[bool, ...]

    def to_allocation(self, platform: Platform) -> Allocation:
        """Materialize on a platform: normal stages take GPUs ``0, 1, …``
        in chain order; all special stages share GPU ``P − 1``."""
        procs = []
        normal = 0
        for is_special in self.special:
            if is_special:
                procs.append(platform.n_procs - 1)
            else:
                procs.append(normal)
                normal += 1
        if normal > platform.n_procs - 1 and any(self.special):
            raise ValueError("allocation uses more normal GPUs than available")
        if normal > platform.n_procs:
            raise ValueError("allocation uses more GPUs than available")
        return Allocation(Partitioning(self.stages), tuple(procs))

    @property
    def n_stages(self) -> int:
        return len(self.stages)


@dataclass
class MadPipeDPResult:
    """Result of one ``MadPipe-DP(T̂)`` evaluation."""

    target: float  # T̂ used for the memory estimates
    dp_period: float  # load-based period of the returned allocation (T)
    allocation: DPAllocation | None
    states: int = 0  # memoized states (diagnostics)

    @property
    def effective_period(self) -> float:
        """max(T, T̂): a schedule needs T for load and T̂ for memory."""
        return max(self.dp_period, self.target)

    @property
    def feasible(self) -> bool:
        return self.allocation is not None


def madpipe_dp(
    chain: Chain,
    platform: Platform,
    target: float,
    *,
    grid: Discretization | None = None,
    period_cap: float = INF,
    allow_special: bool = True,
) -> MadPipeDPResult:
    """Evaluate ``MadPipe-DP(T̂)`` (§4.2.2).

    ``period_cap`` prunes candidate stages that cannot beat an incumbent
    period (the cap must over-estimate the optimum; ``inf`` disables).
    ``allow_special=False`` restricts the DP to contiguous allocations
    (ablation: memory-aware PipeDream).
    """
    if target <= 0:
        raise ValueError("target period must be positive")
    grid = grid or Discretization.default()
    L, P, M = chain.L, platform.n_procs, platform.memory
    beta = platform.bandwidth
    That = target

    t_max = chain.total_compute()
    v_max = t_max + chain.total_comm(beta)
    t_step = t_max / (grid.n_t - 1)
    m_step = M / (grid.n_m - 1)
    v_step = v_max / (grid.n_v - 1)
    it_top, im_top, iv_top = grid.n_t - 1, grid.n_m - 1, grid.n_v - 1

    # hot-loop locals: O(1) range queries from prefix sums, no method calls
    cumU = chain._cum_u.tolist()  # U(k,l) = cumU[l] - cumU[k-1]
    cumW = chain._cum_w.tolist()
    cumA = chain._cum_a_in.tolist()  # Σ a_{i-1} over k..l
    act = chain._act.tolist()  # a^{(l)}, index 0..L
    ceil = math.ceil

    def mem(k: int, l: int, g: int) -> float:
        """``M(k, l, g)`` of §4.2.1 (buffers dropped at chain ends)."""
        m = 3.0 * (cumW[l] - cumW[k - 1]) + g * (cumA[l] - cumA[k - 1])
        if k > 1:
            m += 2.0 * act[k - 1]
        if l < L:
            m += 2.0 * act[l]
        return m

    def oplus(x: float, y: float) -> float:
        """Group-rounding delay addition (paper §4.2.2)."""
        cx = ceil(x / That - 1e-9)
        if cx == ceil((x + y) / That - 1e-9):
            return x + y
        return That * cx + y

    # memo[(l, p, it, im, iv)] = (period, decision)
    # decision: (k, is_special, child_key) or None at base cases
    memo: dict[tuple, tuple[float, tuple | None]] = {}

    sys.setrecursionlimit(max(sys.getrecursionlimit(), 10 * L + 1000))

    def solve(l: int, p: int, it: int, im: int, iv: int) -> tuple[float, tuple | None]:
        if l == 0:
            return (it * t_step, None)
        key = (l, p, it, im, iv)
        hit = memo.get(key)
        if hit is not None:
            return hit
        t_P, m_P, V = it * t_step, im * m_step, iv * v_step
        best: float = INF
        best_dec: tuple | None = None

        if p == 0:
            # all remaining layers become one stage on the special processor
            U_1l = cumU[l]
            g = max(1, ceil((V + U_1l) / That - 1e-9))
            if allow_special and m_P + mem(1, l, g - 1) <= M + _EPS:
                best = U_1l + t_P
                best_dec = (1, True, None)
            memo[key] = (best, best_dec)
            return memo[key]

        cumU_l = cumU[l]
        for k in range(l, 0, -1):
            U_kl = cumU_l - cumU[k - 1]
            comm = 2.0 * act[k - 1] / beta if k > 1 else 0.0
            if U_kl >= period_cap and t_P + U_kl >= period_cap:
                break  # larger stages only get worse
            g = ceil((V + U_kl) / That - 1e-9)
            if g < 1:
                g = 1
            V2 = oplus(oplus(V, U_kl), comm)
            iv2 = ceil(V2 / v_step - 1e-9)
            if iv2 > iv_top:
                iv2 = iv_top
            # normal processor
            if U_kl < period_cap and mem(k, l, g) <= M + _EPS:
                sub, _ = solve(k - 1, p - 1, it, im, iv2)
                cand = max(U_kl, comm, sub)
                if cand < best:
                    best = cand
                    best_dec = (k, False, (k - 1, p - 1, it, im, iv2))
            # special processor
            if allow_special:
                t2 = t_P + U_kl
                m2 = m_P + mem(k, l, g - 1)
                if t2 < period_cap and m2 <= M + _EPS:
                    it2 = ceil(t2 / t_step - 1e-9)
                    if it2 > it_top:
                        it2 = it_top
                    im2 = ceil(m2 / m_step - 1e-9)
                    if im2 > im_top:
                        im2 = im_top
                    sub, _ = solve(k - 1, p, it2, im2, iv2)
                    cand = max(t2, comm, sub)
                    if cand < best:
                        best = cand
                        best_dec = (k, True, (k - 1, p, it2, im2, iv2))
        memo[key] = (best, best_dec)
        return memo[key]

    # P-1 normal processors plus the special one; without the special
    # processor all P processors are normal.
    root = (L, P - 1 if allow_special else P, 0, 0, 0)
    period, _ = solve(*root)
    if period == INF:
        return MadPipeDPResult(target, INF, None, states=len(memo))

    # traceback
    stages: list[Stage] = []
    special: list[bool] = []
    key = root
    while True:
        l = key[0]
        if l == 0:
            break
        _, dec = memo[key] if key in memo else solve(*key)
        if dec is None:
            break
        k, is_special, child = dec
        stages.append(Stage(k, l))
        special.append(is_special)
        if child is None:
            break
        key = child
    stages.reverse()
    special.reverse()
    return MadPipeDPResult(
        target, period, DPAllocation(tuple(stages), tuple(special)), states=len(memo)
    )


@dataclass
class Algorithm1Result:
    """Outcome of the T̂ binary search (phase 1 of MadPipe)."""

    period: float  # best max(T_i, T̂_i)
    target: float  # the T̂ achieving it
    allocation: DPAllocation | None
    history: list[tuple[float, float]] = field(default_factory=list)  # (T̂_i, T_i)

    @property
    def feasible(self) -> bool:
        return self.allocation is not None


def algorithm1(
    chain: Chain,
    platform: Platform,
    *,
    iterations: int = 10,
    grid: Discretization | None = None,
    allow_special: bool = True,
) -> Algorithm1Result:
    """Algorithm 1: modified binary search over the target period T̂.

    For each probe, ``min(T, T̂)`` is a lower bound of the optimal
    ``T̂*`` and ``max(T, T̂)`` an upper bound; the next probe bisects.
    """
    lb = chain.total_compute() / platform.n_procs
    ub = chain.total_compute() + chain.total_comm(platform.bandwidth)
    That = lb
    best = Algorithm1Result(INF, That, None)
    for _ in range(iterations):
        res = madpipe_dp(
            chain,
            platform,
            That,
            grid=grid,
            period_cap=min(best.period, ub * (1 + 1e-9)) if best.feasible else INF,
            allow_special=allow_special,
        )
        T = res.dp_period
        best.history.append((That, T))
        if res.feasible and res.effective_period < best.period:
            best.period = res.effective_period
            best.target = That
            best.allocation = res.allocation
        lb = max(lb, min(T, That))
        ub = min(ub, max(T, That))
        if ub <= lb * (1 + 1e-9):
            That = ub
        else:
            That = (lb + ub) / 2
    return best
