"""MadPipe phase 1 — memory-aware DP for non-contiguous allocations (§4.2).

The dynamic program allocates the chain back-to-front into stages.  All
processors are *normal* (one stage each) except one *special* processor
that may receive any number of stages.  The state is

``T(l, p, t_P, m_P, V)`` — the smallest achievable period for the first
``l`` layers on ``p`` remaining normal processors, given that the special
processor already carries compute load ``t_P`` and memory ``m_P``, and
that at least ``V`` seconds elapse between the end of ``F_l`` and the
start of ``B_l`` for one batch.

Memory is estimated against a *target* period ``T̂`` via the 1F1B\\*
analysis: a stage ``k..l`` whose forward→backward delay is ``V`` keeps
``g(k,l,V) = ⌈(V + U(k,l))/T̂⌉`` activation copies (``g − 1`` on the
special processor — a deliberate under-estimate, repaired by the phase-2
ILP).  Delays propagate through the group-rounding operator

``x ⊕ y = x + y``                     if ``⌈x/T̂⌉ = ⌈(x+y)/T̂⌉``
``x ⊕ y = T̂·⌈x/T̂⌉ + y``              otherwise.

Algorithm 1 then binary-searches the target ``T̂`` for
``min max(MadPipe-DP(T̂), T̂)``.

The continuous coordinates ``t_P``, ``m_P``, ``V`` are snapped to a
:class:`Discretization` grid (the paper uses 101 × 11 × 51 points).

Implementation
--------------
The DP is evaluated *iteratively* and *vectorized* — there is no Python
recursion and no ``sys.setrecursionlimit``.  Every transition moves to a
strictly smaller layer index ``l``, so the reachable state graph is
stratified by ``l``.  States are packed into a single integer key
``((((l·(P+1) + p)·n_t + it)·n_m + im)·n_v + iv`` and processed one
*level* (all states sharing ``l``) at a time:

1. a **downward reachability sweep** (``l = L … 1``) expands whole
   levels as 2-D NumPy arrays — ``U(k,l)``, communication costs,
   ``mem(k,l,g)`` and the ``g``/``⊕`` terms are computed for all
   ``(state, k)`` pairs at once, with ``period_cap``/memory masks
   applied in bulk — scattering the reachable children into one flat
   bitmap over the packed key space, so each level's sorted key array
   is a single ``flatnonzero`` (no sorting or dedup passes);
2. an **upward value sweep** (``l = 1 … L``) re-expands each reachable
   level, gathers child values by direct indexing into a dense value
   table over the packed key space (level 0 is prefilled closed-form;
   lower levels are solved first, so every lookup hits a written
   entry), and reduces the interleaved ``(normal, special)`` candidate
   matrix with one ``argmin`` per level.  First-minimum ``argmin``
   over candidates ordered ``k = l … 1`` × (normal, special)
   reproduces the naive scan's tie-breaking exactly, so results are
   bit-identical to
   :func:`repro.algorithms.madpipe_dp_reference.madpipe_dp_reference`.

Only *reachable* grid states are ever touched, exactly as in the
memoized recursion; candidate stages whose load already exceeds a known
upper bound (``period_cap``) are pruned in bulk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.chain import Chain
from ..core.partition import Allocation, Partitioning, Stage
from ..core.platform import Platform
from ..warmstart import active_warm, chain_fingerprint

__all__ = [
    "Discretization",
    "DPAllocation",
    "madpipe_dp",
    "MadPipeDPResult",
    "algorithm1",
]

INF = float("inf")
_EPS = 1e-9

_NO_CHILD = -1  # decision sentinel: stage closes the chain (p == 0 base)
_NO_DEC = -2  # decision sentinel: state is infeasible

#: Byte budget for carrying discovery-pass expansions into the value
#: sweep (warm mode): levels past the budget are simply re-expanded.
_FORWARD_BUDGET = 256 << 20


@dataclass(frozen=True)
class Discretization:
    """Grid sizes for the continuous DP coordinates (paper §5.1)."""

    n_t: int = 101  # special-processor load, over [0, U(1,L)]
    n_m: int = 11  # special-processor memory, over [0, M]
    n_v: int = 51  # forward→backward delay, over [0, U(1,L) + ΣC]

    def __post_init__(self) -> None:
        if min(self.n_t, self.n_m, self.n_v) < 2:
            raise ValueError("each grid needs at least 2 points")

    @classmethod
    def paper(cls) -> "Discretization":
        """The granularity used in the paper's experiments."""
        return cls(101, 11, 51)

    @classmethod
    def default(cls) -> "Discretization":
        """A good speed/quality trade-off for pure-Python runs."""
        return cls(51, 11, 31)

    @classmethod
    def coarse(cls) -> "Discretization":
        """Fast grid for tests and wide parameter sweeps."""
        return cls(25, 7, 15)


@dataclass(frozen=True)
class DPAllocation:
    """Decisions of one DP solution: stages in chain order, each flagged
    normal (own GPU) or special (shared GPU)."""

    stages: tuple[Stage, ...]
    special: tuple[bool, ...]

    def to_allocation(self, platform: Platform) -> Allocation:
        """Materialize on a platform: normal stages take GPUs ``0, 1, …``
        in chain order; all special stages share GPU ``P − 1``."""
        procs = []
        normal = 0
        for is_special in self.special:
            if is_special:
                procs.append(platform.n_procs - 1)
            else:
                procs.append(normal)
                normal += 1
        if normal > platform.n_procs - 1 and any(self.special):
            raise ValueError("allocation uses more normal GPUs than available")
        if normal > platform.n_procs:
            raise ValueError("allocation uses more GPUs than available")
        return Allocation(Partitioning(self.stages), tuple(procs))

    @property
    def n_stages(self) -> int:
        return len(self.stages)


@dataclass
class MadPipeDPResult:
    """Result of one ``MadPipe-DP(T̂)`` evaluation."""

    target: float  # T̂ used for the memory estimates
    dp_period: float  # load-based period of the returned allocation (T)
    allocation: DPAllocation | None
    states: int = 0  # reachable (evaluated) grid states (diagnostics)
    wall_time_s: float = 0.0  # solver wall time (diagnostics)
    pruned_cap: int = 0  # candidates rejected by the period cap
    pruned_mem: int = 0  # candidates rejected by the memory check

    @property
    def effective_period(self) -> float:
        """max(T, T̂): a schedule needs T for load and T̂ for memory."""
        return max(self.dp_period, self.target)

    @property
    def feasible(self) -> bool:
        return self.allocation is not None


class _LevelDP:
    """One MadPipe-DP(T̂) evaluation, batched level by level.

    Packed state key layout (most→least significant digit):
    ``l · S_l + p · S_p + it · S_t + im · S_m + iv``.
    """

    def __init__(
        self,
        chain: Chain,
        platform: Platform,
        target: float,
        grid: Discretization,
        period_cap: float,
        allow_special: bool,
        rows_cache: dict | None = None,
        forward: bool = False,
    ):
        self.L, self.P, self.M = chain.L, platform.n_procs, platform.memory
        self.beta = platform.bandwidth
        self.That = target
        self.cap = period_cap
        self.allow_special = allow_special

        t_max = chain.total_compute()
        v_max = t_max + chain.total_comm(self.beta)
        self.t_step = t_max / (grid.n_t - 1)
        self.m_step = self.M / (grid.n_m - 1)
        self.v_step = v_max / (grid.n_v - 1)
        self.it_top = grid.n_t - 1
        self.im_top = grid.n_m - 1
        self.iv_top = grid.n_v - 1

        # packed-key strides
        self.S_m = grid.n_v
        self.S_t = grid.n_m * self.S_m
        self.S_p = grid.n_t * self.S_t
        self.S_l = (self.P + 1) * self.S_p
        self.n_t = grid.n_t

        self.cumU = chain._cum_u
        self.cumW = chain._cum_w
        self.cumA = chain._cum_a_in
        self.act = chain._act

        # per-level static candidate rows, index j = l - k (k descending);
        # pure functions of (chain, beta, strides), so a warm workspace may
        # share one dict across probes, searches and instances
        self._rows: dict[int, tuple] = {} if rows_cache is None else rows_cache
        # warm mode: carry the discovery pass's expansions into reduce()
        # (both passes expand identical key sets — see reduce()'s docstring)
        self._forward = forward
        self._fwd: dict[int, tuple] = {}
        self._fwd_bytes = 0
        self.forwarded = 0

        # per-level solved state: packed keys (sorted), values, decisions
        self.level_keys: list[np.ndarray | None] = [None] * (self.L + 1)
        self.level_vals: list[np.ndarray | None] = [None] * (self.L + 1)
        self.level_k: list[np.ndarray | None] = [None] * (self.L + 1)
        self.level_spec: list[np.ndarray | None] = [None] * (self.L + 1)
        self.level_child: list[np.ndarray | None] = [None] * (self.L + 1)

        self.states = 0
        self.pruned_cap = 0
        self.pruned_mem = 0

    # -- static per-level data ---------------------------------------------

    def _static_rows(self, l: int) -> tuple:
        """Candidate-stage constants for level ``l``: arrays over the cut
        layer ``k = l … 1`` (index ``j = l − k``)."""
        rows = self._rows.get(l)
        if rows is not None:
            return rows
        # cumU[k-1], cumW[k-1], cumA[k-1] for k = l..1  →  reversed prefixes
        U = self.cumU[l] - self.cumU[l - 1 :: -1]
        dw3 = 3.0 * (self.cumW[l] - self.cumW[l - 1 :: -1])
        da = self.cumA[l] - self.cumA[l - 1 :: -1]
        a_in = self.act[: l][::-1].copy()  # a^{(k-1)}, zeroed at k == 1
        a_in[l - 1] = 0.0
        comm = 2.0 * a_in / self.beta
        b1 = 2.0 * a_in  # first-boundary buffers (k > 1 only)
        b2 = 2.0 * self.act[l] if l < self.L else 0.0
        local_n = np.maximum(U, comm)
        kb = np.arange(l - 1, -1, -1, dtype=np.int64) * self.S_l  # (k-1)·S_l
        rows = (U, dw3, da, comm, b1, b2, local_n, kb)
        self._rows[l] = rows
        return rows

    def _unpack(self, keys: np.ndarray) -> tuple:
        p = (keys // self.S_p) % (self.P + 1)
        it = (keys // self.S_t) % self.n_t
        im = (keys // self.S_m) % (self.S_t // self.S_m)
        iv = keys % self.S_m
        return p, it, im, iv

    # -- level expansion ----------------------------------------------------

    def _expand(self, l: int, keys: np.ndarray, count: bool = False) -> tuple:
        """Vectorized candidate generation for all ``p ≥ 1`` states of one
        level: validity masks, packed child keys and local costs, shaped
        ``(n_states, l)`` with ``k`` descending along axis 1.

        ``count=True`` accumulates the pruning counters (the expansion
        runs once per pass, so only the discovery pass counts).
        """
        U, dw3, da, comm, b1, b2, local_n, kb = self._static_rows(l)
        That, cap, M = self.That, self.cap, self.M
        p, it, im, iv = self._unpack(keys)
        V = iv * self.v_step
        t_P = it * self.t_step
        m_P = im * self.m_step

        VU = V[:, None] + U[None, :]
        cVU = np.ceil(VU / That - 1e-9)
        g = np.maximum(cVU, 1.0)
        mem_g = dw3 + g * da
        mem_g += b1
        mem_g += b2
        mem_gm1 = dw3 + (g - 1.0) * da
        mem_gm1 += b1
        mem_gm1 += b2

        # V2 = (V ⊕ U(k,l)) ⊕ C(k-1), elementwise group rounding
        cV = np.ceil(V / That - 1e-9)
        r1 = np.where(cV[:, None] == cVU, VU, That * cV[:, None] + U[None, :])
        cr1 = np.ceil(r1 / That - 1e-9)
        V2 = np.where(
            cr1 == np.ceil((r1 + comm) / That - 1e-9), r1 + comm, That * cr1 + comm
        )
        iv2 = np.minimum(np.ceil(V2 / self.v_step - 1e-9), self.iv_top).astype(np.int64)

        # normal processor: child (k-1, p-1, it, im, iv2)
        cap_ok_n = U < cap  # also subsumes the naive loop's break condition
        valid_n = cap_ok_n & (mem_g <= M + _EPS)
        base_n = (p - 1) * self.S_p + it * self.S_t + im * self.S_m
        child_n = kb[None, :] + base_n[:, None] + iv2

        # special processor: child (k-1, p, it2, im2, iv2)
        t2 = t_P[:, None] + U[None, :]
        m2 = m_P[:, None] + mem_gm1
        if self.allow_special:
            cap_ok_s = t2 < cap
            valid_s = cap_ok_s & (m2 <= M + _EPS)
            if count:
                self.pruned_cap += int(np.sum(~cap_ok_s))
                self.pruned_mem += int(np.sum(cap_ok_s & (m2 > M + _EPS)))
        else:
            valid_s = np.zeros_like(t2, dtype=bool)
        it2 = np.minimum(np.ceil(t2 / self.t_step - 1e-9), self.it_top).astype(np.int64)
        im2 = np.minimum(np.ceil(m2 / self.m_step - 1e-9), self.im_top).astype(np.int64)
        child_s = kb[None, :] + p[:, None] * self.S_p + it2 * self.S_t
        child_s += im2 * self.S_m + iv2

        if count:
            self.pruned_cap += int(np.sum(~cap_ok_n))
            self.pruned_mem += int(np.sum(cap_ok_n & (mem_g > M + _EPS)))

        local_s = np.maximum(t2, comm)
        return valid_n, child_n, local_n, valid_s, child_s, local_s

    def _base_p0(self, l: int, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Values of the ``p == 0`` states of one level: all remaining
        layers become one stage on the special processor."""
        _, it, im, iv = self._unpack(keys)
        V = iv * self.v_step
        t_P = it * self.t_step
        m_P = im * self.m_step
        U_1l = float(self.cumU[l])
        g = np.maximum(np.ceil((V + U_1l) / self.That - 1e-9), 1.0)
        m = 3.0 * float(self.cumW[l]) + (g - 1.0) * float(self.cumA[l])
        if l < self.L:
            m = m + 2.0 * float(self.act[l])
        feasible = (m_P + m <= self.M + _EPS) if self.allow_special else np.zeros(
            len(keys), dtype=bool
        )
        vals = np.where(feasible, U_1l + t_P, INF)
        return vals, feasible

    # -- passes -------------------------------------------------------------

    def discover(self, root: int) -> None:
        """Downward sweep: compute the reachable state set of every level.

        Reachability lives in one flat bitmap over the packed key space:
        valid child matrices are scattered wholesale (``seen[kids] =
        True`` dedups for free), and each level's sorted key array is a
        single ``flatnonzero`` over its segment of the bitmap — levels
        are processed in descending ``l``, so every parent has been
        expanded by the time a segment is read.
        """
        S_l = self.S_l
        seen = np.zeros((self.L + 1) * S_l, dtype=bool)
        seen[root] = True
        for l in range(self.L, 0, -1):
            keys = np.flatnonzero(seen[l * S_l : (l + 1) * S_l])
            if not len(keys):
                self.level_keys[l] = np.empty(0, dtype=np.int64)
                continue
            keys = keys + l * S_l  # sorted, deduped by construction
            self.level_keys[l] = keys
            self.states += len(keys)
            p = (keys // self.S_p) % (self.P + 1)
            keys_b = keys[p >= 1]
            if not len(keys_b):
                continue
            exp = self._expand(l, keys_b, count=True)
            valid_n, child_n, _, valid_s, child_s, _ = exp
            if self._forward:
                nbytes = sum(
                    a.nbytes for a in exp if isinstance(a, np.ndarray)
                )
                if self._fwd_bytes + nbytes <= _FORWARD_BUDGET:
                    self._fwd[l] = exp
                    self._fwd_bytes += nbytes
            # level-0 children land in the bitmap too, but their segment
            # is never read back (T(0, ·) is closed-form in reduce())
            seen[child_n[valid_n]] = True
            seen[child_s[valid_s]] = True

    def reduce(self) -> None:
        """Upward sweep: solve every reachable level bottom-up.

        Child values are gathered by direct indexing into a dense value
        table over the packed key space.  ``np.empty`` is safe: level 0
        is prefilled closed-form, every other child a level references
        was scattered during discovery (the expansion is deterministic,
        so both passes produce the same validity masks), and lower
        levels are written before higher levels read them.
        """
        S_l, S_t, n_t = self.S_l, self.S_t, self.n_t
        dense = np.empty((self.L + 1) * S_l, dtype=float)
        # T(0, p, it, im, iv) = it · t_step — closing the chain leaves
        # only the special-processor load (same formula for every p/im/iv)
        dense[:S_l] = ((np.arange(S_l) // S_t) % n_t) * self.t_step
        for l in range(1, self.L + 1):
            keys = self.level_keys[l]
            if keys is None or not len(keys):
                self.level_keys[l] = np.empty(0, dtype=np.int64)
                self.level_vals[l] = np.empty(0, dtype=float)
                self.level_k[l] = np.empty(0, dtype=np.int64)
                self.level_spec[l] = np.empty(0, dtype=bool)
                self.level_child[l] = np.empty(0, dtype=np.int64)
                continue
            n = len(keys)
            vals = np.empty(n, dtype=float)
            best_k = np.full(n, _NO_DEC, dtype=np.int64)
            best_spec = np.zeros(n, dtype=bool)
            best_child = np.full(n, _NO_CHILD, dtype=np.int64)

            p = (keys // self.S_p) % (self.P + 1)
            mask0 = p == 0
            if mask0.any():
                v0, feas0 = self._base_p0(l, keys[mask0])
                vals[mask0] = v0
                idx0 = np.flatnonzero(mask0)
                best_k[idx0[feas0]] = 1
                best_spec[idx0[feas0]] = True
            maskB = ~mask0
            if maskB.any():
                keys_b = keys[maskB]
                exp = self._fwd.pop(l, None)
                if exp is None:
                    exp = self._expand(l, keys_b)
                else:
                    self.forwarded += 1
                valid_n, child_n, local_n, valid_s, child_s, local_s = exp
                sub_n = dense[child_n]
                sub_s = dense[child_s]
                cand_n = np.where(valid_n, np.maximum(local_n[None, :], sub_n), INF)
                cand_s = np.where(valid_s, np.maximum(local_s, sub_s), INF)
                nb, l2 = cand_n.shape[0], 2 * l
                cand = np.empty((nb, l2), dtype=float)
                cand[:, 0::2] = cand_n  # naive scan order: k desc,
                cand[:, 1::2] = cand_s  # normal before special
                j = np.argmin(cand, axis=1)
                rows = np.arange(nb)
                bv = cand[rows, j]
                vals[maskB] = bv
                jk = j >> 1
                spec = (j & 1).astype(bool)
                child = np.where(spec, child_s[rows, jk], child_n[rows, jk])
                idxB = np.flatnonzero(maskB)
                ok = bv < INF
                best_k[idxB[ok]] = (l - jk)[ok]
                best_spec[idxB[ok]] = spec[ok]
                best_child[idxB[ok]] = child[ok]

            self.level_vals[l] = vals
            self.level_k[l] = best_k
            self.level_spec[l] = best_spec
            self.level_child[l] = best_child
            dense[keys] = vals

    def solve(self, root: int) -> tuple[float, list[Stage], list[bool]]:
        self.discover(root)
        self.reduce()
        S_l = self.S_l
        stages: list[Stage] = []
        special: list[bool] = []
        key = root
        period = INF
        first = True
        while True:
            l = int(key // S_l)
            if l == 0:
                break
            keys = self.level_keys[l]
            i = int(np.searchsorted(keys, key))
            if first:
                period = float(self.level_vals[l][i])
                first = False
                if period == INF:
                    break
            k = int(self.level_k[l][i])
            if k == _NO_DEC:
                break
            stages.append(Stage(k, l))
            special.append(bool(self.level_spec[l][i]))
            child = int(self.level_child[l][i])
            if child == _NO_CHILD:
                break
            key = child
        stages.reverse()
        special.reverse()
        return period, stages, special


def madpipe_dp(
    chain: Chain,
    platform: Platform,
    target: float,
    *,
    grid: Discretization | None = None,
    period_cap: float = INF,
    allow_special: bool = True,
    memory_headroom: float = 0.0,
    workspace: dict | None = None,
) -> MadPipeDPResult:
    """Evaluate ``MadPipe-DP(T̂)`` (§4.2.2).

    ``period_cap`` prunes candidate stages that cannot beat an incumbent
    period (the cap must over-estimate the optimum; ``inf`` disables).
    ``allow_special=False`` restricts the DP to contiguous allocations
    (ablation: memory-aware PipeDream).  ``memory_headroom`` reserves a
    fraction of each GPU (see
    :func:`repro.core.memory.effective_capacity`): the DP's memory masks
    and its memory grid both use the derated capacity, so phase 1 only
    proposes allocations that leave the requested margin.

    ``workspace`` (warm starts) shares the per-level candidate-stage
    constants across evaluations of the same (chain, P, β, grid) and
    carries the discovery pass's expansions into the value sweep — the
    result is bit-identical either way (both are exact reuse of
    deterministic intermediates; golden tests enforce it).
    """
    if target <= 0:
        raise ValueError("target period must be positive")
    grid = grid or Discretization.default()
    t0 = time.perf_counter()
    dp = _LevelDP(
        chain, platform.with_headroom(memory_headroom), target, grid,
        period_cap, allow_special,
        rows_cache=workspace, forward=workspace is not None,
    )
    # P-1 normal processors plus the special one; without the special
    # processor all P processors are normal.
    p0 = platform.n_procs - 1 if allow_special else platform.n_procs
    root = chain.L * dp.S_l + p0 * dp.S_p
    period, stages, special = dp.solve(root)
    wall = time.perf_counter() - t0
    if dp.forwarded:
        obs.inc("warm.dp_reuse", dp.forwarded)
    if period == INF:
        return MadPipeDPResult(
            target,
            INF,
            None,
            states=dp.states,
            wall_time_s=wall,
            pruned_cap=dp.pruned_cap,
            pruned_mem=dp.pruned_mem,
        )
    return MadPipeDPResult(
        target,
        period,
        DPAllocation(tuple(stages), tuple(special)),
        states=dp.states,
        wall_time_s=wall,
        pruned_cap=dp.pruned_cap,
        pruned_mem=dp.pruned_mem,
    )


@dataclass
class Algorithm1Result:
    """Outcome of the T̂ binary search (phase 1 of MadPipe)."""

    period: float  # best max(T_i, T̂_i)
    target: float  # the T̂ achieving it
    allocation: DPAllocation | None
    history: list[tuple[float, float]] = field(default_factory=list)  # (T̂_i, T_i)
    states: int = 0  # reachable DP states, summed over probes
    wall_time_s: float = 0.0  # total phase-1 wall time
    pruned_cap: int = 0  # cap-pruned candidates, summed over probes
    pruned_mem: int = 0  # memory-pruned candidates, summed over probes

    @property
    def feasible(self) -> bool:
        return self.allocation is not None


def algorithm1(
    chain: Chain,
    platform: Platform,
    *,
    iterations: int = 10,
    grid: Discretization | None = None,
    allow_special: bool = True,
    memory_headroom: float = 0.0,
    dp=None,
) -> Algorithm1Result:
    """Algorithm 1: modified binary search over the target period T̂.

    For each probe, ``min(T, T̂)`` is a lower bound of the optimal
    ``T̂*`` and ``max(T, T̂)`` an upper bound; the next probe bisects.

    ``dp`` swaps the ``MadPipe-DP(T̂)`` evaluator (same signature and
    result type as :func:`madpipe_dp`) — used by the golden tests and
    benchmarks to drive the search with the reference implementation.
    A nonzero ``memory_headroom`` is forwarded to the evaluator (the
    kwarg is omitted at zero so headroom-unaware evaluators keep
    working).

    Under an active warm-start context (:mod:`repro.warmstart`) and the
    default evaluator, the whole search is memoized by exact instance
    key — MadPipe re-runs the identical contiguous search for its
    fallback and certification paths, and sweeps repeat searches across
    retries — and probes share the context's per-level DP workspace.
    Both reuse paths return bit-identical results to a cold search.
    """
    dp = dp or madpipe_dp
    dp_opts = {"memory_headroom": memory_headroom} if memory_headroom else {}
    warm = active_warm() if dp is madpipe_dp else None
    memo_key = None
    if warm is not None:
        g = grid or Discretization.default()
        fp = chain_fingerprint(chain)
        memo_key = (
            fp, platform.n_procs, platform.memory, platform.bandwidth,
            iterations, (g.n_t, g.n_m, g.n_v), allow_special,
            memory_headroom,
        )
        hit = warm.phase1.hit(memo_key)
        if hit is not None:
            obs.inc("warm.dp_reuse")
            obs.inc("warm.probes_saved", len(hit.history))
            return hit
        dp_opts["workspace"] = warm.dp_workspace(
            (fp, platform.n_procs, platform.bandwidth, g.n_t, g.n_m, g.n_v)
        )
    t0 = time.perf_counter()
    lb = chain.total_compute() / platform.n_procs
    ub = chain.total_compute() + chain.total_comm(platform.bandwidth)
    That = lb
    best = Algorithm1Result(INF, That, None)
    with obs.span(
        "madpipe.algorithm1", iterations=iterations, allow_special=allow_special
    ) as search_span:
        for _ in range(iterations):
            with obs.span("madpipe.dp", target=That) as probe_span:
                res = dp(
                    chain,
                    platform,
                    That,
                    grid=grid,
                    period_cap=min(best.period, ub * (1 + 1e-9))
                    if best.feasible
                    else INF,
                    allow_special=allow_special,
                    **dp_opts,
                )
                probe_span.set(
                    period=res.dp_period if res.dp_period != INF else None,
                    states=res.states,
                    pruned_cap=res.pruned_cap,
                    pruned_mem=res.pruned_mem,
                    feasible=res.feasible,
                )
            T = res.dp_period
            best.history.append((That, T))
            best.states += res.states
            best.pruned_cap += res.pruned_cap
            best.pruned_mem += res.pruned_mem
            if res.feasible and res.effective_period < best.period:
                best.period = res.effective_period
                best.target = That
                best.allocation = res.allocation
            lb = max(lb, min(T, That))
            ub = min(ub, max(T, That))
            if ub <= lb * (1 + 1e-9):
                That = ub
            else:
                That = (lb + ub) / 2
        search_span.set(
            period=best.period if best.period != INF else None,
            target=best.target,
            states=best.states,
            feasible=best.feasible,
        )
    best.wall_time_s = time.perf_counter() - t0
    obs.inc("dp.searches")
    obs.inc("dp.probes", len(best.history))
    obs.inc("dp.states", best.states)
    obs.inc("dp.pruned_cap", best.pruned_cap)
    obs.inc("dp.pruned_mem", best.pruned_mem)
    obs.inc("dp.wall_s", best.wall_time_s)
    if memo_key is not None:
        warm.phase1.put(memo_key, best)
    return best
