"""Capacity advisor: largest schedulable batch size on a platform.

Activation sizes (and with them the memory pressure) grow linearly with
the mini-batch, so the largest batch for which a memory-feasible schedule
exists is found by bisection over the batch axis.  The caller supplies a
``chain_for_batch`` callable (typically re-profiling the model zoo graph
at each probe) so the advisor stays agnostic of where profiles come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.chain import Chain
from ..core.platform import Platform
from .madpipe import MadPipeResult, madpipe
from .madpipe_dp import Discretization

__all__ = ["BatchAdvice", "max_feasible_batch"]


@dataclass
class BatchAdvice:
    """Outcome of the batch-size search."""

    batch_size: int
    result: MadPipeResult | None
    probes: list[tuple[int, bool]] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.result is not None and self.result.feasible

    @property
    def samples_per_second(self) -> float:
        if not self.feasible:
            return 0.0
        return self.batch_size / self.result.period


def max_feasible_batch(
    chain_for_batch: Callable[[int], Chain],
    platform: Platform,
    *,
    max_batch: int = 256,
    grid: Discretization | None = None,
    iterations: int = 6,
    ilp_time_limit: float = 20.0,
) -> BatchAdvice:
    """Largest ``b ≤ max_batch`` with a memory-feasible MadPipe schedule.

    Feasibility is monotone in the batch size for fixed weights (bigger
    batches only add activation bytes), so plain bisection applies.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")

    def probe(b: int) -> MadPipeResult:
        return madpipe(
            chain_for_batch(b),
            platform,
            grid=grid,
            iterations=iterations,
            ilp_time_limit=ilp_time_limit,
        )

    advice = BatchAdvice(batch_size=0, result=None)
    res = probe(1)
    advice.probes.append((1, res.feasible))
    if not res.feasible:
        return advice
    advice.batch_size, advice.result = 1, res

    lo, hi = 1, max_batch
    res = probe(max_batch)
    advice.probes.append((max_batch, res.feasible))
    if res.feasible:
        advice.batch_size, advice.result = max_batch, res
        return advice

    while hi - lo > 1:
        mid = (lo + hi) // 2
        res = probe(mid)
        advice.probes.append((mid, res.feasible))
        if res.feasible:
            lo = mid
            advice.batch_size, advice.result = mid, res
        else:
            hi = mid
    return advice
