"""GPipe-style fill-drain baseline (related work, §2 / ref. [9]).

GPipe splits the batch into micro-batches, pushes them all forward
through the stage pipeline, then drains all backwards, and only then
updates the weights.  Resources idle during fill and drain (the
"bubble"), so for ``N`` stages and ``m`` micro-batches the effective
per-batch period is roughly ``(m + N − 1)/m`` times the bottleneck stage
load.  Every stage stores up to ``min(m, pipeline depth)`` activation
copies; unlike PipeDream only one weight version is needed (we still
charge 2 versions + gradient for a like-for-like comparison with the
paper's memory model).

This baseline is provided for context in the experiment harness; the
paper's figures compare PipeDream and MadPipe only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.chain import Chain
from ..core.memory import stage_memory
from ..core.partition import Partitioning
from ..core.platform import Platform
from .pipedream import pipedream_partition

__all__ = ["GPipeResult", "gpipe_period", "gpipe"]

INF = float("inf")


@dataclass
class GPipeResult:
    """GPipe baseline outcome: effective per-batch period and memory."""

    partitioning: Partitioning | None
    micro_batches: int
    period: float

    @property
    def feasible(self) -> bool:
        return self.partitioning is not None


def gpipe_period(
    chain: Chain,
    platform: Platform,
    partitioning: Partitioning,
    micro_batches: int,
) -> float:
    """Effective per-mini-batch period of a GPipe fill-drain schedule.

    One round processes ``m`` micro-batches (each ``1/m`` of the profiled
    mini-batch) through ``N`` stages with a fill/drain bubble of ``N − 1``
    micro-batch slots on the bottleneck resource.
    """
    m = micro_batches
    n = partitioning.n_stages
    bottleneck = 0.0
    for i, s in enumerate(partitioning):
        load = s.compute(chain) / m
        bottleneck = max(bottleneck, load)
        if i < n - 1:
            bottleneck = max(
                bottleneck, chain.comm_time(s.end, platform.bandwidth) / m
            )
    return bottleneck * (m + n - 1)


def gpipe(
    chain: Chain, platform: Platform, *, micro_batches: int = 4
) -> GPipeResult:
    """GPipe baseline: balanced contiguous partitioning + fill-drain.

    Reuses the PipeDream load-balancing DP for the partitioning, then
    checks the fill-drain memory (every stage holds up to
    ``min(m, stages-from-end)`` activation copies of ``1/m``-size
    micro-batches).
    """
    partitioning, _ = pipedream_partition(chain, platform)
    if partitioning is None:
        return GPipeResult(None, micro_batches, INF)
    m = micro_batches
    n = partitioning.n_stages
    for i, s in enumerate(partitioning):
        copies = min(m, n - i)
        # activations are 1/m of the profiled batch per copy
        usage = stage_memory(chain, s.start, s.end, 0) + (
            copies / m
        ) * chain.stored_activations(s.start, s.end)
        if usage > platform.memory:
            return GPipeResult(None, micro_batches, INF)
    return GPipeResult(
        partitioning, m, gpipe_period(chain, platform, partitioning, m)
    )
