"""Scheduling algorithms: 1F1B*, PipeDream baseline, MadPipe, GPipe."""

from .advisor import BatchAdvice, max_feasible_batch
from .bruteforce import BruteForceResult, best_contiguous, best_special
from .gpipe import GPipeResult, gpipe, gpipe_period
from .hybrid import HybridResult, group_sizes, hybrid, scale_chain_for_group
from .madpipe import SCHEDULE_FAMILIES, MadPipeResult, madpipe
from .madpipe_dp import (
    Algorithm1Result,
    Discretization,
    DPAllocation,
    MadPipeDPResult,
    algorithm1,
    madpipe_dp,
)
from .onef1b import OneF1BResult, build_pattern, min_feasible_period
from .pipedream import PipeDreamResult, pipedream, pipedream_partition
from .zero_bubble import ZeroBubbleResult, build_pattern_zb, min_feasible_period_zb

__all__ = [
    "BatchAdvice",
    "max_feasible_batch",
    "BruteForceResult",
    "best_contiguous",
    "best_special",
    "GPipeResult",
    "HybridResult",
    "group_sizes",
    "hybrid",
    "scale_chain_for_group",
    "gpipe",
    "gpipe_period",
    "MadPipeResult",
    "SCHEDULE_FAMILIES",
    "madpipe",
    "Algorithm1Result",
    "Discretization",
    "DPAllocation",
    "MadPipeDPResult",
    "algorithm1",
    "madpipe_dp",
    "OneF1BResult",
    "build_pattern",
    "min_feasible_period",
    "PipeDreamResult",
    "pipedream",
    "pipedream_partition",
    "ZeroBubbleResult",
    "build_pattern_zb",
    "min_feasible_period_zb",
]
