"""Hybrid data + model parallelism (paper §1 and §6).

The paper's stated perspective: use model parallelism to split the
platform into ``G`` groups of ``r = P / G`` GPUs, run data parallelism
*inside* each group, and let MadPipe place the stages across groups.
Each collective then involves only ``r`` GPUs and ``1/G`` of the
weights, sidestepping the scalability wall of flat data parallelism.

We model a group of ``r`` replicas processing a mini-batch of size
``B`` as a *virtual worker* seen by the chain scheduler:

* compute: each replica handles ``B/r`` samples — ``u_F``/``u_B`` scale
  by ``1/r``;
* activations: sharded — per-GPU activation sizes (storage *and*
  inter-stage transfers) scale by ``1/r``;
* weights: fully replicated — ``W`` is unchanged, and every mini-batch
  pays a ring all-reduce of the gradients inside the group,
  ``2·W·(r−1)/(r·β)`` per layer, charged to the backward time;
* memory: the per-GPU capacity is unchanged.

``hybrid`` sweeps the divisors of ``P`` and returns the best
(group size, MadPipe schedule) combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.chain import Chain, LayerProfile
from ..core.platform import Platform
from .madpipe import MadPipeResult, madpipe
from .madpipe_dp import Discretization

__all__ = ["HybridResult", "scale_chain_for_group", "group_sizes", "hybrid"]

INF = float("inf")


def scale_chain_for_group(chain: Chain, group_size: int, bandwidth: float) -> Chain:
    """The chain one *virtual worker* (a data-parallel group of
    ``group_size`` replicas) presents to the pipeline scheduler."""
    if group_size < 1:
        raise ValueError("group size must be >= 1")
    r = group_size
    if r == 1:
        return chain
    allreduce = 2.0 * (r - 1) / (r * bandwidth)
    layers = [
        LayerProfile(
            name=l.name,
            u_f=l.u_f / r,
            u_b=l.u_b / r + l.weights * allreduce,
            weights=l.weights,
            activation=l.activation / r,
        )
        for l in chain.layers
    ]
    return Chain(
        layers,
        input_activation=chain.input_activation / r,
        name=f"{chain.name}/dp{r}",
    )


def group_sizes(n_procs: int) -> list[int]:
    """Divisors of ``P`` — the candidate data-parallel group sizes."""
    return [r for r in range(1, n_procs + 1) if n_procs % r == 0]


@dataclass
class HybridResult:
    """Best hybrid configuration plus the full sweep table."""

    group_size: int
    n_groups: int
    period: float
    inner: MadPipeResult | None
    sweep: list[tuple[int, float]] = field(default_factory=list)  # (r, period)

    @property
    def feasible(self) -> bool:
        return self.inner is not None and self.inner.feasible


def hybrid(
    chain: Chain,
    platform: Platform,
    *,
    grid: Discretization | None = None,
    iterations: int = 8,
    ilp_time_limit: float = 30.0,
) -> HybridResult:
    """Sweep group sizes and schedule each virtual-worker chain with
    MadPipe; return the configuration with the smallest per-batch period.

    ``r = P`` is flat data parallelism (one stage, all-reduce over all
    GPUs); ``r = 1`` is pure pipelined model parallelism.
    """
    best = HybridResult(group_size=0, n_groups=0, period=INF, inner=None)
    for r in group_sizes(platform.n_procs):
        virtual = Platform(
            n_procs=platform.n_procs // r,
            memory=platform.memory,
            bandwidth=platform.bandwidth,
        )
        scaled = scale_chain_for_group(chain, r, platform.bandwidth)
        res = madpipe(
            scaled,
            virtual,
            grid=grid,
            iterations=iterations,
            ilp_time_limit=ilp_time_limit,
        )
        period = res.period if res.feasible else INF
        best.sweep.append((r, period))
        if period < best.period:
            best.group_size = r
            best.n_groups = platform.n_procs // r
            best.period = period
            best.inner = res
    return best
