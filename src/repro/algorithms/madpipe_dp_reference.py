"""Reference (naive) MadPipe-DP — the original recursive implementation.

This module preserves the straightforward top-down memoized recursion
exactly as first written, as an executable specification for the
vectorized fast path in :mod:`repro.algorithms.madpipe_dp`.  The golden
tests (``tests/test_dp_fastpath.py``) assert that both implementations
return *identical* ``(dp_period, allocation, effective_period)`` across
randomized chains, platforms and grids, and the benchmark harness
(``benchmarks/bench_dp_hotpath.py``) measures the speedup against it.

It is intentionally slow — do not use it outside tests and benchmarks.
"""

from __future__ import annotations

import math
import sys

from ..core.chain import Chain
from ..core.partition import Stage
from ..core.platform import Platform
from .madpipe_dp import Discretization, DPAllocation, MadPipeDPResult

__all__ = ["madpipe_dp_reference"]

INF = float("inf")
_EPS = 1e-9


def madpipe_dp_reference(
    chain: Chain,
    platform: Platform,
    target: float,
    *,
    grid: Discretization | None = None,
    period_cap: float = INF,
    allow_special: bool = True,
) -> MadPipeDPResult:
    """Evaluate ``MadPipe-DP(T̂)`` with the naive recursive DP (§4.2.2)."""
    if target <= 0:
        raise ValueError("target period must be positive")
    grid = grid or Discretization.default()
    L, P, M = chain.L, platform.n_procs, platform.memory
    beta = platform.bandwidth
    That = target

    t_max = chain.total_compute()
    v_max = t_max + chain.total_comm(beta)
    t_step = t_max / (grid.n_t - 1)
    m_step = M / (grid.n_m - 1)
    v_step = v_max / (grid.n_v - 1)
    it_top, im_top, iv_top = grid.n_t - 1, grid.n_m - 1, grid.n_v - 1

    # hot-loop locals: O(1) range queries from prefix sums, no method calls
    cumU = chain._cum_u.tolist()  # U(k,l) = cumU[l] - cumU[k-1]
    cumW = chain._cum_w.tolist()
    cumA = chain._cum_a_in.tolist()  # Σ a_{i-1} over k..l
    act = chain._act.tolist()  # a^{(l)}, index 0..L
    ceil = math.ceil

    def mem(k: int, l: int, g: int) -> float:
        """``M(k, l, g)`` of §4.2.1 (buffers dropped at chain ends)."""
        m = 3.0 * (cumW[l] - cumW[k - 1]) + g * (cumA[l] - cumA[k - 1])
        if k > 1:
            m += 2.0 * act[k - 1]
        if l < L:
            m += 2.0 * act[l]
        return m

    def oplus(x: float, y: float) -> float:
        """Group-rounding delay addition (paper §4.2.2)."""
        cx = ceil(x / That - 1e-9)
        if cx == ceil((x + y) / That - 1e-9):
            return x + y
        return That * cx + y

    # memo[(l, p, it, im, iv)] = (period, decision)
    # decision: (k, is_special, child_key) or None at base cases
    memo: dict[tuple, tuple[float, tuple | None]] = {}

    sys.setrecursionlimit(max(sys.getrecursionlimit(), 10 * L + 1000))

    def solve(l: int, p: int, it: int, im: int, iv: int) -> tuple[float, tuple | None]:
        if l == 0:
            return (it * t_step, None)
        key = (l, p, it, im, iv)
        hit = memo.get(key)
        if hit is not None:
            return hit
        t_P, m_P, V = it * t_step, im * m_step, iv * v_step
        best: float = INF
        best_dec: tuple | None = None

        if p == 0:
            # all remaining layers become one stage on the special processor
            U_1l = cumU[l]
            g = max(1, ceil((V + U_1l) / That - 1e-9))
            if allow_special and m_P + mem(1, l, g - 1) <= M + _EPS:
                best = U_1l + t_P
                best_dec = (1, True, None)
            memo[key] = (best, best_dec)
            return memo[key]

        cumU_l = cumU[l]
        for k in range(l, 0, -1):
            U_kl = cumU_l - cumU[k - 1]
            comm = 2.0 * act[k - 1] / beta if k > 1 else 0.0
            if U_kl >= period_cap and t_P + U_kl >= period_cap:
                break  # larger stages only get worse
            g = ceil((V + U_kl) / That - 1e-9)
            if g < 1:
                g = 1
            V2 = oplus(oplus(V, U_kl), comm)
            iv2 = ceil(V2 / v_step - 1e-9)
            if iv2 > iv_top:
                iv2 = iv_top
            # normal processor
            if U_kl < period_cap and mem(k, l, g) <= M + _EPS:
                sub, _ = solve(k - 1, p - 1, it, im, iv2)
                cand = max(U_kl, comm, sub)
                if cand < best:
                    best = cand
                    best_dec = (k, False, (k - 1, p - 1, it, im, iv2))
            # special processor
            if allow_special:
                t2 = t_P + U_kl
                m2 = m_P + mem(k, l, g - 1)
                if t2 < period_cap and m2 <= M + _EPS:
                    it2 = ceil(t2 / t_step - 1e-9)
                    if it2 > it_top:
                        it2 = it_top
                    im2 = ceil(m2 / m_step - 1e-9)
                    if im2 > im_top:
                        im2 = im_top
                    sub, _ = solve(k - 1, p, it2, im2, iv2)
                    cand = max(t2, comm, sub)
                    if cand < best:
                        best = cand
                        best_dec = (k, True, (k - 1, p, it2, im2, iv2))
        entry = (best, best_dec)
        memo[key] = entry
        return entry

    # P-1 normal processors plus the special one; without the special
    # processor all P processors are normal.
    root = (L, P - 1 if allow_special else P, 0, 0, 0)
    period, _ = solve(*root)
    if period == INF:
        return MadPipeDPResult(target, INF, None, states=len(memo))

    # traceback — every state on the optimal path below the root is
    # memoized (solve() stored it while computing the root), so a plain
    # lookup suffices.
    stages: list[Stage] = []
    special: list[bool] = []
    key = root
    while True:
        l = key[0]
        if l == 0:
            break
        _, dec = memo[key]
        if dec is None:
            break
        k, is_special, child = dec
        stages.append(Stage(k, l))
        special.append(is_special)
        if child is None:
            break
        key = child
    stages.reverse()
    special.reverse()
    return MadPipeDPResult(
        target, period, DPAllocation(tuple(stages), tuple(special)), states=len(memo)
    )
