"""Zero-bubble B–W-split periodic patterns for contiguous allocations.

The classic 1F1B\\* construction treats a stage's backward as one
monolithic op of duration ``u_b``.  Splitting it — grad-input ``B``
(duration ``d_B``, on the critical path towards earlier stages) and
grad-weight ``W`` (duration ``d_W = u_b − d_B``, no downstream
dependents) — shortens the backward chain of every group "V" from
``Σ u_b`` to ``Σ d_B``, as in the zero-bubble schedulers (ZB-H1) and
2BP.  In the periodic model this means groups merge at smaller periods:
a stage in group ``g`` stores ``g`` activation copies, so at a tight
memory budget the split family reaches a *smaller feasible period* than
1F1B\\* by trading one boundary-sized grad-input buffer per stage
(``ĝ_s = a_end``, held from B start to W completion) for a whole
activation set (``ā_s``, typically ≫ ``ĝ_s``).

Construction (the ZB-H1-style ``auto_schedule`` analogue for periodic
patterns): items (stages ∪ cut boundaries) are grouped back-to-front
greedily on the *V-load* ``u_f + d_B`` under two fit conditions — the
group's V-load total fits in ``T``, and for every stage item ``i`` the
suffix ``Σ_{k∈group, k≥i} (u_f_k + d_B_k) + d_W_i ≤ T`` so that ``W_i``
placed immediately after ``B_i`` still clears the next period's
``F_i``.  Each group schedules forwards in chain order back-to-back,
then grad-input backwards in reverse order back-to-back, with ``W_i``
directly after ``B_i`` on the same GPU at the same shift.  Validity
follows the 1F1B\\* argument (cross-group backward slack is
``T − Σ_{k∈group} (u_f_k + d_B_k) ≥ 0``); every produced pattern also
passes the full analytic validator and the discrete-event certification
gate downstream.

The minimal-period search mirrors :func:`repro.algorithms.onef1b.
min_feasible_period`: candidate periods are the greedy grouping's
breakpoints — contiguous V-load range sums ``S(a, b)`` plus
``S(a, b) + d_W_a`` for stage-anchored ranges — and per-GPU memory
``(3W + g·ā) + buffers + ĝ`` is non-increasing in ``T``, so a binary
search over the sorted candidates finds the first feasible one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import Chain
from ..core.partition import Allocation, Partitioning
from ..core.pattern import (
    B,
    CB,
    CF,
    F,
    Op,
    PeriodicPattern,
    W,
    gpu,
    link,
    split_backward,
)
from ..core.platform import Platform
from ..obs.metrics import active_metrics
from ..obs.trace import active_trace
from ..warmstart import active_warm, chain_fingerprint
from .onef1b import GROUP_FIT_RTOL, MEMORY_FIT_RTOL, extended_items

__all__ = [
    "SPLIT_FRACTION",
    "ZeroBubbleResult",
    "assign_groups_zb",
    "build_pattern_zb",
    "min_feasible_period_zb",
]

#: Default grad-input share of the backward: ``d_B = 0.5·u_b`` (the 2BP
#: measurement — grad-input and grad-weight costs are roughly equal).
SPLIT_FRACTION = 0.5


def _split_items(
    chain: Chain, platform: Platform, allocation: Allocation, split_fraction: float
):
    """Per-item V-loads and trailing grad-weight durations.

    Returns ``(items, v_loads, d_ws)`` where ``v_loads[i]`` is the
    item's contribution to the group's critical V (``u_f + d_B`` for
    stages, the full ``c_f + c_b`` for comm boundaries) and ``d_ws[i]``
    the grad-weight tail (0 for comm items).
    """
    items = extended_items(chain, platform, allocation)
    v_loads: list[float] = []
    d_ws: list[float] = []
    for it in items:
        if it.kind == "stage":
            d_b, d_w = split_backward(it.u_b, split_fraction)
            v_loads.append(it.u_f + d_b)
            d_ws.append(d_w)
        else:
            v_loads.append(it.u_f + it.u_b)
            d_ws.append(0.0)
    return items, v_loads, d_ws


def assign_groups_zb(
    v_loads: list[float], d_ws: list[float], period: float
) -> list[int]:
    """Group index (1 = last group) per item, back-to-front greedy.

    A group absorbs earlier items while (a) its total V-load stays
    ≤ ``period`` and (b) for the item being added, the group's current
    V-load suffix plus the item's grad-weight tail stays ≤ ``period``
    (condition (b) is what lets ``W_i`` run right after ``B_i`` without
    colliding with the next period's ``F_i``).  A single item violating
    both as a singleton makes the period infeasible (``ValueError``).
    """
    n = len(v_loads)
    if n == 0:
        return []
    thresh = period * (1 + GROUP_FIT_RTOL)
    groups = [0] * n
    g, acc = 1, 0.0
    for i in range(n - 1, -1, -1):
        grown = acc + v_loads[i]
        if grown > thresh or grown + d_ws[i] > thresh:
            g += 1
            acc = v_loads[i]
            if acc > thresh or acc + d_ws[i] > thresh:
                raise ValueError(
                    f"item {i} load {acc + d_ws[i]:.4g} exceeds period {period:.4g}"
                )
        else:
            acc = grown
        groups[i] = g
    return groups


def build_pattern_zb(
    chain: Chain,
    platform: Platform,
    allocation: Allocation,
    period: float,
    *,
    split_fraction: float = SPLIT_FRACTION,
) -> PeriodicPattern:
    """Construct the zero-bubble split-backward pattern for a contiguous
    allocation at ``period``.

    Raises ``ValueError`` when the period is below the bottleneck load.
    The caller is responsible for memory feasibility (see
    :func:`min_feasible_period_zb`).
    """
    if not allocation.is_contiguous():
        raise ValueError("zero-bubble construction requires a contiguous allocation")
    items, v_loads, d_ws = _split_items(chain, platform, allocation, split_fraction)
    groups = assign_groups_zb(v_loads, d_ws, period)

    pattern = PeriodicPattern(allocation=allocation, period=period)
    procs = allocation.procs
    t = 0.0
    i = 0
    while i < len(items):
        g = groups[i]
        j = i
        while j < len(items) and groups[j] == g:
            j += 1
        # forwards of items[i:j], chain order, back-to-back
        tf = t
        for item in items[i:j]:
            kind = F if item.kind == "stage" else CF
            pattern.add(
                Op(kind, item.index, _resource(item, procs), tf, item.u_f, 0)
            )
            tf += item.u_f
        # grad-input backwards immediately after, reverse order, shift g−1;
        # each stage's grad-weight op follows its B on the same GPU
        tb = tf
        for item in reversed(items[i:j]):
            if item.kind == "stage":
                d_b, d_w = split_backward(item.u_b, split_fraction)
                res = gpu(procs[item.index])
                pattern.add(Op(B, item.index, res, tb, d_b, g - 1))
                pattern.add(Op(W, item.index, res, tb + d_b, d_w, g - 1))
                tb += d_b
            else:
                res = link(procs[item.index], procs[item.index + 1])
                pattern.add(Op(CB, item.index, res, tb, item.u_b, g - 1))
                tb += item.u_b
        t = tf
        i = j
    pattern.normalize()
    return pattern


def _resource(item, procs: tuple[int, ...]) -> tuple:
    if item.kind == "stage":
        return gpu(procs[item.index])
    return link(procs[item.index], procs[item.index + 1])


@dataclass
class ZeroBubbleResult:
    """Outcome of the zero-bubble minimal-feasible-period search."""

    period: float
    pattern: PeriodicPattern | None
    groups: dict[int, int]  # stage index -> group number
    memory: dict[int, float]  # processor -> bytes used (analytic)


def min_feasible_period_zb(
    chain: Chain,
    platform: Platform,
    partitioning: Partitioning,
    *,
    build: bool = True,
    memory_headroom: float = 0.0,
    split_fraction: float = SPLIT_FRACTION,
) -> ZeroBubbleResult | None:
    """Smallest period at which the zero-bubble split-backward schedule of
    ``partitioning`` fits in memory on every GPU; ``None`` if none works.

    Mirrors :func:`repro.algorithms.onef1b.min_feasible_period`:
    instrumented with a ``zero_bubble.period_search`` span and counters,
    and memoized by exact instance key under an active warm-start
    context (keys carry a family tag, so they never collide with 1F1B\\*
    entries).
    """
    warm = active_warm()
    memo_key = None
    if warm is not None:
        memo_key = (
            chain_fingerprint(chain), platform.n_procs, platform.memory,
            platform.bandwidth, memory_headroom,
            tuple((s.start, s.end) for s in partitioning.stages), build,
            "zb", split_fraction,
        )
        hit = warm.onef1b.hit(memo_key)
        if hit is not None:
            reg = active_metrics()
            if reg is not None:
                reg.inc("warm.zero_bubble_hits")
            return hit[0]
    platform = platform.with_headroom(memory_headroom)
    tr = active_trace()
    reg = active_metrics()
    if tr is None and reg is None:
        res = _min_feasible_period_zb(
            chain, platform, partitioning, build=build, split_fraction=split_fraction
        )
        if memo_key is not None:
            warm.onef1b.put(memo_key, (res,))
        return res
    if reg is not None:
        reg.inc("zero_bubble.searches")
    if tr is None:
        res = _min_feasible_period_zb(
            chain, platform, partitioning, build=build, split_fraction=split_fraction
        )
    else:
        with tr.span(
            "zero_bubble.period_search", n_stages=partitioning.n_stages, build=build
        ) as sp:
            res = _min_feasible_period_zb(
                chain, platform, partitioning,
                build=build, split_fraction=split_fraction,
            )
            sp.set(
                feasible=res is not None,
                period=res.period if res is not None else None,
            )
    if res is not None and reg is not None:
        reg.inc("zero_bubble.feasible")
    if memo_key is not None:
        warm.onef1b.put(memo_key, (res,))
    return res


def _min_feasible_period_zb(
    chain: Chain,
    platform: Platform,
    partitioning: Partitioning,
    *,
    build: bool,
    split_fraction: float,
) -> ZeroBubbleResult | None:
    """The uninstrumented search; see :func:`min_feasible_period_zb`.

    Candidate periods are the grouping breakpoints: contiguous V-load
    range sums ``S(a, b)`` (group-extent conditions flip there) plus
    ``S(a, b) + d_W_a`` for stage-anchored ranges (the suffix-W
    conditions flip there), floored at the bottleneck lower bound
    ``max(u_f + u_b, c_f + c_b)``.  Larger ``T`` relaxes both greedy
    acceptance conditions, so groupings are nested and per-GPU memory is
    non-increasing in ``T`` — a binary search over the sorted candidates
    finds the smallest feasible one.
    """
    if partitioning.n_stages > platform.n_procs:
        raise ValueError("more stages than processors")
    n_stages = partitioning.n_stages
    ends = np.fromiter(
        (s.end for s in partitioning.stages), dtype=np.int64, count=n_stages
    )
    starts = np.empty(n_stages, dtype=np.int64)
    starts[0] = 1
    starts[1:] = ends[:-1] + 1

    # item arrays, interleaved [stage 0, comm 0, stage 1, …, stage S−1]
    u_f = chain.u_f_ranges(starts, ends)
    u_b = chain.u_b_ranges(starts, ends)
    half = chain.activation_values(ends[:-1]) / platform.bandwidth
    n_items = 2 * n_stages - 1
    d_b_stage = split_fraction * u_b
    d_w_stage = u_b - d_b_stage
    v = np.empty(n_items)
    v[0::2] = u_f + d_b_stage
    v[1::2] = half + half
    d_w = np.zeros(n_items)
    d_w[0::2] = d_w_stage
    full = np.empty(n_items)
    full[0::2] = u_f + u_b
    full[1::2] = half + half
    lower = float(full.max())

    # candidate periods: V-load range sums and their +d_W_a variants
    tri = np.arange(n_items) >= np.arange(n_items)[:, None]
    sums = np.cumsum(np.where(tri, v, 0.0), axis=1)
    with_w = sums + d_w[:, None]
    cands = np.concatenate((sums[tri], with_w[tri], [lower]))
    periods = np.unique(cands[cands >= lower])
    if periods.size == 0 or periods[0] != lower:
        periods = np.concatenate(([lower], periods))

    # memory terms per stage: (3W + g·ā) + buffers + ĝ, ĝ = a_end
    w3 = 3.0 * chain.weight_ranges(starts, ends)
    abar = chain.stored_activation_ranges(starts, ends)
    buf = np.where(starts > 1, 2.0 * chain.activation_values(starts - 1), 0.0)
    buf = buf + np.where(ends < chain.L, 2.0 * chain.activation_values(ends), 0.0)
    ghat = chain.activation_values(ends)
    cap = platform.memory * (1 + MEMORY_FIT_RTOL)

    v_l, d_w_l = v.tolist(), d_w.tolist()
    w3_l, abar_l, buf_l, ghat_l = (
        w3.tolist(), abar.tolist(), buf.tolist(), ghat.tolist()
    )

    def probe(T: float) -> tuple[bool, list[int]] | None:
        try:
            gs_items = assign_groups_zb(v_l, d_w_l, T)
        except ValueError:
            return None
        gs = gs_items[0::2]
        ok = all(
            (w3_l[i] + gs[i] * abar_l[i]) + buf_l[i] + ghat_l[i] <= cap
            for i in range(n_stages)
        )
        return ok, gs

    m = periods.size
    first = probe(float(periods[0]))
    k = stage_groups = None
    if first is not None and first[0]:
        k, stage_groups = 0, first[1]
    else:
        last = probe(float(periods[-1]))
        if last is None or not last[0]:
            return None  # memory is monotone in T: nothing larger helps
        k, stage_groups = m - 1, last[1]
        lo, hi = 0, m - 1  # periods[lo] infeasible, periods[hi] feasible
        while hi - lo > 1:
            mid = (lo + hi) // 2
            got = probe(float(periods[mid]))
            if got is not None and got[0]:
                hi, (k, stage_groups) = mid, (mid, got[1])
            else:
                lo = mid
        k = hi

    T = float(periods[k])
    gs_arr = np.asarray(stage_groups, dtype=np.int64)
    mem = (w3 + gs_arr * abar) + buf + ghat
    pattern = (
        build_pattern_zb(
            chain, platform, Allocation.contiguous(partitioning), T,
            split_fraction=split_fraction,
        )
        if build
        else None
    )
    return ZeroBubbleResult(
        period=T,
        pattern=pattern,
        groups={i: int(g) for i, g in enumerate(stage_groups)},
        memory={i: float(mem[i]) for i in range(n_stages)},
    )
