"""PipeDream-style contiguous partitioner (the paper's baseline, §5.1).

PipeDream's dynamic program balances a contiguous partitioning over at
most ``P`` GPUs, minimizing the bottleneck resource load.  Its memory
check is *optimistic*: a stage that is ``s``-th from the end of the
pipeline is assumed to store at most ``s`` activation copies, whereas the
optimal schedule may need up to ``2s − 1`` once communication boundaries
are counted (§4.1).  As in the paper we therefore report two numbers for
the baseline:

* the DP's own (optimistic) period — the dashed line of Fig. 6;
* the period of a *valid* schedule obtained by running 1F1B\\* on the
  returned partitioning — the solid line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import Chain
from ..core.memory import stage_memory
from ..core.partition import Partitioning
from ..core.platform import Platform
from .onef1b import OneF1BResult, min_feasible_period

__all__ = ["PipeDreamResult", "pipedream_partition", "pipedream"]

INF = float("inf")


@dataclass
class PipeDreamResult:
    """PipeDream baseline outcome.

    ``dp_period`` is the DP's optimistic estimate; ``period`` the valid
    1F1B\\* period of the same partitioning (``inf`` when the DP finds no
    memory-feasible partitioning at all).
    """

    partitioning: Partitioning | None
    dp_period: float
    schedule: OneF1BResult | None

    @property
    def period(self) -> float:
        return self.schedule.period if self.schedule is not None else INF

    @property
    def feasible(self) -> bool:
        return self.partitioning is not None


def pipedream_partition(
    chain: Chain, platform: Platform
) -> tuple[Partitioning | None, float]:
    """PipeDream's DP: contiguous partitioning minimizing the bottleneck
    load under the optimistic memory estimate.

    Returns ``(partitioning, dp_period)`` or ``(None, inf)``.

    DP over suffixes: ``best[i][s]`` is the smallest achievable bottleneck
    for layers ``i..L`` split into exactly ``s`` stages, where the first of
    those stages is the ``s``-th from the end and hence assumed to store
    ``s`` activation copies.
    """
    L = chain.L
    P = platform.n_procs
    M = platform.memory

    # best[s][i]: bottleneck for layers i..L in s stages (1-based i)
    best = np.full((P + 1, L + 2), INF)
    choice = np.full((P + 1, L + 2), -1, dtype=int)

    for i in range(1, L + 1):
        if stage_memory(chain, i, L, 1) <= M:
            best[1][i] = chain.U(i, L)
    for s in range(2, P + 1):
        for i in range(1, L + 1):
            value, arg = INF, -1
            for j in range(i, L):  # stage i..j, then j+1..L in s-1 stages
                rest = best[s - 1][j + 1]
                if rest == INF:
                    continue
                if stage_memory(chain, i, j, s) > M:
                    continue
                cand = max(
                    chain.U(i, j),
                    chain.comm_time(j, platform.bandwidth),
                    rest,
                )
                if cand < value:
                    value, arg = cand, j
            best[s][i] = value
            choice[s][i] = arg

    s_opt = int(np.argmin(best[1:, 1])) + 1
    if best[s_opt][1] == INF:
        return None, INF

    cuts = []
    i, s = 1, s_opt
    while s > 1:
        j = int(choice[s][i])
        cuts.append(j)
        i, s = j + 1, s - 1
    return Partitioning.from_cuts(L, cuts), float(best[s_opt][1])


def pipedream(
    chain: Chain, platform: Platform, *, schedule_family: str = "1f1b"
) -> PipeDreamResult:
    """Full baseline: PipeDream DP, then the family's contiguous
    construction (1F1B\\* by default) for a valid schedule."""
    partitioning, dp_period = pipedream_partition(chain, platform)
    if partitioning is None:
        return PipeDreamResult(None, INF, None)
    if schedule_family == "zero_bubble":
        from .zero_bubble import min_feasible_period_zb

        schedule = min_feasible_period_zb(chain, platform, partitioning)
    elif schedule_family == "1f1b":
        schedule = min_feasible_period(chain, platform, partitioning)
    else:
        raise ValueError(f"unknown schedule family {schedule_family!r}")
    return PipeDreamResult(partitioning, dp_period, schedule)
