"""Reference (naive) 1F1B\\* minimal-period search — golden oracle.

This module preserves the original pure-Python implementation of
``assign_groups`` and ``min_feasible_period`` exactly as shipped before
the NumPy kernel rewrite in :mod:`repro.algorithms.onef1b`.  It follows
the same pattern as :mod:`repro.algorithms.madpipe_dp_reference`: the
fast path must return **bit-identical** periods, group assignments and
per-processor memory, and the golden tests in
``tests/test_phase2_fastpath.py`` enforce that on randomized chains and
platforms.

Keep this file dumb and obviously correct; optimize only the main
module.
"""

from __future__ import annotations

from ..core.chain import Chain
from ..core.memory import stage_memory
from ..core.partition import Allocation, Partitioning
from ..core.platform import Platform
from .onef1b import (
    CANDIDATE_ATOL,
    GROUP_FIT_RTOL,
    MEMORY_FIT_RTOL,
    Item,
    OneF1BResult,
    build_pattern,
    extended_items,
)

__all__ = ["assign_groups_reference", "min_feasible_period_reference"]


def assign_groups_reference(items: list[Item], period: float) -> list[int]:
    """Group index (1 = last group, as in the paper) per item.

    Built iteratively from the last item; a group absorbs earlier items
    while its total load stays ≤ ``period``.  Any single item with load
    > ``period`` makes the period infeasible (ValueError).
    """
    groups = [0] * len(items)
    g = 1
    acc = 0.0
    for i in range(len(items) - 1, -1, -1):
        load = items[i].load
        if load > period * (1 + GROUP_FIT_RTOL):
            raise ValueError(
                f"item {items[i].kind}{items[i].index} load {load:.4g} "
                f"exceeds period {period:.4g}"
            )
        if acc + load > period * (1 + GROUP_FIT_RTOL):
            g += 1
            acc = 0.0
        acc += load
        groups[i] = g
    return groups


def _stage_memories(
    chain: Chain, allocation: Allocation, items: list[Item], groups: list[int]
) -> dict[int, float]:
    """Per-processor memory of the 1F1B\\* schedule: stage in group ``g``
    keeps ``g`` activation copies (paper §4.1)."""
    memory: dict[int, float] = {}
    for item, g in zip(items, groups):
        if item.kind != "stage":
            continue
        s = allocation.stages[item.index]
        p = allocation.procs[item.index]
        memory[p] = memory.get(p, 0.0) + stage_memory(chain, s.start, s.end, g)
    return memory


def min_feasible_period_reference(
    chain: Chain,
    platform: Platform,
    partitioning: Partitioning,
    *,
    build: bool = True,
) -> OneF1BResult | None:
    """Smallest period at which the 1F1B\\* schedule of ``partitioning``
    fits in memory on every GPU; ``None`` if no period works.

    Candidate periods are the group-structure breakpoints: sums of item
    loads over contiguous item ranges (grouping only changes there), plus
    the bottleneck lower bound.  Increasing T can only merge groups, so
    memory usage is non-increasing in T and the scan stops at the first
    feasible candidate.
    """
    allocation = Allocation.contiguous(partitioning)
    if partitioning.n_stages > platform.n_procs:
        raise ValueError("more stages than processors")
    items = extended_items(chain, platform, allocation)
    loads = [it.load for it in items]
    lower = max(loads)

    candidates = {lower}
    n = len(items)
    for a in range(n):
        acc = 0.0
        for b in range(a, n):
            acc += loads[b]
            if acc >= lower - CANDIDATE_ATOL:
                candidates.add(acc)
    for T in sorted(candidates):
        groups = assign_groups_reference(items, T)
        memory = _stage_memories(chain, allocation, items, groups)
        if all(m <= platform.memory * (1 + MEMORY_FIT_RTOL) for m in memory.values()):
            pattern = (
                build_pattern(chain, platform, allocation, T) if build else None
            )
            stage_groups = {
                it.index: g
                for it, g in zip(items, groups)
                if it.kind == "stage"
            }
            return OneF1BResult(
                period=T, pattern=pattern, groups=stage_groups, memory=memory
            )
    return None
