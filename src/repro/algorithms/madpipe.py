"""MadPipe — the complete two-phase algorithm (paper §4).

Phase 1 (:func:`repro.algorithms.madpipe_dp.algorithm1`) builds a
non-contiguous allocation with one special processor by binary-searching
the target period of the memory-aware dynamic program.

Phase 2 schedules the resulting stage partition exactly:

* contiguous allocations go through the optimal 1F1B\\* construction;
* non-contiguous allocations go through the periodic-pattern MILP
  (:mod:`repro.ilp`) with the paper's one-minute budget per probe.

Because the DP's special-processor memory is a deliberate
*under*-estimate (§4.2.1), the ILP sometimes needs a much larger period
than phase 1 promised.  MadPipe therefore also evaluates its own
contiguous restriction — MadPipe-DP with the special processor disabled,
which collapses the ``(t_P, m_P)`` state dimensions and is nearly free —
schedules it with 1F1B\\*, and returns whichever valid schedule is
faster.  Set ``contiguous_fallback=False`` for the strict
phase-1+ILP-only behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..core.chain import Chain
from ..core.partition import Allocation
from ..core.pattern import PeriodicPattern
from ..core.platform import Platform
from ..ilp.solver import ILPScheduleResult, schedule_allocation
from ..robust.certify import Certificate, certify_pattern
from .madpipe_dp import Algorithm1Result, Discretization, algorithm1
from .onef1b import min_feasible_period
from .zero_bubble import min_feasible_period_zb

__all__ = ["SCHEDULE_FAMILIES", "MadPipeResult", "madpipe"]

INF = float("inf")

#: Supported schedule families: classic monolithic-backward 1F1B and the
#: zero-bubble B–W split.  The family selects phase 2's contiguous
#: constructor and the MILP formulation; phase 1's partition search is
#: family-agnostic.
SCHEDULE_FAMILIES = ("1f1b", "zero_bubble")


@dataclass
class MadPipeResult:
    """Full MadPipe outcome.

    ``dp_period`` is phase 1's estimate (the dashed line of Fig. 6);
    ``period`` is the certified valid-schedule period (the solid line).
    ``ilp`` carries the phase-2 period search (probe trace and timings)
    whenever the phase-1 allocation went through the scheduling MILP.

    ``status`` classifies the outcome: ``ok`` (certified schedule, clean
    search), ``degraded`` (the schedule is valid, but the MILP exhausted
    its time budget somewhere — the period carries the certified 1F1B\\*
    fallback or an uncertified search result, and may be improvable with
    a larger ``ilp_time_limit`` — *or* the chosen pattern failed
    certification and was quarantined in favour of the 1F1B\\*
    fallback), ``solver_timeout`` (no schedule found *and* the failure
    was the solver budget, not proven infeasibility), ``infeasible``
    (certified: nothing fits), ``error`` (the chosen pattern failed
    certification and no fallback could be certified either — the
    quarantined pattern is withheld, never returned).

    ``certificate`` is the discrete-event certificate of the *returned*
    pattern (``None`` only with ``certify=False``); when a quarantine
    happened, ``certificate.quarantined`` carries the rejected
    pattern's violation report.
    """

    phase1: Algorithm1Result
    allocation: Allocation | None
    pattern: PeriodicPattern | None
    period: float = INF
    notes: list[str] = field(default_factory=list)
    ilp: ILPScheduleResult | None = None
    status: str = "ok"
    certificate: Certificate | None = None

    @property
    def dp_period(self) -> float:
        return self.phase1.period

    @property
    def feasible(self) -> bool:
        return self.pattern is not None


def madpipe(
    chain: Chain,
    platform: Platform,
    *,
    iterations: int = 10,
    grid: Discretization | None = None,
    ilp_time_limit: float = 60.0,
    allow_special: bool = True,
    contiguous_fallback: bool = True,
    memory_headroom: float = 0.0,
    certify: bool = True,
    schedule_family: str = "1f1b",
) -> MadPipeResult:
    """Run the complete MadPipe pipeline on one (chain, platform) instance.

    ``memory_headroom`` makes every planning layer (DP, MILP memory rows,
    1F1B\\*) fit its schedule into ``memory · (1 − headroom)`` per GPU;
    certification still measures margins against the full capacity.
    ``certify=True`` (the default) runs the returned pattern through the
    discrete-event certification gate: a pattern that fails is
    quarantined — with its violation report on
    ``result.certificate.quarantined`` — and replaced by the certified
    contiguous fallback, never silently returned.

    ``schedule_family`` selects the pattern family phase 2 constructs and
    certifies: ``"1f1b"`` (the paper's monolithic backward, default) or
    ``"zero_bubble"`` (split-backward F/B/W patterns — the contiguous
    builder and MILP formulation of
    :mod:`repro.algorithms.zero_bubble` / :mod:`repro.ilp`).
    """
    if schedule_family not in SCHEDULE_FAMILIES:
        raise ValueError(
            f"unknown schedule family {schedule_family!r}; "
            f"expected one of {SCHEDULE_FAMILIES}"
        )
    search = (
        min_feasible_period_zb
        if schedule_family == "zero_bubble"
        else min_feasible_period
    )
    with obs.span(
        "madpipe", n_procs=platform.n_procs, chain=chain.name, L=chain.L
    ) as run_span:
        with obs.span("madpipe.phase1"):
            phase1 = algorithm1(
                chain,
                platform,
                iterations=iterations,
                grid=grid,
                allow_special=allow_special,
                memory_headroom=memory_headroom,
            )
        result = MadPipeResult(phase1=phase1, allocation=None, pattern=None)

        if phase1.feasible:
            allocation = phase1.allocation.to_allocation(platform)
            if allocation.is_contiguous():
                # the contiguous construction (1F1B* / zero-bubble) is
                # optimal for contiguous allocations — no ILP needed
                with obs.span("madpipe.phase2", kind="onef1b"):
                    sched = search(
                        chain, platform, allocation.partitioning,
                        memory_headroom=memory_headroom,
                    )
                if sched is not None:
                    result.allocation = allocation
                    result.pattern = sched.pattern
                    result.period = sched.period
                    result.notes.append("phase-1 contiguous allocation via 1F1B*")
                else:
                    result.notes.append("1F1B* infeasible for phase-1 allocation")
            else:
                with obs.span("madpipe.phase2", kind="ilp"):
                    ilp = schedule_allocation(
                        chain, platform, allocation,
                        time_limit=ilp_time_limit,
                        memory_headroom=memory_headroom,
                        schedule_family=schedule_family,
                    )
                result.ilp = ilp
                if ilp.feasible:
                    result.allocation = allocation
                    result.pattern = ilp.pattern
                    result.period = ilp.period
                    result.notes.append("phase-1 non-contiguous allocation via ILP")
                else:
                    result.notes.append(
                        f"ILP could not schedule phase-1 allocation ({ilp.status})"
                    )
                    if (
                        ilp.status == "timeout"
                        and allocation.n_stages <= platform.n_procs
                    ):
                        # the MILP ran out of budget without proving anything;
                        # fall back to the certified 1F1B* schedule of the
                        # allocation's contiguous restriction instead of
                        # reporting infeasible
                        obs.inc("madpipe.ilp_fallbacks")
                        with obs.span("madpipe.phase2", kind="onef1b_fallback"):
                            sched = search(
                                chain, platform, allocation.partitioning,
                                memory_headroom=memory_headroom,
                            )
                        if sched is not None:
                            result.allocation = Allocation.contiguous(
                                allocation.partitioning
                            )
                            result.pattern = sched.pattern
                            result.period = sched.period
                            result.notes.append(
                                "ILP time budget exhausted; fell back to the "
                                "certified 1F1B* contiguous restriction"
                            )
        else:
            result.notes.append("phase 1 found no memory-feasible allocation")

        if contiguous_fallback and allow_special:
            # MadPipe's contiguous restriction (no special processor): the DP's
            # memory model is exact for 1F1B*, so this candidate's estimate is
            # reliable; keep it when it beats the ILP schedule.
            with obs.span("madpipe.contiguous_fallback"):
                contig = algorithm1(
                    chain,
                    platform,
                    iterations=iterations,
                    grid=grid,
                    allow_special=False,
                    memory_headroom=memory_headroom,
                )
                sched = None
                if contig.feasible:
                    alloc = contig.allocation.to_allocation(platform)
                    sched = search(
                        chain, platform, alloc.partitioning,
                        memory_headroom=memory_headroom,
                    )
            if sched is not None and sched.period < result.period:
                result.allocation = alloc
                result.pattern = sched.pattern
                result.period = sched.period
                result.notes.append("contiguous memory-aware candidate won")

        # classify the outcome: any phase-2 budget hit taints the result
        ilp_budget_hit = result.ilp is not None and result.ilp.status in (
            "timeout",
            "degraded",
        )
        if result.pattern is None:
            result.status = (
                "solver_timeout"
                if result.ilp is not None and result.ilp.status == "timeout"
                else "infeasible"
            )
        elif ilp_budget_hit:
            result.status = "degraded"
        else:
            result.status = "ok"

        # mandatory certification gate: the chosen pattern is executed
        # through the discrete-event verifier before being returned; a
        # failure quarantines it in favour of the certified 1F1B*
        # contiguous fallback (never a silent invalid plan)
        if certify:
            _certification_gate(
                chain, platform, result, memory_headroom, iterations, grid,
                search=search,
            )

        run_span.set(
            status=result.status,
            period=result.period if result.period != INF else None,
        )
    obs.inc("madpipe.runs")
    obs.inc(f"madpipe.status.{result.status}")
    return result


def _certification_gate(
    chain: Chain,
    platform: Platform,
    result: MadPipeResult,
    memory_headroom: float,
    iterations: int,
    grid: Discretization | None,
    *,
    search=min_feasible_period,
) -> None:
    """Certify ``result.pattern`` in place; quarantine + degrade on failure.

    Fallback partitionings are tried in order: the quarantined
    allocation's own contiguous restriction (only schedulable when it
    has at most one stage per GPU), then a fresh contiguous
    MadPipe-DP plan.  Each fallback pattern must itself pass
    certification before it replaces the quarantined one.  ``search`` is
    the family's contiguous period search (1F1B\\* by default), so
    fallbacks stay within the requested schedule family.
    """
    cert = certify_pattern(
        chain, platform, result.pattern, source=f"madpipe:{chain.name}"
    )
    if cert.ok:
        result.certificate = cert
        return

    obs.inc("certify.quarantined")
    result.notes.append(
        f"certification failed for the chosen pattern; quarantined "
        f"({cert.violations[0] if cert.violations else 'no violation detail'})"
    )

    def _own_restriction():
        if (
            result.allocation is not None
            and result.allocation.n_stages <= platform.n_procs
        ):
            return result.allocation.partitioning
        return None

    def _contiguous_dp():
        with obs.span("madpipe.contiguous_fallback", kind="quarantine"):
            contig = algorithm1(
                chain,
                platform,
                iterations=iterations,
                grid=grid,
                allow_special=False,
                memory_headroom=memory_headroom,
            )
        if contig.feasible:
            return contig.allocation.to_allocation(platform).partitioning
        return None

    tried = []
    for provider in (_own_restriction, _contiguous_dp):
        part = provider()
        if part is None or part in tried:
            continue
        tried.append(part)
        with obs.span("madpipe.phase2", kind="onef1b_quarantine_fallback"):
            sched = search(
                chain, platform, part, memory_headroom=memory_headroom
            )
        if sched is None:
            continue
        fb_cert = certify_pattern(
            chain, platform, sched.pattern,
            source=f"madpipe.fallback:{chain.name}",
        )
        if not fb_cert.ok:
            result.notes.append("1F1B* fallback failed certification too")
            continue
        obs.inc("certify.fallbacks")
        fb_cert.mode = "fallback"
        fb_cert.quarantined = cert
        result.allocation = Allocation.contiguous(part)
        result.pattern = sched.pattern
        result.period = sched.period
        result.status = "degraded"
        result.certificate = fb_cert
        result.notes.append("replaced by the certified 1F1B* contiguous fallback")
        return
    # nothing certifiable: withhold the quarantined pattern entirely
    result.allocation = None
    result.pattern = None
    result.period = INF
    result.status = "error"
    result.certificate = cert
