"""The asyncio planning service: coalescing, caching, bounded solving.

One :class:`PlanService` owns a two-tier :class:`~repro.serve.store.
PlanCache`, a single-flight table of in-progress solves, and a bounded
``ProcessPoolExecutor``.  A request travels::

    handle(request)
      └─ fingerprint (repro.warmstart.request_fingerprint)
      └─ cache?   → serve ("memory" / "store")          serve.hits
      └─ inflight?→ await the one running solve         serve.coalesced
      └─ solve    → worker pool, deadline + retries     serve.solves
                    (warm-start context active)

Every path returns the plan through the same deterministic
:meth:`repro.api.PlanResult.to_json` payload, so cached, coalesced and
fresh responses are bit-identical to a direct cold
:func:`repro.api.plan` call (``benchmarks/bench_serve.py`` asserts this
before reporting any number).

Resilience reuses the sweep harness machinery: the worker enforces the
per-request deadline with :func:`repro.experiments.harness._deadline`
(SIGALRM), crashes and timeouts retry with exponential backoff + jitter,
and a hard worker death (``BrokenProcessPool``) rebuilds the pool.  The
fault-injection sites ``serve_solve`` (service side, before a solve is
dispatched) and ``serve_worker`` (inside the worker) make kill-and-
restart scenarios deterministic in tests.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .. import obs, warmstart
from ..core.chain import Chain
from ..core.platform import Platform
from ..experiments.harness import _deadline
from ..testing import faults
from ..warmstart import request_fingerprint
from .store import PlanCache, PlanStore

__all__ = ["PlanRequest", "PlanService", "ServeReply"]


@dataclass(frozen=True)
class PlanRequest:
    """One planning query: (chain, platform, algorithm, options)."""

    chain: Chain
    platform: Platform
    algorithm: str = "madpipe"
    opts: Mapping[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Canonical request identity (cached after the first call)."""
        fp = self.__dict__.get("_fingerprint")
        if fp is None:
            fp = request_fingerprint(
                self.chain, self.platform, self.algorithm, self.opts
            )
            object.__setattr__(self, "_fingerprint", fp)
        return fp


@dataclass
class ServeReply:
    """One answered request: the plan plus how it was served.

    ``served_from`` is ``"solve"`` (fresh), ``"memory"`` / ``"store"``
    (cache tier) or ``"coalesced"`` (shared another request's solve).
    """

    result: Any  # repro.api.PlanResult
    fingerprint: str
    served_from: str
    latency_s: float

    @property
    def cached(self) -> bool:
        return self.served_from in ("memory", "store")


def _solve_in_worker(payload: tuple) -> tuple[dict, dict]:
    """Worker entry point (module-level picklable): rebuild the request,
    solve it under the warm-start context and the per-request deadline,
    and ship back ``(plan payload, counter snapshot)``."""
    chain_dict, plat, algorithm, opts, timeout, warm, fingerprint = payload
    from ..api import plan  # deferred: repro.api imports this package

    chain = Chain.from_dict(chain_dict)
    platform = Platform(*plat)
    faults.fire("serve_worker", key=fingerprint)
    registry = obs.MetricsRegistry()
    spec = (chain.name, platform.n_procs, platform.memory, platform.bandwidth,
            algorithm)
    with warmstart.activate(warm), obs.use_metrics(registry):
        with _deadline(timeout, spec):
            result = plan(chain, platform, algorithm=algorithm, **dict(opts))
    return result.to_json(), registry.snapshot()


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class PlanService:
    """A long-lived planning service over :func:`repro.api.plan`.

    Construct via :func:`repro.api.serve` (the pinned facade) or
    directly; drive with :meth:`handle` / :meth:`submit` from asyncio
    code, and :meth:`close` when done.  All coordination state lives on
    the event loop — :meth:`handle` must always be awaited from the same
    running loop (the normal asyncio discipline).

    ``max_workers`` bounds the solver pool: ``N >= 1`` dispatches cache
    misses to ``N`` worker processes (each keeps its own per-process
    warm-start database, exactly like sweep workers); ``0`` solves on
    the event loop's default thread pool — no pickling, but the SIGALRM
    deadline degrades to a no-op off the main thread.

    Observability: ``serve.*`` counters accumulate on :attr:`registry`
    (``requests``, ``hits`` + ``hits_memory``/``hits_store``,
    ``coalesced``, ``solves``, ``retries``, ``pool_restarts``,
    ``errors``) alongside the merged solver counters from workers; a
    ``serve.request`` span is recorded per request when a trace is
    installed in the calling context.  :meth:`stats` adds queue depth
    and p50/p95/max latency over a sliding window.
    """

    def __init__(
        self,
        *,
        store: "PlanStore | str | Path | None" = None,
        memory_entries: int = 1024,
        max_workers: int = 1,
        instance_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.5,
        warm_start: bool = True,
        latency_window: int = 4096,
    ):
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.cache = PlanCache(memory_entries, store)
        self.max_workers = max_workers
        self.instance_timeout = instance_timeout
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.warm_start = warm_start
        self.registry = obs.MetricsRegistry()
        self._inflight: dict[str, asyncio.Future] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._active_solves = 0
        self._peak_active = 0
        self._closed = False

    # -- request construction ---------------------------------------------

    def request(
        self,
        chain: Chain,
        platform: Platform,
        *,
        algorithm: str = "madpipe",
        **opts: Any,
    ) -> PlanRequest:
        """Build a :class:`PlanRequest` with :func:`repro.api.plan`'s
        keyword conventions.

        ``schedule_family="1f1b"`` (the default family) is stripped from
        the fingerprinted options so that pre-family stores keep serving:
        a default-family request is the *same* request it was before
        schedule families existed.  Non-default families stay in the
        options, so a cached 1F1B plan is never served for a zero-bubble
        query (and vice versa).
        """
        opts = dict(opts)
        if opts.get("schedule_family") == "1f1b":
            del opts["schedule_family"]
        return PlanRequest(chain, platform, algorithm, opts)

    # -- serving ------------------------------------------------------------

    async def submit(
        self,
        chain: "Chain | PlanRequest",
        platform: Platform | None = None,
        *,
        algorithm: str = "madpipe",
        **opts: Any,
    ):
        """Answer one request and return its :class:`repro.api.PlanResult`.

        Accepts either a ready :class:`PlanRequest` or the
        ``(chain, platform, algorithm=…, **opts)`` spelling of
        :func:`repro.api.plan`.
        """
        if isinstance(chain, PlanRequest):
            request = chain
        else:
            if platform is None:
                raise TypeError("submit(chain, platform, ...) needs a platform")
            request = self.request(chain, platform, algorithm=algorithm, **opts)
        reply = await self.handle(request)
        return reply.result

    async def handle(self, request: PlanRequest) -> ServeReply:
        """Answer one request, reporting how it was served."""
        if self._closed:
            raise RuntimeError("PlanService is closed")
        from ..api import PlanResult  # deferred: api imports this package

        t0 = time.perf_counter()
        fingerprint = request.fingerprint()
        self.registry.inc("serve.requests")
        with obs.span(
            "serve.request",
            algorithm=request.algorithm,
            fingerprint=fingerprint[:12],
        ) as sp:
            served_from, payload = await self._resolve(request, fingerprint)
            sp.set(served_from=served_from)
        latency = time.perf_counter() - t0
        self._latencies.append(latency)
        return ServeReply(
            result=PlanResult.from_json(payload),
            fingerprint=fingerprint,
            served_from=served_from,
            latency_s=latency,
        )

    async def _resolve(
        self, request: PlanRequest, fingerprint: str
    ) -> tuple[str, dict]:
        hit = self.cache.get(fingerprint)
        if hit is not None:
            tier, payload = hit
            self.registry.inc("serve.hits")
            self.registry.inc(f"serve.hits_{tier}")
            return tier, payload
        shared = self._inflight.get(fingerprint)
        if shared is not None:
            # single flight: identical concurrent queries share one solve
            self.registry.inc("serve.coalesced")
            return "coalesced", await asyncio.shield(shared)
        loop = asyncio.get_running_loop()
        flight: asyncio.Future = loop.create_future()
        self._inflight[fingerprint] = flight
        try:
            payload = await self._solve(request, fingerprint)
        except BaseException as exc:
            if not flight.done():
                flight.set_exception(exc)
                flight.exception()  # mark retrieved: waiters re-raise their own copy
            raise
        else:
            if not flight.done():
                flight.set_result(payload)
            self.cache.put(fingerprint, payload)
            self.registry.inc("serve.solves")
            return "solve", payload
        finally:
            self._inflight.pop(fingerprint, None)

    async def _solve(self, request: PlanRequest, fingerprint: str) -> dict:
        faults.fire("serve_solve", key=fingerprint)
        payload = (
            request.chain.to_dict(),
            (
                request.platform.n_procs,
                request.platform.memory,
                request.platform.bandwidth,
            ),
            request.algorithm,
            dict(request.opts),
            self.instance_timeout,
            self.warm_start,
            fingerprint,
        )
        loop = asyncio.get_running_loop()
        last: BaseException | None = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.registry.inc("serve.retries")
                delay = min(self.retry_backoff_s * 2 ** (attempt - 1), 30.0)
                await asyncio.sleep(delay * (1.0 + 0.25 * random.random()))
            self._active_solves += 1
            self._peak_active = max(self._peak_active, self._active_solves)
            try:
                plan_json, counts = await loop.run_in_executor(
                    self._executor(), _solve_in_worker, payload
                )
            except (KeyboardInterrupt, SystemExit, asyncio.CancelledError):
                raise
            except BrokenProcessPool as exc:
                # a worker died hard (SIGKILL/os._exit): rebuild the pool
                # and charge one attempt, like the sweep harness
                last = exc
                self.registry.inc("serve.pool_restarts")
                self._shutdown_pool()
            except Exception as exc:
                last = exc
            else:
                self.registry.merge(counts)
                return plan_json
            finally:
                self._active_solves -= 1
        self.registry.inc("serve.errors")
        assert last is not None
        raise last

    # -- worker pool ---------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor | None:
        if self.max_workers == 0:
            return None  # event loop default thread pool (inline solving)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- lifecycle / introspection -------------------------------------------

    def stats(self) -> dict:
        """Counters, queue depth and latency percentiles (JSON-ready)."""
        lat = sorted(self._latencies)
        return {
            "counters": self.registry.snapshot(),
            "cached_plans": len(self.cache),
            "inflight": len(self._inflight),
            "queue_peak": self._peak_active,
            "latency_ms": {
                "count": len(lat),
                "p50": _percentile(lat, 0.50) * 1e3,
                "p95": _percentile(lat, 0.95) * 1e3,
                "max": (lat[-1] if lat else 0.0) * 1e3,
            },
        }

    async def close(self) -> None:
        """Flush the persistent store and shut the worker pool down.

        Idempotent; afterwards :meth:`handle` raises.  In-flight solves
        are *not* awaited — callers still holding their coroutines keep
        them — but the store flush persists everything already solved.
        """
        self._closed = True
        self.cache.flush()
        self._shutdown_pool()

    async def __aenter__(self) -> "PlanService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
