"""The asyncio planning service: coalescing, caching, bounded solving.

One :class:`PlanService` owns a two-tier :class:`~repro.serve.store.
PlanCache`, a single-flight table of in-progress solves, and a bounded
``ProcessPoolExecutor``.  A request travels::

    handle(request)
      └─ fingerprint (repro.warmstart.request_fingerprint)
      └─ cache?   → serve ("memory" / "store")          serve.hits
      └─ inflight?→ await the one running solve         serve.coalesced
      └─ admit    → bounded queue or shed               serve.shed/queued
      └─ solve    → worker pool, deadline + retries     serve.solves
                    (warm-start context active)
         └─ breaker open / budget gone / solve dead
            → certified degraded fallback               serve.degraded

Every non-degraded path returns the plan through the same deterministic
:meth:`repro.api.PlanResult.to_json` payload, so cached, coalesced and
fresh responses are bit-identical to a direct cold
:func:`repro.api.plan` call (``benchmarks/bench_serve.py`` asserts this
before reporting any number).  Degraded responses are explicitly marked
(``served_from="degraded"``, plan ``status="degraded"``), certified,
and never written to the primary cache tiers.

Resilience reuses the sweep harness machinery: the worker enforces the
per-request deadline with :func:`repro.experiments.harness._deadline`
(SIGALRM on the main thread, an async-exception watchdog elsewhere),
crashes and timeouts retry with exponential backoff + seeded jitter,
and a hard worker death (``BrokenProcessPool``) rebuilds the pool — at
most ``max_pool_restarts`` consecutive times before the service answers
with :class:`~repro.serve.resilience.PoolExhaustedError` instead of
storming.  Overload behaviour (admission control, circuit breakers,
degraded-mode planning) is configured with a
:class:`~repro.serve.resilience.ResilienceConfig` and is off by
default.  The fault-injection sites ``serve_solve`` (service side,
keyed ``algorithm:family:fingerprint``) and ``serve_worker`` (inside
the worker, keyed by fingerprint) make kill-and-restart scenarios
deterministic in tests; ``repro.testing.ChaosSchedule`` composes them
into reproducible soak scenarios.
"""

from __future__ import annotations

import asyncio
import math
import os
import random
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from .. import obs, warmstart
from ..core.chain import Chain
from ..core.platform import Platform
from ..experiments.harness import _deadline
from ..testing import faults
from ..warmstart import LRU, request_fingerprint
from .resilience import (
    AdmissionQueue,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    PoolExhaustedError,
    ResilienceConfig,
    priority_rank,
    solve_degraded,
)
from .store import PlanCache, PlanStore

__all__ = ["PlanRequest", "PlanService", "ServeReply"]


@dataclass(frozen=True)
class PlanRequest:
    """One planning query: (chain, platform, algorithm, options).

    ``priority`` (class name from :data:`~repro.serve.resilience.
    PRIORITIES` or an int rank, lower = more important) and
    ``deadline_s`` (per-request wall-clock budget, overriding the
    service's ``deadline_budget_s``) steer admission and degradation
    only — they are *not* part of the request fingerprint, so the same
    plan is shared across priorities.
    """

    chain: Chain
    platform: Platform
    algorithm: str = "madpipe"
    opts: Mapping[str, Any] = field(default_factory=dict)
    priority: "str | int" = "interactive"
    deadline_s: float | None = None

    def fingerprint(self) -> str:
        """Canonical request identity (cached after the first call)."""
        fp = self.__dict__.get("_fingerprint")
        if fp is None:
            fp = request_fingerprint(
                self.chain, self.platform, self.algorithm, self.opts
            )
            object.__setattr__(self, "_fingerprint", fp)
        return fp


@dataclass
class ServeReply:
    """One answered request: the plan plus how it was served.

    ``served_from`` is ``"solve"`` (fresh), ``"memory"`` / ``"store"``
    (cache tier), ``"coalesced"`` (shared another request's solve) or
    ``"degraded"`` (the certified contiguous fallback answered because
    the full solve was short-circuited or failed).
    """

    result: Any  # repro.api.PlanResult
    fingerprint: str
    served_from: str
    latency_s: float

    @property
    def cached(self) -> bool:
        return self.served_from in ("memory", "store")

    @property
    def degraded(self) -> bool:
        return self.served_from == "degraded"


def _solve_in_worker(payload: tuple) -> tuple[dict, dict]:
    """Worker entry point (module-level picklable): rebuild the request,
    solve it under the warm-start context and the per-request deadline,
    and ship back ``(plan payload, counter snapshot)``."""
    (chain_dict, plat, algorithm, opts, timeout, warm, fingerprint,
     faults_env) = payload
    from ..api import plan  # deferred: repro.api imports this package

    # long-lived pool workers were spawned with the fault plan of *that*
    # moment; sync to the service's current plan so a chaos phase
    # installed mid-run reaches them deterministically (counter files in
    # the shared state dir keep cross-process counts exact)
    if faults_env:
        os.environ[faults.ENV_VAR] = faults_env
    else:
        os.environ.pop(faults.ENV_VAR, None)
    chain = Chain.from_dict(chain_dict)
    platform = Platform(*plat)
    registry = obs.MetricsRegistry()
    spec = (chain.name, platform.n_procs, platform.memory, platform.bandwidth,
            algorithm)
    with warmstart.activate(warm), obs.use_metrics(registry):
        with _deadline(timeout, spec):
            # the fault fires inside the deadline, so a `sleep` fault
            # models a hung solve that the deadline must interrupt
            faults.fire("serve_worker", key=fingerprint)
            result = plan(chain, platform, algorithm=algorithm, **dict(opts))
    return result.to_json(), registry.snapshot()


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class PlanService:
    """A long-lived planning service over :func:`repro.api.plan`.

    Construct via :func:`repro.api.serve` (the pinned facade) or
    directly; drive with :meth:`handle` / :meth:`submit` from asyncio
    code, and :meth:`close` when done.  All coordination state lives on
    the event loop — :meth:`handle` must always be awaited from the same
    running loop (the normal asyncio discipline).

    ``max_workers`` bounds the solver pool: ``N >= 1`` dispatches cache
    misses to ``N`` worker processes (each keeps its own per-process
    warm-start database, exactly like sweep workers); ``0`` solves on
    the event loop's default thread pool — no pickling, with a watchdog
    thread standing in for the SIGALRM deadline.

    ``seed`` feeds the one :class:`random.Random` behind retry jitter
    and breaker probe scheduling, so fault-injected replays are
    bit-reproducible; ``clock`` (monotonic seconds) is injectable for
    the same reason.  ``resilience`` configures admission control,
    circuit breakers and degraded-mode planning (all off by default,
    see :class:`~repro.serve.resilience.ResilienceConfig`).

    Observability: ``serve.*`` counters accumulate on :attr:`registry`
    (``requests``, ``hits`` + ``hits_memory``/``hits_store``,
    ``coalesced``, ``solves``, ``retries``, ``pool_restarts``,
    ``errors``, and under resilience ``shed``/``queued``/``queue_hwm``,
    ``breaker_trips``/``breaker_probes``/``breaker_closes``/
    ``breaker_short_circuits``, ``deadline_exhausted``, ``degraded`` +
    ``degraded_solves``/``degraded_hits``, ``pool_exhausted``)
    alongside the merged solver counters from workers; a
    ``serve.request`` span is recorded per request when a trace is
    installed in the calling context.  :meth:`stats` adds queue depth
    and p50/p95/max latency over a sliding window — queue wait happens
    inside :meth:`handle`'s measurement, so percentiles include it.
    """

    def __init__(
        self,
        *,
        store: "PlanStore | str | Path | None" = None,
        memory_entries: int = 1024,
        max_workers: int = 1,
        instance_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        max_pool_restarts: int = 8,
        warm_start: bool = True,
        latency_window: int = 4096,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        resilience: ResilienceConfig | None = None,
    ):
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_cap_s <= 0:
            raise ValueError("backoff_cap_s must be > 0")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")
        self.cache = PlanCache(memory_entries, store)
        self.max_workers = max_workers
        self.instance_timeout = instance_timeout
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.max_pool_restarts = max_pool_restarts
        self.warm_start = warm_start
        self.registry = obs.MetricsRegistry()
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self._rng = random.Random(seed)
        self._clock = clock
        self._admission: AdmissionQueue | None = None
        if self.resilience.admission_enabled:
            self._admission = AdmissionQueue(
                self.resilience.max_concurrency,
                self.resilience.max_pending,
                retry_after_s=self.resilience.retry_after_s,
                registry=self.registry,
            )
        self._breaker: CircuitBreaker | None = None
        if self.resilience.breaker_enabled:
            self._breaker = CircuitBreaker(
                self.resilience.breaker_threshold,
                self.resilience.breaker_cooldown_s,
                rng=self._rng,
                clock=clock,
                registry=self.registry,
            )
        # degraded answers live in their own memory-tier LRU, never the
        # primary cache: a recovered service re-solves to full quality
        self._degraded: LRU = LRU(memory_entries)
        self._inflight: dict[str, asyncio.Future] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_failures = 0  # consecutive BrokenProcessPool deaths
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._active_solves = 0
        self._peak_active = 0
        self._closed = False

    # -- request construction ---------------------------------------------

    def request(
        self,
        chain: Chain,
        platform: Platform,
        *,
        algorithm: str = "madpipe",
        priority: "str | int" = "interactive",
        deadline_s: float | None = None,
        **opts: Any,
    ) -> PlanRequest:
        """Build a :class:`PlanRequest` with :func:`repro.api.plan`'s
        keyword conventions.

        ``schedule_family="1f1b"`` (the default family) is stripped from
        the fingerprinted options so that pre-family stores keep serving:
        a default-family request is the *same* request it was before
        schedule families existed.  Non-default families stay in the
        options, so a cached 1F1B plan is never served for a zero-bubble
        query (and vice versa).
        """
        priority_rank(priority)  # validate eagerly, before the queue sees it
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        opts = dict(opts)
        if opts.get("schedule_family") == "1f1b":
            del opts["schedule_family"]
        return PlanRequest(chain, platform, algorithm, opts,
                           priority=priority, deadline_s=deadline_s)

    # -- serving ------------------------------------------------------------

    async def submit(
        self,
        chain: "Chain | PlanRequest",
        platform: Platform | None = None,
        *,
        algorithm: str = "madpipe",
        priority: "str | int" = "interactive",
        deadline_s: float | None = None,
        **opts: Any,
    ):
        """Answer one request and return its :class:`repro.api.PlanResult`.

        Accepts either a ready :class:`PlanRequest` or the
        ``(chain, platform, algorithm=…, **opts)`` spelling of
        :func:`repro.api.plan`.
        """
        if isinstance(chain, PlanRequest):
            request = chain
        else:
            if platform is None:
                raise TypeError("submit(chain, platform, ...) needs a platform")
            request = self.request(chain, platform, algorithm=algorithm,
                                   priority=priority, deadline_s=deadline_s,
                                   **opts)
        reply = await self.handle(request)
        return reply.result

    async def handle(self, request: PlanRequest) -> ServeReply:
        """Answer one request, reporting how it was served."""
        if self._closed:
            raise RuntimeError("PlanService is closed")
        from ..api import PlanResult  # deferred: api imports this package

        t0 = time.perf_counter()
        t0c = self._clock()  # deadline budgets run on the injectable clock
        fingerprint = request.fingerprint()
        self.registry.inc("serve.requests")
        with obs.span(
            "serve.request",
            algorithm=request.algorithm,
            fingerprint=fingerprint[:12],
        ) as sp:
            served_from, payload = await self._resolve(request, fingerprint, t0c)
            sp.set(served_from=served_from)
        latency = time.perf_counter() - t0
        self._latencies.append(latency)
        return ServeReply(
            result=PlanResult.from_json(payload),
            fingerprint=fingerprint,
            served_from=served_from,
            latency_s=latency,
        )

    async def _resolve(
        self, request: PlanRequest, fingerprint: str, t0c: float
    ) -> tuple[str, dict]:
        hit = self.cache.get(fingerprint)
        if hit is not None:
            tier, payload = hit
            self.registry.inc("serve.hits")
            self.registry.inc(f"serve.hits_{tier}")
            return tier, payload
        shared = self._inflight.get(fingerprint)
        if shared is not None:
            # single flight: identical concurrent queries share one solve
            self.registry.inc("serve.coalesced")
            kind, payload = await asyncio.shield(shared)
            if kind == "degraded":
                self.registry.inc("serve.degraded")
                return "degraded", payload
            return "coalesced", payload
        loop = asyncio.get_running_loop()
        flight: asyncio.Future = loop.create_future()
        self._inflight[fingerprint] = flight
        try:
            kind, payload = await self._admit_and_solve(request, fingerprint, t0c)
        except BaseException as exc:
            if not flight.done():
                flight.set_exception(exc)
                flight.exception()  # mark retrieved: waiters re-raise their own copy
            raise
        else:
            if not flight.done():
                flight.set_result((kind, payload))
            if kind == "degraded":
                self._degraded.put(fingerprint, payload)
                self.registry.inc("serve.degraded")
            else:
                self.cache.put(fingerprint, payload)
                self.registry.inc("serve.solves")
            return kind, payload
        finally:
            self._inflight.pop(fingerprint, None)

    async def _admit_and_solve(
        self, request: PlanRequest, fingerprint: str, t0c: float
    ) -> tuple[str, dict]:
        """Hold an admission slot (when enabled) around the guarded solve."""
        if self._admission is None:
            return await self._solve_guarded(request, fingerprint, t0c)
        await self._admission.acquire(priority_rank(request.priority))
        try:
            return await self._solve_guarded(request, fingerprint, t0c)
        finally:
            self._admission.release()

    def _breaker_key(self, request: PlanRequest) -> tuple[str, str]:
        family = request.opts.get("schedule_family", "1f1b")
        return (request.algorithm, family)

    async def _solve_guarded(
        self, request: PlanRequest, fingerprint: str, t0c: float
    ) -> tuple[str, dict]:
        """One guarded solve: budget check → breaker gate → solve,
        degrading (or re-raising) on short-circuit or terminal failure."""
        cfg = self.resilience
        budget = request.deadline_s if request.deadline_s is not None \
            else cfg.deadline_budget_s
        deadline_at = None if budget is None else t0c + budget
        if deadline_at is not None and self._clock() >= deadline_at:
            self.registry.inc("serve.deadline_exhausted")
            return await self._degrade(request, fingerprint, DeadlineExceededError(
                f"deadline budget {budget:g}s exhausted before the solve "
                f"could start (request {fingerprint[:12]})"
            ))
        key = self._breaker_key(request)
        if self._breaker is not None and self._breaker.allow(key) == "open":
            return await self._degrade(request, fingerprint, CircuitOpenError(
                f"circuit open for {key[0]}:{key[1]} "
                f"(request {fingerprint[:12]})"
            ))
        try:
            payload = await self._solve(request, fingerprint, deadline_at)
        except (KeyboardInterrupt, SystemExit, asyncio.CancelledError):
            raise
        except Exception as exc:
            if self._breaker is not None:
                self._breaker.record_failure(key)
            return await self._degrade(request, fingerprint, exc)
        else:
            if self._breaker is not None:
                self._breaker.record_success(key)
            return "solve", payload

    async def _degrade(
        self, request: PlanRequest, fingerprint: str, cause: BaseException
    ) -> tuple[str, dict]:
        """Answer with the certified contiguous fallback plan — or, with
        degraded-mode planning disabled, surface ``cause`` unchanged."""
        cfg = self.resilience
        if not cfg.degraded_fallback:
            raise cause
        hit = self._degraded.hit(fingerprint)
        if hit is not None:
            self.registry.inc("serve.degraded_hits")
            return "degraded", hit
        payload = (
            request.chain.to_dict(),
            (
                request.platform.n_procs,
                request.platform.memory,
                request.platform.bandwidth,
            ),
            request.algorithm,
            dict(request.opts),
            cfg.degraded_timeout_s,
            self.warm_start,
            fingerprint,
        )
        loop = asyncio.get_running_loop()
        try:
            # always in-process (thread pool): the fallback solve is the
            # cheap contiguous restriction, and the worker pool may be
            # exactly what is broken right now
            plan_json, counts = await loop.run_in_executor(
                None, solve_degraded, payload
            )
        except (KeyboardInterrupt, SystemExit, asyncio.CancelledError):
            raise
        except Exception as exc:
            self.registry.inc("serve.errors")
            raise cause from exc
        self.registry.merge(counts)
        self.registry.inc("serve.degraded_solves")
        return "degraded", plan_json

    async def _solve(
        self,
        request: PlanRequest,
        fingerprint: str,
        deadline_at: float | None = None,
    ) -> dict:
        key = self._breaker_key(request)
        faults.fire("serve_solve", key=f"{key[0]}:{key[1]}:{fingerprint}")
        chain_dict = request.chain.to_dict()
        plat = (
            request.platform.n_procs,
            request.platform.memory,
            request.platform.bandwidth,
        )
        loop = asyncio.get_running_loop()
        last: BaseException | None = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.registry.inc("serve.retries")
                delay = min(
                    self.retry_backoff_s * 2 ** (attempt - 1), self.backoff_cap_s
                )
                await asyncio.sleep(delay * (1.0 + 0.25 * self._rng.random()))
            timeout = self.instance_timeout
            if deadline_at is not None:
                remaining = deadline_at - self._clock()
                if remaining <= 0:
                    last = DeadlineExceededError(
                        f"deadline budget exhausted after {attempt} attempt(s) "
                        f"(request {fingerprint[:12]})"
                    )
                    break
                timeout = remaining if timeout is None else min(timeout, remaining)
            payload = (chain_dict, plat, request.algorithm, dict(request.opts),
                       timeout, self.warm_start, fingerprint,
                       os.environ.get(faults.ENV_VAR))
            self._active_solves += 1
            self._peak_active = max(self._peak_active, self._active_solves)
            try:
                plan_json, counts = await loop.run_in_executor(
                    self._executor(), _solve_in_worker, payload
                )
            except (KeyboardInterrupt, SystemExit, asyncio.CancelledError):
                raise
            except BrokenProcessPool as exc:
                # a worker died hard (SIGKILL/os._exit): rebuild the pool
                # and charge one attempt, like the sweep harness — but cap
                # consecutive rebuilds so a flapping pool cannot storm
                last = exc
                self.registry.inc("serve.pool_restarts")
                self._pool_failures += 1
                self._shutdown_pool()
                if self._pool_failures > self.max_pool_restarts:
                    self.registry.inc("serve.pool_exhausted")
                    last = PoolExhaustedError(
                        f"worker pool died {self._pool_failures} consecutive "
                        f"times (max_pool_restarts={self.max_pool_restarts})"
                    )
                    break
            except Exception as exc:
                last = exc
            else:
                self._pool_failures = 0
                self.registry.merge(counts)
                return plan_json
            finally:
                self._active_solves -= 1
        self.registry.inc("serve.errors")
        assert last is not None
        raise last

    # -- worker pool ---------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor | None:
        if self.max_workers == 0:
            return None  # event loop default thread pool (inline solving)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- lifecycle / introspection -------------------------------------------

    def stats(self) -> dict:
        """Counters, queue depths and latency percentiles (JSON-ready)."""
        lat = sorted(self._latencies)
        return {
            "counters": self.registry.snapshot(),
            "cached_plans": len(self.cache),
            "degraded_plans": len(self._degraded),
            "inflight": len(self._inflight),
            "queue_depth": self._admission.depth if self._admission else 0,
            "queue_peak": self._peak_active,
            "breakers": self._breaker.snapshot() if self._breaker else {},
            "latency_ms": {
                "count": len(lat),
                "p50": _percentile(lat, 0.50) * 1e3,
                "p95": _percentile(lat, 0.95) * 1e3,
                "max": (lat[-1] if lat else 0.0) * 1e3,
            },
        }

    async def close(self) -> None:
        """Flush the persistent store and shut the worker pool down.

        Idempotent; afterwards :meth:`handle` raises.  In-flight solves
        are *not* awaited — callers still holding their coroutines keep
        them — but the store flush persists everything already solved.
        """
        self._closed = True
        self.cache.flush()
        self._shutdown_pool()

    async def __aenter__(self) -> "PlanService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
