"""Overload safety for the plan service: admission, breakers, degradation.

:mod:`repro.serve` (PR 7) survives *isolated* faults — a crashed worker
is retried, a killed service resumes from its store.  This module makes
the service survive *overload* and *correlated* failure, under one
contract: **the service keeps answering — correctly or explicitly
degraded, never wrongly or unboundedly late.**  Three rings:

* :class:`AdmissionQueue` — a bounded admission gate on the solve path.
  At most ``max_concurrency`` solves run at once; up to ``max_pending``
  more wait in a priority queue (``"interactive"`` outranks ``"batch"``);
  beyond that, load is *shed* with a typed :class:`OverloadedError`
  carrying a retry-after hint, instead of queueing forever.  Queue wait
  happens inside :meth:`PlanService.handle`'s latency measurement, so
  percentiles reflect what callers actually experienced.

* :class:`CircuitBreaker` — per ``(algorithm, schedule_family)``
  closed → open → half-open breakers.  ``threshold`` consecutive
  terminal solve failures (timeouts, crashes) trip the breaker; while
  open, further solves for that key are short-circuited (no doomed
  dispatch, no worker churn).  After a seeded-jittered cooldown on the
  injectable clock, exactly one probe request is let through; success
  closes the breaker, failure re-opens it with a fresh jitter draw.
  The jitter comes from the service's seeded RNG, so fault-injected
  replays reproduce the exact probe schedule bit for bit.

* degraded-mode planning (:func:`solve_degraded`) — when the deadline
  budget is exhausted, the breaker is open, or the real solve failed
  terminally with ``degraded_fallback`` enabled, the service answers
  with the *certified contiguous 1F1B\\* fallback*: MadPipe's contiguous
  restriction (``allow_special=False``, the same cheap plan the PR 5
  quarantine falls back to), run through the full certification gate.
  The reply is marked ``served_from="degraded"`` with the real
  certificate attached; degraded payloads are cached only in a
  memory-tier LRU, never the primary store, so a recovered service
  re-solves to full quality.

Everything here is deterministic by construction: admission decisions
depend only on arrival order, breaker transitions only on the injected
clock + seeded RNG, and the degraded plan is a normal certified
:func:`repro.api.plan` call.  ``benchmarks/bench_chaos.py`` exploits
that to run byte-reproducible overload scenarios.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .. import obs, warmstart
from ..core.chain import Chain
from ..core.platform import Platform
from ..experiments.harness import _deadline

__all__ = [
    "PRIORITIES",
    "AdmissionQueue",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "OverloadedError",
    "PoolExhaustedError",
    "ResilienceConfig",
    "degraded_opts",
    "priority_rank",
    "solve_degraded",
]

#: Priority classes, best first.  Lower rank wins a queue slot; when the
#: queue is full an arriving higher-priority request evicts (sheds) the
#: worst queued one instead of being shed itself.
PRIORITIES = {"interactive": 0, "batch": 1}


class OverloadedError(RuntimeError):
    """The admission queue is full: the request was shed, not queued.

    ``retry_after_s`` is the service's hint for when to retry; the
    ``repro serve`` loop forwards it in the structured
    ``{"ok": false, "stage": "admission"}`` reply.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class CircuitOpenError(RuntimeError):
    """A circuit breaker short-circuited the solve (and degraded-mode
    fallback is disabled, so there was nothing to answer with)."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline budget ran out before a solve could start."""


class PoolExhaustedError(RuntimeError):
    """The worker pool died too many consecutive times; rebuilding was
    capped (``max_pool_restarts``) instead of storming forever."""


def priority_rank(priority: "str | int") -> int:
    """Numeric rank of a priority class (lower = more important)."""
    if isinstance(priority, bool):
        raise ValueError(f"priority must be a class name or int, not {priority!r}")
    if isinstance(priority, int):
        return priority
    try:
        return PRIORITIES[priority]
    except KeyError:
        raise ValueError(
            f"unknown priority {priority!r}; expected one of "
            f"{sorted(PRIORITIES)} or an int rank"
        ) from None


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilience layer.  The default configuration disables
    every mechanism, preserving the PR 7 service behaviour exactly.

    ``max_concurrency`` enables admission control: at most that many
    solves run concurrently, ``max_pending`` more wait, the rest shed
    with :class:`OverloadedError` (``retry_after_s`` hint).
    ``breaker_threshold`` enables per-(algorithm, family) circuit
    breakers tripping after that many consecutive terminal failures,
    cooling down ``breaker_cooldown_s`` (seed-jittered) before a probe.
    ``deadline_budget_s`` is the default wall-clock budget per request
    (queue wait included); a request's own ``deadline_s`` overrides it.
    ``degraded_fallback`` turns budget exhaustion, open breakers and
    terminal solve failures into certified degraded answers instead of
    errors; ``degraded_timeout_s`` bounds the fallback solve itself.
    """

    max_concurrency: int | None = None
    max_pending: int = 16
    deadline_budget_s: float | None = None
    degraded_fallback: bool = False
    degraded_timeout_s: float | None = 30.0
    breaker_threshold: int | None = None
    breaker_cooldown_s: float = 30.0
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1 (or None to disable)")
        if self.max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1 (or None to disable)")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be > 0")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be > 0")

    @property
    def admission_enabled(self) -> bool:
        return self.max_concurrency is not None

    @property
    def breaker_enabled(self) -> bool:
        return self.breaker_threshold is not None


# --------------------------------------------------------------- admission


class AdmissionQueue:
    """Bounded, priority-aware admission for the solve path.

    :meth:`acquire` grants a slot immediately while fewer than
    ``max_concurrency`` are held, queues up to ``max_pending`` waiters
    (served best-priority-first, FIFO within a class), and sheds beyond
    that: the arriving request raises :class:`OverloadedError` — unless
    it outranks the worst queued waiter, in which case *that* waiter is
    shed and the arrival takes its queue slot.  :meth:`release` hands
    the freed slot to the best waiter.

    All coordination state lives on the event loop (the service's
    single-threaded discipline), so admission decisions are a pure
    function of arrival order — deterministic under replay.

    Counters (on ``registry`` when given): ``serve.shed`` (one per shed
    request), ``serve.queued`` (total requests that waited) and
    ``serve.queue_hwm`` (high-water queue depth, kept current by delta
    increments).
    """

    def __init__(
        self,
        max_concurrency: int,
        max_pending: int,
        *,
        retry_after_s: float = 1.0,
        registry: "obs.MetricsRegistry | None" = None,
    ):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.max_concurrency = max_concurrency
        self.max_pending = max_pending
        self.retry_after_s = retry_after_s
        self.registry = registry
        self.active = 0
        self.hwm = 0
        self._seq = itertools.count()
        # heap of (rank, seq, future): best priority first, FIFO within
        self._waiters: list[tuple[int, int, asyncio.Future]] = []

    def _inc(self, name: str, value: float = 1) -> None:
        if self.registry is not None:
            self.registry.inc(name, value)

    @property
    def depth(self) -> int:
        """Live queue depth (waiters, not running solves)."""
        return len(self._waiters)

    def _shed_error(self) -> OverloadedError:
        self._inc("serve.shed")
        return OverloadedError(
            f"admission queue full ({self.active} solving, "
            f"{len(self._waiters)} queued); retry in {self.retry_after_s:g}s",
            retry_after_s=self.retry_after_s,
        )

    async def acquire(self, rank: int = 0) -> None:
        """Wait for a solve slot; raises :class:`OverloadedError` if shed."""
        if self.active < self.max_concurrency and not self._waiters:
            self.active += 1
            return
        if len(self._waiters) >= self.max_pending:
            worst = max(self._waiters, key=lambda w: (w[0], w[1]), default=None)
            if worst is None or rank >= worst[0]:
                raise self._shed_error()
            # the arrival outranks the worst queued waiter: shed that
            # waiter instead and take its queue slot
            self._waiters.remove(worst)
            heapq.heapify(self._waiters)
            if not worst[2].done():
                worst[2].set_exception(self._shed_error())
        loop = asyncio.get_running_loop()
        entry = (rank, next(self._seq), loop.create_future())
        heapq.heappush(self._waiters, entry)
        self._inc("serve.queued")
        if len(self._waiters) > self.hwm:
            self._inc("serve.queue_hwm", len(self._waiters) - self.hwm)
            self.hwm = len(self._waiters)
        try:
            await entry[2]
        except asyncio.CancelledError:
            if entry in self._waiters:
                self._waiters.remove(entry)
                heapq.heapify(self._waiters)
            elif entry[2].done() and not entry[2].cancelled() \
                    and entry[2].exception() is None:
                # the slot was granted concurrently with the cancel:
                # give it back so it is not leaked
                self.release()
            raise

    def release(self) -> None:
        """Free one slot, handing it to the best queued waiter if any."""
        while self._waiters:
            _, _, fut = heapq.heappop(self._waiters)
            if fut.done():  # already shed or cancelled
                continue
            fut.set_result(None)  # slot transfers: `active` is unchanged
            return
        self.active -= 1


# ------------------------------------------------------------- breakers


@dataclass
class _BreakerState:
    state: str = "closed"  # "closed" | "open" | "half_open"
    consecutive_failures: int = 0
    probe_at: float = 0.0
    probing: bool = False


class CircuitBreaker:
    """Per-key circuit breakers: closed → open → half-open.

    :meth:`allow` answers ``"closed"`` (go ahead), ``"probe"`` (the one
    half-open trial) or ``"open"`` (short-circuit — do not dispatch).
    Call :meth:`record_failure` on every *terminal* solve failure and
    :meth:`record_success` on every success; ``threshold`` consecutive
    failures open the breaker.  Re-close requires a successful probe
    after the cooldown, which is jittered from the seeded ``rng``
    (uniform in ``[0.5, 1.5) × cooldown_s``) so replays with the same
    seed and clock reproduce the probe schedule exactly.
    """

    def __init__(
        self,
        threshold: int,
        cooldown_s: float,
        *,
        rng,
        clock: Callable[[], float] = time.monotonic,
        registry: "obs.MetricsRegistry | None" = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be > 0")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._rng = rng
        self._clock = clock
        self.registry = registry
        self._keys: dict[Any, _BreakerState] = {}

    def _inc(self, name: str) -> None:
        if self.registry is not None:
            self.registry.inc(name)

    def _state(self, key) -> _BreakerState:
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = _BreakerState()
        return state

    def state(self, key) -> str:
        return self._state(key).state

    def allow(self, key) -> str:
        """Gate one solve attempt for ``key``."""
        b = self._state(key)
        if b.state == "closed":
            return "closed"
        if b.state == "open" and self._clock() >= b.probe_at:
            b.state = "half_open"
        if b.state == "half_open" and not b.probing:
            b.probing = True
            self._inc("serve.breaker_probes")
            return "probe"
        self._inc("serve.breaker_short_circuits")
        return "open"

    def record_success(self, key) -> None:
        b = self._state(key)
        if b.state != "closed":
            self._inc("serve.breaker_closes")
        b.state = "closed"
        b.consecutive_failures = 0
        b.probing = False

    def record_failure(self, key) -> None:
        b = self._state(key)
        b.consecutive_failures += 1
        if b.state == "half_open":
            # the probe failed: back to open with a fresh jitter draw
            self._open(b)
        elif b.state == "closed" and b.consecutive_failures >= self.threshold:
            self._inc("serve.breaker_trips")
            self._open(b)

    def _open(self, b: _BreakerState) -> None:
        b.state = "open"
        b.probing = False
        b.probe_at = self._clock() + self.cooldown_s * (0.5 + self._rng.random())

    def snapshot(self) -> dict[str, str]:
        """``"algorithm:family" → state`` for :meth:`PlanService.stats`."""
        return {
            ":".join(str(part) for part in key): b.state
            for key, b in sorted(self._keys.items(), key=lambda kv: str(kv[0]))
        }


# ------------------------------------------------------- degraded planning


#: The only ``plan()`` options a degraded solve keeps.  Everything else
#: (``ilp_time_limit``, ``certify=False``, algorithm-specific knobs of a
#: non-MadPipe request) either does not apply to the contiguous fallback
#: or would weaken its guarantees.
_DEGRADED_KEPT = ("iterations", "grid", "memory_headroom", "schedule_family")


def degraded_opts(opts: Mapping[str, Any]) -> dict[str, Any]:
    """Options of the cheap certified fallback solve for a request.

    Keeps the family/grid/headroom context of the original request and
    forces MadPipe's contiguous restriction: ``allow_special=False``
    collapses the DP's special-processor dimensions (nearly free) and
    yields a contiguous allocation scheduled by the family's exact
    1F1B\\*-style construction — no MILP anywhere — which then passes the
    ordinary certification gate.  This is the same certified fallback
    plan the PR 5 quarantine degrades to.
    """
    kept = {k: v for k, v in opts.items() if k in _DEGRADED_KEPT}
    kept["allow_special"] = False
    kept["contiguous_fallback"] = False
    return kept


def solve_degraded(payload: tuple) -> tuple[dict, dict]:
    """Degraded-solve entry point (thread or process; mirrors
    ``service._solve_in_worker``): the certified contiguous 1F1B\\*
    fallback plan for the request, with ``status`` escalated to
    ``"degraded"`` so no client can mistake it for the full-quality
    answer.  Returns ``(plan payload, counter snapshot)``.
    """
    chain_dict, plat, _algorithm, opts, timeout, warm, fingerprint = payload
    from ..api import plan  # deferred: repro.api imports this package

    chain = Chain.from_dict(chain_dict)
    platform = Platform(*plat)
    spec = (chain.name, platform.n_procs, platform.memory, platform.bandwidth,
            "degraded")
    registry = obs.MetricsRegistry()
    with warmstart.activate(warm), obs.use_metrics(registry):
        with _deadline(timeout, spec):
            # the degrade target is always the MadPipe contiguous
            # restriction, whatever algorithm the request named: it is
            # the one certified-cheap answer the planner owns
            result = plan(chain, platform, algorithm="madpipe",
                          **degraded_opts(opts))
    out = result.to_json()
    if out["status"] == "ok":
        out["status"] = "degraded"
    return out, registry.snapshot()
