"""The two-tier plan cache: in-process LRU over a persistent JSONL store.

Tier 1 (:class:`PlanCache`'s LRU) holds the most recently served plan
payloads in memory; tier 2 (:class:`PlanStore`) persists every solved
plan as one JSONL record ``{"fingerprint": …, "plan": …}`` through the
hardened :class:`repro.experiments.harness.JsonlCache` core — fsync'd
batched appends, corrupt-line quarantine with recovery, atomic dedup
rewrites — so a killed service resumes from disk without re-solving
anything it already answered.

Payloads are the :meth:`repro.api.PlanResult.to_json` wire form:
deterministic (no timings, no per-call metrics), strict JSON (infinite
periods encode as ``null``), validated on load by round-tripping through
:meth:`repro.api.PlanResult.from_json` so a damaged record quarantines
instead of propagating garbage to clients.

Schema migration: new records are written at plan schema version 2
(``schedule_family`` added); version-1 records from older stores still
load — ``from_json`` reads them as ``"1f1b"`` plans — and are *not*
rewritten in place, so a store shared with an older build stays usable
by both.
"""

from __future__ import annotations

from pathlib import Path

from ..experiments.harness import JsonlCache
from ..warmstart import LRU

__all__ = ["PlanCache", "PlanStore"]


class PlanStore(JsonlCache):
    """Persistent ``fingerprint → plan payload`` store (append-only JSONL)."""

    def _encode(self, record: dict) -> dict:
        return record

    def _decode(self, obj: dict) -> dict:
        if not isinstance(obj, dict):
            raise ValueError(f"expected a JSON object, got {type(obj).__name__}")
        fingerprint = obj.get("fingerprint")
        plan = obj.get("plan")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ValueError("missing or non-string 'fingerprint'")
        if not isinstance(plan, dict):
            raise ValueError("missing 'plan' object")
        from ..api import PlanResult  # deferred: api imports this package

        PlanResult.from_json(plan)  # raises ValueError on a damaged payload
        return {"fingerprint": fingerprint, "plan": plan}

    def _key(self, record: dict) -> str:
        return record["fingerprint"]

    # -- convenience accessors --------------------------------------------

    def get_plan(self, fingerprint: str) -> dict | None:
        record = self.get(fingerprint)
        return None if record is None else record["plan"]

    def put_plan(self, fingerprint: str, plan: dict) -> None:
        self.put({"fingerprint": fingerprint, "plan": plan})


class PlanCache:
    """In-process LRU (tier 1) over an optional :class:`PlanStore` (tier 2).

    ``get`` returns ``(tier, payload)`` — ``tier`` is ``"memory"`` or
    ``"store"`` — or ``None`` on a full miss; a store hit is promoted
    into the LRU.  ``put`` writes through to both tiers, skipping the
    store append when the fingerprint is already persisted (a restarted
    service must not duplicate records for plans it reloaded).
    """

    def __init__(
        self,
        memory_entries: int = 1024,
        store: "PlanStore | str | Path | None" = None,
        *,
        flush_every: int = 1,
    ):
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        if isinstance(store, (str, Path)):
            store = PlanStore(store, flush_every=flush_every)
        self.memory: LRU = LRU(memory_entries)
        self.store = store

    def get(self, fingerprint: str) -> tuple[str, dict] | None:
        payload = self.memory.hit(fingerprint)
        if payload is not None:
            return "memory", payload
        if self.store is not None:
            payload = self.store.get_plan(fingerprint)
            if payload is not None:
                self.memory.put(fingerprint, payload)
                return "store", payload
        return None

    def put(self, fingerprint: str, plan: dict) -> None:
        self.memory.put(fingerprint, plan)
        if self.store is not None and self.store.get(fingerprint) is None:
            self.store.put_plan(fingerprint, plan)

    def flush(self) -> None:
        if self.store is not None:
            self.store.flush()

    def __len__(self) -> int:
        """Distinct plans reachable through the cache (both tiers)."""
        if self.store is None:
            return len(self.memory)
        return len(set(self.memory) | set(self.store._data))
