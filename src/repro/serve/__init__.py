"""Planner-as-a-service: an asyncio planning service over :mod:`repro.api`.

The solver stack answers "how do I place this chain on this platform"
fast per instance; this package makes it answer the question *as a
service* under concurrent, partially-repeated traffic:

* :func:`repro.warmstart.request_fingerprint` — canonical request
  identity (chain values, platform values, algorithm, options) with
  float normalization and key-order independence;
* :class:`PlanStore` / :class:`PlanCache` — a two-tier plan cache:
  in-process LRU over a persistent append-only JSONL store built on the
  hardened :class:`repro.experiments.harness.JsonlCache` (fsync'd
  appends, quarantine + recovery, atomic repair);
* :class:`PlanService` — single-flight request coalescing in front of a
  bounded worker pool with per-request deadline/retry/backoff, the
  warm-start context active inside workers, and ``serve.*`` counters +
  per-request spans through :mod:`repro.obs`.

Entry points: :func:`repro.api.serve` (facade constructor) and the
``repro serve`` CLI (a JSONL request loop on stdin).  Benchmarked by
``benchmarks/bench_serve.py`` (``BENCH_serve.json``): QPS under a Zipf
traffic replay vs naive serial :func:`repro.api.plan`, with every served
plan asserted bit-identical to a direct cold solve.
"""

from ..warmstart import canonical_value, request_fingerprint
from .service import PlanRequest, PlanService, ServeReply
from .store import PlanCache, PlanStore

__all__ = [
    "PlanCache",
    "PlanRequest",
    "PlanService",
    "PlanStore",
    "ServeReply",
    "canonical_value",
    "request_fingerprint",
]
