"""Planner-as-a-service: an asyncio planning service over :mod:`repro.api`.

The solver stack answers "how do I place this chain on this platform"
fast per instance; this package makes it answer the question *as a
service* under concurrent, partially-repeated traffic:

* :func:`repro.warmstart.request_fingerprint` — canonical request
  identity (chain values, platform values, algorithm, options) with
  float normalization and key-order independence;
* :class:`PlanStore` / :class:`PlanCache` — a two-tier plan cache:
  in-process LRU over a persistent append-only JSONL store built on the
  hardened :class:`repro.experiments.harness.JsonlCache` (fsync'd
  appends, quarantine + recovery, atomic repair);
* :class:`PlanService` — single-flight request coalescing in front of a
  bounded worker pool with per-request deadline/retry/backoff, the
  warm-start context active inside workers, and ``serve.*`` counters +
  per-request spans through :mod:`repro.obs`;
* :mod:`repro.serve.resilience` — overload safety, configured with
  :class:`ResilienceConfig` and off by default: bounded priority
  admission (shedding with a typed :class:`OverloadedError` +
  retry-after hint), per-(algorithm, schedule_family)
  :class:`CircuitBreaker` state machines, and degraded-mode planning
  (the certified contiguous 1F1B* fallback, ``served_from="degraded"``,
  never cached into the primary store tier).

Entry points: :func:`repro.api.serve` (facade constructor) and the
``repro serve`` CLI (a JSONL request loop on stdin).  Benchmarked by
``benchmarks/bench_serve.py`` (``BENCH_serve.json``): QPS under a Zipf
traffic replay vs naive serial :func:`repro.api.plan`, with every served
plan asserted bit-identical to a direct cold solve; and soak-tested by
``benchmarks/bench_chaos.py`` (``BENCH_chaos.json``): seeded fault
storms with shed/degraded/recovery invariants checked before reporting.
"""

from ..warmstart import canonical_value, request_fingerprint
from .resilience import (
    PRIORITIES,
    AdmissionQueue,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    PoolExhaustedError,
    ResilienceConfig,
    priority_rank,
)
from .service import PlanRequest, PlanService, ServeReply
from .store import PlanCache, PlanStore

__all__ = [
    "PRIORITIES",
    "AdmissionQueue",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "OverloadedError",
    "PlanCache",
    "PlanRequest",
    "PlanService",
    "PlanStore",
    "PoolExhaustedError",
    "ResilienceConfig",
    "ServeReply",
    "canonical_value",
    "priority_rank",
    "request_fingerprint",
]
