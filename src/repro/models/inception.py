"""Inception (GoogLeNet-style) builder as a :class:`ModelGraph` DAG.

Nine Inception modules (4 parallel branches merged by channel concat)
with the canonical GoogLeNet channel configuration — the "Inception"
network of the paper's evaluation.
"""

from __future__ import annotations

from .graph import ModelGraph
from .layers import (
    BatchNorm2d,
    Concat,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)

__all__ = ["inception"]

# (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj) per module
_MODULES = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _conv_bn_relu(
    g: ModelGraph, x: str, out_ch: int, kernel: int, stride: int, padding: int, tag: str
) -> str:
    x = g.add_layer(Conv2d(out_ch, kernel, stride, padding), x, name=f"{tag}.conv")
    x = g.add_layer(BatchNorm2d(), x, name=f"{tag}.bn")
    return g.add_layer(ReLU(), x, name=f"{tag}.relu")


def _inception_module(g: ModelGraph, x: str, cfg: tuple[int, ...], tag: str) -> str:
    c1, r3, c3, r5, c5, pp = cfg
    b1 = _conv_bn_relu(g, x, c1, 1, 1, 0, f"{tag}.b1")
    b2 = _conv_bn_relu(g, x, r3, 1, 1, 0, f"{tag}.b2a")
    b2 = _conv_bn_relu(g, b2, c3, 3, 1, 1, f"{tag}.b2b")
    b3 = _conv_bn_relu(g, x, r5, 1, 1, 0, f"{tag}.b3a")
    b3 = _conv_bn_relu(g, b3, c5, 5, 1, 2, f"{tag}.b3b")
    b4 = g.add_layer(MaxPool2d(3, 1, 1), x, name=f"{tag}.b4.pool")
    b4 = _conv_bn_relu(g, b4, pp, 1, 1, 0, f"{tag}.b4")
    return g.add_layer(Concat(), b1, b2, b3, b4, name=f"{tag}.concat")


def inception(*, image_size: int = 1000, num_classes: int = 1000) -> ModelGraph:
    """GoogLeNet-style Inception (paper network #3)."""
    g = ModelGraph("inception")
    x = g.input((3, image_size, image_size))
    x = _conv_bn_relu(g, x, 64, 7, 2, 3, "stem1")
    x = g.add_layer(MaxPool2d(3, 2, 1), x, name="pool1")
    x = _conv_bn_relu(g, x, 64, 1, 1, 0, "stem2")
    x = _conv_bn_relu(g, x, 192, 3, 1, 1, "stem3")
    x = g.add_layer(MaxPool2d(3, 2, 1), x, name="pool2")
    for key in ("3a", "3b"):
        x = _inception_module(g, x, _MODULES[key], f"inc{key}")
    x = g.add_layer(MaxPool2d(3, 2, 1), x, name="pool3")
    for key in ("4a", "4b", "4c", "4d", "4e"):
        x = _inception_module(g, x, _MODULES[key], f"inc{key}")
    x = g.add_layer(MaxPool2d(3, 2, 1), x, name="pool4")
    for key in ("5a", "5b"):
        x = _inception_module(g, x, _MODULES[key], f"inc{key}")
    x = g.add_layer(GlobalAvgPool2d(), x, name="gap")
    x = g.add_layer(Flatten(), x, name="flatten")
    g.add_layer(Linear(num_classes), x, name="fc")
    return g
