"""U-Net builder — encoder/decoder with long skip connections.

The skips make almost the whole network a single strongly-connected
region from the linearizer's point of view: only the pre-encoder stem
and the post-decoder head are serialization points.  That is the honest
answer for pipelining a U-Net as a chain, and a good stress test that
the linearizer degrades gracefully instead of mis-cutting.
"""

from __future__ import annotations

from .graph import ModelGraph
from .layers import BatchNorm2d, Concat, Conv2d, MaxPool2d, ReLU, Upsample

__all__ = ["unet"]


def _double_conv(g, x, out_ch, tag):
    for i in (1, 2):
        x = g.add_layer(Conv2d(out_ch, 3, 1, 1), x, name=f"{tag}.conv{i}")
        x = g.add_layer(BatchNorm2d(), x, name=f"{tag}.bn{i}")
        x = g.add_layer(ReLU(), x, name=f"{tag}.relu{i}")
    return x


def unet(
    *,
    image_size: int = 512,
    in_channels: int = 3,
    base_channels: int = 64,
    depth: int = 4,
    num_classes: int = 2,
) -> ModelGraph:
    """Classic U-Net: ``depth`` down/up levels with skip concatenations."""
    if image_size % (2**depth):
        raise ValueError(f"image size must be divisible by {2 ** depth}")
    g = ModelGraph("unet")
    x = g.input((in_channels, image_size, image_size))
    skips = []
    ch = base_channels
    for d in range(depth):
        x = _double_conv(g, x, ch, f"enc{d + 1}")
        skips.append(x)
        x = g.add_layer(MaxPool2d(2, 2), x, name=f"down{d + 1}")
        ch *= 2
    x = _double_conv(g, x, ch, "bottleneck")
    for d in range(depth - 1, -1, -1):
        ch //= 2
        x = g.add_layer(Upsample(2), x, name=f"up{d + 1}")
        x = g.add_layer(Conv2d(ch, 1, 1, 0), x, name=f"up{d + 1}.reduce")
        x = g.add_layer(Concat(), skips[d], x, name=f"skip{d + 1}")
        x = _double_conv(g, x, ch, f"dec{d + 1}")
    g.add_layer(Conv2d(num_classes, 1, 1, 0), x, name="head")
    return g
