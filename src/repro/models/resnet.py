"""ResNet-50 / ResNet-101 builders (He et al.), as :class:`ModelGraph` DAGs.

Bottleneck residual blocks with the standard stage configuration
(3,4,6,3) for ResNet-50 and (3,4,23,3) for ResNet-101.  The paper
evaluates both at 1000×1000 inputs, batch size 8.
"""

from __future__ import annotations

from .graph import ModelGraph
from .layers import (
    Add,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)

__all__ = ["resnet50", "resnet101", "resnet"]

_CONFIGS = {
    "resnet50": (3, 4, 6, 3),
    "resnet101": (3, 4, 23, 3),
}


def _conv_bn_relu(
    g: ModelGraph, x: str, out_ch: int, kernel: int, stride: int, padding: int, tag: str
) -> str:
    x = g.add_layer(Conv2d(out_ch, kernel, stride, padding), x, name=f"{tag}.conv")
    x = g.add_layer(BatchNorm2d(), x, name=f"{tag}.bn")
    return g.add_layer(ReLU(), x, name=f"{tag}.relu")


def _bottleneck(
    g: ModelGraph, x: str, mid_ch: int, stride: int, project: bool, tag: str
) -> str:
    out_ch = 4 * mid_ch
    y = _conv_bn_relu(g, x, mid_ch, 1, 1, 0, f"{tag}.a")
    y = _conv_bn_relu(g, y, mid_ch, 3, stride, 1, f"{tag}.b")
    y = g.add_layer(Conv2d(out_ch, 1, 1, 0), y, name=f"{tag}.c.conv")
    y = g.add_layer(BatchNorm2d(), y, name=f"{tag}.c.bn")
    if project:
        s = g.add_layer(Conv2d(out_ch, 1, stride, 0), x, name=f"{tag}.down.conv")
        s = g.add_layer(BatchNorm2d(), s, name=f"{tag}.down.bn")
    else:
        s = x
    z = g.add_layer(Add(), y, s, name=f"{tag}.add")
    return g.add_layer(ReLU(), z, name=f"{tag}.out")


def resnet(
    depth_config: tuple[int, int, int, int],
    *,
    image_size: int = 1000,
    num_classes: int = 1000,
    name: str = "resnet",
) -> ModelGraph:
    """Build a bottleneck ResNet with the given per-stage block counts."""
    g = ModelGraph(name)
    x = g.input((3, image_size, image_size))
    x = _conv_bn_relu(g, x, 64, 7, 2, 3, "stem")
    x = g.add_layer(MaxPool2d(3, 2, 1), x, name="stem.pool")
    mid = 64
    for stage, blocks in enumerate(depth_config):
        for b in range(blocks):
            stride = 2 if (stage > 0 and b == 0) else 1
            project = b == 0
            x = _bottleneck(g, x, mid, stride, project, f"s{stage + 1}.b{b + 1}")
        mid *= 2
    x = g.add_layer(GlobalAvgPool2d(), x, name="gap")
    x = g.add_layer(Flatten(), x, name="flatten")
    g.add_layer(Linear(num_classes), x, name="fc")
    return g


def resnet50(*, image_size: int = 1000, num_classes: int = 1000) -> ModelGraph:
    """ResNet-50 (paper network #1)."""
    return resnet(
        _CONFIGS["resnet50"], image_size=image_size, num_classes=num_classes, name="resnet50"
    )


def resnet101(*, image_size: int = 1000, num_classes: int = 1000) -> ModelGraph:
    """ResNet-101 (paper network #2)."""
    return resnet(
        _CONFIGS["resnet101"], image_size=image_size, num_classes=num_classes, name="resnet101"
    )
