"""Transformer encoder builder (GPT/BERT-style blocks on ``(seq, d)``).

Pre-norm blocks with residual connections; the linearizer groups every
block into one chain layer, giving the homogeneous chains that
PipeDream-2BW-style systems target — a useful contrast to the
heterogeneous CNN chains of the paper.
"""

from __future__ import annotations

from .graph import ModelGraph
from .layers import Add, FeedForward, LayerNorm, SelfAttention, TokenEmbedding

__all__ = ["transformer_encoder"]


def transformer_encoder(
    *,
    n_layers: int = 12,
    d_model: int = 768,
    heads: int = 12,
    seq_len: int = 512,
    vocab: int = 32000,
    ffn_ratio: int = 4,
) -> ModelGraph:
    """A BERT-base-like encoder by default (12 × 768, 512 tokens)."""
    g = ModelGraph(f"transformer{n_layers}x{d_model}")
    x = g.input((seq_len,))
    x = g.add_layer(TokenEmbedding(vocab, d_model), x, name="embed")
    for i in range(n_layers):
        tag = f"blk{i + 1}"
        a = g.add_layer(LayerNorm(), x, name=f"{tag}.ln1")
        a = g.add_layer(SelfAttention(heads), a, name=f"{tag}.attn")
        x = g.add_layer(Add(), x, a, name=f"{tag}.res1")
        f = g.add_layer(LayerNorm(), x, name=f"{tag}.ln2")
        f = g.add_layer(FeedForward(ffn_ratio * d_model), f, name=f"{tag}.ffn")
        x = g.add_layer(Add(), x, f, name=f"{tag}.res2")
    g.add_layer(LayerNorm(), x, name="final_ln")
    return g
