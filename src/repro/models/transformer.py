"""Transformer encoder builder (GPT/BERT-style blocks on ``(seq, d)``).

Pre-norm blocks with residual connections; the linearizer groups every
block into one chain layer, giving the homogeneous chains that
PipeDream-2BW-style systems target — a useful contrast to the
heterogeneous CNN chains of the paper.
"""

from __future__ import annotations

from .graph import ModelGraph
from .layers import Add, FeedForward, LayerNorm, SelfAttention, TokenEmbedding

__all__ = ["gpt_chain", "transformer_encoder"]


def transformer_encoder(
    *,
    n_layers: int = 12,
    d_model: int = 768,
    heads: int = 12,
    seq_len: int = 512,
    vocab: int = 32000,
    ffn_ratio: int = 4,
) -> ModelGraph:
    """A BERT-base-like encoder by default (12 × 768, 512 tokens)."""
    g = ModelGraph(f"transformer{n_layers}x{d_model}")
    x = g.input((seq_len,))
    x = g.add_layer(TokenEmbedding(vocab, d_model), x, name="embed")
    for i in range(n_layers):
        tag = f"blk{i + 1}"
        a = g.add_layer(LayerNorm(), x, name=f"{tag}.ln1")
        a = g.add_layer(SelfAttention(heads), a, name=f"{tag}.attn")
        x = g.add_layer(Add(), x, a, name=f"{tag}.res1")
        f = g.add_layer(LayerNorm(), x, name=f"{tag}.ln2")
        f = g.add_layer(FeedForward(ffn_ratio * d_model), f, name=f"{tag}.ffn")
        x = g.add_layer(Add(), x, f, name=f"{tag}.res2")
    g.add_layer(LayerNorm(), x, name="final_ln")
    return g


def gpt_chain(
    n_layers: int = 24,
    *,
    d_model: int = 1024,
    heads: int = 16,
    seq_len: int = 1024,
    batch_size: int = 8,
    name: str | None = None,
):
    """A *uniform* GPT-style chain: one profiled decoder block, replicated.

    Profiles a single transformer block (GPT-2-medium-like by default:
    1024 wide, 16 heads, 1024 tokens) on the V100 device model, folds its
    chain layers into one per-block layer spec, and replicates that spec
    ``n_layers`` times.  The embedding and final norm bookends are
    excluded, so the chain is exactly homogeneous — the decoder *body*
    that GPT pipelines split across stages, and the regime where the
    zero-bubble B/W-split family is provably ahead of 1F1B\\* under tight
    memory (see ``benchmarks/bench_zero_bubble.py``).

    Deterministic and cheap (one block is profiled analytically, no
    hardware), so it is safe to build inside sweep worker processes at
    any ``n_layers``/pipeline depth.
    """
    # lazy: keep the models package importable without the profiling layer
    from ..profiling import V100, profile_model
    from .linearize import linearize
    from .synthetic import uniform_chain

    g = transformer_encoder(
        n_layers=1, d_model=d_model, heads=heads, seq_len=seq_len
    )
    profile_model(g, V100, batch_size)
    block = linearize(g)
    # chain layers 2..L-1 are the block's interior (1 = embed, L = final norm)
    inner = range(2, block.L)
    return uniform_chain(
        n_layers,
        u_f=sum(block.u_f(i) for i in inner),
        u_b=sum(block.u_b(i) for i in inner),
        weights=sum(block.weight(i) for i in inner),
        activation=block.activation(2),
        input_activation=block.activation(2),
        name=name or f"gpt{n_layers}",
    )
