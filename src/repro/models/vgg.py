"""VGG-16 builder — a purely sequential network, useful as a chain whose
linearization is the identity (every tensor is a serialization point).
"""

from __future__ import annotations

from .graph import ModelGraph
from .layers import Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU

__all__ = ["vgg16"]

_CFG = (64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M")


def vgg16(*, image_size: int = 224, num_classes: int = 1000) -> ModelGraph:
    """VGG-16 with batch-norm-free convolutional body."""
    g = ModelGraph("vgg16")
    x = g.input((3, image_size, image_size))
    ci = 0
    for item in _CFG:
        if item == "M":
            x = g.add_layer(MaxPool2d(2, 2), x, name=f"pool{ci}")
        else:
            ci += 1
            x = g.add_layer(Conv2d(int(item), 3, 1, 1, bias=True), x, name=f"conv{ci}")
            x = g.add_layer(ReLU(), x, name=f"relu{ci}")
    x = g.add_layer(Flatten(), x, name="flatten")
    x = g.add_layer(Linear(4096), x, name="fc1")
    x = g.add_layer(ReLU(), x, name="fc1.relu")
    x = g.add_layer(Dropout(), x, name="fc1.drop")
    x = g.add_layer(Linear(4096), x, name="fc2")
    x = g.add_layer(ReLU(), x, name="fc2.relu")
    x = g.add_layer(Dropout(), x, name="fc2.drop")
    g.add_layer(Linear(num_classes), x, name="fc3")
    return g
