"""Synthetic chain generators for tests, property-based testing and
benchmarks that should not depend on the model zoo — plus a seeded trace
generator producing fake-but-realistic measured-profile fixtures for the
ingestion subsystem.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.chain import Chain, LayerProfile

__all__ = ["generate_traces", "random_chain", "uniform_chain"]


def random_chain(
    L: int,
    *,
    seed: int | None = 0,
    rng: np.random.Generator | None = None,
    time_scale: float = 0.05,
    weight_scale: float = 50e6,
    act_scale: float = 200e6,
    decay: float = 0.0,
    name: str = "random",
) -> Chain:
    """Random chain of ``L`` layers.

    ``decay > 0`` makes activations shrink geometrically along the chain
    (CNN-like: early layers carry the big tensors), which is the regime
    that stresses the memory-aware algorithms.
    """
    if L < 1:
        raise ValueError("L must be >= 1")
    if rng is None:
        rng = np.random.default_rng(seed)
    atten = np.exp(-decay * np.arange(L + 1))
    layers = [
        LayerProfile(
            name=f"l{i + 1}",
            u_f=float(rng.uniform(0.1, 1.0) * time_scale),
            u_b=float(rng.uniform(0.2, 2.0) * time_scale),
            weights=float(rng.uniform(0.05, 1.0) * weight_scale),
            activation=float(rng.uniform(0.2, 1.0) * act_scale * atten[i + 1]),
        )
        for i in range(L)
    ]
    input_act = float(rng.uniform(0.2, 1.0) * act_scale)
    return Chain(layers, input_act, name=name)


def uniform_chain(
    L: int,
    *,
    u_f: float = 1.0,
    u_b: float = 2.0,
    weights: float = 1e6,
    activation: float = 1e6,
    input_activation: float | None = None,
    name: str = "uniform",
) -> Chain:
    """Perfectly homogeneous chain — load balancing is trivial, so tests
    can isolate memory/communication effects."""
    layers = [
        LayerProfile(name=f"l{i + 1}", u_f=u_f, u_b=u_b, weights=weights, activation=activation)
        for i in range(L)
    ]
    return Chain(
        layers,
        input_activation if input_activation is not None else activation,
        name=name,
    )


def generate_traces(
    chain: Chain,
    out_dir: str | Path,
    *,
    runs: int = 5,
    seed: int = 0,
    noise=None,
    csv_runs: int = 1,
    time_unit: str = "s",
    corrupt_lines: int = 0,
    nan_records: int = 0,
    outlier_records: int = 0,
    outlier_scale: float = 25.0,
    missing_layers: tuple[str, ...] = (),
) -> list[Path]:
    """Write seeded fake measured traces for ``chain`` under ``out_dir``.

    Each run perturbs the chain with ``noise`` (default: the stock
    :class:`~repro.profiling.NoiseModel`) and emits one trace record per
    layer — ``run{r:02d}.jsonl``, with the last ``csv_runs`` runs as CSV
    instead, so both ingestion paths get exercised.  Durations are
    written in ``time_unit`` to exercise unit normalization.

    Corruption knobs (all deterministic per ``seed``, for robustness
    fixtures): ``corrupt_lines`` truncated-JSON garbage lines spliced
    into the JSONL runs, ``nan_records`` records with a NaN duration,
    ``outlier_records`` records with durations inflated by
    ``outlier_scale``, and ``missing_layers`` omitted from every run
    (simulating layers the profiler had no hook on).

    Returns the written trace file paths, sorted.
    """
    # local imports: models ← profiling/profiles would cycle at module scope
    from ..profiles.schema import SCHEMA_VERSION, TIME_UNITS
    from ..profiling.cost_model import NoiseModel

    if runs < 1:
        raise ValueError("runs must be >= 1")
    if not 0 <= csv_runs <= runs:
        raise ValueError("csv_runs must be between 0 and runs")
    if time_unit not in TIME_UNITS:
        raise ValueError(
            f"unknown time unit {time_unit!r}; choose from {sorted(TIME_UNITS)}"
        )
    if noise is None:
        noise = NoiseModel()
    unknown = sorted(set(missing_layers) - {layer.name for layer in chain.layers})
    if unknown:
        raise ValueError(f"missing_layers not in chain: {unknown}")
    unit = TIME_UNITS[time_unit]
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    ss = np.random.SeedSequence(seed)
    rng_noise, rng_corrupt = (np.random.default_rng(s) for s in ss.spawn(2))

    per_run: list[list[dict]] = []
    for r in range(runs):
        perturbed = noise.apply(chain, noise.draw(rng_noise, 1, chain.L)[0])
        records = []
        for layer in perturbed.layers:
            if layer.name in missing_layers:
                continue
            rec = {
                "schema": SCHEMA_VERSION,
                "run": r,
                "layer": layer.name,
                "u_f": layer.u_f / unit,
                "u_b": layer.u_b / unit,
                "weights": layer.weights,
                "activation": layer.activation,
            }
            if time_unit != "s":
                rec["time_unit"] = time_unit
            records.append(rec)
        per_run.append(records)

    flat = [(r, i) for r in range(runs) for i in range(len(per_run[r]))]
    n_damage = min(nan_records + outlier_records, len(flat))
    damage = [flat[k] for k in rng_corrupt.choice(len(flat), n_damage, replace=False)]
    for r, i in damage[:nan_records]:
        per_run[r][i]["u_f"] = float("nan")
    for r, i in damage[nan_records:]:
        per_run[r][i]["u_f"] *= outlier_scale
        per_run[r][i]["u_b"] *= outlier_scale

    paths: list[Path] = []
    n_jsonl = runs - csv_runs
    for r, records in enumerate(per_run):
        if r < n_jsonl:
            path = root / f"run{r:02d}.jsonl"
            lines = [json.dumps(rec, sort_keys=True) for rec in records]
            if r == 0 and corrupt_lines > 0 and lines:
                # splice truncated-JSON garbage at deterministic positions
                for c in range(corrupt_lines):
                    pos = int(rng_corrupt.integers(0, len(lines) + 1))
                    lines.insert(pos, lines[pos % len(lines)][: 20 + c])
            path.write_text("\n".join(lines) + "\n")
        else:
            path = root / f"run{r:02d}.csv"
            cols = ("schema", "run", "layer", "u_f", "u_b", "weights",
                    "activation", "time_unit")
            rows = [
                ",".join(str(rec.get(k, "")) for k in cols) for rec in records
            ]
            path.write_text("\n".join([",".join(cols)] + rows) + "\n")
        paths.append(path)
    return sorted(paths)

