"""Synthetic chain generators for tests, property-based testing and
benchmarks that should not depend on the model zoo.
"""

from __future__ import annotations

import numpy as np

from ..core.chain import Chain, LayerProfile

__all__ = ["random_chain", "uniform_chain"]


def random_chain(
    L: int,
    *,
    seed: int | None = 0,
    rng: np.random.Generator | None = None,
    time_scale: float = 0.05,
    weight_scale: float = 50e6,
    act_scale: float = 200e6,
    decay: float = 0.0,
    name: str = "random",
) -> Chain:
    """Random chain of ``L`` layers.

    ``decay > 0`` makes activations shrink geometrically along the chain
    (CNN-like: early layers carry the big tensors), which is the regime
    that stresses the memory-aware algorithms.
    """
    if L < 1:
        raise ValueError("L must be >= 1")
    if rng is None:
        rng = np.random.default_rng(seed)
    atten = np.exp(-decay * np.arange(L + 1))
    layers = [
        LayerProfile(
            name=f"l{i + 1}",
            u_f=float(rng.uniform(0.1, 1.0) * time_scale),
            u_b=float(rng.uniform(0.2, 2.0) * time_scale),
            weights=float(rng.uniform(0.05, 1.0) * weight_scale),
            activation=float(rng.uniform(0.2, 1.0) * act_scale * atten[i + 1]),
        )
        for i in range(L)
    ]
    input_act = float(rng.uniform(0.2, 1.0) * act_scale)
    return Chain(layers, input_act, name=name)


def uniform_chain(
    L: int,
    *,
    u_f: float = 1.0,
    u_b: float = 2.0,
    weights: float = 1e6,
    activation: float = 1e6,
    input_activation: float | None = None,
    name: str = "uniform",
) -> Chain:
    """Perfectly homogeneous chain — load balancing is trivial, so tests
    can isolate memory/communication effects."""
    layers = [
        LayerProfile(name=f"l{i + 1}", u_f=u_f, u_b=u_b, weights=weights, activation=activation)
        for i in range(L)
    ]
    return Chain(
        layers,
        input_activation if input_activation is not None else activation,
        name=name,
    )
