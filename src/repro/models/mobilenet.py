"""MobileNetV1 builder — depthwise-separable convolutions.

A purely sequential network (every tensor is a serialization point) with
a very different cost profile from the ResNets: almost no weights, lots
of memory-bound depthwise kernels — a useful stress case for the memory
model and the hybrid planner.
"""

from __future__ import annotations

from .graph import ModelGraph
from .layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    ReLU,
)

__all__ = ["mobilenet_v1"]

# (out_channels, stride) per depthwise-separable block
_CFG = (
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
)


def _conv_bn_relu(g, x, out_ch, kernel, stride, padding, tag, groups=1):
    x = g.add_layer(
        Conv2d(out_ch, kernel, stride, padding, groups=groups), x, name=f"{tag}.conv"
    )
    x = g.add_layer(BatchNorm2d(), x, name=f"{tag}.bn")
    return g.add_layer(ReLU(), x, name=f"{tag}.relu")


def mobilenet_v1(
    *, image_size: int = 1000, num_classes: int = 1000, width: float = 1.0
) -> ModelGraph:
    """MobileNetV1 with optional width multiplier."""

    def ch(c: int) -> int:
        scaled = int(c * width)
        return max(8, scaled - scaled % 8)

    g = ModelGraph("mobilenet_v1")
    x = g.input((3, image_size, image_size))
    x = _conv_bn_relu(g, x, ch(32), 3, 2, 1, "stem")
    c_in = ch(32)
    for i, (c_out, stride) in enumerate(_CFG):
        tag = f"b{i + 1}"
        # depthwise 3x3 then pointwise 1x1
        x = _conv_bn_relu(g, x, c_in, 3, stride, 1, f"{tag}.dw", groups=c_in)
        x = _conv_bn_relu(g, x, ch(c_out), 1, 1, 0, f"{tag}.pw")
        c_in = ch(c_out)
    x = g.add_layer(GlobalAvgPool2d(), x, name="gap")
    x = g.add_layer(Flatten(), x, name="flatten")
    g.add_layer(Linear(num_classes), x, name="fc")
    return g
