"""DenseNet-121 builder (Huang et al.) as a :class:`ModelGraph` DAG.

Dense blocks are expressed with a running concatenated tensor:
``x_{i+1} = concat(x_i, H(x_i))`` where ``H`` is BN–ReLU–Conv1×1(4k)–
BN–ReLU–Conv3×3(k).  Written this way, the tensor between two dense
layers is a single serialization point, so the linearizer produces one
chain layer per dense layer — the fine-grained chain the memory-aware
algorithms need.
"""

from __future__ import annotations

from .graph import ModelGraph
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)

__all__ = ["densenet121", "densenet"]


def _dense_layer(g: ModelGraph, x: str, growth: int, tag: str) -> str:
    y = g.add_layer(BatchNorm2d(), x, name=f"{tag}.bn1")
    y = g.add_layer(ReLU(), y, name=f"{tag}.relu1")
    y = g.add_layer(Conv2d(4 * growth, 1, 1, 0), y, name=f"{tag}.conv1")
    y = g.add_layer(BatchNorm2d(), y, name=f"{tag}.bn2")
    y = g.add_layer(ReLU(), y, name=f"{tag}.relu2")
    y = g.add_layer(Conv2d(growth, 3, 1, 1), y, name=f"{tag}.conv2")
    return g.add_layer(Concat(), x, y, name=f"{tag}.concat")


def _transition(g: ModelGraph, x: str, out_ch: int, tag: str) -> str:
    x = g.add_layer(BatchNorm2d(), x, name=f"{tag}.bn")
    x = g.add_layer(ReLU(), x, name=f"{tag}.relu")
    x = g.add_layer(Conv2d(out_ch, 1, 1, 0), x, name=f"{tag}.conv")
    return g.add_layer(AvgPool2d(2, 2), x, name=f"{tag}.pool")


def densenet(
    block_config: tuple[int, ...],
    *,
    growth: int = 32,
    image_size: int = 1000,
    num_classes: int = 1000,
    name: str = "densenet",
) -> ModelGraph:
    """Build a DenseNet with the given dense-block sizes."""
    g = ModelGraph(name)
    x = g.input((3, image_size, image_size))
    x = g.add_layer(Conv2d(2 * growth, 7, 2, 3), x, name="stem.conv")
    x = g.add_layer(BatchNorm2d(), x, name="stem.bn")
    x = g.add_layer(ReLU(), x, name="stem.relu")
    x = g.add_layer(MaxPool2d(3, 2, 1), x, name="stem.pool")
    channels = 2 * growth
    for bi, n_layers in enumerate(block_config):
        for li in range(n_layers):
            x = _dense_layer(g, x, growth, f"db{bi + 1}.l{li + 1}")
            channels += growth
        if bi < len(block_config) - 1:
            channels //= 2
            x = _transition(g, x, channels, f"tr{bi + 1}")
    x = g.add_layer(BatchNorm2d(), x, name="head.bn")
    x = g.add_layer(ReLU(), x, name="head.relu")
    x = g.add_layer(GlobalAvgPool2d(), x, name="gap")
    x = g.add_layer(Flatten(), x, name="flatten")
    g.add_layer(Linear(num_classes), x, name="fc")
    return g


def densenet121(*, image_size: int = 1000, num_classes: int = 1000) -> ModelGraph:
    """DenseNet-121 (paper network #4)."""
    return densenet(
        (6, 12, 24, 16),
        growth=32,
        image_size=image_size,
        num_classes=num_classes,
        name="densenet121",
    )
