"""DNN computational graphs as DAGs of :class:`LayerSpec` nodes.

A :class:`ModelGraph` is a single-source, single-sink DAG built with a
small functional API::

    g = ModelGraph("toy")
    x = g.input((3, 224, 224))
    y = g.add_layer(Conv2d(64, 7, stride=2, padding=3), x)
    ...

After :meth:`propagate_shapes`, every node carries its output shape and
the analytic accounting (parameters, forward/backward FLOPs, memory
traffic) used by the cost model and the linearizer.
"""

from __future__ import annotations

import networkx as nx

from .layers import Input, LayerSpec, Shape

__all__ = ["ModelGraph"]


class ModelGraph:
    """A layered computational DAG with deterministic node ordering."""

    def __init__(self, name: str):
        self.name = name
        self.g = nx.DiGraph()
        self._counter = 0
        self._input: str | None = None
        self._shapes_ready = False

    # -- construction --------------------------------------------------------

    def input(self, shape: Shape, name: str = "input") -> str:
        """Declare the (single) network input."""
        if self._input is not None:
            raise ValueError("graph already has an input")
        node = self._new_node(Input(tuple(shape)), name)
        self._input = node
        return node

    def add_layer(self, spec: LayerSpec, *preds: str, name: str | None = None) -> str:
        """Append a layer consuming the outputs of ``preds``."""
        if not preds:
            raise ValueError("layer needs at least one predecessor")
        if spec.arity == 1 and len(preds) != 1:
            raise ValueError(f"{type(spec).__name__} takes exactly one input")
        node = self._new_node(spec, name or type(spec).__name__.lower())
        for i, p in enumerate(preds):
            if p not in self.g:
                raise KeyError(f"unknown predecessor {p!r}")
            self.g.add_edge(p, node, order=i)
        self._shapes_ready = False
        return node

    def _new_node(self, spec: LayerSpec, name: str) -> str:
        node = f"{self._counter:04d}:{name}"
        self._counter += 1
        self.g.add_node(node, spec=spec, index=self._counter - 1)
        return node

    # -- structure -------------------------------------------------------------

    def __len__(self) -> int:
        return self.g.number_of_nodes()

    def topo_order(self) -> list[str]:
        """Topological order, deterministic (ties broken by insertion)."""
        return list(
            nx.lexicographical_topological_sort(
                self.g, key=lambda n: self.g.nodes[n]["index"]
            )
        )

    @property
    def source(self) -> str:
        if self._input is None:
            raise ValueError("graph has no input")
        return self._input

    @property
    def sink(self) -> str:
        sinks = [n for n in self.g if self.g.out_degree(n) == 0]
        if len(sinks) != 1:
            raise ValueError(f"graph must have exactly one sink, found {sinks}")
        return sinks[0]

    def spec(self, node: str) -> LayerSpec:
        return self.g.nodes[node]["spec"]

    def predecessors_in_order(self, node: str) -> list[str]:
        preds = list(self.g.predecessors(node))
        preds.sort(key=lambda p: self.g.edges[p, node]["order"])
        return preds

    # -- analysis -----------------------------------------------------------------

    def propagate_shapes(self) -> None:
        """Fill per-node ``shape``/``params``/``fwd_flops``/``bwd_flops``/
        ``mem_traffic`` attributes by a topological sweep."""
        if self._input is None:
            raise ValueError("graph has no input")
        if not nx.is_directed_acyclic_graph(self.g):
            raise ValueError("graph has a cycle")
        for node in self.topo_order():
            data = self.g.nodes[node]
            spec: LayerSpec = data["spec"]
            in_shapes = tuple(
                self.g.nodes[p]["shape"] for p in self.predecessors_in_order(node)
            )
            data["shape"] = spec.out_shape(*in_shapes)
            data["params"] = spec.param_count(*in_shapes)
            data["fwd_flops"] = spec.fwd_flops(*in_shapes)
            data["bwd_flops"] = spec.bwd_flops(*in_shapes)
            data["mem_traffic"] = spec.mem_traffic(*in_shapes) if in_shapes else 0.0
        self._shapes_ready = True

    def _require_shapes(self) -> None:
        if not self._shapes_ready:
            self.propagate_shapes()

    def shape(self, node: str) -> Shape:
        self._require_shapes()
        return self.g.nodes[node]["shape"]

    def total_params(self) -> int:
        self._require_shapes()
        return sum(self.g.nodes[n]["params"] for n in self.g)

    def total_fwd_flops(self) -> float:
        self._require_shapes()
        return sum(self.g.nodes[n]["fwd_flops"] for n in self.g)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelGraph({self.name!r}, nodes={len(self)})"
