"""Layer specifications with shape propagation and analytic cost accounting.

This module is the bottom of the profiling substrate that replaces the
paper's PyTorch measurements: every layer type knows how to

* propagate a per-sample tensor shape (``channels, height, width`` for
  spatial tensors, ``(features,)`` after flattening),
* count its trainable parameters,
* count its forward FLOPs (multiply-accumulate counted as 2 FLOPs), and
* report the bytes it reads/writes (used by the cost model for
  memory-bound layers such as ReLU/BN/pooling).

Shapes are per-sample; the cost model scales by the mini-batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Shape",
    "LayerSpec",
    "Input",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Linear",
    "Dropout",
    "Add",
    "Concat",
    "Upsample",
    "TokenEmbedding",
    "LayerNorm",
    "SelfAttention",
    "FeedForward",
    "numel",
]

Shape = tuple[int, ...]
"""Per-sample tensor shape: ``(C, H, W)`` spatial or ``(N,)`` flat."""


def numel(shape: Shape) -> int:
    """Number of elements of a per-sample tensor."""
    n = 1
    for d in shape:
        n *= d
    return n


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"spatial size {size} too small for kernel {kernel}/stride {stride}"
        )
    return out


@dataclass(frozen=True)
class LayerSpec:
    """Base class: a shape transformer with analytic costs.

    Sub-classes override the four accounting methods.  ``arity`` is the
    number of inputs (1 for ordinary layers, ``None`` for variadic merge
    nodes like :class:`Add` / :class:`Concat`).
    """

    arity = 1

    def out_shape(self, *inputs: Shape) -> Shape:
        raise NotImplementedError

    def param_count(self, *inputs: Shape) -> int:
        """Trainable scalar parameters."""
        return 0

    def fwd_flops(self, *inputs: Shape) -> float:
        """Forward floating-point operations for one sample."""
        return 0.0

    def bwd_flops(self, *inputs: Shape) -> float:
        """Backward FLOPs for one sample.  Default: the usual 2× forward
        (gradient w.r.t. inputs + gradient w.r.t. parameters); parameter-free
        layers override to 1×."""
        return 2.0 * self.fwd_flops(*inputs)

    def mem_traffic(self, *inputs: Shape) -> float:
        """Elements read + written in the forward pass (for memory-bound
        layers this dominates the runtime)."""
        total_in = sum(numel(s) for s in inputs)
        return float(total_in + numel(self.out_shape(*inputs)))


@dataclass(frozen=True)
class Input(LayerSpec):
    """Source placeholder carrying the network input shape."""

    shape: Shape

    arity = 0

    def out_shape(self, *inputs: Shape) -> Shape:
        if inputs:
            raise ValueError("Input takes no predecessors")
        return self.shape


@dataclass(frozen=True)
class Conv2d(LayerSpec):
    """2-D convolution with square kernel, optional bias and groups
    (``groups == in_channels`` gives a depthwise convolution)."""

    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    bias: bool = False
    groups: int = 1

    def _check_groups(self, c_in: int) -> None:
        if self.groups < 1:
            raise ValueError("groups must be >= 1")
        if c_in % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"channels ({c_in} -> {self.out_channels}) not divisible "
                f"by groups ({self.groups})"
            )

    def out_shape(self, *inputs: Shape) -> Shape:
        (c, h, w) = inputs[0]
        self._check_groups(c)
        return (
            self.out_channels,
            _conv_out(h, self.kernel, self.stride, self.padding),
            _conv_out(w, self.kernel, self.stride, self.padding),
        )

    def param_count(self, *inputs: Shape) -> int:
        c_in = inputs[0][0]
        self._check_groups(c_in)
        n = self.kernel * self.kernel * (c_in // self.groups) * self.out_channels
        if self.bias:
            n += self.out_channels
        return n

    def fwd_flops(self, *inputs: Shape) -> float:
        c_in = inputs[0][0]
        _, h_out, w_out = self.out_shape(*inputs)
        return (
            2.0
            * self.kernel**2
            * (c_in // self.groups)
            * self.out_channels
            * h_out
            * w_out
        )


@dataclass(frozen=True)
class BatchNorm2d(LayerSpec):
    """Batch normalization (scale + shift per channel)."""

    def out_shape(self, *inputs: Shape) -> Shape:
        return inputs[0]

    def param_count(self, *inputs: Shape) -> int:
        return 2 * inputs[0][0]

    def fwd_flops(self, *inputs: Shape) -> float:
        return 4.0 * numel(inputs[0])  # normalize + affine

    def bwd_flops(self, *inputs: Shape) -> float:
        return 4.0 * numel(inputs[0])


@dataclass(frozen=True)
class ReLU(LayerSpec):
    def out_shape(self, *inputs: Shape) -> Shape:
        return inputs[0]

    def fwd_flops(self, *inputs: Shape) -> float:
        return float(numel(inputs[0]))

    def bwd_flops(self, *inputs: Shape) -> float:
        return float(numel(inputs[0]))


@dataclass(frozen=True)
class MaxPool2d(LayerSpec):
    kernel: int
    stride: int
    padding: int = 0

    def out_shape(self, *inputs: Shape) -> Shape:
        (c, h, w) = inputs[0]
        return (
            c,
            _conv_out(h, self.kernel, self.stride, self.padding),
            _conv_out(w, self.kernel, self.stride, self.padding),
        )

    def fwd_flops(self, *inputs: Shape) -> float:
        return float(self.kernel**2 * numel(self.out_shape(*inputs)))

    def bwd_flops(self, *inputs: Shape) -> float:
        return float(numel(inputs[0]))


@dataclass(frozen=True)
class AvgPool2d(MaxPool2d):
    pass


@dataclass(frozen=True)
class GlobalAvgPool2d(LayerSpec):
    def out_shape(self, *inputs: Shape) -> Shape:
        (c, _h, _w) = inputs[0]
        return (c,)

    def fwd_flops(self, *inputs: Shape) -> float:
        return float(numel(inputs[0]))

    def bwd_flops(self, *inputs: Shape) -> float:
        return float(numel(inputs[0]))


@dataclass(frozen=True)
class Flatten(LayerSpec):
    def out_shape(self, *inputs: Shape) -> Shape:
        return (numel(inputs[0]),)


@dataclass(frozen=True)
class Linear(LayerSpec):
    out_features: int
    bias: bool = True

    def out_shape(self, *inputs: Shape) -> Shape:
        if len(inputs[0]) != 1:
            raise ValueError("Linear expects a flat input (use Flatten)")
        return (self.out_features,)

    def param_count(self, *inputs: Shape) -> int:
        n = inputs[0][0] * self.out_features
        if self.bias:
            n += self.out_features
        return n

    def fwd_flops(self, *inputs: Shape) -> float:
        return 2.0 * inputs[0][0] * self.out_features


@dataclass(frozen=True)
class Dropout(LayerSpec):
    rate: float = 0.5

    def out_shape(self, *inputs: Shape) -> Shape:
        return inputs[0]

    def fwd_flops(self, *inputs: Shape) -> float:
        return float(numel(inputs[0]))

    def bwd_flops(self, *inputs: Shape) -> float:
        return float(numel(inputs[0]))


@dataclass(frozen=True)
class Add(LayerSpec):
    """Element-wise sum merge (residual connections)."""

    arity = None

    def out_shape(self, *inputs: Shape) -> Shape:
        first = inputs[0]
        if any(s != first for s in inputs):
            raise ValueError(f"Add requires identical shapes, got {inputs}")
        return first

    def fwd_flops(self, *inputs: Shape) -> float:
        return float((len(inputs) - 1) * numel(inputs[0]))

    def bwd_flops(self, *inputs: Shape) -> float:
        return 0.0  # gradient fan-out is a copy


@dataclass(frozen=True)
class Concat(LayerSpec):
    """Channel-wise concatenation merge (Inception / DenseNet)."""

    arity = None

    def out_shape(self, *inputs: Shape) -> Shape:
        first = inputs[0]
        if any(len(s) != 3 or s[1:] != first[1:] for s in inputs):
            raise ValueError(f"Concat requires matching spatial dims, got {inputs}")
        return (sum(s[0] for s in inputs), first[1], first[2])

    def fwd_flops(self, *inputs: Shape) -> float:
        return 0.0  # pure data movement

    def bwd_flops(self, *inputs: Shape) -> float:
        return 0.0


@dataclass(frozen=True)
class Upsample(LayerSpec):
    """Nearest-neighbour spatial upsampling (decoder paths, e.g. U-Net)."""

    scale: int = 2

    def out_shape(self, *inputs: Shape) -> Shape:
        (c, h, w) = inputs[0]
        return (c, h * self.scale, w * self.scale)

    def fwd_flops(self, *inputs: Shape) -> float:
        return float(numel(self.out_shape(*inputs)))

    def bwd_flops(self, *inputs: Shape) -> float:
        return float(numel(self.out_shape(*inputs)))


# ---- sequence-model specs (shapes are (seq_len, d_model)) -----------------


@dataclass(frozen=True)
class TokenEmbedding(LayerSpec):
    """Token + position embedding: ``(seq,) -> (seq, d_model)``."""

    vocab: int
    d_model: int

    def out_shape(self, *inputs: Shape) -> Shape:
        (s,) = inputs[0]
        return (s, self.d_model)

    def param_count(self, *inputs: Shape) -> int:
        (s,) = inputs[0]
        return self.vocab * self.d_model + s * self.d_model

    def fwd_flops(self, *inputs: Shape) -> float:
        return float(numel(self.out_shape(*inputs)))  # lookup + add

    def bwd_flops(self, *inputs: Shape) -> float:
        return float(numel(self.out_shape(*inputs)))


@dataclass(frozen=True)
class LayerNorm(LayerSpec):
    def out_shape(self, *inputs: Shape) -> Shape:
        return inputs[0]

    def param_count(self, *inputs: Shape) -> int:
        return 2 * inputs[0][-1]

    def fwd_flops(self, *inputs: Shape) -> float:
        return 5.0 * numel(inputs[0])

    def bwd_flops(self, *inputs: Shape) -> float:
        return 5.0 * numel(inputs[0])


@dataclass(frozen=True)
class SelfAttention(LayerSpec):
    """Multi-head self-attention on ``(seq, d)``: QKV + output projections
    (``8·s·d²`` MAC-free FLOPs counted as 2x) plus the ``s×s`` attention
    matmuls (``4·s²·d``)."""

    heads: int = 8

    def out_shape(self, *inputs: Shape) -> Shape:
        (s, d) = inputs[0]
        if d % self.heads:
            raise ValueError(f"d_model {d} not divisible by {self.heads} heads")
        return (s, d)

    def param_count(self, *inputs: Shape) -> int:
        (_s, d) = inputs[0]
        return 4 * d * d + 4 * d  # QKV+O with bias

    def fwd_flops(self, *inputs: Shape) -> float:
        (s, d) = inputs[0]
        return 8.0 * s * d * d + 4.0 * s * s * d


@dataclass(frozen=True)
class FeedForward(LayerSpec):
    """Transformer FFN ``d -> hidden -> d`` on ``(seq, d)``."""

    hidden: int

    def out_shape(self, *inputs: Shape) -> Shape:
        return inputs[0]

    def param_count(self, *inputs: Shape) -> int:
        (_s, d) = inputs[0]
        return 2 * d * self.hidden + self.hidden + d

    def fwd_flops(self, *inputs: Shape) -> float:
        (s, d) = inputs[0]
        return 4.0 * s * d * self.hidden
