"""Model zoo substrate: layer specs, DAGs, builders and the linearizer."""

from .densenet import densenet, densenet121
from .graph import ModelGraph
from .inception import inception
from .linearize import coarsen, linearize
from .mobilenet import mobilenet_v1
from .resnet import resnet, resnet50, resnet101
from .synthetic import generate_traces, random_chain, uniform_chain
from .transformer import gpt_chain, transformer_encoder
from .unet import unet
from .vgg import vgg16

__all__ = [
    "ModelGraph",
    "linearize",
    "coarsen",
    "resnet",
    "resnet50",
    "resnet101",
    "inception",
    "densenet",
    "densenet121",
    "vgg16",
    "mobilenet_v1",
    "gpt_chain",
    "transformer_encoder",
    "unet",
    "random_chain",
    "uniform_chain",
    "generate_traces",
]
