"""Graph → chain linearization (paper §5.1).

The paper uses "a classic linearization approach, also used for PipeDream
… to transform the computational graphs of these neural networks into
chains, by greedily grouping layers as necessary".

We implement it as a *single-crossing-edge* segmentation: walk a
topological order of the DAG and, after each prefix, count the edges from
processed to unprocessed nodes.  Whenever exactly one edge crosses, the
tensor on that edge is a serialization point of the network and a chain
boundary can be placed there.  Everything between two consecutive
boundaries (e.g. the body of a residual or Inception block) is greedily
grouped into one chain layer whose costs are the sums of its members and
whose output activation is the tensor on the crossing edge.
"""

from __future__ import annotations

from ..core.chain import Chain, LayerProfile
from .graph import ModelGraph

__all__ = ["linearize", "coarsen"]


def linearize(graph: ModelGraph, *, name: str | None = None) -> Chain:
    """Linearize a *profiled* graph (see ``profile_model``) into a chain.

    The chain's ``a[0]`` is the network input size; each chain layer
    aggregates ``u_f``/``u_b``/weights over its group and exposes the
    activation on the group's single outgoing tensor.
    """
    order = graph.topo_order()
    nodes = graph.g.nodes
    if "u_f" not in nodes[order[-1]]:
        raise ValueError("graph must be profiled first (run profile_model)")

    # crossing = edges from the processed prefix to the rest; a chain
    # boundary exists when all crossing edges carry the SAME tensor, i.e.
    # originate from a single node.
    segments: list[tuple[list[str], str]] = []  # (members, boundary tensor node)
    current: list[str] = []
    crossing: set[tuple[str, str]] = set()
    for i, node in enumerate(order):
        crossing = {(u, v) for (u, v) in crossing if v != node}
        crossing |= {(node, v) for v in graph.g.successors(node)}
        current.append(node)
        sources = {u for (u, _v) in crossing}
        if len(sources) == 1:
            segments.append((current, next(iter(sources))))
            current = []
        elif i == len(order) - 1:
            segments.append((current, node))
            current = []
    if current:
        # no serialization point before the sink: fold the tail into the
        # last segment (cannot happen for single-sink DAGs, kept for safety)
        members, _ = segments.pop()
        segments.append((members + current, order[-1]))

    # The input node forms its own segment when it feeds a single layer;
    # it carries no compute and only defines a[0].
    first_members, first_boundary = segments[0]
    if len(first_members) == 1 and first_members[0] == graph.source:
        input_activation = nodes[first_boundary]["act_bytes"]
        segments = segments[1:]
    else:
        input_activation = nodes[graph.source]["act_bytes"]

    layers = []
    for members, boundary in segments:
        layers.append(
            LayerProfile(
                name=_segment_name(members),
                u_f=sum(nodes[m]["u_f"] for m in members),
                u_b=sum(nodes[m]["u_b"] for m in members),
                weights=sum(nodes[m]["weight_bytes"] for m in members),
                activation=nodes[boundary]["act_bytes"],
            )
        )
    return Chain(layers, input_activation, name=name or graph.name)


def _segment_name(members: list[str]) -> str:
    def short(n: str) -> str:
        return n.split(":", 1)[1]

    if len(members) == 1:
        return short(members[0])
    return f"{short(members[0])}..{short(members[-1])}[{len(members)}]"


def coarsen(chain: Chain, max_layers: int) -> Chain:
    """Greedily merge adjacent chain layers until ``L ≤ max_layers``.

    At each step the adjacent pair with the smallest combined compute cost
    is merged (the PipeDream-style "group as necessary" coarsening); the
    merged layer keeps the activation of its second member.
    """
    if max_layers < 1:
        raise ValueError("max_layers must be >= 1")
    layers = list(chain.layers)
    while len(layers) > max_layers:
        costs = [
            (layers[i].u_f + layers[i].u_b + layers[i + 1].u_f + layers[i + 1].u_b, i)
            for i in range(len(layers) - 1)
        ]
        _, i = min(costs)
        a, b = layers[i], layers[i + 1]
        layers[i : i + 2] = [
            LayerProfile(
                name=f"{a.name}+{b.name}",
                u_f=a.u_f + b.u_f,
                u_b=a.u_b + b.u_b,
                weights=a.weights + b.weights,
                activation=b.activation,
            )
        ]
    return Chain(layers, chain.input_activation, name=f"{chain.name}~{len(layers)}")
