"""Turn a shape-annotated :class:`ModelGraph` into per-node timings.

``profile_model`` attaches, to every graph node, the quantities the chain
model needs (paper §3): forward/backward durations for a mini-batch of
size ``B``, parameter bytes, and output activation bytes.
"""

from __future__ import annotations

from ..models.graph import ModelGraph
from ..models.layers import numel
from .device import DeviceSpec

__all__ = ["profile_model"]


def profile_model(graph: ModelGraph, device: DeviceSpec, batch_size: int) -> None:
    """Annotate ``graph`` nodes in place with ``u_f``, ``u_b``,
    ``weight_bytes`` and ``act_bytes`` for the given device and batch size.

    The backward pass moves roughly twice the forward traffic (it reads the
    stored activations and the incoming gradient and writes the outgoing
    gradient); compute-bound layers pay their analytic backward FLOPs.
    """
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    graph.propagate_shapes()
    bpe = device.bytes_per_element
    for node in graph.topo_order():
        data = graph.g.nodes[node]
        ltype = type(data["spec"]).__name__
        fwd_traffic = data["mem_traffic"] * batch_size * bpe
        data["act_bytes"] = float(numel(data["shape"]) * batch_size * bpe)
        data["weight_bytes"] = float(data["params"] * bpe)
        if ltype == "Input":
            data["u_f"] = 0.0
            data["u_b"] = 0.0
            continue
        data["u_f"] = device.duration(ltype, data["fwd_flops"] * batch_size, fwd_traffic)
        data["u_b"] = device.duration(
            ltype, data["bwd_flops"] * batch_size, 2.0 * fwd_traffic
        )
