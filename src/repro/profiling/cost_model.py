"""Turn a shape-annotated :class:`ModelGraph` into per-node timings.

``profile_model`` attaches, to every graph node, the quantities the chain
model needs (paper §3): forward/backward durations for a mini-batch of
size ``B``, parameter bytes, and output activation bytes.

Profiles are noisy in practice — kernel autotuning, clock throttling and
allocator variance all move the measured ``u_F``/``u_B``/``a_l``/``W_l``
between runs.  :class:`NoiseModel` describes that uncertainty as
independent multiplicative noise per profiled quantity;
:mod:`repro.robust` samples it to stress-test certified plans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import Chain, LayerProfile
from ..models.graph import ModelGraph
from ..models.layers import numel
from .device import DeviceSpec

__all__ = ["NoiseModel", "perturb_chain", "profile_model"]

_DISTRIBUTIONS = ("lognormal", "uniform")


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative noise on a profiled chain.

    Each quantity of each layer gets an independent factor: for the
    ``lognormal`` distribution ``exp(sigma · z)`` with ``z`` standard
    normal (median 1, always positive); for ``uniform`` it is
    ``1 + sigma · u`` with ``u ~ U(−1, 1)`` (clipped below at a tiny
    positive value when ``sigma > 1``).  ``sigma_compute`` drives
    ``u_F``/``u_B``, ``sigma_activation`` the activation sizes ``a_l``
    (including the input activation ``a_0``), ``sigma_weight`` the
    parameter bytes ``W_l``.

    Sampling is split into :meth:`draw` (the raw standard draws) and
    :meth:`apply` (turn one draw into a perturbed :class:`Chain`, with an
    optional ``scale`` multiplying every sigma) so callers can reuse one
    set of draws across noise levels — the common-random-numbers scheme
    the robustness bisection needs for a deterministic, monotone sweep.
    """

    sigma_compute: float = 0.05
    sigma_activation: float = 0.05
    sigma_weight: float = 0.0
    distribution: str = "lognormal"

    def __post_init__(self) -> None:
        for attr in ("sigma_compute", "sigma_activation", "sigma_weight"):
            v = getattr(self, attr)
            if not isinstance(v, (int, float)) or not np.isfinite(v) or v < 0:
                raise ValueError(f"{attr} must be a finite non-negative number, got {v!r}")
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; choose from {_DISTRIBUTIONS}"
            )

    def to_dict(self) -> dict:
        return {
            "sigma_compute": self.sigma_compute,
            "sigma_activation": self.sigma_activation,
            "sigma_weight": self.sigma_weight,
            "distribution": self.distribution,
        }

    def draw(self, rng: np.random.Generator, samples: int, n_layers: int) -> np.ndarray:
        """Standard draws of shape ``(samples, n_layers + 1, 4)``.

        Row 0 holds the input-activation draw (column 3); rows ``1..L``
        hold per-layer draws in column order ``(u_f, u_b, W, a)``.
        """
        shape = (samples, n_layers + 1, 4)
        if self.distribution == "lognormal":
            return rng.standard_normal(shape)
        return rng.uniform(-1.0, 1.0, size=shape)

    def factors(self, draws: np.ndarray, scale: float = 1.0) -> np.ndarray:
        """Multiplicative factors for one draw matrix (any leading shape,
        trailing axis = the 4 quantity columns)."""
        sigma = np.array([
            self.sigma_compute,
            self.sigma_compute,
            self.sigma_weight,
            self.sigma_activation,
        ])
        z = draws * (scale * sigma)
        if self.distribution == "lognormal":
            return np.exp(z)
        return np.maximum(1.0 + z, 1e-12)

    def apply(self, chain: Chain, draws: np.ndarray, scale: float = 1.0) -> Chain:
        """A perturbed copy of ``chain`` for one draw matrix of shape
        ``(L + 1, 4)`` (see :meth:`draw`)."""
        if draws.shape != (chain.L + 1, 4):
            raise ValueError(
                f"draws must have shape ({chain.L + 1}, 4), got {draws.shape}"
            )
        fac = self.factors(draws, scale)
        layers = [
            LayerProfile(
                name=layer.name,
                u_f=layer.u_f * f[0],
                u_b=layer.u_b * f[1],
                weights=layer.weights * f[2],
                activation=layer.activation * f[3],
            )
            for layer, f in zip(chain.layers, fac[1:])
        ]
        return Chain(
            layers=layers,
            input_activation=chain.input_activation * fac[0, 3],
            name=chain.name,
        )


def perturb_chain(
    chain: Chain,
    noise: NoiseModel,
    rng: np.random.Generator,
    *,
    scale: float = 1.0,
) -> Chain:
    """One perturbed copy of ``chain`` sampled from ``noise``."""
    return noise.apply(chain, noise.draw(rng, 1, chain.L)[0], scale)


def profile_model(graph: ModelGraph, device: DeviceSpec, batch_size: int) -> None:
    """Annotate ``graph`` nodes in place with ``u_f``, ``u_b``,
    ``weight_bytes`` and ``act_bytes`` for the given device and batch size.

    The backward pass moves roughly twice the forward traffic (it reads the
    stored activations and the incoming gradient and writes the outgoing
    gradient); compute-bound layers pay their analytic backward FLOPs.
    """
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    graph.propagate_shapes()
    bpe = device.bytes_per_element
    for node in graph.topo_order():
        data = graph.g.nodes[node]
        ltype = type(data["spec"]).__name__
        fwd_traffic = data["mem_traffic"] * batch_size * bpe
        data["act_bytes"] = float(numel(data["shape"]) * batch_size * bpe)
        data["weight_bytes"] = float(data["params"] * bpe)
        if ltype == "Input":
            data["u_f"] = 0.0
            data["u_b"] = 0.0
            continue
        data["u_f"] = device.duration(ltype, data["fwd_flops"] * batch_size, fwd_traffic)
        data["u_b"] = device.duration(
            ltype, data["bwd_flops"] * batch_size, 2.0 * fwd_traffic
        )
