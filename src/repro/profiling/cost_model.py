"""Turn a shape-annotated :class:`ModelGraph` into per-node timings.

``profile_model`` attaches, to every graph node, the quantities the chain
model needs (paper §3): forward/backward durations for a mini-batch of
size ``B``, parameter bytes, and output activation bytes.

Profiles are noisy in practice — kernel autotuning, clock throttling and
allocator variance all move the measured ``u_F``/``u_B``/``a_l``/``W_l``
between runs.  :class:`NoiseModel` describes that uncertainty as
independent multiplicative noise per profiled quantity;
:mod:`repro.robust` samples it to stress-test certified plans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import Chain, LayerProfile
from ..models.graph import ModelGraph
from ..models.layers import numel
from .device import DeviceSpec

__all__ = ["LayerNoiseModel", "NoiseModel", "perturb_chain", "profile_model"]

_DISTRIBUTIONS = ("lognormal", "uniform")


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative noise on a profiled chain.

    Each quantity of each layer gets an independent factor: for the
    ``lognormal`` distribution ``exp(sigma · z)`` with ``z`` standard
    normal (median 1, always positive); for ``uniform`` it is
    ``1 + sigma · u`` with ``u ~ U(−1, 1)`` (clipped below at a tiny
    positive value when ``sigma > 1``).  ``sigma_compute`` drives
    ``u_F``/``u_B``, ``sigma_activation`` the activation sizes ``a_l``
    (including the input activation ``a_0``), ``sigma_weight`` the
    parameter bytes ``W_l``.

    Sampling is split into :meth:`draw` (the raw standard draws) and
    :meth:`apply` (turn one draw into a perturbed :class:`Chain`, with an
    optional ``scale`` multiplying every sigma) so callers can reuse one
    set of draws across noise levels — the common-random-numbers scheme
    the robustness bisection needs for a deterministic, monotone sweep.
    """

    sigma_compute: float = 0.05
    sigma_activation: float = 0.05
    sigma_weight: float = 0.0
    distribution: str = "lognormal"

    def __post_init__(self) -> None:
        for attr in ("sigma_compute", "sigma_activation", "sigma_weight"):
            v = getattr(self, attr)
            if not isinstance(v, (int, float)) or not np.isfinite(v) or v < 0:
                raise ValueError(f"{attr} must be a finite non-negative number, got {v!r}")
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; choose from {_DISTRIBUTIONS}"
            )

    def to_dict(self) -> dict:
        return {
            "sigma_compute": self.sigma_compute,
            "sigma_activation": self.sigma_activation,
            "sigma_weight": self.sigma_weight,
            "distribution": self.distribution,
        }

    def draw(self, rng: np.random.Generator, samples: int, n_layers: int) -> np.ndarray:
        """Standard draws of shape ``(samples, n_layers + 1, 4)``.

        Row 0 holds the input-activation draw (column 3); rows ``1..L``
        hold per-layer draws in column order ``(u_f, u_b, W, a)``.
        """
        shape = (samples, n_layers + 1, 4)
        if self.distribution == "lognormal":
            return rng.standard_normal(shape)
        return rng.uniform(-1.0, 1.0, size=shape)

    def sigma_for(self, n_layers: int) -> np.ndarray:
        """Sigma matrix of shape ``(n_layers + 1, 4)`` matching the draw
        layout of :meth:`draw` — uniform here: every layer gets the same
        ``(sigma_compute, sigma_compute, sigma_weight,
        sigma_activation)`` row.  :class:`LayerNoiseModel` overrides this
        with per-layer rows; the scalar model is its uniform special
        case."""
        sigma = np.array([
            self.sigma_compute,
            self.sigma_compute,
            self.sigma_weight,
            self.sigma_activation,
        ])
        return np.broadcast_to(sigma, (n_layers + 1, 4))

    def factors(self, draws: np.ndarray, scale: float = 1.0) -> np.ndarray:
        """Multiplicative factors for one draw matrix (any leading shape,
        trailing axis = the 4 quantity columns)."""
        sigma = self.sigma_for(draws.shape[-2] - 1)
        z = draws * (scale * sigma)
        if self.distribution == "lognormal":
            return np.exp(z)
        return np.maximum(1.0 + z, 1e-12)

    def apply(self, chain: Chain, draws: np.ndarray, scale: float = 1.0) -> Chain:
        """A perturbed copy of ``chain`` for one draw matrix of shape
        ``(L + 1, 4)`` (see :meth:`draw`)."""
        if draws.shape != (chain.L + 1, 4):
            raise ValueError(
                f"draws must have shape ({chain.L + 1}, 4), got {draws.shape}"
            )
        fac = self.factors(draws, scale)
        layers = [
            LayerProfile(
                name=layer.name,
                u_f=layer.u_f * f[0],
                u_b=layer.u_b * f[1],
                weights=layer.weights * f[2],
                activation=layer.activation * f[3],
            )
            for layer, f in zip(chain.layers, fac[1:])
        ]
        return Chain(
            layers=layers,
            input_activation=chain.input_activation * fac[0, 3],
            name=chain.name,
        )


@dataclass(frozen=True)
class LayerNoiseModel(NoiseModel):
    """Heteroscedastic per-layer noise, fitted from measured traces.

    The scalar :class:`NoiseModel` applies one sigma per quantity to
    every layer; this subclass carries one sigma per *(layer, quantity)*
    pair — the shape real variance has (an IO-bound embedding layer and
    an autotuned conv do not jitter alike).  Fields:

    * ``sigma_compute`` — length ``L``, drives ``u_F``/``u_B`` of layer
      ``l`` (1-based ``l`` ↔ index ``l-1``);
    * ``sigma_weight`` — length ``L``, drives ``W_l``;
    * ``sigma_activation`` — length ``L + 1``: index 0 is the input
      activation ``a_0``, index ``l`` the output of layer ``l``.

    The draw/apply/common-random-numbers machinery is inherited
    unchanged, so :mod:`repro.robust` stress-tests calibrated noise
    exactly like the assumed model — same seeds, same bisection.  A
    model built with :meth:`uniform` reproduces the scalar model's
    factors bit for bit.  Applying the model to a chain whose length
    differs from the calibrated one raises ``ValueError`` (a calibrated
    model must never silently stretch onto a different network).
    """

    sigma_compute: tuple = ()
    sigma_activation: tuple = ()
    sigma_weight: tuple = ()
    distribution: str = "lognormal"

    def __post_init__(self) -> None:
        for attr in ("sigma_compute", "sigma_activation", "sigma_weight"):
            raw = getattr(self, attr)
            if isinstance(raw, (int, float)):
                raise ValueError(
                    f"{attr} must be a per-layer sequence; use NoiseModel "
                    f"for scalar sigmas (got {raw!r})"
                )
            values = tuple(float(v) for v in raw)
            for v in values:
                if not np.isfinite(v) or v < 0:
                    raise ValueError(
                        f"{attr} must hold finite non-negative numbers, got {v!r}"
                    )
            object.__setattr__(self, attr, values)
        L = len(self.sigma_compute)
        if L < 1:
            raise ValueError("sigma_compute needs at least one layer")
        if len(self.sigma_weight) != L:
            raise ValueError(
                f"sigma_weight has {len(self.sigma_weight)} entries for "
                f"{L} layer(s)"
            )
        if len(self.sigma_activation) != L + 1:
            raise ValueError(
                f"sigma_activation needs L + 1 = {L + 1} entries "
                f"(index 0 is the input activation), got "
                f"{len(self.sigma_activation)}"
            )
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; choose from "
                f"{_DISTRIBUTIONS}"
            )

    @property
    def n_layers(self) -> int:
        """The chain length this model was calibrated for."""
        return len(self.sigma_compute)

    def sigma_for(self, n_layers: int) -> np.ndarray:
        if n_layers != self.n_layers:
            raise ValueError(
                f"noise model is calibrated for {self.n_layers} layer(s) "
                f"but was applied to a chain with {n_layers}"
            )
        m = np.zeros((n_layers + 1, 4))
        m[1:, 0] = self.sigma_compute
        m[1:, 1] = self.sigma_compute
        m[1:, 2] = self.sigma_weight
        m[:, 3] = self.sigma_activation
        return m

    def to_dict(self) -> dict:
        return {
            "per_layer": True,
            "sigma_compute": list(self.sigma_compute),
            "sigma_activation": list(self.sigma_activation),
            "sigma_weight": list(self.sigma_weight),
            "distribution": self.distribution,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LayerNoiseModel":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` when malformed."""
        if not isinstance(data, dict):
            raise ValueError(
                f"noise model must be a JSON object, got {type(data).__name__}"
            )
        try:
            return cls(
                sigma_compute=tuple(data["sigma_compute"]),
                sigma_activation=tuple(data["sigma_activation"]),
                sigma_weight=tuple(data["sigma_weight"]),
                distribution=str(data.get("distribution", "lognormal")),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed noise model: {exc!r}") from exc

    @classmethod
    def uniform(cls, base: NoiseModel, n_layers: int) -> "LayerNoiseModel":
        """The per-layer spelling of a scalar model: every layer carries
        ``base``'s sigmas, so chains perturbed with the same draws match
        ``base`` bit for bit."""
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        return cls(
            sigma_compute=(base.sigma_compute,) * n_layers,
            sigma_activation=(base.sigma_activation,) * (n_layers + 1),
            sigma_weight=(base.sigma_weight,) * n_layers,
            distribution=base.distribution,
        )


def perturb_chain(
    chain: Chain,
    noise: NoiseModel,
    rng: np.random.Generator,
    *,
    scale: float = 1.0,
) -> Chain:
    """One perturbed copy of ``chain`` sampled from ``noise``."""
    return noise.apply(chain, noise.draw(rng, 1, chain.L)[0], scale)


def profile_model(graph: ModelGraph, device: DeviceSpec, batch_size: int) -> None:
    """Annotate ``graph`` nodes in place with ``u_f``, ``u_b``,
    ``weight_bytes`` and ``act_bytes`` for the given device and batch size.

    The backward pass moves roughly twice the forward traffic (it reads the
    stored activations and the incoming gradient and writes the outgoing
    gradient); compute-bound layers pay their analytic backward FLOPs.
    """
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    graph.propagate_shapes()
    bpe = device.bytes_per_element
    for node in graph.topo_order():
        data = graph.g.nodes[node]
        ltype = type(data["spec"]).__name__
        fwd_traffic = data["mem_traffic"] * batch_size * bpe
        data["act_bytes"] = float(numel(data["shape"]) * batch_size * bpe)
        data["weight_bytes"] = float(data["params"] * bpe)
        if ltype == "Input":
            data["u_f"] = 0.0
            data["u_b"] = 0.0
            continue
        data["u_f"] = device.duration(ltype, data["fwd_flops"] * batch_size, fwd_traffic)
        data["u_b"] = device.duration(
            ltype, data["bwd_flops"] * batch_size, 2.0 * fwd_traffic
        )
