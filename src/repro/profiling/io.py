"""Profile persistence: save/load chains as JSON.

The optimization is meant to run once per (network, machine) pair; storing
the profiled chain lets later runs skip the model zoo entirely — and lets
users plug in *measured* profiles (e.g. from a real PyTorch run) in the
same format.

Profiles are untrusted input: hand-edited files, partial downloads and
mis-generated exports all reach :func:`load_chain`.  Every failure mode —
malformed JSON, a missing or mistyped field, a NaN/Infinity constant, a
negative duration — surfaces as one typed :class:`ProfileError` naming
the offending file and field, never a raw ``KeyError`` or
``json.JSONDecodeError`` traceback.  :class:`ProfileError` subclasses
``ValueError``, so existing ``except ValueError`` call sites (the serve
request parser, the ingestion quarantine) keep working unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.chain import Chain, LayerProfile

__all__ = [
    "ProfileError",
    "chain_from_dict",
    "save_chain",
    "load_chain",
    "dumps_chain",
    "loads_chain",
]

#: Fields every serialized layer must carry (matching ``Chain.to_dict``).
_LAYER_FIELDS = ("name", "u_f", "u_b", "weights", "activation")


class ProfileError(ValueError):
    """A chain profile failed to parse or validate.

    The message always names the source (file path or ``<string>``) and,
    when one is identifiable, the offending field — the debugging
    information a raw ``KeyError`` would bury.
    """

    def __init__(self, message: str, *, source: str = "<string>", field: str | None = None):
        where = source if field is None else f"{source}: field {field!r}"
        super().__init__(f"{where}: {message}")
        self.source = source
        self.field = field


def _reject_constant(name: str) -> float:
    raise ValueError(f"non-finite JSON constant {name!r}")


def chain_from_dict(data: object, *, source: str = "<string>") -> Chain:
    """Strictly validate and build a :class:`Chain` from its dict form.

    Raises :class:`ProfileError` (naming ``source`` and the field) on any
    structural problem; value-level validation (negative durations,
    non-finite sizes) is delegated to :class:`Chain` /
    :class:`LayerProfile` and re-raised as :class:`ProfileError` too.
    """
    if not isinstance(data, dict):
        raise ProfileError(
            f"profile must be a JSON object, got {type(data).__name__}",
            source=source,
        )
    for key in ("layers", "input_activation"):
        if key not in data:
            raise ProfileError("missing required field", source=source, field=key)
    raw_layers = data["layers"]
    if not isinstance(raw_layers, list) or not raw_layers:
        raise ProfileError(
            "must be a non-empty array of layer objects",
            source=source,
            field="layers",
        )
    name = data.get("name", "chain")
    if not isinstance(name, str):
        raise ProfileError("must be a string", source=source, field="name")
    layers: list[LayerProfile] = []
    for i, obj in enumerate(raw_layers):
        if not isinstance(obj, dict):
            raise ProfileError(
                f"must be an object, got {type(obj).__name__}",
                source=source,
                field=f"layers[{i}]",
            )
        missing = [k for k in _LAYER_FIELDS if k not in obj]
        if missing:
            raise ProfileError(
                f"missing {missing}", source=source, field=f"layers[{i}]"
            )
        unknown = sorted(set(obj) - set(_LAYER_FIELDS))
        if unknown:
            raise ProfileError(
                f"unknown keys {unknown}", source=source, field=f"layers[{i}]"
            )
        try:
            layers.append(LayerProfile(**obj))
        except (ValueError, TypeError) as exc:
            raise ProfileError(
                str(exc), source=source, field=f"layers[{i}]"
            ) from None
    try:
        return Chain(
            layers=layers,
            input_activation=data["input_activation"],
            name=name,
        )
    except (ValueError, TypeError) as exc:
        raise ProfileError(str(exc), source=source) from None


def dumps_chain(chain: Chain) -> str:
    """Serialize a chain to a JSON string."""
    return json.dumps(chain.to_dict(), indent=2)


def loads_chain(text: str, *, source: str = "<string>") -> Chain:
    """Deserialize a chain from a JSON string.

    Raises :class:`ProfileError` on malformed JSON, NaN/Infinity
    constants, missing/unknown fields or invalid values.
    """
    try:
        data = json.loads(text, parse_constant=_reject_constant)
    except (json.JSONDecodeError, ValueError) as exc:
        raise ProfileError(f"invalid JSON: {exc}", source=source) from None
    return chain_from_dict(data, source=source)


def save_chain(chain: Chain, path: str | Path) -> None:
    """Write a chain profile to ``path`` as JSON."""
    Path(path).write_text(dumps_chain(chain))


def load_chain(path: str | Path) -> Chain:
    """Read a chain profile written by :func:`save_chain`.

    File-system errors propagate as ``OSError``; anything wrong with the
    *content* raises :class:`ProfileError` naming the file.
    """
    return loads_chain(Path(path).read_text(), source=str(path))
