"""Profile persistence: save/load chains as JSON.

The optimization is meant to run once per (network, machine) pair; storing
the profiled chain lets later runs skip the model zoo entirely — and lets
users plug in *measured* profiles (e.g. from a real PyTorch run) in the
same format.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.chain import Chain

__all__ = ["save_chain", "load_chain", "dumps_chain", "loads_chain"]


def dumps_chain(chain: Chain) -> str:
    """Serialize a chain to a JSON string."""
    return json.dumps(chain.to_dict(), indent=2)


def loads_chain(text: str) -> Chain:
    """Deserialize a chain from a JSON string."""
    return Chain.from_dict(json.loads(text))


def save_chain(chain: Chain, path: str | Path) -> None:
    """Write a chain profile to ``path`` as JSON."""
    Path(path).write_text(dumps_chain(chain))


def load_chain(path: str | Path) -> Chain:
    """Read a chain profile written by :func:`save_chain`."""
    return loads_chain(Path(path).read_text())
