"""Simulated device specifications.

The paper profiles layers on a real GPU; offline we substitute a roofline
cost model: a layer's duration is the kernel launch overhead plus the
maximum of its compute time (FLOPs over effective throughput) and its
memory time (bytes moved over memory bandwidth).  Effective throughput is
the device peak scaled by a per-layer-type efficiency factor, reflecting
that convolutions reach a large fraction of peak while element-wise and
normalization kernels are bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

__all__ = ["DeviceSpec", "V100", "RTX8000"]

_DEFAULT_EFFICIENCY: Mapping[str, float] = MappingProxyType(
    {
        "Conv2d": 0.50,
        "Linear": 0.60,
        "BatchNorm2d": 0.05,
        "ReLU": 0.05,
        "MaxPool2d": 0.10,
        "AvgPool2d": 0.10,
        "GlobalAvgPool2d": 0.05,
        "Add": 0.05,
        "Concat": 0.05,
        "Dropout": 0.05,
        "Flatten": 0.05,
    }
)


@dataclass(frozen=True)
class DeviceSpec:
    """A simulated accelerator.

    Parameters
    ----------
    peak_flops:
        fp32 peak throughput in FLOP/s.
    mem_bandwidth:
        Device memory bandwidth in bytes/s.
    kernel_overhead:
        Fixed launch/dispatch overhead per layer invocation, seconds.
    efficiency:
        Fraction of peak each layer type sustains when compute-bound.
    bytes_per_element:
        Tensor element size (4 for fp32 training).
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    kernel_overhead: float = 10e-6
    efficiency: Mapping[str, float] = field(
        default_factory=lambda: _DEFAULT_EFFICIENCY
    )
    bytes_per_element: int = 4

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("device rates must be positive")
        if self.kernel_overhead < 0:
            raise ValueError("negative kernel overhead")

    def eff(self, layer_type: str) -> float:
        """Efficiency factor for a layer type (default 0.10 if unknown)."""
        return self.efficiency.get(layer_type, 0.10)

    def duration(self, layer_type: str, flops: float, traffic_bytes: float) -> float:
        """Roofline duration of one kernel in seconds."""
        compute = flops / (self.peak_flops * self.eff(layer_type))
        memory = traffic_bytes / self.mem_bandwidth
        return self.kernel_overhead + max(compute, memory)


V100 = DeviceSpec(name="V100", peak_flops=14e12, mem_bandwidth=900e9)
"""NVIDIA V100-like device (the class of GPU used in the paper's platform)."""

RTX8000 = DeviceSpec(name="RTX8000", peak_flops=16e12, mem_bandwidth=672e9)
"""Quadro RTX 8000-like device (48 GB-class workstation GPU)."""
