"""Profiling substrate: device cost model and profile persistence."""

from .cost_model import LayerNoiseModel, NoiseModel, perturb_chain, profile_model
from .device import RTX8000, V100, DeviceSpec
from .io import (
    ProfileError,
    chain_from_dict,
    dumps_chain,
    load_chain,
    loads_chain,
    save_chain,
)

__all__ = [
    "LayerNoiseModel",
    "NoiseModel",
    "ProfileError",
    "perturb_chain",
    "profile_model",
    "DeviceSpec",
    "V100",
    "RTX8000",
    "chain_from_dict",
    "save_chain",
    "load_chain",
    "dumps_chain",
    "loads_chain",
]
