"""Periodic schedule patterns (paper §3, Fig. 2).

A pattern of period ``T`` specifies, for every operation (forward ``F_s`` /
backward ``B_s`` of each stage, and the activation/gradient transfers of
every cut boundary), the resource in charge, a starting time ``t ∈ [0, T)``
and an integer *index shift* ``h``: in the ``k``-th period the operation
starts at ``kT + t`` and processes mini-batch ``k − h``.

The pattern is *valid* when, repeated indefinitely, it satisfies the
dependencies of Fig. 1 and never overlaps two operations on one resource.
For a same-batch dependency ``u → v`` this reduces to the batch-independent
inequality ``(h_v − h_u)·T + t_v − t_u ≥ d_u``.

The steady-state number of active batches a stage keeps in memory at
in-period time ``τ`` is ``(h_B − h_F) + [τ ≥ t_F] − [τ ≥ t_B + d_B]``
(activation storage is charged from forward start to backward completion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .chain import Chain
from .memory import stage_memory_breakdown
from .partition import Allocation
from .platform import Platform
from .tolerances import CHECK_RTOL, EPS, memory_slack

__all__ = ["Op", "PeriodicPattern", "PatternError", "gpu", "link", "EPS"]

# Operation kinds: stage compute and boundary communications.
F, B, CF, CB = "F", "B", "CF", "CB"


def gpu(p: int) -> tuple:
    """Resource key of processor ``p``."""
    return ("gpu", p)


def link(p: int, q: int) -> tuple:
    """Resource key of the (unordered) link between processors p and q."""
    return ("link", min(p, q), max(p, q))


class PatternError(ValueError):
    """Raised when a pattern violates the periodic-schedule semantics."""


@dataclass
class Op:
    """One operation of a periodic pattern.

    ``kind`` ∈ {"F", "B", "CF", "CB"}; ``index`` is the stage index for
    compute ops and the boundary index ``i`` (the cut after stage ``i``)
    for communication ops.
    """

    kind: str
    index: int
    resource: tuple
    start: float
    duration: float
    shift: int

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def key(self) -> tuple[str, int]:
        return (self.kind, self.index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Op({self.kind}{self.index} on {self.resource} "
            f"@{self.start:.4f}+{self.duration:.4f} h={self.shift})"
        )


@dataclass
class PeriodicPattern:
    """A periodic pattern for a given allocation.

    ``ops`` maps ``(kind, index)`` to :class:`Op`.  Communication ops exist
    only for boundaries whose adjacent stages live on different processors.
    """

    allocation: Allocation
    period: float
    ops: dict[tuple[str, int], Op] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    def add(self, op: Op) -> None:
        if op.key in self.ops:
            raise PatternError(f"duplicate op {op.key}")
        self.ops[op.key] = op

    def normalize(self) -> None:
        """Fold starting times into ``[0, T)`` by adjusting shifts (the
        paper's "if any operation starts later than T, lower its start by T
        and increase its shift by 1"), then shift all indices so that ``F``
        of stage 0 has shift 0.  Operations may still *end* past ``T``:
        they wrap around the period boundary.
        """
        T = self.period
        for op in self.ops.values():
            while op.start >= T - EPS:
                op.start -= T
                op.shift += 1
            while op.start < -EPS:
                op.start += T
                op.shift -= 1
        base = self.ops[(F, 0)].shift
        if base:
            for op in self.ops.values():
                op.shift -= base

    # -- dependency structure -------------------------------------------------

    def dependency_edges(self) -> list[tuple[tuple[str, int], tuple[str, int]]]:
        """Same-batch dependency edges between op keys (Fig. 1 semantics,
        lifted to stages): ``F_i → (CF_i →) F_{i+1}``, ``F_N → B_N``,
        ``B_{i+1} → (CB_i →) B_i``, and ``F_i → B_i`` (a stage's backward
        needs its own stored activations).
        """
        n = self.allocation.n_stages
        edges: list[tuple[tuple[str, int], tuple[str, int]]] = []
        for i in range(n - 1):
            if (CF, i) in self.ops:
                edges.append(((F, i), (CF, i)))
                edges.append(((CF, i), (F, i + 1)))
            else:
                edges.append(((F, i), (F, i + 1)))
            if (CB, i) in self.ops:
                edges.append(((B, i + 1), (CB, i)))
                edges.append(((CB, i), (B, i)))
            else:
                edges.append(((B, i + 1), (B, i)))
        for i in range(n):
            edges.append(((F, i), (B, i)))
        return edges

    # -- validation -----------------------------------------------------------

    def validate(self, chain: Chain, platform: Platform, tol: float = CHECK_RTOL) -> None:
        """Raise :class:`PatternError` on any violation of the semantics."""
        self._validate_structure(chain, platform, tol)
        self._validate_dependencies(tol)
        self._validate_resources(tol)

    def _validate_structure(self, chain: Chain, platform: Platform, tol: float) -> None:
        alloc = self.allocation
        alloc.validate(chain, platform)
        n = alloc.n_stages
        for i in range(n):
            for kind in (F, B):
                if (kind, i) not in self.ops:
                    raise PatternError(f"missing op {kind}{i}")
        for i in range(n - 1):
            cut = alloc.procs[i] != alloc.procs[i + 1]
            for kind in (CF, CB):
                present = (kind, i) in self.ops
                if cut and not present:
                    raise PatternError(f"missing communication {kind}{i}")
                if not cut and present:
                    raise PatternError(f"spurious communication {kind}{i}")
        for op in self.ops.values():
            if op.start < -tol or op.start >= self.period + tol:
                raise PatternError(f"{op} starts outside [0, {self.period})")
            if op.duration > self.period + tol:
                raise PatternError(f"{op} is longer than the period")
            if op.kind in (F, B):
                expected = gpu(alloc.procs[op.index])
            else:
                expected = link(alloc.procs[op.index], alloc.procs[op.index + 1])
            if op.resource != expected:
                raise PatternError(f"{op} on wrong resource (expected {expected})")

    def _validate_dependencies(self, tol: float) -> None:
        T = self.period
        for u_key, v_key in self.dependency_edges():
            u, v = self.ops[u_key], self.ops[v_key]
            slack = (v.shift - u.shift) * T + v.start - u.start - u.duration
            if slack < -tol:
                raise PatternError(
                    f"dependency {u_key} -> {v_key} violated by {-slack:.3g}s"
                )

    def _validate_resources(self, tol: float) -> None:
        T = self.period
        by_resource: dict[tuple, list[Op]] = {}
        for op in self.ops.values():
            by_resource.setdefault(op.resource, []).append(op)
        for resource, ops in by_resource.items():
            # circular (mod T) pairwise overlap test: [s, s+d) and
            # [s', s'+d') intersect on the period circle iff either start
            # falls strictly inside the other interval:
            # (s' - s) mod T < d  or  (s - s') mod T < d'.
            for i, a in enumerate(ops):
                for b in ops[i + 1 :]:
                    gap_ab = (b.start - a.start) % T
                    gap_ba = (a.start - b.start) % T
                    if gap_ab < a.duration - tol or gap_ba < b.duration - tol:
                        raise PatternError(f"overlap on {resource}: {a} and {b}")

    # -- memory accounting ------------------------------------------------------

    def active_batches(self, stage_idx: int, tau: float) -> int:
        """Steady-state number of active batches stage ``stage_idx`` stores
        at in-period time ``tau``.

        Counting batches whose ``F`` has started and whose ``B`` has not
        completed at absolute time ``kT + tau`` gives, for any large ``k``,
        ``floor((tau − t_F)/T) − floor((tau − t_B − d_B)/T) + (h_B − h_F)``
        — valid also when the backward wraps past the period boundary.
        """
        T = self.period
        f = self.ops[(F, stage_idx)]
        b = self.ops[(B, stage_idx)]
        started = math.floor((tau - f.start + EPS) / T)
        freed = math.floor((tau - b.end + EPS) / T)
        return b.shift - f.shift + started - freed

    def memory_peaks(self, chain: Chain) -> dict[int, float]:
        """Steady-state peak memory (bytes) per processor.

        Static terms (weights, communication buffers) follow the §3 model;
        the activation term is evaluated at every forward-start and
        backward-end event of the period.
        """
        alloc = self.allocation
        peaks: dict[int, float] = {}
        for p in alloc.procs_used():
            stage_idxs = alloc.stages_on_proc(p)
            static = 0.0
            for i in stage_idxs:
                s = alloc.stages[i]
                bd = stage_memory_breakdown(chain, s.start, s.end, 0)
                static += bd.weights + bd.buffers
            events = {0.0}
            for i in stage_idxs:
                events.add(self.ops[(F, i)].start % self.period)
                events.add(self.ops[(B, i)].end % self.period)
            peak = 0.0
            for tau in events:
                act = sum(
                    self.active_batches(i, tau) * alloc.stages[i].stored_activations(chain)
                    for i in stage_idxs
                )
                peak = max(peak, static + act)
            peaks[p] = peak
        return peaks

    def check_memory(self, chain: Chain, platform: Platform, tol: float = CHECK_RTOL) -> None:
        """Raise :class:`PatternError` if any GPU exceeds its capacity.

        The slack is the combined absolute + relative tolerance of
        :func:`repro.core.tolerances.memory_slack`, so the check stays
        meaningful on tiny synthetic capacities where a relative-only
        slack degenerates to float noise.
        """
        cap = platform.memory + memory_slack(platform.memory, tol)
        for p, peak in self.memory_peaks(chain).items():
            if peak > cap:
                raise PatternError(
                    f"GPU {p} peak memory {peak / 2**30:.2f} GiB exceeds "
                    f"capacity {platform.memory / 2**30:.2f} GiB"
                )

    @property
    def throughput(self) -> float:
        """Mini-batches per second in steady state (``1 / T``)."""
        return 1.0 / self.period
