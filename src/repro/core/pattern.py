"""Periodic schedule patterns (paper §3, Fig. 2).

A pattern of period ``T`` specifies, for every operation (forward ``F_s`` /
backward ``B_s`` of each stage, and the activation/gradient transfers of
every cut boundary), the resource in charge, a starting time ``t ∈ [0, T)``
and an integer *index shift* ``h``: in the ``k``-th period the operation
starts at ``kT + t`` and processes mini-batch ``k − h``.

The pattern is *valid* when, repeated indefinitely, it satisfies the
dependencies of Fig. 1 and never overlaps two operations on one resource.
For a same-batch dependency ``u → v`` this reduces to the batch-independent
inequality ``(h_v − h_u)·T + t_v − t_u ≥ d_u``.

The steady-state number of active batches a stage keeps in memory at
in-period time ``τ`` is ``(h_B − h_F) + [τ ≥ t_F] − [τ ≥ t_B + d_B]``
(activation storage is charged from forward start to backward completion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .chain import Chain
from .memory import stage_memory_breakdown
from .partition import Allocation
from .platform import Platform
from .tolerances import CHECK_RTOL, EPS, memory_slack

__all__ = [
    "Op",
    "OpKind",
    "OP_KINDS",
    "PeriodicPattern",
    "PatternError",
    "gpu",
    "link",
    "EPS",
    "F",
    "B",
    "W",
    "CF",
    "CB",
    "is_compute",
    "is_comm",
    "split_backward",
]

# Operation kinds: stage compute and boundary communications.  ``W`` is
# the grad-weight half of a split backward (zero-bubble families); in the
# classic 1F1B model ``B`` is the whole backward and no ``W`` op exists.
F, B, W, CF, CB = "F", "B", "W", "CF", "CB"


@dataclass(frozen=True)
class OpKind:
    """Registry entry describing one operation kind.

    ``category`` is ``"compute"`` (runs on a GPU, indexed by stage) or
    ``"comm"`` (runs on a link, indexed by cut boundary).  ``glyph`` is
    the single character used by the Gantt renderer.  New schedule
    families extend the model by registering kinds here rather than
    scattering string literals — the validator, simulator, MILP and
    renderer all classify ops through this table.
    """

    name: str
    category: str
    glyph: str
    description: str

    @property
    def is_compute(self) -> bool:
        return self.category == "compute"

    @property
    def is_comm(self) -> bool:
        return self.category == "comm"


#: Central op-kind registry.  Keys are the wire/legacy string constants.
OP_KINDS: dict[str, OpKind] = {
    F: OpKind(F, "compute", "#", "forward pass of a stage"),
    B: OpKind(B, "compute", "=", "backward (grad-input, or full backward)"),
    W: OpKind(W, "compute", "~", "grad-weight half of a split backward"),
    CF: OpKind(CF, "comm", "#", "activation transfer across a cut"),
    CB: OpKind(CB, "comm", "=", "gradient transfer across a cut"),
}


def is_compute(kind: str) -> bool:
    """True iff ``kind`` is a stage-compute op (runs on a GPU)."""
    return OP_KINDS[kind].is_compute


def is_comm(kind: str) -> bool:
    """True iff ``kind`` is a boundary-communication op (runs on a link)."""
    return OP_KINDS[kind].is_comm


def split_backward(backward: float, fraction: float = 0.5) -> tuple[float, float]:
    """Split a monolithic backward duration into ``(d_B, d_W)``.

    ``d_B`` is the grad-input half (stays on the critical path), ``d_W``
    the grad-weight half (has no downstream dependents except freeing the
    grad-input buffer).  The two always sum exactly to ``backward``.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    d_b = fraction * backward
    return d_b, backward - d_b


def gpu(p: int) -> tuple:
    """Resource key of processor ``p``."""
    return ("gpu", p)


def link(p: int, q: int) -> tuple:
    """Resource key of the (unordered) link between processors p and q."""
    return ("link", min(p, q), max(p, q))


class PatternError(ValueError):
    """Raised when a pattern violates the periodic-schedule semantics."""


@dataclass
class Op:
    """One operation of a periodic pattern.

    ``kind`` is a key of :data:`OP_KINDS`; ``index`` is the stage index
    for compute ops and the boundary index ``i`` (the cut after stage
    ``i``) for communication ops.
    """

    kind: str
    index: int
    resource: tuple
    start: float
    duration: float
    shift: int

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def key(self) -> tuple[str, int]:
        return (self.kind, self.index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Op({self.kind}{self.index} on {self.resource} "
            f"@{self.start:.4f}+{self.duration:.4f} h={self.shift})"
        )


@dataclass
class PeriodicPattern:
    """A periodic pattern for a given allocation.

    ``ops`` maps ``(kind, index)`` to :class:`Op`.  Communication ops exist
    only for boundaries whose adjacent stages live on different processors.
    """

    allocation: Allocation
    period: float
    ops: dict[tuple[str, int], Op] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    def add(self, op: Op) -> None:
        if op.key in self.ops:
            raise PatternError(f"duplicate op {op.key}")
        self.ops[op.key] = op

    def normalize(self) -> None:
        """Fold starting times into ``[0, T)`` by adjusting shifts (the
        paper's "if any operation starts later than T, lower its start by T
        and increase its shift by 1"), then shift all indices so that ``F``
        of stage 0 has shift 0.  Operations may still *end* past ``T``:
        they wrap around the period boundary.
        """
        T = self.period
        for op in self.ops.values():
            while op.start >= T - EPS:
                op.start -= T
                op.shift += 1
            while op.start < -EPS:
                op.start += T
                op.shift -= 1
        base = self.ops[(F, 0)].shift
        if base:
            for op in self.ops.values():
                op.shift -= base

    # -- dependency structure -------------------------------------------------

    def dependency_edges(self) -> list[tuple[tuple[str, int], tuple[str, int]]]:
        """Same-batch dependency edges between op keys (Fig. 1 semantics,
        lifted to stages): ``F_i → (CF_i →) F_{i+1}``, ``F_N → B_N``,
        ``B_{i+1} → (CB_i →) B_i``, and ``F_i → B_i`` (a stage's backward
        needs its own stored activations).  When a stage carries a split
        backward, its grad-weight op adds ``B_i → W_i`` — ``W`` has no
        downstream dependents, it only frees the grad-input buffer.
        """
        n = self.allocation.n_stages
        edges: list[tuple[tuple[str, int], tuple[str, int]]] = []
        for i in range(n - 1):
            if (CF, i) in self.ops:
                edges.append(((F, i), (CF, i)))
                edges.append(((CF, i), (F, i + 1)))
            else:
                edges.append(((F, i), (F, i + 1)))
            if (CB, i) in self.ops:
                edges.append(((B, i + 1), (CB, i)))
                edges.append(((CB, i), (B, i)))
            else:
                edges.append(((B, i + 1), (B, i)))
        for i in range(n):
            edges.append(((F, i), (B, i)))
            if (W, i) in self.ops:
                edges.append(((B, i), (W, i)))
        return edges

    # -- validation -----------------------------------------------------------

    def validate(self, chain: Chain, platform: Platform, tol: float = CHECK_RTOL) -> None:
        """Raise :class:`PatternError` on any violation of the semantics."""
        self._validate_structure(chain, platform, tol)
        self._validate_dependencies(tol)
        self._validate_resources(tol)

    def _validate_structure(self, chain: Chain, platform: Platform, tol: float) -> None:
        alloc = self.allocation
        alloc.validate(chain, platform)
        n = alloc.n_stages
        for i in range(n):
            for kind in (F, B):
                if (kind, i) not in self.ops:
                    raise PatternError(f"missing op {kind}{i}")
        # split-backward patterns are all-or-nothing: either every stage
        # has a W op (zero-bubble family) or none does (classic 1F1B)
        n_w = sum(1 for key in self.ops if key[0] == W)
        if n_w and n_w != n:
            raise PatternError(
                f"split backward must cover every stage: {n_w} W ops for {n} stages"
            )
        for i in range(n - 1):
            cut = alloc.procs[i] != alloc.procs[i + 1]
            for kind in (CF, CB):
                present = (kind, i) in self.ops
                if cut and not present:
                    raise PatternError(f"missing communication {kind}{i}")
                if not cut and present:
                    raise PatternError(f"spurious communication {kind}{i}")
        for op in self.ops.values():
            if op.start < -tol or op.start >= self.period + tol:
                raise PatternError(f"{op} starts outside [0, {self.period})")
            if op.duration > self.period + tol:
                raise PatternError(f"{op} is longer than the period")
            if op.kind not in OP_KINDS:
                raise PatternError(f"{op} has unregistered kind {op.kind!r}")
            if is_compute(op.kind):
                expected = gpu(alloc.procs[op.index])
            else:
                expected = link(alloc.procs[op.index], alloc.procs[op.index + 1])
            if op.resource != expected:
                raise PatternError(f"{op} on wrong resource (expected {expected})")

    def _validate_dependencies(self, tol: float) -> None:
        T = self.period
        for u_key, v_key in self.dependency_edges():
            u, v = self.ops[u_key], self.ops[v_key]
            slack = (v.shift - u.shift) * T + v.start - u.start - u.duration
            if slack < -tol:
                raise PatternError(
                    f"dependency {u_key} -> {v_key} violated by {-slack:.3g}s"
                )

    def _validate_resources(self, tol: float) -> None:
        T = self.period
        by_resource: dict[tuple, list[Op]] = {}
        for op in self.ops.values():
            by_resource.setdefault(op.resource, []).append(op)
        for resource, ops in by_resource.items():
            # circular (mod T) pairwise overlap test: [s, s+d) and
            # [s', s'+d') intersect on the period circle iff either start
            # falls strictly inside the other interval:
            # (s' - s) mod T < d  or  (s - s') mod T < d'.
            for i, a in enumerate(ops):
                for b in ops[i + 1 :]:
                    gap_ab = (b.start - a.start) % T
                    gap_ba = (a.start - b.start) % T
                    if gap_ab < a.duration - tol or gap_ba < b.duration - tol:
                        raise PatternError(f"overlap on {resource}: {a} and {b}")

    # -- memory accounting ------------------------------------------------------

    def active_batches(self, stage_idx: int, tau: float) -> int:
        """Steady-state number of active batches stage ``stage_idx`` stores
        at in-period time ``tau``.

        Counting batches whose ``F`` has started and whose ``B`` has not
        completed at absolute time ``kT + tau`` gives, for any large ``k``,
        ``floor((tau − t_F)/T) − floor((tau − t_B − d_B)/T) + (h_B − h_F)``
        — valid also when the backward wraps past the period boundary.

        For a split-backward stage the stored activations are consumed by
        the grad-weight op as well, so they are freed at ``W`` completion
        instead of ``B`` completion.
        """
        T = self.period
        f = self.ops[(F, stage_idx)]
        b = self.ops.get((W, stage_idx)) or self.ops[(B, stage_idx)]
        started = math.floor((tau - f.start + EPS) / T)
        freed = math.floor((tau - b.end + EPS) / T)
        return b.shift - f.shift + started - freed

    def active_grad_batches(self, stage_idx: int, tau: float) -> int:
        """Steady-state number of grad-input buffers stage ``stage_idx``
        holds at in-period time ``tau``.

        Only meaningful for split-backward stages: the buffer is
        allocated when ``B`` starts and freed when ``W`` completes.
        Returns 0 for stages without a ``W`` op.
        """
        if (W, stage_idx) not in self.ops:
            return 0
        T = self.period
        b = self.ops[(B, stage_idx)]
        w = self.ops[(W, stage_idx)]
        started = math.floor((tau - b.start + EPS) / T)
        freed = math.floor((tau - w.end + EPS) / T)
        return w.shift - b.shift + started - freed

    def memory_peaks(self, chain: Chain) -> dict[int, float]:
        """Steady-state peak memory (bytes) per processor.

        Static terms (weights, communication buffers) follow the §3 model;
        the activation term is evaluated at every forward-start and
        backward-end event of the period.  Split-backward stages add a
        grad-input buffer held from B start to W completion, evaluated at
        the B-start and W-end events as well.
        """
        alloc = self.allocation
        peaks: dict[int, float] = {}
        for p in alloc.procs_used():
            stage_idxs = alloc.stages_on_proc(p)
            w_idxs = [i for i in stage_idxs if (W, i) in self.ops]
            static = 0.0
            for i in stage_idxs:
                s = alloc.stages[i]
                bd = stage_memory_breakdown(chain, s.start, s.end, 0)
                static += bd.weights + bd.buffers
            events = {0.0}
            for i in stage_idxs:
                events.add(self.ops[(F, i)].start % self.period)
                events.add(self.ops[(B, i)].end % self.period)
            for i in w_idxs:
                events.add(self.ops[(B, i)].start % self.period)
                events.add(self.ops[(W, i)].end % self.period)
            peak = 0.0
            for tau in events:
                act = sum(
                    self.active_batches(i, tau) * alloc.stages[i].stored_activations(chain)
                    for i in stage_idxs
                )
                if w_idxs:
                    act += sum(
                        self.active_grad_batches(i, tau) * alloc.stages[i].grad_buffer(chain)
                        for i in w_idxs
                    )
                peak = max(peak, static + act)
            peaks[p] = peak
        return peaks

    def check_memory(self, chain: Chain, platform: Platform, tol: float = CHECK_RTOL) -> None:
        """Raise :class:`PatternError` if any GPU exceeds its capacity.

        The slack is the combined absolute + relative tolerance of
        :func:`repro.core.tolerances.memory_slack`, so the check stays
        meaningful on tiny synthetic capacities where a relative-only
        slack degenerates to float noise.
        """
        cap = platform.memory + memory_slack(platform.memory, tol)
        for p, peak in self.memory_peaks(chain).items():
            if peak > cap:
                raise PatternError(
                    f"GPU {p} peak memory {peak / 2**30:.2f} GiB exceeds "
                    f"capacity {platform.memory / 2**30:.2f} GiB"
                )

    @property
    def throughput(self) -> float:
        """Mini-batches per second in steady state (``1 / T``)."""
        return 1.0 / self.period
